//! Latency study on the simulated machines: the full Figure 3/4 analysis
//! workflow on a small sample — densities, CIs, Kruskal-Wallis, effect
//! size and quantile regression.
//!
//! Run with: `cargo run --example latency_study`

use scibench::compare::compare_two;
use scibench::plot::ascii::render_density;
use scibench::plot::boxplot::{BoxPlotStats, WhiskerRule};
use scibench_sim::machine::MachineSpec;
use scibench_sim::pingpong::{pingpong_latencies_us, PingPongConfig};
use scibench_sim::rng::SimRng;
use scibench_stats::kde::{kde, Bandwidth};

fn main() {
    let samples = 50_000;
    let mut cfg = PingPongConfig::paper_64b(samples);
    cfg.warmup_iterations = 0;

    let dora = pingpong_latencies_us(&MachineSpec::piz_dora(), &cfg, &mut SimRng::new(1));
    let pilatus = pingpong_latencies_us(&MachineSpec::pilatus(), &cfg, &mut SimRng::new(2));

    for (name, xs) in [("Piz Dora", &dora), ("Pilatus", &pilatus)] {
        println!("=== {name} ({} samples, 64 B ping-pong) ===", xs.len());
        let b = BoxPlotStats::from_samples(name, xs, WhiskerRule::TukeyIqr).unwrap();
        println!(
            "min {:.3}  q1 {:.3}  median {:.3}  q3 {:.3}  max {:.3}  mean {:.3}  (us)",
            b.five_number.min,
            b.five_number.q1,
            b.five_number.median,
            b.five_number.q3,
            b.five_number.max,
            b.mean
        );
        println!("outliers beyond 1.5 IQR: {}", b.outliers.len());
        let d = kde(xs, Bandwidth::Silverman, 256).unwrap();
        println!("{}", render_density(&d, 70, 8));
    }

    // Rule 7/8: sound comparison including tail quantiles.
    let cmp = compare_two(
        "Piz Dora",
        &dora,
        "Pilatus",
        &pilatus,
        0.95,
        &[0.1, 0.25, 0.5, 0.75, 0.9, 0.99],
        42,
    )
    .unwrap();
    println!("{}", cmp.render());
    println!(
        "conclusion: {}",
        if cmp.significant() {
            "the median difference is statistically significant (Kruskal-Wallis, 95%)"
        } else {
            "no significant median difference"
        }
    );
}
