//! Simple bounds modeling (§5.1 of the paper, Rule 11: *if possible, show
//! upper performance bounds to facilitate interpretability*).
//!
//! Three scaling bounds of growing fidelity (Figure 7):
//!
//! 1. **Ideal linear**: `p` processes cannot speed up more than `p`×;
//! 2. **Serial overheads (Amdahl)**: speedup ≤ `1 / (b + (1−b)/p)`;
//! 3. **Parallel overheads**: additionally charge an overhead term that
//!    grows with `p` (e.g. the `Ω(log p)` of a reduction).
//!
//! Plus the machine-capability model: a machine is a vector
//! `Γ = (p₁ … p_k)` of peak feature rates, an application measurement a
//! vector `τ = (r₁ … r_k)`, and `P = (r₁/p₁ … r_k/p_k)` the dimensionless
//! performance — whose largest component is the likely bottleneck. The
//! roofline model is the `k = 2` special case.

use serde::{Deserialize, Serialize};

/// A `p`-dependent overhead term, seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OverheadTerm {
    /// Constant overhead.
    Fixed(f64),
    /// `c · log₂ p` overhead.
    LogLinear(f64),
}

impl OverheadTerm {
    /// Evaluates the term at `p` processes.
    pub fn eval(&self, p: usize) -> f64 {
        match *self {
            OverheadTerm::Fixed(c) => c,
            OverheadTerm::LogLinear(c) => c * (p.max(1) as f64).log2(),
        }
    }
}

/// A piecewise parallel-overhead model: the first segment whose
/// `max_p >= p` applies (the last segment catches everything above).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadModel {
    segments: Vec<(usize, OverheadTerm)>,
}

impl OverheadModel {
    /// Creates a piecewise model; segments must be sorted by `max_p`
    /// ascending and non-empty.
    pub fn piecewise(segments: Vec<(usize, OverheadTerm)>) -> Self {
        assert!(
            !segments.is_empty(),
            "overhead model needs at least one segment"
        );
        assert!(
            segments.windows(2).all(|w| w[0].0 < w[1].0),
            "segments must be sorted by max_p"
        );
        Self { segments }
    }

    /// A single-term model valid for all `p`.
    pub fn uniform(term: OverheadTerm) -> Self {
        Self {
            segments: vec![(usize::MAX, term)],
        }
    }

    /// The paper's empirical Piz Daint reduction model (Figure 7):
    /// `f(p ≤ 8) = 10 ns`, `f(8 < p ≤ 16) = 0.1 ms·log₂ p`,
    /// `f(p > 16) = 0.17 ms·log₂ p`.
    pub fn paper_pi_reduction() -> Self {
        Self::piecewise(vec![
            (8, OverheadTerm::Fixed(10e-9)),
            (16, OverheadTerm::LogLinear(0.1e-3)),
            (usize::MAX, OverheadTerm::LogLinear(0.17e-3)),
        ])
    }

    /// Evaluates the overhead at `p` processes, seconds.
    pub fn eval(&self, p: usize) -> f64 {
        for &(max_p, term) in &self.segments {
            if p <= max_p {
                return term.eval(p);
            }
        }
        self.segments.last().expect("non-empty").1.eval(p)
    }
}

/// A scaling bound for a code with single-process time `base_time_s`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScalingBound {
    /// Ideal linear scaling: `T(p) ≥ T(1)/p`.
    IdealLinear,
    /// Amdahl: `T(p) ≥ T(1)·(b + (1−b)/p)` for serial fraction `b`.
    Amdahl {
        /// The serial fraction `b ∈ [0, 1]`.
        serial_fraction: f64,
    },
    /// Amdahl plus a `p`-dependent parallel overhead.
    ParallelOverhead {
        /// The serial fraction `b ∈ [0, 1]`.
        serial_fraction: f64,
        /// The overhead model added on top.
        overhead: OverheadModel,
    },
}

impl ScalingBound {
    /// Short label for legends.
    pub fn label(&self) -> &'static str {
        match self {
            ScalingBound::IdealLinear => "Ideal Linear Bound",
            ScalingBound::Amdahl { .. } => "Serial Overheads Bound",
            ScalingBound::ParallelOverhead { .. } => "Parallel Overheads Bound",
        }
    }

    /// Lower bound on execution time at `p` processes, seconds.
    pub fn time_bound_s(&self, base_time_s: f64, p: usize) -> f64 {
        assert!(base_time_s > 0.0 && p >= 1);
        let pf = p as f64;
        match self {
            ScalingBound::IdealLinear => base_time_s / pf,
            ScalingBound::Amdahl { serial_fraction: b } => base_time_s * (b + (1.0 - b) / pf),
            ScalingBound::ParallelOverhead {
                serial_fraction: b,
                overhead,
            } => base_time_s * (b + (1.0 - b) / pf) + overhead.eval(p),
        }
    }

    /// Upper bound on speedup at `p` processes.
    pub fn speedup_bound(&self, base_time_s: f64, p: usize) -> f64 {
        base_time_s / self.time_bound_s(base_time_s, p)
    }
}

/// A machine-capability vector `Γ`: named peak feature rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapabilityVector {
    features: Vec<(String, f64)>,
}

impl CapabilityVector {
    /// Creates a capability vector; peaks must be positive.
    pub fn new(features: &[(&str, f64)]) -> Self {
        assert!(!features.is_empty(), "need at least one feature");
        for (name, peak) in features {
            assert!(*peak > 0.0, "peak of {name} must be positive");
        }
        Self {
            features: features.iter().map(|(n, p)| (n.to_string(), *p)).collect(),
        }
    }

    /// The classic roofline pair: peak flop/s and memory bandwidth B/s.
    pub fn roofline(peak_flops: f64, mem_bandwidth: f64) -> Self {
        Self::new(&[("flops", peak_flops), ("membw", mem_bandwidth)])
    }

    /// Number of features `k`.
    pub fn k(&self) -> usize {
        self.features.len()
    }

    /// Feature names in order.
    pub fn names(&self) -> Vec<&str> {
        self.features.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Normalized performance `P = (r₁/p₁ … r_k/p_k)` of a measurement
    /// vector `τ` (achieved rates, same order).
    ///
    /// # Panics
    /// Panics if the lengths differ or an achieved rate exceeds its peak
    /// by more than 0.1 % (measurement error tolerance) — `rᵢ ≤ pᵢ` by
    /// definition.
    pub fn normalized(&self, achieved: &[f64]) -> Vec<f64> {
        assert_eq!(
            achieved.len(),
            self.features.len(),
            "feature count mismatch"
        );
        self.features
            .iter()
            .zip(achieved)
            .map(|((name, peak), &r)| {
                assert!(r >= 0.0, "achieved {name} rate must be non-negative");
                assert!(
                    r <= peak * 1.001,
                    "achieved {name} rate {r} exceeds peak {peak}"
                );
                (r / peak).min(1.0)
            })
            .collect()
    }

    /// The likely bottleneck: index and name of the feature with the
    /// highest utilization.
    pub fn bottleneck(&self, achieved: &[f64]) -> (usize, &str) {
        let norm = self.normalized(achieved);
        let mut best = 0;
        for (i, &v) in norm.iter().enumerate() {
            if v > norm[best] {
                best = i;
            }
        }
        (best, self.features[best].0.as_str())
    }

    /// Roofline attainable performance for an arithmetic intensity
    /// (flop/B); requires a `k = 2` vector built by
    /// [`CapabilityVector::roofline`].
    pub fn roofline_attainable(&self, intensity_flop_per_byte: f64) -> f64 {
        assert_eq!(self.k(), 2, "roofline requires exactly two features");
        let peak_flops = self.features[0].1;
        let mem_bw = self.features[1].1;
        (intensity_flop_per_byte * mem_bw).min(peak_flops)
    }

    /// An implementation is provably near-optimal in feature `i` if its
    /// utilization is at least `threshold` (§5.1's optimality argument:
    /// utilization ≈ 1 plus a lower-bound argument on the operation
    /// count).
    pub fn near_optimal(&self, achieved: &[f64], threshold: f64) -> bool {
        self.normalized(achieved).iter().any(|&v| v >= threshold)
    }
}

/// A fitted linear cost model `T(n) = latency + n / bandwidth`.
///
/// §5.1: "Sometimes, analytical upper bounds for Γ are far from reality
/// (the vendor-specified numbers are only guarantees to not be exceeded).
/// In these cases, one can parametrize the pᵢ using carefully crafted and
/// statistically sound microbenchmarks." This is that parametrization for
/// the two network features (latency, bandwidth): a least-squares fit of
/// measured transfer times against message sizes, with goodness of fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearCostModel {
    /// Fixed cost per operation (the latency term), in the time unit of
    /// the inputs.
    pub latency: f64,
    /// Marginal cost per byte (1 / bandwidth).
    pub cost_per_byte: f64,
    /// Coefficient of determination R² of the fit.
    pub r_squared: f64,
    /// Number of (size, time) observations used.
    pub n: usize,
}

impl LinearCostModel {
    /// Fits the model to `(size_bytes, time)` pairs by ordinary least
    /// squares. Requires at least two distinct sizes.
    pub fn fit(sizes: &[f64], times: &[f64]) -> Option<Self> {
        if sizes.len() != times.len() || sizes.len() < 2 {
            return None;
        }
        if sizes.iter().chain(times.iter()).any(|v| !v.is_finite()) {
            return None;
        }
        let n = sizes.len() as f64;
        let mx = sizes.iter().sum::<f64>() / n;
        let my = times.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for (x, y) in sizes.iter().zip(times) {
            sxx += (x - mx) * (x - mx);
            sxy += (x - mx) * (y - my);
            syy += (y - my) * (y - my);
        }
        if sxx <= 0.0 {
            return None; // all sizes identical
        }
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        let r_squared = if syy > 0.0 {
            (sxy * sxy) / (sxx * syy)
        } else {
            1.0
        };
        Some(Self {
            latency: intercept,
            cost_per_byte: slope,
            r_squared,
            n: sizes.len(),
        })
    }

    /// Predicted time for a message of `bytes`.
    pub fn predict(&self, bytes: f64) -> f64 {
        self.latency + self.cost_per_byte * bytes
    }

    /// Bandwidth in bytes per time unit (`1 / cost_per_byte`); `None`
    /// when the slope is non-positive (degenerate fit).
    pub fn bandwidth(&self) -> Option<f64> {
        (self.cost_per_byte > 0.0).then(|| 1.0 / self.cost_per_byte)
    }

    /// Converts the fit into a two-feature capability vector
    /// (1/latency as an operation rate, bandwidth) for the §5.1
    /// normalized-performance analysis.
    pub fn capability_vector(&self) -> Option<CapabilityVector> {
        let bw = self.bandwidth()?;
        if self.latency <= 0.0 {
            return None;
        }
        Some(CapabilityVector::new(&[
            ("msg_rate", 1.0 / self.latency),
            ("bandwidth", bw),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_bound_is_linear() {
        let b = ScalingBound::IdealLinear;
        assert_eq!(b.time_bound_s(10.0, 1), 10.0);
        assert_eq!(b.time_bound_s(10.0, 4), 2.5);
        assert_eq!(b.speedup_bound(10.0, 8), 8.0);
    }

    #[test]
    fn amdahl_limits_speedup() {
        let b = ScalingBound::Amdahl {
            serial_fraction: 0.01,
        };
        // Amdahl with b=0.01: asymptotic limit 100.
        assert!((b.speedup_bound(1.0, 1_000_000) - 100.0).abs() < 0.2);
        // At p=32: 1/(0.01 + 0.99/32) = 24.43...
        assert!((b.speedup_bound(1.0, 32) - 24.427).abs() < 1e-2);
    }

    #[test]
    fn bounds_are_ordered() {
        // Ideal ≥ Amdahl ≥ ParallelOverhead (as speedups).
        let ideal = ScalingBound::IdealLinear;
        let amdahl = ScalingBound::Amdahl {
            serial_fraction: 0.01,
        };
        let parallel = ScalingBound::ParallelOverhead {
            serial_fraction: 0.01,
            overhead: OverheadModel::paper_pi_reduction(),
        };
        for p in [1usize, 2, 4, 8, 16, 32] {
            let si = ideal.speedup_bound(20e-3, p);
            let sa = amdahl.speedup_bound(20e-3, p);
            let sp = parallel.speedup_bound(20e-3, p);
            assert!(si >= sa && sa >= sp, "p={p}: {si} {sa} {sp}");
        }
    }

    #[test]
    fn paper_reduction_model_values() {
        let m = OverheadModel::paper_pi_reduction();
        assert_eq!(m.eval(4), 10e-9);
        assert_eq!(m.eval(8), 10e-9);
        assert!((m.eval(16) - 0.4e-3).abs() < 1e-12);
        assert!((m.eval(32) - 0.85e-3).abs() < 1e-12);
    }

    #[test]
    fn parallel_overhead_explains_measurement() {
        // The bound with the paper's model should sit just below the
        // simulator's measured times.
        use scibench_sim::machine::MachineSpec;
        use scibench_sim::pi::{pi_run_s, PiConfig};
        use scibench_sim::rng::SimRng;
        let bound = ScalingBound::ParallelOverhead {
            serial_fraction: 0.01,
            overhead: OverheadModel::paper_pi_reduction(),
        };
        let m = MachineSpec::piz_daint();
        let c = PiConfig::paper_figure7();
        let mut rng = SimRng::new(1);
        for p in [1usize, 2, 8, 16, 32] {
            let measured = pi_run_s(&m, &c, p, &mut rng);
            let b = bound.time_bound_s(20e-3, p);
            assert!(measured >= b, "p={p}: measured {measured} below bound {b}");
            assert!(
                measured <= b * 1.2,
                "p={p}: bound explains poorly ({measured} vs {b})"
            );
        }
    }

    #[test]
    fn overhead_model_validation() {
        let m = OverheadModel::uniform(OverheadTerm::Fixed(1.0));
        assert_eq!(m.eval(1), 1.0);
        assert_eq!(m.eval(1_000_000), 1.0);
        assert_eq!(OverheadTerm::LogLinear(2.0).eval(8), 6.0);
    }

    #[test]
    #[should_panic(expected = "sorted by max_p")]
    fn unsorted_segments_panic() {
        OverheadModel::piecewise(vec![
            (16, OverheadTerm::Fixed(1.0)),
            (8, OverheadTerm::Fixed(2.0)),
        ]);
    }

    #[test]
    fn normalized_performance_and_bottleneck() {
        let cap = CapabilityVector::new(&[("flops", 100.0), ("membw", 50.0), ("netbw", 10.0)]);
        let norm = cap.normalized(&[50.0, 45.0, 1.0]);
        assert_eq!(norm, vec![0.5, 0.9, 0.1]);
        let (idx, name) = cap.bottleneck(&[50.0, 45.0, 1.0]);
        assert_eq!(idx, 1);
        assert_eq!(name, "membw");
        assert!(cap.near_optimal(&[50.0, 45.0, 1.0], 0.9));
        assert!(!cap.near_optimal(&[50.0, 44.0, 1.0], 0.9));
    }

    #[test]
    fn roofline_ridge_point() {
        // Peak 100 flop/s, bandwidth 10 B/s → ridge at intensity 10.
        let cap = CapabilityVector::roofline(100.0, 10.0);
        assert_eq!(cap.roofline_attainable(1.0), 10.0); // memory-bound
        assert_eq!(cap.roofline_attainable(10.0), 100.0); // ridge
        assert_eq!(cap.roofline_attainable(100.0), 100.0); // compute-bound
    }

    #[test]
    #[should_panic(expected = "exceeds peak")]
    fn normalized_rejects_above_peak() {
        CapabilityVector::new(&[("flops", 10.0)]).normalized(&[11.0]);
    }

    #[test]
    fn labels() {
        assert_eq!(ScalingBound::IdealLinear.label(), "Ideal Linear Bound");
        assert_eq!(
            ScalingBound::Amdahl {
                serial_fraction: 0.0
            }
            .label(),
            "Serial Overheads Bound"
        );
    }

    #[test]
    fn linear_cost_model_recovers_exact_parameters() {
        // T(n) = 1500 + n / 10 (latency 1500 ns, 10 B/ns).
        let sizes: Vec<f64> = (0..20).map(|i| (i * 512) as f64).collect();
        let times: Vec<f64> = sizes.iter().map(|n| 1500.0 + n / 10.0).collect();
        let m = LinearCostModel::fit(&sizes, &times).unwrap();
        assert!((m.latency - 1500.0).abs() < 1e-6);
        assert!((m.bandwidth().unwrap() - 10.0).abs() < 1e-6);
        assert!((m.r_squared - 1.0).abs() < 1e-12);
        assert!((m.predict(1024.0) - 1602.4).abs() < 1e-6);
    }

    #[test]
    fn linear_cost_model_fits_simulated_pingpong() {
        // Parametrize the Piz Dora network from noisy microbenchmarks
        // (the §5.1 workflow) and recover the configured parameters.
        use scibench_sim::machine::MachineSpec;
        use scibench_sim::pingpong::{pingpong_latencies_ns, PingPongConfig};
        use scibench_sim::rng::SimRng;
        use scibench_stats::quantile::median;

        let machine = MachineSpec::piz_dora();
        let mut rng = SimRng::new(5);
        let mut sizes = Vec::new();
        let mut times = Vec::new();
        // Stay below the eager threshold to keep the model linear.
        for bytes in [64usize, 512, 1024, 2048, 4096, 8192] {
            let mut cfg = PingPongConfig::paper_64b(300);
            cfg.bytes = bytes;
            cfg.warmup_iterations = 0;
            let lat = pingpong_latencies_ns(&machine, &cfg, &mut rng);
            sizes.push(bytes as f64);
            times.push(median(&lat).unwrap());
        }
        let m = LinearCostModel::fit(&sizes, &times).unwrap();
        assert!(m.r_squared > 0.99, "R² = {}", m.r_squared);
        // Configured: injection 1000 + 2 hops × 293 = 1586 ns latency,
        // 10 B/ns bandwidth. Noise only inflates, so expect within ~20 %.
        assert!(
            (1500.0..2100.0).contains(&m.latency),
            "latency {}",
            m.latency
        );
        let bw = m.bandwidth().unwrap();
        assert!((7.0..14.0).contains(&bw), "bandwidth {bw}");
        assert!(m.capability_vector().is_some());
    }

    #[test]
    fn linear_cost_model_rejects_degenerate_input() {
        assert!(LinearCostModel::fit(&[1.0], &[1.0]).is_none());
        assert!(LinearCostModel::fit(&[1.0, 1.0], &[1.0, 2.0]).is_none());
        assert!(LinearCostModel::fit(&[1.0, 2.0], &[1.0]).is_none());
        assert!(LinearCostModel::fit(&[1.0, f64::NAN], &[1.0, 2.0]).is_none());
        // Negative slope: no bandwidth.
        let m = LinearCostModel::fit(&[0.0, 1.0], &[2.0, 1.0]).unwrap();
        assert!(m.bandwidth().is_none());
        assert!(m.capability_vector().is_none());
    }
}
