//! Ablation: barrier-based vs window-based synchronization (§4.2.1).
//!
//! Benchmarks the protocol cost of each scheme and prints the achieved
//! start-time skew once per configuration — the design-choice data behind
//! the paper's recommendation of the window scheme.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scibench::sync::{barrier_sync_start, window_sync_start};
use scibench_sim::alloc::{Allocation, AllocationPolicy};
use scibench_sim::drift::ClockEnsemble;
use scibench_sim::machine::MachineSpec;
use scibench_sim::rng::SimRng;

fn bench_sync_schemes(c: &mut Criterion) {
    let machine = MachineSpec::piz_daint();
    let mut g = c.benchmark_group("sync_schemes");
    for p in [8usize, 64] {
        let mut rng = SimRng::new(p as u64);
        let alloc = Allocation::one_rank_per_node(&machine, p, AllocationPolicy::Packed, &mut rng);
        let clocks = ClockEnsemble::sample(p, 10_000.0, 1e-6, &mut rng);

        // Report the skew each scheme achieves (the figure of merit).
        let mut barrier_skew = 0.0;
        let mut window_skew = 0.0;
        let reps = 50;
        for _ in 0..reps {
            barrier_skew += barrier_sync_start(&machine, &alloc, &mut rng).max_skew_ns();
            window_skew +=
                window_sync_start(&machine, &alloc, &clocks, 1e6, &mut rng).max_skew_ns();
        }
        println!(
            "p={p}: mean start skew barrier {:.0} ns vs window {:.0} ns",
            barrier_skew / reps as f64,
            window_skew / reps as f64
        );

        g.bench_with_input(BenchmarkId::new("barrier", p), &p, |b, _| {
            b.iter(|| barrier_sync_start(&machine, black_box(&alloc), &mut rng))
        });
        g.bench_with_input(BenchmarkId::new("window", p), &p, |b, _| {
            b.iter(|| window_sync_start(&machine, black_box(&alloc), &clocks, 1e6, &mut rng))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sync_schemes);
criterion_main!(benches);
