//! The twelve rules as an executable checklist: builds a deliberately
//! sloppy report (the "state of the practice" from the paper's survey)
//! and a compliant one, and audits both.
//!
//! Run with: `cargo run --example rules_audit`

use scibench::compare::compare_two;
use scibench::experiment::environment::{DocumentationClass, EnvironmentDoc};
use scibench::experiment::measurement::MeasurementOutcome;
use scibench::parallel::CrossProcessSummary;
use scibench::report::{ExperimentReport, ParallelMethodology};
use scibench::rules::{Rule, RuleAudit};
use scibench::units::Unit;
use scibench_sim::machine::MachineSpec;
use scibench_sim::pingpong::{pingpong_latencies_us, PingPongConfig};
use scibench_sim::rng::SimRng;

fn latencies(machine: &MachineSpec, seed: u64) -> Vec<f64> {
    let mut cfg = PingPongConfig::paper_64b(5_000);
    cfg.warmup_iterations = 0;
    pingpong_latencies_us(machine, &cfg, &mut SimRng::new(seed))
}

fn summarize(xs: &[f64], name: &str) -> scibench::experiment::measurement::MeasurementSummary {
    MeasurementOutcome {
        name: name.into(),
        warmup_samples: vec![],
        samples: xs.to_vec(),
        converged: true,
    }
    .summarize(0.95)
    .unwrap()
}

fn main() {
    println!("The twelve rules:\n");
    for rule in Rule::ALL {
        println!("{rule}\n");
    }

    let dora = latencies(&MachineSpec::piz_dora(), 1);
    let pilatus = latencies(&MachineSpec::pilatus(), 2);

    // --- The sloppy report: "we ran it and it was 2x faster". ---
    let mut sloppy = ExperimentReport::new("typical surveyed paper")
        .entry(summarize(&dora, "latency"), Unit::Seconds);
    // Strip the CIs, as most surveyed papers do.
    sloppy.entries[0].summary.median_ci = None;
    sloppy.entries[0].summary.mean_ci = None;
    sloppy.ratio_geomean_used = true; // unexplained geometric mean
    println!("=== audit: sloppy report ===");
    let audit = RuleAudit::check(&sloppy);
    println!("{}", audit.render());
    println!("passes: {}\n", audit.passed());

    // --- The compliant report. ---
    let cmp = compare_two("Piz Dora", &dora, "Pilatus", &pilatus, 0.95, &[0.5, 0.9], 3).unwrap();
    let env = EnvironmentDoc::from_machine(&MachineSpec::piz_dora())
        .document(
            DocumentationClass::Input,
            "64 B ping-pong between two nodes",
        )
        .document(
            DocumentationClass::MeasurementSetup,
            "5000 samples, warmup discarded",
        )
        .document(DocumentationClass::CodeAvailability, "this repository")
        .not_applicable(DocumentationClass::Filesystem, "no I/O");
    let compliant = ExperimentReport::new("interpretable latency report")
        .environment(env)
        .entry(summarize(&dora, "latency (Piz Dora)"), Unit::Seconds)
        .comparison(cmp)
        .bound(scibench::bounds::ScalingBound::IdealLinear)
        .parallel(ParallelMethodology {
            processes: 2,
            synchronization: "window-based delay scheme".into(),
            summarization: CrossProcessSummary::Max,
            anova_checked: true,
        })
        .plot("latency density", "density", None);
    println!("=== audit: compliant report ===");
    let audit = RuleAudit::check(&compliant);
    println!("{}", audit.render());
    println!("passes: {}", audit.passed());
}
