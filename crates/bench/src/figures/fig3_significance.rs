//! Figure 3: significance of latency results on two systems.
//!
//! Two latency distributions (Piz Dora, Pilatus), each annotated with the
//! arithmetic mean + 99 % CI, the median + 99 % CI, and min/max. The
//! medians differ significantly (Kruskal–Wallis at 95 %) "even though
//! many of the 1M measurements overlap"; the mean CI is tiny and
//! misleading because neither distribution is normal.

use scibench::compare::{compare_two, Comparison};
use scibench::data::DataSet;
use scibench::plot::ascii::render_density;
use scibench_sim::machine::MachineSpec;
use scibench_sim::pingpong::{pingpong_latencies_us, PingPongConfig};
use scibench_sim::rng::SimRng;
use scibench_stats::ci::{mean_ci, median_ci, ConfidenceInterval};
use scibench_stats::error::StatsResult;
use scibench_stats::kde::{kde, Bandwidth, DensityEstimate};

/// One system's annotated distribution.
#[derive(Debug, Clone)]
pub struct SystemPanel {
    /// System name.
    pub name: String,
    /// Latency samples (µs).
    pub latencies_us: Vec<f64>,
    /// Density estimate.
    pub density: DensityEstimate,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// 99 % CI of the mean (parametric — shown to make the paper's point
    /// that it is misleadingly narrow).
    pub mean_ci: ConfidenceInterval,
    /// 99 % CI of the median (nonparametric).
    pub median_ci: ConfidenceInterval,
}

/// Regenerated Figure 3 data.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// The Piz Dora panel.
    pub dora: SystemPanel,
    /// The Pilatus panel.
    pub pilatus: SystemPanel,
    /// Full statistical comparison (Kruskal–Wallis etc.).
    pub comparison: Comparison,
}

fn panel(
    name: &str,
    machine: &MachineSpec,
    samples: usize,
    rng: &mut SimRng,
) -> StatsResult<SystemPanel> {
    let mut cfg = PingPongConfig::paper_64b(samples);
    cfg.warmup_iterations = 0;
    let latencies = pingpong_latencies_us(machine, &cfg, rng);
    let density = kde(&latencies, Bandwidth::Silverman, 512)?;
    Ok(SystemPanel {
        name: name.to_owned(),
        min: latencies.iter().cloned().fold(f64::INFINITY, f64::min),
        max: latencies.iter().cloned().fold(0.0, f64::max),
        mean_ci: mean_ci(&latencies, 0.99)?,
        median_ci: median_ci(&latencies, 0.99)?,
        density,
        latencies_us: latencies,
    })
}

/// Runs the Figure 3 pipeline with `samples` per system.
pub fn compute(samples: usize, seed: u64) -> StatsResult<Fig3> {
    let root = SimRng::new(seed);
    let mut rng_dora = root.fork("fig3-dora");
    let mut rng_pilatus = root.fork("fig3-pilatus");
    let dora = panel("Piz Dora", &MachineSpec::piz_dora(), samples, &mut rng_dora)?;
    let pilatus = panel(
        "Pilatus",
        &MachineSpec::pilatus(),
        samples,
        &mut rng_pilatus,
    )?;
    let comparison = compare_two(
        &dora.name,
        &dora.latencies_us,
        &pilatus.name,
        &pilatus.latencies_us,
        0.95,
        &[],
        seed ^ 0xF163,
    )?;
    Ok(Fig3 {
        dora,
        pilatus,
        comparison,
    })
}

impl Fig3 {
    /// Builds the rule-compliant experiment report for this figure — the
    /// library auditing its own reproduction.
    pub fn report(&self) -> scibench::report::ExperimentReport {
        use scibench::experiment::environment::DocumentationClass;
        use scibench::experiment::measurement::MeasurementOutcome;
        use scibench::parallel::CrossProcessSummary;
        use scibench::report::{ExperimentReport, ParallelMethodology};
        use scibench::units::Unit;

        let summarize = |panel: &SystemPanel| {
            MeasurementOutcome {
                name: format!("64B ping-pong ({})", panel.name),
                warmup_samples: vec![],
                samples: panel.latencies_us.clone(),
                converged: true,
            }
            .summarize(0.99)
            .expect("panel summary")
        };
        let env = scibench::experiment::environment::EnvironmentDoc::from_machine(
            &MachineSpec::piz_dora(),
        )
        .document(
            DocumentationClass::Input,
            "64 B ping-pong, two processes on distinct nodes",
        )
        .document(
            DocumentationClass::MeasurementSetup,
            "single-event timing, warmup discarded, full sample reported",
        )
        .document(
            DocumentationClass::CodeAvailability,
            "this repository (fig3_significance)",
        )
        .not_applicable(DocumentationClass::Filesystem, "no I/O");
        ExperimentReport::new("Figure 3: latency significance on two systems")
            .environment(env)
            .entry(summarize(&self.dora), Unit::Seconds)
            .entry(summarize(&self.pilatus), Unit::Seconds)
            .comparison(self.comparison.clone())
            .parallel(ParallelMethodology {
                processes: 2,
                synchronization: "ping-pong implicit synchronization".into(),
                summarization: CrossProcessSummary::Max,
                anova_checked: true,
            })
            .plot("latency densities", "density", None)
    }

    /// Renders both panels plus the significance verdict.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 3: Significance of latency results on two systems\n\n");
        for p in [&self.dora, &self.pilatus] {
            out.push_str(&format!(
                "{}\n  min: {:.2} us   max: {:.2} us\n  mean {:.4} us, 99% CI [{:.4}, {:.4}] (parametric - misleadingly narrow)\n  median {:.4} us, 99% CI [{:.4}, {:.4}] (nonparametric)\n",
                p.name,
                p.min,
                p.max,
                p.mean_ci.estimate,
                p.mean_ci.lower,
                p.mean_ci.upper,
                p.median_ci.estimate,
                p.median_ci.lower,
                p.median_ci.upper,
            ));
            out.push_str(&render_density(&p.density, 78, 8));
            out.push('\n');
        }
        out.push_str(&format!(
            "Kruskal-Wallis H = {:.1}, p = {:.2e}: medians differ {}\n",
            self.comparison.kruskal_wallis.statistic,
            self.comparison.kruskal_wallis.p_value,
            if self.comparison.significant() {
                "SIGNIFICANTLY (95%)"
            } else {
                "insignificantly"
            },
        ));
        out.push_str(&format!(
            "mean difference (Pilatus - Dora): {:+.4} us\n",
            self.comparison.mean_ci_b.estimate - self.comparison.mean_ci_a.estimate
        ));
        out
    }

    /// Summary statistics per system as CSV.
    pub fn dataset(&self) -> DataSet {
        let mut d = DataSet::new(&[
            "system",
            "min",
            "max",
            "mean",
            "mean_ci_lo",
            "mean_ci_hi",
            "median",
            "median_ci_lo",
            "median_ci_hi",
        ])
        .with_metadata("figure", "3")
        .with_metadata("systems", "0=PizDora 1=Pilatus");
        for (i, p) in [&self.dora, &self.pilatus].iter().enumerate() {
            d.push_row(&[
                i as f64,
                p.min,
                p.max,
                p.mean_ci.estimate,
                p.mean_ci.lower,
                p.mean_ci.upper,
                p.median_ci.estimate,
                p.median_ci.lower,
                p.median_ci.upper,
            ]);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medians_differ_significantly() {
        let f = compute(50_000, 42).unwrap();
        assert!(
            f.comparison.significant(),
            "p = {}",
            f.comparison.kruskal_wallis.p_value
        );
    }

    #[test]
    fn figure3_shape_facts() {
        let f = compute(50_000, 42).unwrap();
        // Pilatus: lower min, higher max (heavier tail), higher mean.
        assert!(f.pilatus.min < f.dora.min);
        assert!(f.pilatus.max > f.dora.max);
        let diff = f.comparison.mean_ci_b.estimate - f.comparison.mean_ci_a.estimate;
        assert!((0.02..0.3).contains(&diff), "mean diff {diff}");
        // Mean CIs are much narrower than the min-max spread (the
        // "misleading" visual of the figure).
        assert!(f.dora.mean_ci.width() < (f.dora.max - f.dora.min) * 0.05);
    }

    #[test]
    fn render_and_dataset() {
        let f = compute(20_000, 1).unwrap();
        let text = f.render();
        assert!(text.contains("Piz Dora"));
        assert!(text.contains("Pilatus"));
        assert!(text.contains("Kruskal-Wallis"));
        assert_eq!(f.dataset().len(), 2);
    }

    #[test]
    fn figure_report_passes_the_twelve_rules() {
        let f = compute(10_000, 2).unwrap();
        let report = f.report();
        let audit = scibench::rules::RuleAudit::check(&report);
        assert!(audit.passed(), "{}", audit.render());
        // Skewed latency data: the normality gate must have rejected the
        // parametric mean CI in both entries.
        for e in &report.entries {
            assert!(!e.summary.mean_ci_valid, "{}", e.summary.name);
        }
    }
}
