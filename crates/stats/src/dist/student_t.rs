//! Student's t distribution.
//!
//! Needed for confidence intervals of the mean (§3.1.2 of the paper):
//! `[x̄ − t(n−1, α/2)·s/√n, x̄ + t(n−1, α/2)·s/√n]`.

use crate::error::{StatsError, StatsResult};
use crate::special::{beta_inc, ln_gamma};

use super::{bisect_inv_cdf, ContinuousDistribution};

/// Student's t distribution with `nu` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    nu: f64,
}

impl StudentT {
    /// Creates the distribution; `nu` must be positive and finite.
    pub fn new(nu: f64) -> StatsResult<Self> {
        if !(nu.is_finite() && nu > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "nu",
                value: nu,
            });
        }
        Ok(Self { nu })
    }

    /// Degrees of freedom.
    pub fn degrees_of_freedom(&self) -> f64 {
        self.nu
    }
}

impl ContinuousDistribution for StudentT {
    fn pdf(&self, x: f64) -> f64 {
        let nu = self.nu;
        let ln_coeff = ln_gamma((nu + 1.0) / 2.0)
            - ln_gamma(nu / 2.0)
            - 0.5 * (nu * std::f64::consts::PI).ln();
        (ln_coeff - (nu + 1.0) / 2.0 * (1.0 + x * x / nu).ln()).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        let nu = self.nu;
        if x == 0.0 {
            return 0.5;
        }
        // P[T <= x] via the regularized incomplete beta function.
        let ib = beta_inc(nu / 2.0, 0.5, nu / (nu + x * x));
        if x > 0.0 {
            1.0 - 0.5 * ib
        } else {
            0.5 * ib
        }
    }

    fn inv_cdf(&self, p: f64) -> f64 {
        assert!(
            p > 0.0 && p < 1.0,
            "StudentT::inv_cdf requires 0 < p < 1, got {p}"
        );
        if (p - 0.5).abs() < 1e-16 {
            return 0.0;
        }
        // Symmetric: solve for the upper half, mirror for the lower.
        if p < 0.5 {
            return -self.inv_cdf(1.0 - p);
        }
        bisect_inv_cdf(|x| self.cdf(x), p, 0.0, 10.0)
    }
}

/// Two-sided critical value `t(df, α/2)` such that `P[|T| > t] = α`.
///
/// This is the factor used in the paper's CI formula; for large `df` it
/// converges to the normal `z(α/2)`.
pub fn t_critical(df: f64, alpha: f64) -> StatsResult<f64> {
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(StatsError::InvalidProbability {
            name: "alpha",
            value: alpha,
        });
    }
    let t = StudentT::new(df)?;
    Ok(t.inv_cdf(1.0 - alpha / 2.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::normal::std_normal_cdf;

    #[test]
    fn cdf_is_symmetric() {
        let t = StudentT::new(7.0).unwrap();
        for &x in &[0.3, 1.1, 2.7] {
            assert!((t.cdf(x) + t.cdf(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cdf_reference_values() {
        // t with 10 df: P[T <= 1.812461] = 0.95 (textbook t-table).
        let t = StudentT::new(10.0).unwrap();
        assert!((t.cdf(1.812_461) - 0.95).abs() < 1e-5);
        // t with 1 df is the Cauchy distribution: cdf(1) = 0.75.
        let cauchy = StudentT::new(1.0).unwrap();
        assert!((cauchy.cdf(1.0) - 0.75).abs() < 1e-10);
    }

    #[test]
    fn critical_values_match_t_table() {
        // Classic two-sided t-table values.
        let cases = [
            (1.0, 0.05, 12.706),
            (2.0, 0.05, 4.303),
            (5.0, 0.05, 2.571),
            (10.0, 0.05, 2.228),
            (30.0, 0.05, 2.042),
            (10.0, 0.01, 3.169),
            (100.0, 0.05, 1.984),
        ];
        for (df, alpha, want) in cases {
            let got = t_critical(df, alpha).unwrap();
            assert!(
                (got - want).abs() < 2e-3,
                "t({df}, {alpha}/2): got {got}, want {want}"
            );
        }
    }

    #[test]
    fn converges_to_normal_for_large_df() {
        let t = StudentT::new(1e6).unwrap();
        for &x in &[-2.0, -0.5, 0.0, 1.0, 2.5] {
            assert!((t.cdf(x) - std_normal_cdf(x)).abs() < 1e-4);
        }
    }

    #[test]
    fn inv_cdf_round_trips() {
        let t = StudentT::new(4.0).unwrap();
        for &p in &[0.01, 0.2, 0.5, 0.9, 0.999] {
            let x = t.inv_cdf(p);
            assert!((t.cdf(x) - p).abs() < 1e-9, "p={p} x={x}");
        }
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        let t = StudentT::new(5.0).unwrap();
        // Numeric integral of the pdf from -40 to 1.0 should equal cdf(1.0).
        let (a, b, steps) = (-40.0, 1.0, 20_000);
        let h: f64 = (b - a) / steps as f64;
        let mut total = 0.0;
        for i in 0..=steps {
            let x = a + i as f64 * h;
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            total += w * t.pdf(x);
        }
        total *= h;
        assert!((total - t.cdf(1.0)).abs() < 1e-5);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(StudentT::new(0.0).is_err());
        assert!(StudentT::new(-3.0).is_err());
        assert!(t_critical(5.0, 0.0).is_err());
    }
}
