//! Simulated HPC substrate for the SC '15 scientific-benchmarking
//! reproduction.
//!
//! The paper's measurements were taken on three Cray/InfiniBand systems
//! (Piz Daint, Piz Dora, Pilatus — §4.1.2). Those machines are not
//! available, so this crate implements parameterized models that produce
//! measurement distributions with the same qualitative structure from the
//! same causes:
//!
//! - [`machine`]: node/network/noise specifications with presets for the
//!   three systems of the paper,
//! - [`topology`]: Dragonfly and fat-tree hop-distance models,
//! - [`network`]: a LogGP-style point-to-point cost model with eager /
//!   rendezvous protocol switching,
//! - [`noise`]: multiplicative log-normal jitter, periodic OS daemons and
//!   heavy-tailed congestion events — the "system" noise sources the paper
//!   lists in §1,
//! - [`drift`]: per-process clock offset and drift (§4.2.1 "Parallel
//!   time"),
//! - [`alloc`]: batch-system node-allocation policies (packed, scattered,
//!   random) whose effect §4.1.2 calls out,
//! - [`collectives`]: binomial-tree reduce/broadcast, allreduce, gather
//!   and dissemination barrier with per-rank completion times (Figures 5
//!   and 6),
//! - [`compile`]: collectives lowered once per campaign point into flat
//!   message programs replayed with zero per-sample allocations,
//!   bit-identical to the interpreter,
//! - [`pingpong`]: two-node latency benchmark (Figures 2, 3, 4 and 7(c)),
//! - [`fault`]: deterministic fault injection (node crashes, stragglers,
//!   flaky links, clock jumps) for resilience experiments,
//! - [`hpl`]: an HPL-like compute-bound workload (Figure 1),
//! - [`pi`]: the π-digits workload with a serial fraction and a final
//!   reduction (Figure 7(a,b)),
//! - [`bsp`]: a bulk-synchronous application model demonstrating noise
//!   propagation across ranks (§4.2.1),
//! - [`rng`]: deterministic, fork-able random streams so every experiment
//!   is reproducible bit-for-bit from a single seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc;
pub mod bsp;
pub mod collectives;
pub mod compile;
pub mod drift;
pub mod fault;
pub mod hpl;
pub mod machine;
pub mod network;
pub mod noise;
pub mod pi;
pub mod pingpong;
pub mod rng;
pub mod topology;

pub use compile::{CollectiveOp, CompiledSchedule, ReplayCtx};
pub use fault::{FaultContext, FaultPlan, FaultSchedule, SimFault};
pub use machine::{MachineSpec, NetworkSpec, NodeSpec};
pub use rng::SimRng;
