//! Rendering Table 1.
//!
//! Produces the text analogue of the paper's Table 1: one row per
//! criterion with per-conference-year ✓/·/blank cells (10 papers each)
//! and the `(count/95)` aggregate, followed by the per-group score box
//! plots and the §2.1 headline statistics.

use std::fmt::Write as _;

use crate::model::{AnalysisCriterion, Conference, DesignCriterion, Grade, Survey, YEARS};
use crate::score::{group_scores, overall_mean_score, render_mini_box};

fn cell_char(g: Grade) -> char {
    match g {
        Grade::Satisfied => 'v',
        Grade::Unsatisfied => ' ',
        Grade::NotApplicable => '.',
    }
}

/// Renders one criterion row: 12 groups of 10 cells plus the aggregate.
fn render_row(
    survey: &Survey,
    label: &str,
    grade_of: impl Fn(&crate::model::PaperRecord) -> Grade,
    count: usize,
) -> String {
    let mut row = format!("{label:<30}");
    for conf in Conference::ALL {
        for &year in &YEARS {
            let mut cells = String::with_capacity(10);
            let mut group = survey.group(conf, year);
            group.sort_by_key(|p| p.index);
            for p in group {
                cells.push(cell_char(grade_of(p)));
            }
            row.push_str(&cells);
            row.push(' ');
        }
    }
    let _ = write!(row, " ({count}/95)");
    row
}

/// Renders the full Table 1 as text.
pub fn render_table1(survey: &Survey) -> String {
    let mut out = String::new();
    // Column header.
    out.push_str(&format!("{:<30}", "Experimental Design"));
    for conf in Conference::ALL {
        for &year in &YEARS {
            let _ = write!(out, "{:<11}", format!("{}{}", conf.label(), year % 100));
        }
    }
    out.push('\n');

    for c in DesignCriterion::ALL {
        out.push_str(&render_row(
            survey,
            c.label(),
            |p| p.design_grade(c),
            survey.design_count(c),
        ));
        out.push('\n');
    }

    // Score distributions (the box-plot summary of the real table).
    out.push_str("\nPer-group design-score distributions (0..9):\n");
    for g in group_scores(survey) {
        let _ = writeln!(
            out,
            "  {}{}: [{}] median {:.1}",
            g.conference.label(),
            g.year % 100,
            render_mini_box(&g),
            g.median().unwrap_or(f64::NAN),
        );
    }
    let _ = writeln!(
        out,
        "  overall mean design score: {:.2}/9",
        overall_mean_score(survey)
    );

    out.push_str(&format!("\n{:<30}\n", "Data Analysis"));
    for c in AnalysisCriterion::ALL {
        out.push_str(&render_row(
            survey,
            c.label(),
            |p| p.analysis_grade(c),
            survey.analysis_count(c),
        ));
        out.push('\n');
    }

    // §2.1 headline statistics.
    let (speedups, missing_base) = survey.speedup_stats();
    let _ = writeln!(
        out,
        "\nSpeedup reporting: {speedups} papers report speedups; {missing_base} ({:.0}%) omit the absolute base case",
        100.0 * missing_base as f64 / speedups.max(1) as f64
    );
    let _ = writeln!(
        out,
        "Unambiguous units: {}/95 papers",
        survey.unambiguous_units_count()
    );
    let na = survey.len() - survey.applicable().count();
    let _ = writeln!(out, "Not applicable: {na}/{} papers", survey.len());
    out
}

/// Renders the survey's aggregate columns as a Markdown table (counts per
/// criterion plus the headline §2.1 statistics) — the form papers and
/// READMEs embed.
pub fn render_table1_markdown(survey: &Survey) -> String {
    let applicable = survey.applicable().count();
    let mut out = String::from("| Criterion | Papers satisfying |\n|---|---|\n");
    for c in DesignCriterion::ALL {
        let _ = writeln!(
            out,
            "| {} | {}/{applicable} |",
            c.label(),
            survey.design_count(c)
        );
    }
    for c in AnalysisCriterion::ALL {
        let _ = writeln!(
            out,
            "| {} | {}/{applicable} |",
            c.label(),
            survey.analysis_count(c)
        );
    }
    let (speedups, missing) = survey.speedup_stats();
    let _ = writeln!(out, "| Speedups without base case | {missing}/{speedups} |");
    let _ = writeln!(
        out,
        "| Fully unambiguous units | {}/{applicable} |",
        survey.unambiguous_units_count()
    );
    let _ = writeln!(
        out,
        "| Mean design-documentation score | {:.2}/9 |",
        overall_mean_score(survey)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::paper_dataset;

    #[test]
    fn table_contains_all_rows_and_counts() {
        let text = render_table1(&paper_dataset());
        for c in DesignCriterion::ALL {
            assert!(text.contains(c.label()), "missing row {}", c.label());
            assert!(
                text.contains(&format!("({}/95)", c.published_count())),
                "missing count for {}",
                c.label()
            );
        }
        for c in AnalysisCriterion::ALL {
            assert!(text.contains(c.label()));
        }
    }

    #[test]
    fn table_contains_headline_stats() {
        let text = render_table1(&paper_dataset());
        assert!(text.contains("39 papers report speedups"));
        assert!(text.contains("15 (38%) omit"));
        assert!(text.contains("Unambiguous units: 2/95"));
        assert!(text.contains("Not applicable: 25/120"));
    }

    #[test]
    fn each_row_has_120_cells() {
        let text = render_table1(&paper_dataset());
        let row = text
            .lines()
            .find(|l| l.starts_with("Processor Model"))
            .expect("processor row");
        let cells: usize = row
            .chars()
            .skip(30)
            .take_while(|&c| c != '(')
            .filter(|&c| c == 'v' || c == '.' || c == ' ')
            .count();
        // 120 paper cells + 12 group separators + trailing spaces ≥ 132.
        assert!(cells >= 132, "only {cells} cell chars");
        // Count satisfied marks = 79.
        let marks = row.chars().filter(|&c| c == 'v').count();
        assert_eq!(marks, 79);
    }

    #[test]
    fn header_names_all_groups() {
        let text = render_table1(&paper_dataset());
        for needle in ["ConfA11", "ConfB13", "ConfC14"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn score_section_present() {
        let text = render_table1(&paper_dataset());
        assert!(text.contains("design-score distributions"));
        assert!(text.contains("overall mean design score"));
    }

    #[test]
    fn markdown_table_has_all_rows_and_counts() {
        let md = render_table1_markdown(&paper_dataset());
        assert!(md.starts_with("| Criterion |"));
        assert!(md.contains("| Processor Model / Accelerator | 79/95 |"));
        assert!(md.contains("| Code Available Online | 7/95 |"));
        assert!(md.contains("| Mean | 51/95 |"));
        assert!(md.contains("| Speedups without base case | 15/39 |"));
        assert!(md.contains("| Fully unambiguous units | 2/95 |"));
        assert_eq!(md.lines().count(), 2 + 9 + 4 + 3);
    }
}
