//! Figure 1: distribution of completion times for 50 HPL runs on 64
//! nodes of Piz Daint (N = 314k).
//!
//! The paper annotates the density with: Min (77.38 Tflop/s — the
//! fastest run), the 95 % quantile (65.23), arithmetic mean (72.79),
//! median (69.92), the 99 % CI of the median, and Max (61.23 Tflop/s —
//! the slowest run). The point of the figure: a single number like
//! "77.38 Tflop/s" hides a ~20 % spread.

use scibench::data::DataSet;
use scibench::plot::ascii::render_density;
use scibench_sim::hpl::{hpl_campaign, HplConfig};
use scibench_sim::machine::MachineSpec;
use scibench_sim::rng::SimRng;
use scibench_stats::ci::{median_ci, ConfidenceInterval};
use scibench_stats::error::StatsResult;
use scibench_stats::kde::{kde, Bandwidth, DensityEstimate};
use scibench_stats::quantile::percentile;
use scibench_stats::summary::arithmetic_mean;

/// Regenerated Figure 1 data.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// Completion times in seconds, one per run.
    pub times_s: Vec<f64>,
    /// Achieved rates in Tflop/s, one per run.
    pub tflops: Vec<f64>,
    /// Density estimate of the completion times.
    pub density: DensityEstimate,
    /// Fastest run (min time), seconds.
    pub min_s: f64,
    /// Slowest run (max time), seconds.
    pub max_s: f64,
    /// Median completion time, seconds.
    pub median_s: f64,
    /// Arithmetic mean completion time, seconds.
    pub mean_s: f64,
    /// 95th percentile of completion time, seconds.
    pub q95_s: f64,
    /// 99 % nonparametric CI of the median, seconds.
    pub median_ci_s: Option<ConfidenceInterval>,
    /// Total flop per run.
    pub flops: f64,
}

/// Runs the Figure 1 campaign.
pub fn compute(runs: usize, seed: u64) -> StatsResult<Fig1> {
    let machine = MachineSpec::piz_daint();
    let config = HplConfig::paper_figure1();
    let mut rng = SimRng::new(seed).fork("fig1");
    let campaign = hpl_campaign(&machine, &config, runs, &mut rng);
    let times_s: Vec<f64> = campaign.iter().map(|r| r.time_s).collect();
    let tflops: Vec<f64> = campaign.iter().map(|r| r.flops_per_s / 1e12).collect();

    let density = kde(&times_s, Bandwidth::Silverman, 512)?;
    Ok(Fig1 {
        min_s: times_s.iter().cloned().fold(f64::INFINITY, f64::min),
        max_s: times_s.iter().cloned().fold(0.0, f64::max),
        median_s: percentile(&times_s, 50.0)?,
        mean_s: arithmetic_mean(&times_s)?,
        q95_s: percentile(&times_s, 95.0)?,
        median_ci_s: median_ci(&times_s, 0.99).ok(),
        density,
        flops: config.flops(),
        times_s,
        tflops,
    })
}

impl Fig1 {
    /// Converts a completion time into the Tflop/s the paper annotates.
    pub fn tflops_at(&self, time_s: f64) -> f64 {
        self.flops / time_s / 1e12
    }

    /// Renders the figure: annotated statistics plus an ASCII density.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 1: Distribution of completion times for HPL runs (Piz Daint model)\n",
        );
        out.push_str(&format!("runs: {}\n", self.times_s.len()));
        out.push_str(&format!(
            "Min:           {:7.1} s = {:6.2} Tflop/s (the number a paper would brag about)\n",
            self.min_s,
            self.tflops_at(self.min_s)
        ));
        out.push_str(&format!(
            "Median:        {:7.1} s = {:6.2} Tflop/s\n",
            self.median_s,
            self.tflops_at(self.median_s)
        ));
        out.push_str(&format!(
            "Arith. mean:   {:7.1} s = {:6.2} Tflop/s\n",
            self.mean_s,
            self.tflops_at(self.mean_s)
        ));
        out.push_str(&format!(
            "95% quantile:  {:7.1} s = {:6.2} Tflop/s\n",
            self.q95_s,
            self.tflops_at(self.q95_s)
        ));
        out.push_str(&format!(
            "Max:           {:7.1} s = {:6.2} Tflop/s (slowest run)\n",
            self.max_s,
            self.tflops_at(self.max_s)
        ));
        if let Some(ci) = &self.median_ci_s {
            out.push_str(&format!(
                "99% CI(median): [{:.1}, {:.1}] s\n",
                ci.lower, ci.upper
            ));
        }
        out.push_str(&format!(
            "spread: slowest/fastest = {:.3} ({:.1}% variation)\n\n",
            self.max_s / self.min_s,
            (self.max_s / self.min_s - 1.0) * 100.0
        ));
        out.push_str(&render_density(&self.density, 78, 12));
        out
    }

    /// Exports the raw runs as CSV.
    pub fn dataset(&self) -> DataSet {
        let mut d = DataSet::new(&["run", "time_s", "tflops"])
            .with_metadata("figure", "1")
            .with_metadata("system", "Piz Daint (simulated)")
            .with_metadata("workload", "HPL N=314k, 64 nodes");
        for (i, (&t, &f)) in self.times_s.iter().zip(&self.tflops).enumerate() {
            d.push_row(&[i as f64, t, f]);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_runs_have_paper_spread() {
        let f = compute(50, 42).unwrap();
        assert_eq!(f.times_s.len(), 50);
        // ~20% variation claim.
        let spread = f.max_s / f.min_s - 1.0;
        assert!((0.05..0.45).contains(&spread), "spread {spread}");
        // Ordering of the annotated statistics.
        assert!(f.min_s < f.median_s && f.median_s < f.max_s);
        assert!(f.median_s <= f.q95_s);
    }

    #[test]
    fn tflops_annotations_are_consistent() {
        let f = compute(50, 42).unwrap();
        // Fastest time = highest rate.
        let best = f.tflops.iter().cloned().fold(0.0, f64::max);
        assert!((f.tflops_at(f.min_s) - best).abs() < 1e-9);
        // Rates in the paper's 61–78 Tflop/s ballpark.
        assert!(f.tflops_at(f.min_s) < 80.0);
        assert!(f.tflops_at(f.max_s) > 50.0);
    }

    #[test]
    fn render_and_dataset() {
        let f = compute(50, 1).unwrap();
        let text = f.render();
        assert!(text.contains("Figure 1"));
        assert!(text.contains("Tflop/s"));
        assert!(text.contains("CI(median)"));
        let d = f.dataset();
        assert_eq!(d.len(), 50);
        assert_eq!(d.metadata("figure"), Some("1"));
    }

    #[test]
    fn deterministic() {
        let a = compute(20, 7).unwrap();
        let b = compute(20, 7).unwrap();
        assert_eq!(a.times_s, b.times_s);
    }
}
