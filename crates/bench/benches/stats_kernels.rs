//! Criterion benches of the statistical kernels: the cost of being
//! statistically sound. Summaries, quantiles, normality testing, KDE,
//! confidence intervals and quantile regression at benchmark-realistic
//! sample sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scibench_stats::ci::{mean_ci, median_ci};
use scibench_stats::htest::{kruskal_wallis, one_way_anova, welch_t_test};
use scibench_stats::kde::{kde, Bandwidth};
use scibench_stats::normality::{batch_means, shapiro_wilk_thinned};
use scibench_stats::quantile::{quantile, QuantileMethod};
use scibench_stats::quantreg::two_sample;
use scibench_stats::summary::{arithmetic_mean, harmonic_mean, OnlineMoments};

fn skewed_sample(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let u = (i as f64 + 0.5) / n as f64;
            1.7 + 0.1
                * scibench_stats::dist::normal::std_normal_inv_cdf(u)
                    .abs()
                    .exp()
        })
        .collect()
}

fn bench_means(c: &mut Criterion) {
    let mut g = c.benchmark_group("means");
    for n in [1_000usize, 100_000] {
        let xs = skewed_sample(n);
        g.bench_with_input(BenchmarkId::new("arithmetic", n), &xs, |b, xs| {
            b.iter(|| arithmetic_mean(black_box(xs)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("harmonic", n), &xs, |b, xs| {
            b.iter(|| harmonic_mean(black_box(xs)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("online_moments", n), &xs, |b, xs| {
            b.iter(|| xs.iter().copied().collect::<OnlineMoments>())
        });
    }
    g.finish();
}

fn bench_order_statistics(c: &mut Criterion) {
    let mut g = c.benchmark_group("order_statistics");
    for n in [1_000usize, 100_000] {
        let xs = skewed_sample(n);
        g.bench_with_input(BenchmarkId::new("median", n), &xs, |b, xs| {
            b.iter(|| quantile(black_box(xs), 0.5, QuantileMethod::Interpolated).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("median_ci", n), &xs, |b, xs| {
            b.iter(|| median_ci(black_box(xs), 0.95).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("mean_ci", n), &xs, |b, xs| {
            b.iter(|| mean_ci(black_box(xs), 0.95).unwrap())
        });
    }
    g.finish();
}

fn bench_normality(c: &mut Criterion) {
    let mut g = c.benchmark_group("normality");
    let xs = skewed_sample(100_000);
    g.bench_function("shapiro_wilk_thinned_2000", |b| {
        b.iter(|| shapiro_wilk_thinned(black_box(&xs), 2000).unwrap())
    });
    g.bench_function("batch_means_k100", |b| {
        b.iter(|| batch_means(black_box(&xs), 100).unwrap())
    });
    g.finish();
}

fn bench_density(c: &mut Criterion) {
    let mut g = c.benchmark_group("kde");
    g.sample_size(20);
    for n in [4_000usize, 100_000] {
        let xs = skewed_sample(n);
        g.bench_with_input(BenchmarkId::new("kde512", n), &xs, |b, xs| {
            b.iter(|| kde(black_box(xs), Bandwidth::Silverman, 512).unwrap())
        });
    }
    g.finish();
}

fn bench_tests(c: &mut Criterion) {
    let mut g = c.benchmark_group("hypothesis_tests");
    let a = skewed_sample(10_000);
    let b_sample: Vec<f64> = a.iter().map(|x| x + 0.05).collect();
    g.bench_function("welch_t_10k", |b| {
        b.iter(|| welch_t_test(black_box(&a), black_box(&b_sample)).unwrap())
    });
    g.bench_function("kruskal_wallis_10k", |b| {
        b.iter(|| kruskal_wallis(&[black_box(&a), black_box(&b_sample)]).unwrap())
    });
    let groups: Vec<Vec<f64>> = (0..8).map(|_| skewed_sample(500)).collect();
    let refs: Vec<&[f64]> = groups.iter().map(|g| g.as_slice()).collect();
    g.bench_function("anova_8x500", |b| {
        b.iter(|| one_way_anova(black_box(&refs)).unwrap())
    });
    g.finish();
}

fn bench_quantile_regression(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantile_regression");
    g.sample_size(20);
    let a = skewed_sample(20_000);
    let b_sample: Vec<f64> = a.iter().map(|x| x + 0.05).collect();
    let taus = [0.1, 0.5, 0.9];
    g.bench_function("two_sample_3taus_20k", |b| {
        b.iter(|| two_sample(black_box(&a), black_box(&b_sample), &taus, 0.95, 100, 1).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_means,
    bench_order_statistics,
    bench_normality,
    bench_density,
    bench_tests,
    bench_quantile_regression
);
criterion_main!(benches);
