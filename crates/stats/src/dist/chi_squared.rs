//! χ² distribution, used to assess the Kruskal–Wallis H statistic (§3.2.2).

use crate::error::{StatsError, StatsResult};
use crate::special::{gamma_p, ln_gamma};

use super::{bisect_inv_cdf, ContinuousDistribution};

/// χ² distribution with `k` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    k: f64,
}

impl ChiSquared {
    /// Creates the distribution; `k` must be positive and finite.
    pub fn new(k: f64) -> StatsResult<Self> {
        if !(k.is_finite() && k > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "k",
                value: k,
            });
        }
        Ok(Self { k })
    }

    /// Degrees of freedom.
    pub fn degrees_of_freedom(&self) -> f64 {
        self.k
    }

    /// Upper-tail critical value `χ²(k, α)`: `P[X > x] = α`.
    pub fn critical(&self, alpha: f64) -> StatsResult<f64> {
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(StatsError::InvalidProbability {
                name: "alpha",
                value: alpha,
            });
        }
        Ok(self.inv_cdf(1.0 - alpha))
    }
}

impl ContinuousDistribution for ChiSquared {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let half_k = self.k / 2.0;
        ((half_k - 1.0) * x.ln() - x / 2.0 - half_k * 2.0f64.ln() - ln_gamma(half_k)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        gamma_p(self.k / 2.0, x / 2.0)
    }

    fn inv_cdf(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "ChiSquared::inv_cdf requires 0 < p < 1");
        bisect_inv_cdf(|x| self.cdf(x), p, 0.0, self.k.max(1.0) * 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_reference_values() {
        // χ²(1): cdf(3.841459) = 0.95 (the classic 95% critical value).
        let c1 = ChiSquared::new(1.0).unwrap();
        assert!((c1.cdf(3.841_459) - 0.95).abs() < 1e-6);
        // χ²(2) is Exp(1/2): cdf(x) = 1 - exp(-x/2).
        let c2 = ChiSquared::new(2.0).unwrap();
        for &x in &[0.5, 2.0, 6.0] {
            assert!((c2.cdf(x) - (1.0 - (-x / 2.0f64).exp())).abs() < 1e-10);
        }
    }

    #[test]
    fn critical_values_match_table() {
        let cases = [
            (1.0, 0.05, 3.841),
            (2.0, 0.05, 5.991),
            (3.0, 0.05, 7.815),
            (5.0, 0.01, 15.086),
            (10.0, 0.05, 18.307),
        ];
        for (k, alpha, want) in cases {
            let got = ChiSquared::new(k).unwrap().critical(alpha).unwrap();
            assert!(
                (got - want).abs() < 2e-3,
                "chi2({k},{alpha}): {got} vs {want}"
            );
        }
    }

    #[test]
    fn inv_round_trip() {
        let c = ChiSquared::new(7.0).unwrap();
        for &p in &[0.05, 0.3, 0.75, 0.99] {
            let x = c.inv_cdf(p);
            assert!((c.cdf(x) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn pdf_zero_below_support() {
        let c = ChiSquared::new(3.0).unwrap();
        assert_eq!(c.pdf(-1.0), 0.0);
        assert_eq!(c.cdf(-5.0), 0.0);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(ChiSquared::new(0.0).is_err());
        assert!(ChiSquared::new(f64::NAN).is_err());
        assert!(ChiSquared::new(2.0).unwrap().critical(1.5).is_err());
    }
}
