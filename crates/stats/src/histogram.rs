//! Histograms (§5.2: "Histograms show the complete distribution of data").

use serde::{Deserialize, Serialize};

use crate::error::{StatsError, StatsResult};
use crate::quantile::FiveNumberSummary;
use crate::validate_samples;

/// Bin-count selection rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinRule {
    /// Sturges' rule: `⌈log₂ n⌉ + 1` bins.
    Sturges,
    /// Freedman–Diaconis: bin width `2·IQR·n^(−1/3)` (robust to outliers).
    FreedmanDiaconis,
    /// Exactly this many bins.
    Fixed(usize),
}

/// A computed histogram with equal-width bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Left edge of each bin (ascending). `edges.len() == counts.len()+1`.
    pub edges: Vec<f64>,
    /// Observation count per bin.
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub n: usize,
}

impl Histogram {
    /// Bin width (uniform). Total: returns `0.0` for a degenerate
    /// (hand-constructed) histogram with fewer than two edges instead of
    /// panicking.
    pub fn bin_width(&self) -> f64 {
        match (self.edges.first(), self.edges.get(1)) {
            (Some(lo), Some(hi)) => hi - lo,
            _ => 0.0,
        }
    }

    /// Density value of bin `i` (count normalized by n·width), so the
    /// histogram integrates to 1 and is comparable with a KDE curve.
    ///
    /// Total: a zero-width bin or an empty histogram used to divide by
    /// zero and report an infinite density; both now return `0.0` (no
    /// probability mass can be attributed to a degenerate bin).
    pub fn density(&self, i: usize) -> f64 {
        let denom = self.n as f64 * self.bin_width();
        if denom > 0.0 && denom.is_finite() {
            self.counts[i] as f64 / denom
        } else {
            0.0
        }
    }

    /// Index of the fullest bin; `None` when there are no bins.
    pub fn mode_bin(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, &c) in self.counts.iter().enumerate() {
            if best.is_none_or(|b| c > self.counts[b]) {
                best = Some(i);
            }
        }
        best
    }
}

/// Builds a histogram of `xs` using `rule`.
pub fn histogram(xs: &[f64], rule: BinRule) -> StatsResult<Histogram> {
    validate_samples(xs)?;
    let n = xs.len();
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);

    let bins = match rule {
        BinRule::Fixed(b) => {
            if b == 0 {
                return Err(StatsError::InvalidParameter {
                    name: "bins",
                    value: 0.0,
                });
            }
            b
        }
        BinRule::Sturges => ((n as f64).log2().ceil() as usize) + 1,
        BinRule::FreedmanDiaconis => {
            let iqr = FiveNumberSummary::from_samples(xs)?.iqr();
            if iqr <= 0.0 || max <= min {
                1
            } else {
                let width = 2.0 * iqr * (n as f64).powf(-1.0 / 3.0);
                (((max - min) / width).ceil() as usize).clamp(1, 10_000)
            }
        }
    };

    // Degenerate range: single bin containing everything. The pad scales
    // with the magnitude so `min ± pad` stays distinguishable even when
    // |min| is so large that `min - 0.5` rounds back to `min` (which used
    // to produce a zero-width bin and infinite densities).
    let (lo, hi) = if max > min {
        (min, max)
    } else {
        let pad = 0.5f64.max(min.abs() * f64::EPSILON * 8.0);
        (min - pad, min + pad)
    };
    let mut bins = bins;
    let mut width = (hi - lo) / bins as f64;
    // An edge only advances if the width is a few ULPs at this magnitude;
    // below that, `lo + i·width` absorbs into `lo` and consecutive edges
    // collapse into zero-width bins (infinite density). Fall back to a
    // single bin spanning the whole sample. The same branch catches a
    // range that overflowed f64 (width = ∞).
    let ulp = lo.abs().max(hi.abs()) * f64::EPSILON;
    if !(width.is_finite() && width > 4.0 * ulp) {
        bins = 1;
        width = (hi - lo).clamp(f64::MIN_POSITIVE, f64::MAX);
    }
    let edges: Vec<f64> = (0..=bins).map(|i| lo + i as f64 * width).collect();
    let mut counts = vec![0u64; bins];
    for &x in xs {
        let mut idx = ((x - lo) / width) as usize;
        if idx >= bins {
            idx = bins - 1; // max lands in the last bin
        }
        counts[idx] += 1;
    }
    Ok(Histogram { edges, counts, n })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sum_to_n() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.77).sin() * 3.0).collect();
        let h = histogram(&xs, BinRule::Sturges).unwrap();
        assert_eq!(h.counts.iter().sum::<u64>(), 100);
        assert_eq!(h.edges.len(), h.counts.len() + 1);
    }

    #[test]
    fn fixed_bin_count_respected() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let h = histogram(&xs, BinRule::Fixed(2)).unwrap();
        assert_eq!(h.counts.len(), 2);
        assert_eq!(h.counts, vec![2, 2]);
    }

    #[test]
    fn max_value_included_in_last_bin() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let h = histogram(&xs, BinRule::Fixed(4)).unwrap();
        assert_eq!(h.counts.iter().sum::<u64>(), 5);
        assert_eq!(*h.counts.last().unwrap(), 2); // 3.0 and 4.0
    }

    #[test]
    fn density_integrates_to_one() {
        let xs: Vec<f64> = (0..1000).map(|i| (i % 37) as f64).collect();
        let h = histogram(&xs, BinRule::Fixed(10)).unwrap();
        let total: f64 = (0..10).map(|i| h.density(i) * h.bin_width()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sturges_bin_count() {
        let xs: Vec<f64> = (0..64).map(f64::from).collect();
        let h = histogram(&xs, BinRule::Sturges).unwrap();
        assert_eq!(h.counts.len(), 7); // ceil(log2(64)) + 1
    }

    #[test]
    fn constant_data_single_bin() {
        let h = histogram(&[5.0; 20], BinRule::FreedmanDiaconis).unwrap();
        assert_eq!(h.counts.iter().sum::<u64>(), 20);
        assert_eq!(h.mode_bin(), Some(0));
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut xs = vec![0.1; 50];
        xs.extend(vec![0.9; 10]);
        let h = histogram(&xs, BinRule::Fixed(2)).unwrap();
        assert_eq!(h.mode_bin(), Some(0));
    }

    #[test]
    fn mode_bin_is_total_on_empty_counts() {
        let h = Histogram {
            edges: vec![0.0],
            counts: Vec::new(),
            n: 0,
        };
        assert_eq!(h.mode_bin(), None);
        assert_eq!(h.bin_width(), 0.0);
    }

    #[test]
    fn large_magnitude_constant_data_has_finite_density() {
        // Regression: with min = 1e17 the old fixed 0.5 pad rounded away
        // (1e17 - 0.5 == 1e17), producing a zero-width bin and an infinite
        // density for every rule.
        for rule in [
            BinRule::Sturges,
            BinRule::FreedmanDiaconis,
            BinRule::Fixed(4),
        ] {
            let h = histogram(&[1e17; 12], rule).unwrap();
            assert_eq!(h.counts.iter().sum::<u64>(), 12);
            assert!(h.bin_width() > 0.0, "zero-width bin under {rule:?}");
            for i in 0..h.counts.len() {
                assert!(h.density(i).is_finite(), "infinite density under {rule:?}");
            }
            let integral: f64 = (0..h.counts.len())
                .map(|i| h.density(i) * h.bin_width())
                .sum();
            assert!((integral - 1.0).abs() < 1e-9, "integral {integral}");
        }
    }

    #[test]
    fn ulp_range_with_many_bins_falls_back_to_single_bin() {
        // A range of a few ULPs split across many bins underflows the
        // per-bin width to zero; the builder must collapse to one bin
        // instead of emitting zero-width edges.
        let lo = 1.0;
        let hi = f64::from_bits(1.0f64.to_bits() + 2);
        let h = histogram(&[lo, hi], BinRule::Fixed(10_000)).unwrap();
        assert!(h.bin_width() > 0.0);
        assert_eq!(h.counts.iter().sum::<u64>(), 2);
        for i in 0..h.counts.len() {
            assert!(h.density(i).is_finite());
        }
    }

    #[test]
    fn density_is_total_on_degenerate_histograms() {
        // Hand-constructed zero-width histogram: density must not be inf.
        let h = Histogram {
            edges: vec![1.0, 1.0],
            counts: vec![3],
            n: 3,
        };
        assert_eq!(h.density(0), 0.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(histogram(&[], BinRule::Sturges).is_err());
        assert!(histogram(&[1.0], BinRule::Fixed(0)).is_err());
    }
}
