//! Parallel execution and cross-process summarization.
//!
//! Two halves live here:
//!
//! * [`process`] — the paper's Rule 10 machinery for summarizing
//!   measurements *across processes* (ANOVA-gated pooling, max/median
//!   collapse). Re-exported at this level for backwards compatibility.
//! * [`pool`] — the deterministic work-stealing thread pool that executes
//!   campaigns, resilient campaigns and figure generation. Determinism is
//!   a hard contract: results are a pure function of the task inputs,
//!   never of thread scheduling (see [`pool::run_indexed`]).
//! * [`shard`] — supervised shared-nothing execution across child OS
//!   processes: heartbeat watchdog, kill-and-respawn, and persistent
//!   quarantine of points that repeatedly crash their worker, all backed
//!   by per-shard crash-consistent journals.

pub mod pool;
pub mod process;
pub mod shard;

pub use process::*;
