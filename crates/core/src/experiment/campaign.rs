//! Campaign orchestration: a factorial [`Design`] executed through a
//! [`MeasurementPlan`] into an [`crate::report::ExperimentReport`].
//!
//! This is the piece that makes the library *a* benchmarking harness
//! rather than a box of parts: declare the factors, declare how to
//! measure one configuration, and the campaign runner handles randomized
//! execution order (§4.1.1), per-point adaptive measurement (§4.2.2),
//! deterministic seeding, and optional thread-parallel execution across
//! design points.
//!
//! Parallel execution is deterministic: every design point derives its
//! random stream from `(campaign seed, point index)`, and points execute
//! on the work-stealing pool of [`crate::parallel::pool`] whose output is
//! independent of scheduling — so results are bit-identical whether the
//! campaign runs on 1 thread or 16.
//!
//! Error semantics: all points run to completion (no early abort); if any
//! point fails, the error of the *lowest design index* is returned, and a
//! panicking measurement is re-raised after every other point finished.

use scibench_sim::rng::SimRng;
use scibench_stats::error::{StatsError, StatsResult};
use scibench_trace::{category, lane_of, ArgValue, Tracer};

use crate::obs;
use crate::parallel::pool;

use super::design::{Design, RunPoint};
use super::measurement::{MeasurementOutcome, MeasurementPlan, MeasurementSummary};

/// Configuration of a campaign run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Seed for order randomization and per-point streams.
    pub seed: u64,
    /// Worker threads (1 = sequential). Points are claimed dynamically
    /// from a work-stealing queue.
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            threads: 1,
        }
    }
}

/// One executed design point.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRun {
    /// The factor levels of this run.
    pub point: RunPoint,
    /// The raw measurement outcome.
    pub outcome: MeasurementOutcome,
}

/// The executed campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Executed runs, in design (full-factorial) order.
    pub runs: Vec<CampaignRun>,
}

impl CampaignResult {
    /// Summarizes every run at the given confidence level.
    ///
    /// Returns borrowed points: no `RunPoint` is cloned, and the first
    /// summarization error short-circuits before any tuple is built.
    pub fn summaries(&self, confidence: f64) -> StatsResult<Vec<(&RunPoint, MeasurementSummary)>> {
        self.runs
            .iter()
            .map(|r| {
                let summary = r.outcome.summarize(confidence)?;
                Ok((&r.point, summary))
            })
            .collect()
    }

    /// The runs whose adaptive stopping did not converge (these need
    /// attention before publication).
    pub fn unconverged(&self) -> Vec<&RunPoint> {
        self.runs
            .iter()
            .filter(|r| !r.outcome.converged)
            .map(|r| &r.point)
            .collect()
    }
}

/// Executes `design` with `plan` at every point.
///
/// `measure` maps `(point, rng)` to one measured cost; it is called
/// repeatedly per point under the plan's stopping rule. The function must
/// be `Sync` because points may execute on worker threads.
pub fn run_campaign<F>(
    design: &Design,
    plan: &MeasurementPlan,
    config: &CampaignConfig,
    measure: F,
) -> StatsResult<CampaignResult>
where
    F: Fn(&RunPoint, &mut SimRng) -> f64 + Sync,
{
    run_campaign_traced(design, plan, config, None, measure)
}

/// [`run_campaign`] with optional tracing.
///
/// When `tracer` is `Some`, each design point records on its own lane
/// ([`obs::campaign_lane`]): one [`category::CAMPAIGN`] span covering
/// the point's whole measurement (with its design index, sample count,
/// convergence flag and factor levels as arguments) and one sample-count
/// counter — both deterministic for a fixed seed and design. Tracing
/// never touches the RNG streams or the measured values, so the result
/// is bit-identical to the untraced run at any thread count.
pub fn run_campaign_traced<F>(
    design: &Design,
    plan: &MeasurementPlan,
    config: &CampaignConfig,
    tracer: Option<&Tracer>,
    measure: F,
) -> StatsResult<CampaignResult>
where
    F: Fn(&RunPoint, &mut SimRng) -> f64 + Sync,
{
    run_campaign_scoped_traced(
        design,
        plan,
        config,
        tracer,
        || (),
        |(), point, rng| measure(point, rng),
    )
}

/// [`run_campaign`] with a per-worker scratch state.
///
/// `init` builds one private scratch value per pool lane (see
/// [`pool::run_indexed_scoped`]); `measure` receives `&mut S` alongside
/// the point and its stream. This lets hot measurement loops reuse
/// per-lane arenas — e.g. a compiled-schedule replay context — with no
/// cross-thread sharing and no per-sample allocation. Results stay
/// bit-identical to [`run_campaign`] at any thread count as long as the
/// measured values do not depend on scratch contents carried across
/// points.
pub fn run_campaign_scoped<S, I, F>(
    design: &Design,
    plan: &MeasurementPlan,
    config: &CampaignConfig,
    init: I,
    measure: F,
) -> StatsResult<CampaignResult>
where
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &RunPoint, &mut SimRng) -> f64 + Sync,
{
    run_campaign_scoped_traced(design, plan, config, None, init, measure)
}

/// [`run_campaign_scoped`] with optional tracing (same event contract as
/// [`run_campaign_traced`]).
pub fn run_campaign_scoped_traced<S, I, F>(
    design: &Design,
    plan: &MeasurementPlan,
    config: &CampaignConfig,
    tracer: Option<&Tracer>,
    init: I,
    measure: F,
) -> StatsResult<CampaignResult>
where
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &RunPoint, &mut SimRng) -> f64 + Sync,
{
    let points = design.full_factorial();
    if points.is_empty() {
        return Err(StatsError::EmptySample);
    }
    let threads = config.threads.clamp(1, points.len());

    // Execution order is randomized (§4.1.1) but the point index that
    // seeds each stream is the *design* index, so results do not depend
    // on the shuffled order.
    let mut order: Vec<usize> = (0..points.len()).collect();
    let mut order_rng = SimRng::new(config.seed).fork("campaign-order");
    order_rng.shuffle(&mut order);

    let root = SimRng::new(config.seed);
    let run_one = |scratch: &mut S, design_idx: usize| -> StatsResult<CampaignRun> {
        let point = &points[design_idx];
        let mut lane = lane_of(tracer, obs::campaign_lane(design_idx));
        let span = lane.begin();
        let mut rng = root.fork_indexed("campaign-point", design_idx as u64);
        let outcome = plan.run(|| measure(scratch, point, &mut rng));
        if lane.is_on() {
            match &outcome {
                Ok(out) => {
                    lane.counter(category::CAMPAIGN, "samples", out.samples.len() as f64);
                    lane.end(
                        span,
                        category::CAMPAIGN,
                        "point",
                        &[
                            ("index", ArgValue::U64(design_idx as u64)),
                            ("samples", ArgValue::U64(out.samples.len() as u64)),
                            ("converged", ArgValue::Bool(out.converged)),
                            ("label", ArgValue::Str(point.levels.join("/"))),
                        ],
                    );
                }
                Err(e) => {
                    lane.end(
                        span,
                        category::CAMPAIGN,
                        "point",
                        &[
                            ("index", ArgValue::U64(design_idx as u64)),
                            ("failed", ArgValue::Bool(true)),
                            ("error", ArgValue::Str(e.to_string())),
                        ],
                    );
                }
            }
        }
        Ok(CampaignRun {
            point: point.clone(),
            outcome: outcome?,
        })
    };

    // The pool executes positions of the shuffled order; un-shuffle the
    // outputs back into design order before resolving outcomes, so error
    // and panic precedence is by design index, not by execution order.
    let positioned =
        pool::run_indexed_scoped_traced(order.len(), threads, tracer, init, |scratch, pos| {
            run_one(scratch, order[pos])
        });
    let mut by_design: Vec<Option<std::thread::Result<StatsResult<CampaignRun>>>> =
        (0..points.len()).map(|_| None).collect();
    for (pos, result) in positioned.into_iter().enumerate() {
        by_design[order[pos]] = Some(result);
    }

    let mut runs = Vec::with_capacity(points.len());
    for slot in by_design {
        match slot.expect("every design point executed") {
            Ok(Ok(run)) => runs.push(run),
            Ok(Err(e)) => return Err(e),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    Ok(CampaignResult { runs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::design::Factor;
    use crate::experiment::measurement::StoppingRule;

    fn demo_design() -> Design {
        Design::new(vec![
            Factor::new("system", &["a", "b"]),
            Factor::numeric("size", &[8.0, 64.0, 512.0]),
        ])
    }

    fn demo_measure(point: &RunPoint, rng: &mut SimRng) -> f64 {
        let base = if point.level(0) == "a" { 1.0 } else { 2.0 };
        let size: f64 = point.level(1).parse().unwrap();
        base + size * 0.001 + rng.uniform() * 0.01
    }

    #[test]
    fn campaign_covers_all_points_in_design_order() {
        let plan = MeasurementPlan::new("op").stopping(StoppingRule::FixedCount(20));
        let result = run_campaign(
            &demo_design(),
            &plan,
            &CampaignConfig {
                seed: 1,
                threads: 1,
            },
            demo_measure,
        )
        .unwrap();
        assert_eq!(result.runs.len(), 6);
        assert_eq!(result.runs[0].point.levels, vec!["a", "8"]);
        assert_eq!(result.runs[5].point.levels, vec!["b", "512"]);
        assert!(result.unconverged().is_empty());
        for r in &result.runs {
            assert_eq!(r.outcome.samples.len(), 20);
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let plan = MeasurementPlan::new("op").stopping(StoppingRule::FixedCount(15));
        let seq = run_campaign(
            &demo_design(),
            &plan,
            &CampaignConfig {
                seed: 7,
                threads: 1,
            },
            demo_measure,
        )
        .unwrap();
        let par = run_campaign(
            &demo_design(),
            &plan,
            &CampaignConfig {
                seed: 7,
                threads: 4,
            },
            demo_measure,
        )
        .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn different_seeds_differ() {
        let plan = MeasurementPlan::new("op").stopping(StoppingRule::FixedCount(5));
        let a = run_campaign(
            &demo_design(),
            &plan,
            &CampaignConfig {
                seed: 1,
                threads: 2,
            },
            demo_measure,
        )
        .unwrap();
        let b = run_campaign(
            &demo_design(),
            &plan,
            &CampaignConfig {
                seed: 2,
                threads: 2,
            },
            demo_measure,
        )
        .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn summaries_reflect_factor_effects() {
        let plan = MeasurementPlan::new("op").stopping(StoppingRule::FixedCount(30));
        let result = run_campaign(
            &demo_design(),
            &plan,
            &CampaignConfig {
                seed: 3,
                threads: 2,
            },
            demo_measure,
        )
        .unwrap();
        let summaries = result.summaries(0.95).unwrap();
        // System "b" is slower than "a" at every size.
        for size in ["8", "64", "512"] {
            let mean_of = |sys: &str| {
                summaries
                    .iter()
                    .find(|(p, _)| p.level(0) == sys && p.level(1) == size)
                    .map(|(_, s)| s.mean)
                    .unwrap()
            };
            assert!(mean_of("b") > mean_of("a") + 0.5, "size {size}");
        }
    }

    #[test]
    fn adaptive_plans_work_in_campaigns() {
        let plan = MeasurementPlan::new("op").stopping(StoppingRule::AdaptiveMeanCi {
            confidence: 0.95,
            rel_error: 0.05,
            batch: 10,
            max_samples: 5_000,
        });
        let result = run_campaign(
            &demo_design(),
            &plan,
            &CampaignConfig {
                seed: 4,
                threads: 3,
            },
            demo_measure,
        )
        .unwrap();
        assert!(
            result.unconverged().is_empty(),
            "{:?}",
            result.unconverged()
        );
    }

    #[test]
    fn panicking_measurement_resurfaces_after_all_points_ran() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let plan = MeasurementPlan::new("op").stopping(StoppingRule::FixedCount(3));
        let ran = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_campaign(
                &demo_design(),
                &plan,
                &CampaignConfig {
                    seed: 6,
                    threads: 2,
                },
                |point, rng| {
                    ran.fetch_add(1, Ordering::SeqCst);
                    if point.level(1) == "64" {
                        panic!("driver bug at size 64");
                    }
                    demo_measure(point, rng)
                },
            )
        }));
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload.downcast_ref::<&str>().unwrap();
        assert_eq!(*msg, "driver bug at size 64");
        // No early abort: the healthy points all executed their samples.
        assert!(ran.load(Ordering::SeqCst) >= 4 * 3 + 2);
    }

    #[test]
    fn traced_campaign_is_bit_identical_to_untraced() {
        let plan = MeasurementPlan::new("op").stopping(StoppingRule::FixedCount(12));
        let config = CampaignConfig {
            seed: 9,
            threads: 1,
        };
        let plain = run_campaign(&demo_design(), &plan, &config, demo_measure).unwrap();
        for threads in [1, 2, 8] {
            let tracer = Tracer::new();
            let traced = run_campaign_traced(
                &demo_design(),
                &plan,
                &CampaignConfig { seed: 9, threads },
                Some(&tracer),
                demo_measure,
            )
            .unwrap();
            assert_eq!(plain, traced, "threads={threads}");
            let trace = tracer.drain();
            // One CAMPAIGN point span + one samples counter per point,
            // regardless of thread count.
            assert_eq!(trace.count(category::CAMPAIGN), 2 * 6, "threads={threads}");
            assert_eq!(trace.count(category::POOL), 6);
        }
    }

    #[test]
    fn traced_campaign_event_counts_deterministic_for_fixed_seed() {
        let plan = MeasurementPlan::new("op").stopping(StoppingRule::FixedCount(8));
        let counts_for = |threads: usize| {
            let tracer = Tracer::new();
            run_campaign_traced(
                &demo_design(),
                &plan,
                &CampaignConfig { seed: 11, threads },
                Some(&tracer),
                demo_measure,
            )
            .unwrap();
            tracer.drain().deterministic_counts()
        };
        let seq = counts_for(1);
        let par = counts_for(4);
        assert_eq!(seq, par);
        assert!(seq.contains_key(category::CAMPAIGN));
        assert!(!seq.contains_key(category::SCHED));
    }

    #[test]
    fn scoped_campaign_is_bit_identical_to_plain() {
        let plan = MeasurementPlan::new("op").stopping(StoppingRule::FixedCount(12));
        let plain = run_campaign(
            &demo_design(),
            &plan,
            &CampaignConfig {
                seed: 13,
                threads: 1,
            },
            demo_measure,
        )
        .unwrap();
        for threads in [1, 2, 8] {
            let scoped = run_campaign_scoped(
                &demo_design(),
                &plan,
                &CampaignConfig { seed: 13, threads },
                || Vec::<f64>::with_capacity(16),
                |arena, point, rng| {
                    // The arena is reused across samples and points but
                    // never influences the measured value.
                    arena.clear();
                    arena.push(rng.seed() as f64);
                    demo_measure(point, rng)
                },
            )
            .unwrap();
            assert_eq!(plain, scoped, "threads={threads}");
        }
    }

    #[test]
    fn failing_measurement_surfaces_error() {
        // A plan that cannot run (fixed count 0) propagates the error.
        let plan = MeasurementPlan::new("op").stopping(StoppingRule::FixedCount(0));
        let err = run_campaign(
            &demo_design(),
            &plan,
            &CampaignConfig {
                seed: 5,
                threads: 2,
            },
            demo_measure,
        );
        assert!(err.is_err());
    }
}
