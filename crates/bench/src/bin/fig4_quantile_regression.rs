//! Regenerates Figure 4: quantile regression Pilatus vs Piz Dora.

use scibench_bench::figures::fig4_quantreg;
use scibench_bench::{output, samples_from_env, DEFAULT_SEED};

fn main() {
    let samples = samples_from_env(1_000_000);
    let fig = fig4_quantreg::compute(samples, DEFAULT_SEED).expect("figure 4 pipeline");
    println!("{}", fig.render());
    let path = output::write_csv("fig4_quantreg", &fig.dataset()).expect("write csv");
    println!("quantile effects: {}", path.display());
}
