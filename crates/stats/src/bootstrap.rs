//! Percentile bootstrap confidence intervals.
//!
//! The paper (§7) places the bootstrap "beyond the scope of our work" but
//! the library uses it where no analytic CI exists — e.g. the difference of
//! quantiles in quantile regression, or the CI of a coefficient of
//! variation. Resampling is fully deterministic given the seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ci::ConfidenceInterval;
use crate::error::{StatsError, StatsResult};
use crate::quantile::{quantile_sorted, QuantileMethod};
use crate::validate_samples;

/// Percentile-bootstrap CI of an arbitrary statistic.
///
/// Draws `reps` resamples of `xs` (with replacement), applies `statistic`
/// to each and returns the empirical `(α/2, 1−α/2)` quantiles of the
/// resampled statistics around the point estimate on the original data.
///
/// `statistic` must return a finite value for every non-empty resample.
pub fn bootstrap_ci(
    xs: &[f64],
    confidence: f64,
    reps: usize,
    seed: u64,
    statistic: impl Fn(&[f64]) -> f64,
) -> StatsResult<ConfidenceInterval> {
    validate_samples(xs)?;
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(StatsError::InvalidProbability {
            name: "confidence",
            value: confidence,
        });
    }
    if reps < 10 {
        return Err(StatsError::InvalidParameter {
            name: "reps",
            value: reps as f64,
        });
    }
    let estimate = statistic(xs);
    if !estimate.is_finite() {
        return Err(StatsError::NonFiniteSample);
    }
    let n = xs.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut resample = vec![0.0f64; n];
    let mut stats = Vec::with_capacity(reps);
    for _ in 0..reps {
        for slot in resample.iter_mut() {
            *slot = xs[rng.gen_range(0..n)];
        }
        let s = statistic(&resample);
        if !s.is_finite() {
            return Err(StatsError::NonFiniteSample);
        }
        stats.push(s);
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let alpha = 1.0 - confidence;
    Ok(ConfidenceInterval {
        estimate,
        lower: quantile_sorted(&stats, alpha / 2.0, QuantileMethod::Interpolated),
        upper: quantile_sorted(&stats, 1.0 - alpha / 2.0, QuantileMethod::Interpolated),
        confidence,
    })
}

/// Bootstrap CI of the difference `statistic(a) − statistic(b)` under
/// independent resampling of both groups.
pub fn bootstrap_diff_ci(
    a: &[f64],
    b: &[f64],
    confidence: f64,
    reps: usize,
    seed: u64,
    statistic: impl Fn(&[f64]) -> f64,
) -> StatsResult<ConfidenceInterval> {
    validate_samples(a)?;
    validate_samples(b)?;
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(StatsError::InvalidProbability {
            name: "confidence",
            value: confidence,
        });
    }
    if reps < 10 {
        return Err(StatsError::InvalidParameter {
            name: "reps",
            value: reps as f64,
        });
    }
    let estimate = statistic(a) - statistic(b);
    if !estimate.is_finite() {
        return Err(StatsError::NonFiniteSample);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ra = vec![0.0f64; a.len()];
    let mut rb = vec![0.0f64; b.len()];
    let mut stats = Vec::with_capacity(reps);
    for _ in 0..reps {
        for slot in ra.iter_mut() {
            *slot = a[rng.gen_range(0..a.len())];
        }
        for slot in rb.iter_mut() {
            *slot = b[rng.gen_range(0..b.len())];
        }
        stats.push(statistic(&ra) - statistic(&rb));
    }
    stats.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    let alpha = 1.0 - confidence;
    Ok(ConfidenceInterval {
        estimate,
        lower: quantile_sorted(&stats, alpha / 2.0, QuantileMethod::Interpolated),
        upper: quantile_sorted(&stats, 1.0 - alpha / 2.0, QuantileMethod::Interpolated),
        confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::arithmetic_mean;

    fn sample(n: usize, mu: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                mu + crate::dist::normal::std_normal_inv_cdf(u)
            })
            .collect()
    }

    #[test]
    fn bootstrap_mean_ci_contains_truth() {
        let xs = sample(200, 10.0);
        let ci = bootstrap_ci(&xs, 0.95, 500, 42, |s| arithmetic_mean(s).unwrap()).unwrap();
        assert!(ci.contains(10.0), "{ci:?}");
        assert!(ci.lower < ci.estimate && ci.estimate < ci.upper);
    }

    #[test]
    fn bootstrap_is_deterministic_given_seed() {
        let xs = sample(50, 3.0);
        let f = |s: &[f64]| arithmetic_mean(s).unwrap();
        let a = bootstrap_ci(&xs, 0.95, 300, 7, f).unwrap();
        let b = bootstrap_ci(&xs, 0.95, 300, 7, f).unwrap();
        assert_eq!(a, b);
        let c = bootstrap_ci(&xs, 0.95, 300, 8, f).unwrap();
        assert_ne!(a.lower, c.lower);
    }

    #[test]
    fn bootstrap_ci_narrows_with_n() {
        let small = sample(20, 0.0);
        let large = sample(2000, 0.0);
        let f = |s: &[f64]| arithmetic_mean(s).unwrap();
        let ci_s = bootstrap_ci(&small, 0.95, 300, 1, f).unwrap();
        let ci_l = bootstrap_ci(&large, 0.95, 300, 1, f).unwrap();
        assert!(ci_l.width() < ci_s.width());
    }

    #[test]
    fn diff_ci_detects_shift() {
        let a = sample(300, 5.0);
        let b = sample(300, 4.0);
        let ci = bootstrap_diff_ci(&a, &b, 0.95, 400, 9, |s| arithmetic_mean(s).unwrap()).unwrap();
        assert!((ci.estimate - 1.0).abs() < 0.05);
        assert!(!ci.contains(0.0));
    }

    #[test]
    fn diff_ci_no_shift_contains_zero() {
        let a = sample(300, 5.0);
        let ci = bootstrap_diff_ci(&a, &a, 0.95, 400, 9, |s| arithmetic_mean(s).unwrap()).unwrap();
        assert!(ci.contains(0.0));
    }

    #[test]
    fn invalid_inputs_rejected() {
        let xs = [1.0, 2.0];
        let f = |s: &[f64]| s[0];
        assert!(bootstrap_ci(&[], 0.95, 100, 0, f).is_err());
        assert!(bootstrap_ci(&xs, 0.0, 100, 0, f).is_err());
        assert!(bootstrap_ci(&xs, 0.95, 5, 0, f).is_err());
        assert!(bootstrap_diff_ci(&xs, &xs, 2.0, 100, 0, f).is_err());
    }
}
