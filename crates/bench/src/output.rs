//! CSV export for figure data.

use std::fs;
use std::io;
use std::path::PathBuf;

use scibench::data::DataSet;

/// Directory the figure binaries write CSV data into.
pub fn figures_dir() -> PathBuf {
    PathBuf::from("figures")
}

/// Writes a dataset to `figures/<name>.csv`, creating the directory.
pub fn write_csv(name: &str, data: &DataSet) -> io::Result<PathBuf> {
    let dir = figures_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    fs::write(&path, data.to_csv())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_round_trips() {
        let mut d = DataSet::new(&["a", "b"]).with_metadata("figure", "test");
        d.push_row(&[1.0, 2.0]);
        let path = write_csv("unit_test_output", &d).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(DataSet::from_csv(&text).unwrap(), d);
        std::fs::remove_file(path).unwrap();
    }
}
