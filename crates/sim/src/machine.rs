//! Machine specifications, with presets for the three systems the paper
//! measures (§4.1.2 "Our experimental setup").
//!
//! A [`MachineSpec`] bundles everything Rule 9 says an experimenter must
//! document: compute (node spec), network (topology, latency, bandwidth)
//! and the noise environment. The `describe()` method renders exactly that
//! documentation block, so experiment reports can embed a full setup
//! description mechanically.

use serde::{Deserialize, Serialize};

use crate::fault::FaultPlan;
use crate::noise::NoiseProfile;
use crate::topology::Topology;

/// Compute-node description (the paper's "Processor Model / RAM" rows of
/// Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Marketing name of the CPU(s), e.g. "2x Intel Xeon E5-2690 v3".
    pub cpu_model: String,
    /// Total hardware cores per node.
    pub cores: usize,
    /// Memory per node in GiB.
    pub mem_gib: u32,
    /// Memory type descriptor, e.g. "DDR4-1600".
    pub mem_type: String,
    /// Optional accelerator description.
    pub accelerator: Option<String>,
    /// Peak double-precision rate of the whole node in flop/s.
    pub peak_flops: f64,
}

/// Interconnect description (the paper's "NIC Model / Network" row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Interconnect family, e.g. "Cray Aries" or "InfiniBand FDR".
    pub name: String,
    /// Topology model.
    pub topology: Topology,
    /// Fixed injection overhead per message (LogGP `o`), nanoseconds.
    pub injection_ns: f64,
    /// Per-router-hop latency, nanoseconds.
    pub per_hop_ns: f64,
    /// Link bandwidth in bytes per nanosecond (= GB/s).
    pub bandwidth_bytes_per_ns: f64,
    /// Largest message sent eagerly; larger messages pay the rendezvous
    /// handshake.
    pub eager_threshold_bytes: usize,
    /// Extra cost of the rendezvous handshake, nanoseconds.
    pub rendezvous_ns: f64,
}

/// A complete machine model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Human-readable system name.
    pub name: String,
    /// System family / product, e.g. "Cray XC40".
    pub family: String,
    /// Number of compute nodes.
    pub nodes: usize,
    /// Per-node hardware.
    pub node: NodeSpec,
    /// Interconnect model.
    pub network: NetworkSpec,
    /// Noise environment.
    pub noise: NoiseProfile,
    /// Fault-injection plan for resilience experiments (empty by default —
    /// presets model healthy machines).
    #[serde(default)]
    pub faults: FaultPlan,
    /// Software environment descriptor (compiler, MPI, batch system) —
    /// the Table 1 software rows.
    pub software: String,
    /// Timer granularity observed on this system, nanoseconds.
    pub timer_granularity_ns: u64,
}

impl MachineSpec {
    /// Total core count of the machine.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.node.cores
    }

    /// Aggregate peak floating-point rate in flop/s.
    pub fn peak_flops(&self) -> f64 {
        self.nodes as f64 * self.node.peak_flops
    }

    /// Renders the Rule-9 setup documentation block.
    pub fn describe(&self) -> String {
        let acc = self.node.accelerator.as_deref().unwrap_or("none");
        let faults = if self.faults.is_none() {
            String::new()
        } else {
            format!(
                "injected faults: crash p = {}, straggler p = {} (x{:.1}), \
                 link drop p = {}, clock jump p = {}\n",
                self.faults.node_crash_prob,
                self.faults.straggler_prob,
                self.faults.straggler_slowdown,
                self.faults.link_drop_prob,
                self.faults.clock_jump_prob,
            )
        };
        format!(
            "system: {} ({})\n\
             nodes: {} x [{} ({} cores), {} GiB {}, accelerator: {}]\n\
             network: {} ({:?}), injection {:.0} ns, {:.0} ns/hop, {:.1} GB/s\n\
             {}software: {}\n\
             timer granularity: {} ns",
            self.name,
            self.family,
            self.nodes,
            self.node.cpu_model,
            self.node.cores,
            self.node.mem_gib,
            self.node.mem_type,
            acc,
            self.network.name,
            self.network.topology,
            self.network.injection_ns,
            self.network.per_hop_ns,
            self.network.bandwidth_bytes_per_ns,
            faults,
            self.software,
            self.timer_granularity_ns,
        )
    }

    /// Returns this machine with the given fault plan attached (builder
    /// style, used by resilience experiments).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Piz Daint model (Cray XC30): 8-core Xeon E5-2670 + NVIDIA K20X per
    /// node, Aries Dragonfly. The HPL runs of Figure 1 use 64 nodes with a
    /// theoretical peak of 94.5 Tflop/s → ≈ 1.477 Tflop/s per node.
    pub fn piz_daint() -> Self {
        Self {
            name: "Piz Daint".into(),
            family: "Cray XC30".into(),
            nodes: 1024,
            node: NodeSpec {
                cpu_model: "Intel Xeon E5-2670".into(),
                cores: 8,
                mem_gib: 32,
                mem_type: "DDR3-1600".into(),
                accelerator: Some("NVIDIA Tesla K20X (6 GiB GDDR5)".into()),
                peak_flops: 1.477e12,
            },
            network: NetworkSpec {
                name: "Cray Aries".into(),
                topology: Topology::Dragonfly {
                    groups: 16,
                    routers_per_group: 16,
                    nodes_per_router: 4,
                },
                injection_ns: 900.0,
                per_hop_ns: 300.0,
                bandwidth_bytes_per_ns: 10.0,
                eager_threshold_bytes: 8192,
                rendezvous_ns: 1500.0,
            },
            noise: NoiseProfile {
                jitter_sigma: 0.12,
                daemon_period_ns: 1.0e6,
                daemon_cost_ns: 4_000.0,
                congestion_prob: 0.006,
                congestion_scale_ns: 2_000.0,
                congestion_shape: 3.0,
                slow_path_prob: 0.0,
                slow_path_extra_ns: 0.0,
            },
            faults: FaultPlan::none(),
            software: "CLE, Cray PE 5.1.29, slurm 14.03.7, gcc 4.8.2 -O3".into(),
            timer_granularity_ns: 10,
        }
    }

    /// Piz Dora model (Cray XC40): 2× 12-core Xeon E5-2690 v3 per node,
    /// Aries Dragonfly. Base system of the ping-pong experiments
    /// (Figures 2, 3, 4, 7(c)).
    pub fn piz_dora() -> Self {
        Self {
            name: "Piz Dora".into(),
            family: "Cray XC40".into(),
            nodes: 1024,
            node: NodeSpec {
                cpu_model: "2x Intel Xeon E5-2690 v3".into(),
                cores: 24,
                mem_gib: 64,
                mem_type: "DDR4-1600".into(),
                accelerator: None,
                peak_flops: 0.96e12,
            },
            network: NetworkSpec {
                name: "Cray Aries".into(),
                topology: Topology::Dragonfly {
                    groups: 16,
                    routers_per_group: 16,
                    nodes_per_router: 4,
                },
                injection_ns: 1000.0,
                per_hop_ns: 293.0,
                bandwidth_bytes_per_ns: 10.0,
                eager_threshold_bytes: 8192,
                rendezvous_ns: 1500.0,
            },
            noise: NoiseProfile {
                jitter_sigma: 0.15,
                daemon_period_ns: 1.2e6,
                daemon_cost_ns: 3_500.0,
                congestion_prob: 0.003,
                congestion_scale_ns: 1_500.0,
                congestion_shape: 4.0,
                slow_path_prob: 0.0,
                slow_path_extra_ns: 0.0,
            },
            faults: FaultPlan::none(),
            software: "CLE, Cray PE 5.2.40, slurm 14.03.7, gcc 4.8.2 -O3".into(),
            timer_granularity_ns: 10,
        }
    }

    /// Pilatus model: 2× 8-core Xeon E5-2670, InfiniBand FDR fat tree,
    /// MVAPICH2 1.9. Comparison system of Figures 3 and 4: slightly faster
    /// in the common case, markedly heavier latency tail.
    pub fn pilatus() -> Self {
        Self {
            name: "Pilatus".into(),
            family: "x86 cluster".into(),
            nodes: 324,
            node: NodeSpec {
                cpu_model: "2x Intel Xeon E5-2670".into(),
                cores: 16,
                mem_gib: 64,
                mem_type: "DDR3-1600".into(),
                accelerator: None,
                peak_flops: 0.66e12,
            },
            network: NetworkSpec {
                name: "InfiniBand FDR".into(),
                topology: Topology::FatTree {
                    radix: 36,
                    levels: 2,
                },
                injection_ns: 480.0,
                per_hop_ns: 250.0,
                bandwidth_bytes_per_ns: 6.8,
                eager_threshold_bytes: 12288,
                rendezvous_ns: 1800.0,
            },
            noise: NoiseProfile {
                jitter_sigma: 0.10,
                daemon_period_ns: 0.8e6,
                daemon_cost_ns: 5_000.0,
                congestion_prob: 0.012,
                congestion_scale_ns: 2_000.0,
                congestion_shape: 4.0,
                slow_path_prob: 0.35,
                slow_path_extra_ns: 700.0,
            },
            faults: FaultPlan::none(),
            software: "CentOS, MVAPICH2 1.9, slurm, gcc 4.8.2 -O3".into(),
            timer_granularity_ns: 20,
        }
    }

    /// A tiny quiet machine for unit tests: crossbar network, no noise.
    pub fn test_machine(nodes: usize) -> Self {
        Self {
            name: "TestBox".into(),
            family: "simulated".into(),
            nodes,
            node: NodeSpec {
                cpu_model: "test-cpu".into(),
                cores: 4,
                mem_gib: 8,
                mem_type: "DDR-test".into(),
                accelerator: None,
                peak_flops: 1e11,
            },
            network: NetworkSpec {
                name: "crossbar".into(),
                topology: Topology::Crossbar,
                injection_ns: 500.0,
                per_hop_ns: 200.0,
                bandwidth_bytes_per_ns: 10.0,
                eager_threshold_bytes: 4096,
                rendezvous_ns: 1000.0,
            },
            noise: NoiseProfile::quiet(),
            faults: FaultPlan::none(),
            software: "test".into(),
            timer_granularity_ns: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_paper_hardware() {
        let daint = MachineSpec::piz_daint();
        assert_eq!(daint.node.cores, 8);
        assert!(daint.node.accelerator.is_some());
        assert_eq!(daint.family, "Cray XC30");

        let dora = MachineSpec::piz_dora();
        assert_eq!(dora.node.cores, 24);
        assert_eq!(dora.node.mem_gib, 64);
        assert!(dora.node.accelerator.is_none());

        let pilatus = MachineSpec::pilatus();
        assert_eq!(pilatus.node.cores, 16);
        assert!(matches!(pilatus.network.topology, Topology::FatTree { .. }));
    }

    #[test]
    fn hpl_peak_matches_paper() {
        // 64 nodes of Piz Daint: paper states 94.5 Tflop/s theoretical peak.
        let daint = MachineSpec::piz_daint();
        let peak64 = 64.0 * daint.node.peak_flops;
        assert!(
            (peak64 - 94.5e12).abs() / 94.5e12 < 0.01,
            "peak = {peak64:.3e}"
        );
    }

    #[test]
    fn totals() {
        let m = MachineSpec::test_machine(10);
        assert_eq!(m.total_cores(), 40);
        assert!((m.peak_flops() - 1e12).abs() < 1.0);
    }

    #[test]
    fn describe_contains_rule9_items() {
        let d = MachineSpec::piz_dora().describe();
        for needle in [
            "Piz Dora",
            "Cray XC40",
            "E5-2690",
            "DDR4",
            "Aries",
            "gcc",
            "slurm",
        ] {
            assert!(d.contains(needle), "missing {needle} in:\n{d}");
        }
    }

    #[test]
    fn topology_capacity_fits_nodes() {
        for m in [
            MachineSpec::piz_daint(),
            MachineSpec::piz_dora(),
            MachineSpec::pilatus(),
        ] {
            assert!(m.network.topology.capacity() >= m.nodes, "{}", m.name);
        }
    }

    #[test]
    fn test_machine_is_quiet() {
        assert!(MachineSpec::test_machine(4).noise.is_quiet());
    }
}
