//! Statistical substrate for interpretable benchmarking.
//!
//! This crate implements the statistical machinery prescribed by Hoefler &
//! Belli, *Scientific Benchmarking of Parallel Computing Systems* (SC '15):
//!
//! - summarizing **costs**, **rates** and **ratios** with the correct mean
//!   (arithmetic / harmonic / geometric, §3.1.1 of the paper),
//! - parametric statistics of normally distributed data: standard deviation,
//!   coefficient of variation, Student-t confidence intervals of the mean
//!   (§3.1.2),
//! - nonparametric statistics: median, quantiles, rank-based confidence
//!   intervals after Le Boudec (§3.1.3),
//! - diagnostic checking for normality: Shapiro–Wilk (AS R94), Q-Q data,
//!   log- and batch-mean normalization (§3.1.2),
//! - comparing experiments: t-test, one-way ANOVA, Kruskal–Wallis, effect
//!   size (§3.2),
//! - quantile regression for one-factor comparisons (§3.2.3),
//! - bootstrap confidence intervals, Tukey outlier fences, kernel density
//!   estimation and histograms for reporting (§5.2).
//!
//! Everything is implemented from scratch on top of `std`; the only runtime
//! dependency is `rand` (bootstrap resampling, thinning) and `serde`
//! (serializable results).
//!
//! # Example
//!
//! ```
//! use scibench_stats::{summary, ci};
//!
//! let xs = [10.0, 100.0, 40.0];
//! // Worked HPL example from §3.1.1 of the paper: 100 Gflop per run.
//! let mean_time = summary::arithmetic_mean(&xs).unwrap();
//! assert!((mean_time - 50.0).abs() < 1e-12);
//! let rates: Vec<f64> = xs.iter().map(|t| 100.0 / t).collect();
//! let hm = summary::harmonic_mean(&rates).unwrap();
//! assert!((hm - 2.0).abs() < 1e-12); // Gflop/s, matches cost-based mean
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bootstrap;
pub mod ci;
pub mod describe;
pub mod dist;
pub mod ecdf;
pub mod error;
pub mod histogram;
pub mod htest;
pub mod kde;
pub mod normality;
pub mod outlier;
pub mod power;
pub mod qq;
pub mod quantile;
pub mod quantreg;
pub mod rank;
pub mod sanitize;
pub mod sketch;
pub mod sorted;
pub mod special;
pub mod summary;

pub use error::{StatsError, StatsResult};

/// Checks that a slice of samples is non-empty and free of NaN/∞ values.
///
/// Nearly every estimator in this crate starts with this validation so that
/// downstream arithmetic cannot silently produce NaN results.
pub(crate) fn validate_samples(xs: &[f64]) -> StatsResult<()> {
    if xs.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if xs.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::NonFiniteSample);
    }
    Ok(())
}

/// Returns a sorted copy of the input samples.
pub(crate) fn sorted_copy(xs: &[f64]) -> Vec<f64> {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("samples validated finite"));
    v
}

/// Encodes an `f64` as its 16-hex-digit IEEE-754 bit pattern — the
/// bit-exact, NaN-safe wire form the sketch records and the journal use.
pub(crate) fn f64_to_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Decodes a 16-hex-digit bit pattern back into an `f64`.
pub(crate) fn f64_from_hex(s: &str) -> StatsResult<f64> {
    if s.len() != 16 {
        return Err(StatsError::MalformedSketch("f64 hex field length"));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| StatsError::MalformedSketch("f64 hex field digits"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_empty() {
        assert!(matches!(
            validate_samples(&[]),
            Err(StatsError::EmptySample)
        ));
    }

    #[test]
    fn validate_rejects_nan_and_inf() {
        assert!(matches!(
            validate_samples(&[1.0, f64::NAN]),
            Err(StatsError::NonFiniteSample)
        ));
        assert!(matches!(
            validate_samples(&[f64::INFINITY]),
            Err(StatsError::NonFiniteSample)
        ));
    }

    #[test]
    fn validate_accepts_finite() {
        assert!(validate_samples(&[0.0, -1.0, 2.5]).is_ok());
    }

    #[test]
    fn sorted_copy_sorts() {
        assert_eq!(sorted_copy(&[3.0, 1.0, 2.0]), vec![1.0, 2.0, 3.0]);
    }
}
