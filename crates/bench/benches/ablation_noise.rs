//! Ablation: which noise source produces which statistical signature?
//!
//! The simulator composes four mechanisms (folded jitter, slow path, OS
//! daemons, congestion). This ablation disables them one at a time and
//! prints the resulting latency statistics — evidence that each figure's
//! distribution shape comes from the mechanism DESIGN.md attributes it
//! to — and benchmarks the sample-generation cost per configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scibench_sim::machine::MachineSpec;
use scibench_sim::pingpong::{pingpong_latencies_us, PingPongConfig};
use scibench_sim::rng::SimRng;
use scibench_stats::describe::describe;

fn variants() -> Vec<(&'static str, MachineSpec)> {
    let full = MachineSpec::pilatus();
    let mut no_jitter = full.clone();
    no_jitter.noise.jitter_sigma = 0.0;
    let mut no_slow_path = full.clone();
    no_slow_path.noise.slow_path_prob = 0.0;
    let mut no_congestion = full.clone();
    no_congestion.noise.congestion_prob = 0.0;
    let mut no_daemons = full.clone();
    no_daemons.noise.daemon_period_ns = 0.0;
    vec![
        ("full", full),
        ("no_jitter", no_jitter),
        ("no_slow_path", no_slow_path),
        ("no_congestion", no_congestion),
        ("no_daemons", no_daemons),
    ]
}

fn bench_noise_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("noise_ablation");
    g.sample_size(10);
    for (name, machine) in variants() {
        // Print the statistical signature of the variant.
        let mut cfg = PingPongConfig::paper_64b(20_000);
        cfg.warmup_iterations = 0;
        let mut rng = SimRng::new(77);
        let lat = pingpong_latencies_us(&machine, &cfg, &mut rng);
        let d = describe(&lat).unwrap();
        println!(
            "{name:<14} median {:.3} us  mean {:.3}  max {:.2}  skew {:.2}",
            d.five_number.median,
            d.mean,
            d.five_number.max,
            d.skewness.unwrap_or(f64::NAN)
        );

        g.bench_with_input(BenchmarkId::from_parameter(name), &machine, |b, machine| {
            let mut cfg = PingPongConfig::paper_64b(5_000);
            cfg.warmup_iterations = 0;
            let mut rng = SimRng::new(1);
            b.iter(|| pingpong_latencies_us(machine, &cfg, &mut rng))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_noise_ablation);
criterion_main!(benches);
