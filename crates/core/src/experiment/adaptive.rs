//! Adaptive level refinement (§4.2 of the paper).
//!
//! "With certain assumptions on the parameters, one could use adaptive
//! refinement to measure levels where the uncertainty is highest, similar
//! to active learning. SKaMPI uses this approach assuming parameters are
//! linear."
//!
//! [`refine_levels`] implements the SKaMPI scheme: start from the
//! endpoints of a numeric factor range, repeatedly bisect the interval
//! whose midpoint is worst predicted by linear interpolation between its
//! measured endpoints, and stop when the interpolation error falls below
//! a tolerance or the measurement budget is exhausted. The result is a
//! set of measured levels dense where the response curve bends (e.g.
//! around an eager/rendezvous protocol switch) and sparse where it is
//! straight.

use serde::{Deserialize, Serialize};

use scibench_stats::error::{StatsError, StatsResult};

/// One measured level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredLevel {
    /// The factor value (e.g. message size).
    pub level: f64,
    /// The measured response (e.g. median latency).
    pub value: f64,
}

/// Result of an adaptive refinement run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Refinement {
    /// Measured levels, sorted ascending by level.
    pub measured: Vec<MeasuredLevel>,
    /// Largest relative interpolation error remaining between adjacent
    /// measured levels.
    pub max_rel_error: f64,
    /// Whether the tolerance was reached within the budget.
    pub converged: bool,
}

impl Refinement {
    /// Linear interpolation of the response at an arbitrary level inside
    /// the measured range.
    pub fn interpolate(&self, level: f64) -> Option<f64> {
        let pts = &self.measured;
        if pts.is_empty() || level < pts[0].level || level > pts[pts.len() - 1].level {
            return None;
        }
        let idx = pts.partition_point(|p| p.level <= level);
        if idx == 0 {
            return Some(pts[0].value);
        }
        if idx >= pts.len() {
            return Some(pts[pts.len() - 1].value);
        }
        let (a, b) = (pts[idx - 1], pts[idx]);
        if b.level == a.level {
            return Some(a.value);
        }
        let f = (level - a.level) / (b.level - a.level);
        Some(a.value * (1.0 - f) + b.value * f)
    }
}

/// Configuration of the refinement loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefinementConfig {
    /// Lowest level (inclusive).
    pub min_level: f64,
    /// Highest level (inclusive).
    pub max_level: f64,
    /// Stop when every midpoint is predicted within this relative error.
    pub rel_tolerance: f64,
    /// Maximum number of measurements (including the two endpoints).
    pub budget: usize,
    /// Smallest interval width still worth splitting (levels are often
    /// integers: message sizes, process counts).
    pub min_gap: f64,
}

impl RefinementConfig {
    /// Validates the configuration.
    fn validate(&self) -> StatsResult<()> {
        if self.max_level.partial_cmp(&self.min_level) != Some(std::cmp::Ordering::Greater) {
            return Err(StatsError::InvalidParameter {
                name: "max_level",
                value: self.max_level,
            });
        }
        if self.rel_tolerance.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(StatsError::InvalidParameter {
                name: "rel_tolerance",
                value: self.rel_tolerance,
            });
        }
        if self.budget < 3 {
            return Err(StatsError::TooFewSamples {
                required: 3,
                actual: self.budget,
            });
        }
        if self.min_gap.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(StatsError::InvalidParameter {
                name: "min_gap",
                value: self.min_gap,
            });
        }
        Ok(())
    }
}

/// Runs adaptive level refinement: `measure(level)` must return the
/// response at a level (typically an already-summarized median from a
/// [`crate::experiment::measurement::MeasurementPlan`]).
pub fn refine_levels(
    config: &RefinementConfig,
    mut measure: impl FnMut(f64) -> f64,
) -> StatsResult<Refinement> {
    config.validate()?;
    let mut measured = vec![
        MeasuredLevel {
            level: config.min_level,
            value: measure(config.min_level),
        },
        MeasuredLevel {
            level: config.max_level,
            value: measure(config.max_level),
        },
    ];

    let mut spent = 2usize;
    while spent < config.budget {
        // Find the interval whose midpoint is worst predicted.
        // We must *measure* candidate midpoints to evaluate the error, so
        // the scheme measures the midpoint of the widest-error interval:
        // pick the interval with the largest *predicted curvature proxy*,
        // i.e. the largest |slope change| across neighbours, falling back
        // to the widest interval. Then measure its midpoint and record
        // the realized error.
        let idx = select_interval(&measured, config.min_gap);
        let Some(idx) = idx else {
            break; // nothing left to split
        };
        let (a, b) = (measured[idx], measured[idx + 1]);
        let mid_level = 0.5 * (a.level + b.level);
        let predicted = 0.5 * (a.value + b.value);
        let observed = measure(mid_level);
        spent += 1;
        measured.insert(
            idx + 1,
            MeasuredLevel {
                level: mid_level,
                value: observed,
            },
        );

        let rel_err = (observed - predicted).abs() / observed.abs().max(1e-300);
        // Convergence check: all remaining candidate intervals are either
        // below min_gap or their last realized error was below tolerance.
        if rel_err < config.rel_tolerance && max_realized_error(&measured) < config.rel_tolerance {
            return Ok(Refinement {
                max_rel_error: max_realized_error(&measured),
                measured,
                converged: true,
            });
        }
    }
    let max_rel_error = max_realized_error(&measured);
    Ok(Refinement {
        measured,
        max_rel_error,
        converged: max_rel_error < config.rel_tolerance,
    })
}

/// Chooses the next interval to split: the one with the largest local
/// curvature estimate (slope change), preferring wide intervals; returns
/// `None` when every interval is below the minimum gap.
fn select_interval(measured: &[MeasuredLevel], min_gap: f64) -> Option<usize> {
    let n = measured.len();
    let mut best: Option<(f64, usize)> = None;
    for i in 0..n - 1 {
        let width = measured[i + 1].level - measured[i].level;
        if width < 2.0 * min_gap {
            continue;
        }
        // Curvature proxy: deviation of this segment's slope from the
        // average of the neighbouring slopes, scaled by width.
        let slope = |j: usize| {
            (measured[j + 1].value - measured[j].value)
                / (measured[j + 1].level - measured[j].level).max(1e-300)
        };
        let s = slope(i);
        let mut curvature = 0.0;
        if i > 0 {
            curvature += (s - slope(i - 1)).abs();
        }
        if i + 2 < n {
            curvature += (slope(i + 1) - s).abs();
        }
        let score = width * (1.0 + curvature);
        if best.map(|(b, _)| score > b).unwrap_or(true) {
            best = Some((score, i));
        }
    }
    best.map(|(_, i)| i)
}

/// Max relative error of predicting each interior point from its
/// neighbours (leave-one-out linear interpolation).
fn max_realized_error(measured: &[MeasuredLevel]) -> f64 {
    let mut worst = 0.0f64;
    for i in 1..measured.len() - 1 {
        let (a, m, b) = (measured[i - 1], measured[i], measured[i + 1]);
        let span = b.level - a.level;
        if span <= 0.0 {
            continue;
        }
        let f = (m.level - a.level) / span;
        let predicted = a.value * (1.0 - f) + b.value * f;
        worst = worst.max((predicted - m.value).abs() / m.value.abs().max(1e-300));
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(budget: usize) -> RefinementConfig {
        RefinementConfig {
            min_level: 1.0,
            max_level: 1025.0,
            rel_tolerance: 0.01,
            budget,
            min_gap: 1.0,
        }
    }

    #[test]
    fn linear_response_converges_immediately() {
        let mut calls = 0;
        let r = refine_levels(&config(100), |x| {
            calls += 1;
            3.0 * x + 10.0
        })
        .unwrap();
        assert!(r.converged);
        // Linear data: endpoints + one confirming midpoint suffice.
        assert!(calls <= 5, "spent {calls} measurements on a straight line");
        assert!(r.max_rel_error < 0.01);
    }

    #[test]
    fn kink_attracts_measurements() {
        // Piecewise latency: eager until 512, rendezvous above (jump).
        let f = |x: f64| {
            if x <= 512.0 {
                1.0 + x * 0.001
            } else {
                3.0 + x * 0.001
            }
        };
        let r = refine_levels(&config(60), f).unwrap();
        // Count measurements near the kink vs far away.
        let near = r
            .measured
            .iter()
            .filter(|m| (m.level - 512.0).abs() < 128.0)
            .count();
        let far = r
            .measured
            .iter()
            .filter(|m| (m.level - 512.0).abs() >= 384.0)
            .count();
        assert!(
            near >= far,
            "near {near} vs far {far}: {:?}",
            r.measured.len()
        );
        // The interpolation is accurate away from the kink.
        let v = r.interpolate(100.0).unwrap();
        assert!((v - f(100.0)).abs() / f(100.0) < 0.05, "{v}");
    }

    #[test]
    fn budget_is_respected() {
        let mut calls = 0usize;
        let r = refine_levels(&config(10), |x| {
            calls += 1;
            (x * 0.01).sin().abs() + 1.0 // wiggly: never converges at tol 1%
        })
        .unwrap();
        assert!(calls <= 10);
        assert_eq!(r.measured.len(), calls);
    }

    #[test]
    fn measured_levels_stay_sorted_and_in_range() {
        let r = refine_levels(&config(40), |x| x.sqrt()).unwrap();
        for w in r.measured.windows(2) {
            assert!(w[0].level < w[1].level);
        }
        assert_eq!(r.measured.first().unwrap().level, 1.0);
        assert_eq!(r.measured.last().unwrap().level, 1025.0);
    }

    #[test]
    fn interpolate_handles_boundaries() {
        let r = refine_levels(&config(8), |x| 2.0 * x).unwrap();
        assert!(r.interpolate(0.5).is_none());
        assert!(r.interpolate(2000.0).is_none());
        let v = r.interpolate(513.0).unwrap();
        assert!((v - 1026.0).abs() < 1.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = config(10);
        c.max_level = c.min_level;
        assert!(refine_levels(&c, |x| x).is_err());
        let mut c = config(2);
        c.budget = 2;
        assert!(refine_levels(&c, |x| x).is_err());
        let mut c = config(10);
        c.rel_tolerance = 0.0;
        assert!(refine_levels(&c, |x| x).is_err());
        let mut c = config(10);
        c.min_gap = 0.0;
        assert!(refine_levels(&c, |x| x).is_err());
    }

    #[test]
    fn min_gap_stops_splitting() {
        // With a huge min_gap only the initial endpoints plus at most one
        // midpoint fit.
        let c = RefinementConfig {
            min_level: 0.0,
            max_level: 10.0,
            rel_tolerance: 1e-9,
            budget: 100,
            min_gap: 4.0,
        };
        let r = refine_levels(&c, |x| x * x).unwrap();
        assert!(r.measured.len() <= 4, "{:?}", r.measured);
    }
}
