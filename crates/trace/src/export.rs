//! Trace exporters: JSONL and chrome://tracing JSON.
//!
//! Both formats are hand-rolled (workspace convention: no JSON
//! dependency). The chrome format targets the Trace Event Format's JSON
//! array flavour — complete events (`ph: "X"`), instant events
//! (`ph: "i"`) and counter events (`ph: "C"`) — loadable directly in
//! `chrome://tracing` or Perfetto. Timestamps are microseconds with
//! nanosecond fractions; lanes map to `tid`, everything shares `pid` 0.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::event::{ArgValue, EventKind, TraceEvent};
use crate::trace::Trace;

/// Escapes a string for inclusion inside JSON quotes.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON token: plain number when finite, quoted
/// string otherwise (JSON has no NaN/Infinity literals).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        format!("\"{v}\"")
    }
}

fn json_arg_value(v: &ArgValue) -> String {
    match v {
        ArgValue::U64(x) => format!("{x}"),
        ArgValue::I64(x) => format!("{x}"),
        ArgValue::F64(x) => json_f64(*x),
        ArgValue::Bool(x) => format!("{x}"),
        ArgValue::Str(x) => format!("\"{}\"", json_escape(x)),
    }
}

fn json_args(args: &[(&'static str, ArgValue)], extra: Option<(&str, String)>) -> String {
    let mut parts: Vec<String> = Vec::with_capacity(args.len() + 1);
    if let Some((k, v)) = extra {
        parts.push(format!("\"{}\":{}", json_escape(k), v));
    }
    for (k, v) in args {
        parts.push(format!("\"{}\":{}", json_escape(k), json_arg_value(v)));
    }
    format!("{{{}}}", parts.join(","))
}

/// Microseconds with nanosecond fraction, as a JSON number.
fn micros(t_ns: u64) -> String {
    format!("{}.{:03}", t_ns / 1_000, t_ns % 1_000)
}

fn chrome_event(e: &TraceEvent) -> String {
    let common = format!(
        "\"name\":\"{}\",\"cat\":\"{}\",\"ts\":{},\"pid\":0,\"tid\":{}",
        json_escape(&e.name),
        json_escape(e.cat),
        micros(e.t_ns),
        e.lane
    );
    match &e.kind {
        EventKind::Span { dur_ns } => format!(
            "{{{common},\"ph\":\"X\",\"dur\":{},\"args\":{}}}",
            micros(*dur_ns),
            json_args(&e.args, None)
        ),
        EventKind::Instant => format!(
            "{{{common},\"ph\":\"i\",\"s\":\"t\",\"args\":{}}}",
            json_args(&e.args, None)
        ),
        EventKind::Counter { value } => format!(
            "{{{common},\"ph\":\"C\",\"args\":{}}}",
            json_args(&e.args, Some(("value", json_f64(*value))))
        ),
    }
}

/// Renders the trace as a chrome://tracing JSON array.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::from("[\n");
    for (i, e) in trace.events.iter().enumerate() {
        out.push_str(&chrome_event(e));
        if i + 1 < trace.events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out.push('\n');
    out
}

fn jsonl_event(e: &TraceEvent) -> String {
    let kind = match &e.kind {
        EventKind::Span { dur_ns } => format!("\"kind\":\"span\",\"dur_ns\":{dur_ns}"),
        EventKind::Instant => "\"kind\":\"instant\"".to_string(),
        EventKind::Counter { value } => {
            format!("\"kind\":\"counter\",\"value\":{}", json_f64(*value))
        }
    };
    format!(
        "{{\"cat\":\"{}\",\"name\":\"{}\",\"t_ns\":{},\"lane\":{},\"seq\":{},{kind},\"args\":{}}}",
        json_escape(e.cat),
        json_escape(&e.name),
        e.t_ns,
        e.lane,
        e.seq,
        json_args(&e.args, None)
    )
}

/// Renders the trace as JSONL: one JSON object per event per line.
pub fn to_jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    for e in &trace.events {
        out.push_str(&jsonl_event(e));
        out.push('\n');
    }
    out
}

/// Writes the chrome://tracing JSON rendering of `trace` to `path`.
pub fn write_chrome_json(trace: &Trace, path: &Path) -> io::Result<()> {
    std::fs::write(path, to_chrome_json(trace))
}

/// Writes the JSONL rendering of `trace` to `path`.
pub fn write_jsonl(trace: &Trace, path: &Path) -> io::Result<()> {
    std::fs::write(path, to_jsonl(trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{category, EventName};

    fn sample_trace() -> Trace {
        Trace {
            events: vec![
                TraceEvent {
                    cat: category::POOL,
                    name: EventName::from("task"),
                    t_ns: 1_234_567,
                    lane: 2,
                    seq: 0,
                    kind: EventKind::Span { dur_ns: 4_005 },
                    args: vec![
                        ("index", ArgValue::U64(7)),
                        ("stolen", ArgValue::Bool(true)),
                    ],
                },
                TraceEvent {
                    cat: category::SCHED,
                    name: EventName::from("steal \"x\"\n"),
                    t_ns: 8,
                    lane: 0,
                    seq: 1,
                    kind: EventKind::Instant,
                    args: vec![("err", ArgValue::Str("a\\b".into()))],
                },
                TraceEvent {
                    cat: category::CAMPAIGN,
                    name: EventName::from("samples"),
                    t_ns: 9,
                    lane: 1,
                    seq: 2,
                    kind: EventKind::Counter { value: 12.5 },
                    args: vec![("bad", ArgValue::F64(f64::NAN)), ("n", ArgValue::I64(-3))],
                },
            ],
        }
    }

    #[test]
    fn chrome_json_is_schema_valid() {
        let text = to_chrome_json(&sample_trace());
        let n = crate::json::validate_chrome_trace(&text).unwrap();
        assert_eq!(n, 3);
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ts\":1234.567"));
        assert!(text.contains("\"dur\":4.005"));
        assert!(text.contains("\"tid\":2"));
    }

    #[test]
    fn jsonl_is_schema_valid() {
        let text = to_jsonl(&sample_trace());
        let n = crate::json::validate_jsonl(&text).unwrap();
        assert_eq!(n, 3);
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("\"dur_ns\":4005"));
        assert!(text.contains("\"kind\":\"counter\""));
    }

    #[test]
    fn escaping_round_trips_through_parser() {
        let text = to_jsonl(&sample_trace());
        for line in text.lines() {
            let v = crate::json::parse(line).unwrap();
            assert!(v.get("name").and_then(|n| n.as_str()).is_some());
        }
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let t = Trace::default();
        assert_eq!(
            crate::json::validate_chrome_trace(&to_chrome_json(&t)).unwrap(),
            0
        );
        assert_eq!(crate::json::validate_jsonl(&to_jsonl(&t)).unwrap(), 0);
    }
}
