//! Regenerates Figure 1: distribution of 50 HPL completion times.

use scibench_bench::figures::fig1_hpl;
use scibench_bench::{output, samples_from_env, DEFAULT_SEED};

fn main() {
    let runs = samples_from_env(50);
    let fig = fig1_hpl::compute(runs, DEFAULT_SEED).expect("figure 1 pipeline");
    println!("{}", fig.render());
    let path = output::write_csv("fig1_hpl", &fig.dataset()).expect("write csv");
    println!("raw data: {}", path.display());
}
