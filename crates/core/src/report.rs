//! Experiment reports: the artifact the twelve rules are audited against.
//!
//! An [`ExperimentReport`] aggregates everything a paper section would
//! contain about one experiment: the environment documentation (Rule 9),
//! per-operation measurement summaries with units (Rules 2/5/6), speedups
//! with base cases (Rule 1), statistical comparisons (Rules 7/8),
//! bounds models (Rule 11), parallel-measurement methodology (Rule 10)
//! and attached plots (Rule 12). [`crate::rules::RuleAudit`] consumes it.

use serde::{Deserialize, Serialize};

use crate::bounds::ScalingBound;
use crate::compare::Comparison;
use crate::experiment::environment::EnvironmentDoc;
use crate::experiment::measurement::MeasurementSummary;
use crate::parallel::CrossProcessSummary;
use crate::speedup::Speedup;
use crate::units::Unit;

/// One measured operation with its unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportEntry {
    /// The Rule 5/6-compliant summary.
    pub summary: MeasurementSummary,
    /// The unit of the measured values (Rule 2).
    pub unit: Unit,
}

/// How parallel time was measured (Rule 10): all three methodology
/// ingredients must be stated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelMethodology {
    /// Number of processes.
    pub processes: usize,
    /// Synchronization scheme description, e.g. "window-based (1 ms
    /// window)" or "MPI_Barrier".
    pub synchronization: String,
    /// How per-process values were collapsed.
    pub summarization: CrossProcessSummary,
    /// Whether the cross-process ANOVA check was performed.
    pub anova_checked: bool,
}

/// A reference to a figure/plot attached to the experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlotRef {
    /// Plot title.
    pub title: String,
    /// Plot kind, e.g. "density", "boxplot", "series".
    pub kind: String,
    /// Rule 12 flag: whether points are connected, if a series.
    pub connected: Option<bool>,
}

/// A complete experiment report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment title.
    pub title: String,
    /// Rule 9 environment documentation.
    pub environment: EnvironmentDoc,
    /// Measured operations.
    pub entries: Vec<ReportEntry>,
    /// Reported speedups (Rule 1 is enforced by the type).
    pub speedups: Vec<Speedup>,
    /// Statistical comparisons between configurations (Rule 7/8).
    pub comparisons: Vec<Comparison>,
    /// Bounds models shown with the results (Rule 11).
    pub bounds: Vec<ScalingBound>,
    /// Parallel measurement methodology; `None` for serial experiments.
    pub parallel: Option<ParallelMethodology>,
    /// Attached plots (Rule 12).
    pub plots: Vec<PlotRef>,
    /// Whether any reported number is a geometric mean of ratios
    /// (Rule 4's last resort — must be justified in `notes`).
    pub ratio_geomean_used: bool,
    /// Whether subsets of a standard benchmark/application were used and,
    /// if so, whether a reason is given (Rule 2 of §2.1.3 — cherry
    /// picking). `None` = full benchmarks used.
    pub subset_justification: Option<String>,
    /// Free-form notes.
    pub notes: String,
}

impl ExperimentReport {
    /// Creates an empty report skeleton.
    pub fn new(title: &str) -> Self {
        Self {
            title: title.to_owned(),
            environment: EnvironmentDoc::new(),
            entries: Vec::new(),
            speedups: Vec::new(),
            comparisons: Vec::new(),
            bounds: Vec::new(),
            parallel: None,
            plots: Vec::new(),
            ratio_geomean_used: false,
            subset_justification: None,
            notes: String::new(),
        }
    }

    /// Sets the environment documentation.
    pub fn environment(mut self, env: EnvironmentDoc) -> Self {
        self.environment = env;
        self
    }

    /// Adds a measurement entry.
    pub fn entry(mut self, summary: MeasurementSummary, unit: Unit) -> Self {
        self.entries.push(ReportEntry { summary, unit });
        self
    }

    /// Adds a speedup.
    pub fn speedup(mut self, s: Speedup) -> Self {
        self.speedups.push(s);
        self
    }

    /// Adds a comparison.
    pub fn comparison(mut self, c: Comparison) -> Self {
        self.comparisons.push(c);
        self
    }

    /// Adds a bounds model.
    pub fn bound(mut self, b: ScalingBound) -> Self {
        self.bounds.push(b);
        self
    }

    /// Declares the parallel methodology.
    pub fn parallel(mut self, p: ParallelMethodology) -> Self {
        self.parallel = Some(p);
        self
    }

    /// Attaches a plot reference.
    pub fn plot(mut self, title: &str, kind: &str, connected: Option<bool>) -> Self {
        self.plots.push(PlotRef {
            title: title.to_owned(),
            kind: kind.to_owned(),
            connected,
        });
        self
    }

    /// Renders the full report as text.
    pub fn render(&self) -> String {
        let mut out = format!(
            "=== {} ===\n\n-- environment (Rule 9) --\n{}\n",
            self.title,
            self.environment.render()
        );
        if let Some(p) = &self.parallel {
            out.push_str(&format!(
                "-- parallel methodology (Rule 10) --\nprocesses: {}\nsynchronization: {}\nsummary across processes: {:?}\nANOVA across processes: {}\n\n",
                p.processes, p.synchronization, p.summarization, p.anova_checked
            ));
        }
        if !self.entries.is_empty() {
            out.push_str("-- measurements --\n");
            for e in &self.entries {
                out.push_str(&format!(
                    "[unit: {}]\n{}\n",
                    e.unit.symbol(),
                    e.summary.render()
                ));
            }
        }
        if !self.speedups.is_empty() {
            out.push_str("-- speedups (Rule 1) --\n");
            for s in &self.speedups {
                out.push_str(&format!("{s}\n"));
            }
            out.push('\n');
        }
        for c in &self.comparisons {
            out.push_str("-- comparison (Rules 7/8) --\n");
            out.push_str(&c.render());
            out.push('\n');
        }
        if !self.bounds.is_empty() {
            out.push_str("-- bounds (Rule 11) --\n");
            for b in &self.bounds {
                out.push_str(&format!("{}\n", b.label()));
            }
            out.push('\n');
        }
        if !self.plots.is_empty() {
            out.push_str("-- plots (Rule 12) --\n");
            for p in &self.plots {
                out.push_str(&format!("{} ({})\n", p.title, p.kind));
            }
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push_str(&format!("-- notes --\n{}\n", self.notes));
        }
        out
    }

    /// Renders the report as Markdown (for READMEs, issues, papers).
    pub fn render_markdown(&self) -> String {
        let mut out = format!(
            "# {}\n\n## Environment (Rule 9)\n\n```\n{}```\n\n",
            self.title,
            self.environment.render()
        );
        if let Some(p) = &self.parallel {
            out.push_str(&format!(
                "## Parallel methodology (Rule 10)\n\n- processes: {}\n- synchronization: {}\n- cross-process summary: {:?}\n- ANOVA across processes: {}\n\n",
                p.processes, p.synchronization, p.summarization, p.anova_checked
            ));
        }
        if !self.entries.is_empty() {
            out.push_str("## Measurements\n\n| operation | unit | n | dropped | det. | median | mean | CI |\n|---|---|---|---|---|---|---|---|\n");
            let mut contaminated = 0usize;
            for e in &self.entries {
                let s = &e.summary;
                let ci = match (&s.median_ci, s.mean_ci_valid, &s.mean_ci) {
                    (Some(ci), _, _) => format!(
                        "{:.0}% median CI [{:.4}, {:.4}]",
                        s.confidence * 100.0,
                        ci.lower,
                        ci.upper
                    ),
                    (None, true, Some(ci)) => format!(
                        "{:.0}% mean CI [{:.4}, {:.4}]",
                        s.confidence * 100.0,
                        ci.lower,
                        ci.upper
                    ),
                    _ => "-".into(),
                };
                let dropped = if s.samples_dropped > 0 {
                    contaminated += 1;
                    format!("{} of {}", s.samples_dropped, s.samples_recorded)
                } else {
                    "0".into()
                };
                out.push_str(&format!(
                    "| {} | {} | {} | {} | {} | {:.6} | {:.6} | {} |\n",
                    s.name,
                    e.unit.symbol(),
                    s.n,
                    dropped,
                    if s.deterministic { "yes" } else { "no" },
                    s.five_number.median,
                    s.mean,
                    ci
                ));
            }
            out.push('\n');
            if contaminated > 0 {
                // Rule 4: failed runs are reported, not hidden.
                out.push_str(&format!(
                    "{contaminated} of {} operations lost samples to faults; their mean CIs \
                     are withheld and the nonparametric median CIs above apply.\n\n",
                    self.entries.len()
                ));
            }
        }
        if !self.speedups.is_empty() {
            out.push_str("## Speedups (Rule 1)\n\n");
            for s in &self.speedups {
                out.push_str(&format!("- {s}\n"));
            }
            out.push('\n');
        }
        for c in &self.comparisons {
            out.push_str(&format!(
                "## Comparison: {} vs {}\n\n```\n{}```\n\n",
                c.label_a,
                c.label_b,
                c.render()
            ));
        }
        if !self.bounds.is_empty() {
            out.push_str("## Bounds (Rule 11)\n\n");
            for b in &self.bounds {
                out.push_str(&format!("- {}\n", b.label()));
            }
            out.push('\n');
        }
        if !self.plots.is_empty() {
            out.push_str("## Plots (Rule 12)\n\n");
            for p in &self.plots {
                out.push_str(&format!("- {} ({})\n", p.title, p.kind));
            }
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push_str(&format!("## Notes\n\n{}\n", self.notes));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::measurement::{MeasurementPlan, StoppingRule};
    use crate::speedup::BaseCase;

    fn demo_summary() -> MeasurementSummary {
        let plan = MeasurementPlan::new("op").stopping(StoppingRule::FixedCount(50));
        let mut x = 0u64;
        plan.run(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            1.0 + (x % 97) as f64 / 970.0
        })
        .unwrap()
        .summarize(0.95)
        .unwrap()
    }

    #[test]
    fn builder_accumulates_sections() {
        let r = ExperimentReport::new("demo")
            .entry(demo_summary(), Unit::Seconds)
            .speedup(Speedup::from_times(2.0, 1.0, BaseCase::BestSerial))
            .bound(ScalingBound::IdealLinear)
            .plot("scaling", "series", Some(true));
        assert_eq!(r.entries.len(), 1);
        assert_eq!(r.speedups.len(), 1);
        assert_eq!(r.bounds.len(), 1);
        assert_eq!(r.plots.len(), 1);
    }

    #[test]
    fn render_contains_rule_sections() {
        let r = ExperimentReport::new("render-test")
            .entry(demo_summary(), Unit::Seconds)
            .speedup(Speedup::from_times(
                2.0,
                1.0,
                BaseCase::SingleParallelProcess,
            ))
            .bound(ScalingBound::Amdahl {
                serial_fraction: 0.01,
            })
            .parallel(ParallelMethodology {
                processes: 64,
                synchronization: "window-based (1 ms)".into(),
                summarization: CrossProcessSummary::Max,
                anova_checked: true,
            })
            .plot("density", "density", None);
        let text = r.render();
        for needle in [
            "=== render-test ===",
            "Rule 9",
            "Rule 10",
            "window-based",
            "[unit: s]",
            "Rule 1",
            "single parallel process",
            "Rule 11",
            "Serial Overheads Bound",
            "Rule 12",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn empty_report_renders() {
        let text = ExperimentReport::new("empty").render();
        assert!(text.contains("=== empty ==="));
        assert!(text.contains("MISSING")); // environment entirely missing
    }

    #[test]
    fn markdown_discloses_dropped_samples() {
        let mut s = demo_summary();
        s.samples_recorded = s.n + 3;
        s.samples_dropped = 3;
        s.dropped_nan = 2;
        s.dropped_infinite = 1;
        s.mean_ci_valid = false;
        let md = ExperimentReport::new("dropped")
            .entry(s, Unit::Seconds)
            .render_markdown();
        assert!(md.contains("| 3 of 53 |"), "{md}");
        assert!(md.contains("1 of 1 operations lost samples"), "{md}");

        let clean = ExperimentReport::new("clean")
            .entry(demo_summary(), Unit::Seconds)
            .render_markdown();
        assert!(clean.contains("| 0 |"), "{clean}");
        assert!(!clean.contains("lost samples"), "{clean}");
    }

    #[test]
    fn markdown_render_contains_tables_and_sections() {
        let r = ExperimentReport::new("md-test")
            .entry(demo_summary(), Unit::Seconds)
            .speedup(Speedup::from_times(2.0, 1.0, BaseCase::BestSerial))
            .bound(ScalingBound::IdealLinear)
            .parallel(ParallelMethodology {
                processes: 4,
                synchronization: "window".into(),
                summarization: CrossProcessSummary::Median,
                anova_checked: false,
            })
            .plot("p1", "series", Some(true));
        let md = r.render_markdown();
        for needle in [
            "# md-test",
            "## Environment (Rule 9)",
            "## Parallel methodology (Rule 10)",
            "| operation | unit |",
            "| op | s |",
            "## Speedups (Rule 1)",
            "## Bounds (Rule 11)",
            "## Plots (Rule 12)",
        ] {
            assert!(md.contains(needle), "missing {needle} in:\n{md}");
        }
    }
}
