//! Regenerates the §3.1.1 worked mean-summarization example.

use scibench_bench::figures::means_example;

fn main() {
    println!(
        "{}",
        means_example::compute().expect("worked example").render()
    );
}
