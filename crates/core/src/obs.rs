//! Observability glue: trace lane allocation and the harness-overhead
//! disclosure attached to measurement summaries.
//!
//! The tracing machinery itself lives in [`scibench_trace`]; this module
//! holds the conventions the rest of the crate wires through it:
//!
//! * **Lane allocation** — chrome://tracing `tid`s are carved into
//!   ranges so pool workers, campaign points and orchestration events
//!   never collide: workers occupy `0..threads`, the orchestrating
//!   thread uses [`MAIN_LANE`], and design point `i` records on
//!   [`CAMPAIGN_LANE_BASE`]` + i`.
//! * **[`HarnessOverhead`]** — the Rule 4/5 self-accounting summary
//!   derived from a [`scibench_trace::OverheadReport`], embeddable in
//!   [`crate::experiment::measurement::MeasurementSummary`] and rendered
//!   in its text report.

use serde::{Deserialize, Serialize};

use scibench_trace::OverheadReport;

/// Lane (`tid`) of the orchestrating thread's events.
pub const MAIN_LANE: u32 = 0xFFFF;

/// First lane used for per-design-point campaign events: design point
/// `i` records on `CAMPAIGN_LANE_BASE + i`. Pool workers use lanes
/// `0..threads`, so the two ranges cannot collide for any realistic
/// thread count.
pub const CAMPAIGN_LANE_BASE: u32 = 1 << 16;

// Worker lanes (0..threads) must sit strictly below the orchestrator's
// lane, which must sit below the campaign block.
const _: () = assert!(MAIN_LANE > 1024 && CAMPAIGN_LANE_BASE > MAIN_LANE);

/// The lane carrying design point `design_idx`'s campaign events.
pub fn campaign_lane(design_idx: usize) -> u32 {
    CAMPAIGN_LANE_BASE + design_idx as u32
}

/// Rule 4/5 disclosure of what the measurement harness itself cost.
///
/// Derived from the tracer's self-accounting report and scaled to the
/// number of recorded samples, so a summary can state "observing this
/// experiment cost ~X ns per sample, Y% of the payload time".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HarnessOverhead {
    /// Median cost of one clock read, nanoseconds.
    pub timer_read_ns: f64,
    /// Median cost of recording one trace event, nanoseconds.
    pub record_ns: f64,
    /// Estimated total tracing cost, nanoseconds.
    pub tracing_ns: f64,
    /// Trace events recorded.
    pub events: usize,
    /// Estimated tracing cost per recorded sample, nanoseconds.
    pub tracing_ns_per_sample: f64,
    /// Tracing cost as a fraction of traced payload span time; `None`
    /// when no payload spans were recorded.
    pub overhead_fraction: Option<f64>,
}

impl HarnessOverhead {
    /// Builds the disclosure from a self-accounting report, amortized
    /// over `samples` recorded measurements.
    pub fn from_report(report: &OverheadReport, samples: usize) -> Self {
        Self {
            timer_read_ns: report.timer_read_ns,
            record_ns: report.record_ns,
            tracing_ns: report.tracing_ns,
            events: report.events,
            tracing_ns_per_sample: if samples > 0 {
                report.tracing_ns / samples as f64
            } else {
                0.0
            },
            overhead_fraction: report.overhead_fraction(),
        }
    }

    /// Renders the disclosure as indented report lines.
    pub fn render(&self) -> String {
        let mut out = format!(
            "  harness overhead (Rules 4-5): {} events, ~{:.1} ns tracing per sample \
             (timer {:.1} ns/read, record {:.1} ns/event)\n",
            self.events, self.tracing_ns_per_sample, self.timer_read_ns, self.record_ns,
        );
        if let Some(f) = self.overhead_fraction {
            out.push_str(&format!(
                "  harness overhead fraction: {:.3}% of payload{}\n",
                f * 100.0,
                if f > 0.05 {
                    " -- EXCEEDS the 5% budget"
                } else {
                    ""
                }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scibench_trace::{
        category, ArgValue, EventKind, EventName, OverheadProbe, Trace, TraceEvent,
    };

    #[test]
    fn lanes_do_not_collide() {
        assert!(campaign_lane(0) > MAIN_LANE);
        assert_ne!(campaign_lane(7), campaign_lane(8));
    }

    #[test]
    fn from_report_amortizes_over_samples() {
        let trace = Trace {
            events: vec![TraceEvent {
                cat: category::CAMPAIGN,
                name: EventName::from("point"),
                t_ns: 0,
                lane: 0,
                seq: 0,
                kind: EventKind::Span { dur_ns: 10_000 },
                args: vec![("index", ArgValue::U64(0))],
            }],
        };
        let probe = OverheadProbe {
            timer_read_ns: 10.0,
            record_ns: 40.0,
        };
        let report = OverheadReport::from_trace(&trace, &probe, category::CAMPAIGN);
        let o = HarnessOverhead::from_report(&report, 100);
        assert_eq!(o.events, 1);
        assert_eq!(o.tracing_ns, 50.0);
        assert_eq!(o.tracing_ns_per_sample, 0.5);
        assert_eq!(o.overhead_fraction, Some(0.005));
        let text = o.render();
        assert!(text.contains("Rules 4-5"));
        assert!(!text.contains("EXCEEDS"));
        // Zero samples must not divide by zero.
        let z = HarnessOverhead::from_report(&report, 0);
        assert_eq!(z.tracing_ns_per_sample, 0.0);
    }
}
