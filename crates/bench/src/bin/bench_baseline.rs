//! Old-versus-new wall-clock baselines for the performance-engineering
//! work, emitted as a committed `BENCH_stats.json`.
//!
//! Each benchmark pairs the *pre-optimization* algorithm (reimplemented
//! here, verbatim in structure) with the current implementation, times
//! both with `std::time::Instant` on identical inputs and seeds, and
//! records the speedup. The two headline pairs carry acceptance targets:
//!
//! * `campaign_adaptive_4threads` — the legacy campaign engine
//!   (static-chunk scheduling behind a mutex, full-vector `O(n²/batch)`
//!   CI replanning) versus the work-stealing pool with `O(1)` Welford
//!   replanning; target ≥ 3×.
//! * `bootstrap_median_ci_10k` — the legacy resample-and-sort median
//!   bootstrap (`O(reps · n log n)`) versus the order-statistic rank
//!   device (`O(reps)` after one sort); target ≥ 5×.
//!
//! Modes:
//!
//! * no arguments — full measurement, writes `BENCH_stats.json` into the
//!   current directory and fails if a target speedup is missed;
//! * `--quick` — tiny workloads, no file written, no thresholds (CI
//!   smoke: proves the harness runs);
//! * `--verify <path>` — parses an existing baseline file and checks the
//!   schema marker and that every expected benchmark id is present with
//!   sane numbers (CI smoke: proves the committed file stays valid).

use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Mutex;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use scibench::experiment::campaign::{run_campaign, CampaignConfig};
use scibench::experiment::design::{Design, Factor, RunPoint};
use scibench::experiment::measurement::{MeasurementPlan, StoppingRule};
use scibench_sim::rng::SimRng;
use scibench_stats::bootstrap::{bootstrap_ci, bootstrap_median_ci, mix_seed};
use scibench_stats::ci;
use scibench_stats::quantile::{quantile, QuantileMethod};
use scibench_stats::sorted::SortedSamples;

const SCHEMA: &str = "scibench-bench-baseline/v1";

/// Benchmark ids every baseline file must contain, with their targets
/// (`None` = informational, no threshold).
const EXPECTED: &[(&str, Option<f64>)] = &[
    ("campaign_adaptive_4threads", Some(3.0)),
    ("bootstrap_median_ci_10k", Some(5.0)),
    ("bootstrap_mean_ci_10k", None),
    ("sorted_quantile_queries_100k", None),
];

struct BenchResult {
    id: &'static str,
    old_ns: u128,
    new_ns: u128,
    target: Option<f64>,
}

impl BenchResult {
    fn speedup(&self) -> f64 {
        self.old_ns as f64 / self.new_ns.max(1) as f64
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--verify") => {
            let path = match args.get(1) {
                Some(p) => p.clone(),
                None => {
                    eprintln!("bench_baseline: --verify requires a path");
                    return ExitCode::FAILURE;
                }
            };
            match verify(&path) {
                Ok(report) => {
                    println!("{report}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("bench_baseline: verification of {path} failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("--quick") => run_benches(true),
        None => run_benches(false),
        Some(other) => {
            eprintln!("bench_baseline: unknown argument {other}");
            ExitCode::FAILURE
        }
    }
}

fn run_benches(quick: bool) -> ExitCode {
    // A statistical failure in any harness arm is a typed error and a
    // non-zero exit, never a panic (ROADMAP: crash-free bins).
    let outcomes: Result<Vec<BenchResult>, String> = [
        bench_campaign(quick),
        bench_bootstrap_median(quick),
        bench_bootstrap_mean(quick),
        bench_sorted_quantiles(quick),
    ]
    .into_iter()
    .collect();
    let results = match outcomes {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_baseline: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{:<32} {:>12} {:>12} {:>9}",
        "benchmark", "old", "new", "speedup"
    );
    for r in &results {
        println!(
            "{:<32} {:>12} {:>12} {:>8.2}x{}",
            r.id,
            pretty_ns(r.old_ns),
            pretty_ns(r.new_ns),
            r.speedup(),
            match r.target {
                Some(t) => format!("  (target {t:.0}x)"),
                None => String::new(),
            }
        );
    }

    if quick {
        println!("\nquick mode: no thresholds enforced, no baseline written");
        return ExitCode::SUCCESS;
    }

    let mut failed = false;
    for r in &results {
        if let Some(target) = r.target {
            if r.speedup() < target {
                eprintln!(
                    "bench_baseline: {} reached {:.2}x, below the {target:.0}x target",
                    r.id,
                    r.speedup()
                );
                failed = true;
            }
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }

    let json = render_json(&results);
    if let Err(e) = std::fs::write("BENCH_stats.json", &json) {
        eprintln!("bench_baseline: writing BENCH_stats.json: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote BENCH_stats.json");
    ExitCode::SUCCESS
}

fn pretty_ns(ns: u128) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Best of two runs (one in quick mode): coarse but stable enough for
/// order-of-magnitude regression tracking.
fn time_best<F: FnMut()>(quick: bool, mut f: F) -> u128 {
    let runs = if quick { 1 } else { 2 };
    let mut best = u128::MAX;
    for _ in 0..runs {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos());
    }
    best
}

// ---------------------------------------------------------------------
// Pair 1: campaign execution.
// ---------------------------------------------------------------------

/// The legacy adaptive-mean loop: replans by re-scanning the entire
/// sample vector after every batch (`O(n²/batch)` total).
fn legacy_adaptive_mean(
    confidence: f64,
    rel_error: f64,
    batch: usize,
    max_samples: usize,
    mut operation: impl FnMut() -> f64,
) -> Vec<f64> {
    let mut samples = Vec::new();
    for _ in 0..batch.max(5).min(max_samples) {
        samples.push(operation());
    }
    while samples.len() < max_samples {
        let required = ci::required_samples_normal(&samples, confidence, rel_error).unwrap();
        if required <= samples.len() {
            break;
        }
        let next = required.min(max_samples).min(samples.len() + batch.max(1));
        while samples.len() < next {
            samples.push(operation());
        }
    }
    samples
}

/// The legacy campaign engine: shuffled order split into static chunks,
/// one thread per chunk, results pushed through a mutex.
fn legacy_run_campaign<F>(
    design: &Design,
    config: &CampaignConfig,
    stopping: (f64, f64, usize, usize),
    measure: F,
) -> Vec<(RunPoint, Vec<f64>)>
where
    F: Fn(&RunPoint, &mut SimRng) -> f64 + Sync,
{
    let points = design.full_factorial();
    let threads = config.threads.clamp(1, points.len());
    let mut order: Vec<usize> = (0..points.len()).collect();
    let mut order_rng = SimRng::new(config.seed).fork("campaign-order");
    order_rng.shuffle(&mut order);

    let root = SimRng::new(config.seed);
    let (confidence, rel_error, batch, max_samples) = stopping;
    let run_one = |design_idx: usize| -> (RunPoint, Vec<f64>) {
        let point = &points[design_idx];
        let mut rng = root.fork_indexed("campaign-point", design_idx as u64);
        let samples = legacy_adaptive_mean(confidence, rel_error, batch, max_samples, || {
            measure(point, &mut rng)
        });
        (point.clone(), samples)
    };

    type IndexedRun = (usize, (RunPoint, Vec<f64>));
    let results: Mutex<Vec<IndexedRun>> = Mutex::new(Vec::with_capacity(points.len()));
    std::thread::scope(|scope| {
        for chunk in order.chunks(order.len().div_ceil(threads)) {
            let results = &results;
            let run_one = &run_one;
            scope.spawn(move || {
                for &idx in chunk {
                    let run = run_one(idx);
                    results.lock().expect("poisoned").push((idx, run));
                }
            });
        }
    });
    let mut slots: Vec<Option<(RunPoint, Vec<f64>)>> = (0..points.len()).map(|_| None).collect();
    for (idx, run) in results.into_inner().expect("poisoned") {
        slots[idx] = Some(run);
    }
    slots.into_iter().map(|s| s.unwrap()).collect()
}

fn bench_campaign(quick: bool) -> Result<BenchResult, String> {
    // Heavy-tailed noise (CoV ≈ 0.9) forces ~100k samples per point at
    // 0.5% relative error, which is where the legacy full-vector
    // replanning goes quadratic.
    let design = Design::new(vec![
        Factor::new("system", &["a", "b"]),
        Factor::numeric("size", &[8.0, 64.0]),
    ]);
    let measure = |point: &RunPoint, rng: &mut SimRng| {
        let base = if point.level(0) == "a" { 0.1 } else { 0.2 };
        let u = rng.uniform().clamp(1e-12, 1.0 - 1e-12);
        base + (-u.ln())
    };
    let (rel_error, batch, max_samples) = if quick {
        (0.05, 20, 5_000)
    } else {
        (0.005, 100, 150_000)
    };
    let config = CampaignConfig {
        seed: 21,
        threads: 4,
    };
    let plan = MeasurementPlan::new("op").stopping(StoppingRule::AdaptiveMeanCi {
        confidence: 0.95,
        rel_error,
        batch,
        max_samples,
    });

    let old_ns = time_best(quick, || {
        let runs = legacy_run_campaign(
            &design,
            &config,
            (0.95, rel_error, batch, max_samples),
            measure,
        );
        assert_eq!(runs.len(), 4);
    });
    let mut harness_err: Option<String> = None;
    let new_ns = time_best(quick, || {
        match run_campaign(&design, &plan, &config, measure) {
            Ok(result) => assert_eq!(result.runs.len(), 4),
            Err(e) => harness_err = Some(e.to_string()),
        }
    });
    if let Some(e) = harness_err {
        return Err(format!("campaign_adaptive_4threads: {e}"));
    }
    Ok(BenchResult {
        id: "campaign_adaptive_4threads",
        old_ns,
        new_ns,
        target: Some(3.0),
    })
}

// ---------------------------------------------------------------------
// Pair 2 and 3: bootstrap confidence intervals.
// ---------------------------------------------------------------------

fn skewed_sample(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(1e-12..1.0 - 1e-12);
            1.0 + 0.25 * (-u.ln())
        })
        .collect()
}

/// The legacy median bootstrap: every replicate materializes and sorts a
/// full resample.
fn legacy_median_bootstrap(xs: &[f64], confidence: f64, reps: usize, seed: u64) -> (f64, f64) {
    let n = xs.len();
    let mut stats = Vec::with_capacity(reps);
    let mut resample = vec![0.0f64; n];
    for rep in 0..reps {
        let mut rng = StdRng::seed_from_u64(mix_seed(seed, rep as u64));
        for slot in resample.iter_mut() {
            *slot = xs[rng.gen_range(0..n)];
        }
        resample.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mid = n / 2;
        stats.push(if n.is_multiple_of(2) {
            0.5 * (resample[mid - 1] + resample[mid])
        } else {
            resample[mid]
        });
    }
    stats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let alpha = 1.0 - confidence;
    let lo = ((alpha / 2.0) * reps as f64) as usize;
    let hi = (((1.0 - alpha / 2.0) * reps as f64) as usize).min(reps - 1);
    (stats[lo], stats[hi])
}

fn bench_bootstrap_median(quick: bool) -> Result<BenchResult, String> {
    let (n, reps) = if quick { (200, 500) } else { (1_000, 10_000) };
    let xs = skewed_sample(n, 11);
    let sorted =
        SortedSamples::new(&xs).map_err(|e| format!("bootstrap_median_ci_10k: sort: {e}"))?;
    let old_ns = time_best(quick, || {
        std::hint::black_box(legacy_median_bootstrap(&xs, 0.95, reps, 42));
    });
    let mut harness_err: Option<String> = None;
    let new_ns = time_best(quick, || {
        match bootstrap_median_ci(&sorted, 0.95, reps, 42) {
            Ok(ci) => {
                std::hint::black_box(ci);
            }
            Err(e) => harness_err = Some(e.to_string()),
        }
    });
    if let Some(e) = harness_err {
        return Err(format!("bootstrap_median_ci_10k: {e}"));
    }
    Ok(BenchResult {
        id: "bootstrap_median_ci_10k",
        old_ns,
        new_ns,
        target: Some(5.0),
    })
}

/// The legacy mean bootstrap: one sequential RNG stream, a fresh resample
/// vector allocated per replicate.
fn legacy_mean_bootstrap(xs: &[f64], confidence: f64, reps: usize, seed: u64) -> (f64, f64) {
    let n = xs.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = Vec::with_capacity(reps);
    for _ in 0..reps {
        let resample: Vec<f64> = (0..n).map(|_| xs[rng.gen_range(0..n)]).collect();
        stats.push(resample.iter().sum::<f64>() / n as f64);
    }
    stats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let alpha = 1.0 - confidence;
    let lo = ((alpha / 2.0) * reps as f64) as usize;
    let hi = (((1.0 - alpha / 2.0) * reps as f64) as usize).min(reps - 1);
    (stats[lo], stats[hi])
}

fn bench_bootstrap_mean(quick: bool) -> Result<BenchResult, String> {
    let (n, reps) = if quick { (200, 500) } else { (1_000, 10_000) };
    let xs = skewed_sample(n, 12);
    let old_ns = time_best(quick, || {
        std::hint::black_box(legacy_mean_bootstrap(&xs, 0.95, reps, 42));
    });
    let mut harness_err: Option<String> = None;
    let new_ns = time_best(quick, || {
        match bootstrap_ci(&xs, 0.95, reps, 42, |r| {
            r.iter().sum::<f64>() / r.len() as f64
        }) {
            Ok(ci) => {
                std::hint::black_box(ci);
            }
            Err(e) => harness_err = Some(e.to_string()),
        }
    });
    if let Some(e) = harness_err {
        return Err(format!("bootstrap_mean_ci_10k: {e}"));
    }
    Ok(BenchResult {
        id: "bootstrap_mean_ci_10k",
        old_ns,
        new_ns,
        target: None,
    })
}

// ---------------------------------------------------------------------
// Pair 4: order-statistic queries through the sorted cache.
// ---------------------------------------------------------------------

fn bench_sorted_quantiles(quick: bool) -> Result<BenchResult, String> {
    let n = if quick { 10_000 } else { 100_000 };
    let xs = skewed_sample(n, 13);
    let ps = [0.25, 0.5, 0.75, 0.9];
    let mut harness_err: Option<String> = None;
    let old_ns = time_best(quick, || {
        let mut acc = 0.0;
        for p in ps {
            match quantile(&xs, p, QuantileMethod::Interpolated) {
                Ok(q) => acc += q,
                Err(e) => harness_err = Some(e.to_string()),
            }
        }
        std::hint::black_box(acc);
    });
    let new_ns = time_best(quick, || {
        let sorted = match SortedSamples::new(&xs) {
            Ok(s) => s,
            Err(e) => {
                harness_err = Some(e.to_string());
                return;
            }
        };
        let mut acc = 0.0;
        for p in ps {
            match sorted.quantile(p, QuantileMethod::Interpolated) {
                Ok(q) => acc += q,
                Err(e) => harness_err = Some(e.to_string()),
            }
        }
        std::hint::black_box(acc);
    });
    if let Some(e) = harness_err {
        return Err(format!("sorted_quantile_queries_100k: {e}"));
    }
    Ok(BenchResult {
        id: "sorted_quantile_queries_100k",
        old_ns,
        new_ns,
        target: None,
    })
}

// ---------------------------------------------------------------------
// JSON emission and verification (hand-rolled: no JSON dependency).
// ---------------------------------------------------------------------

fn render_json(results: &[BenchResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    out.push_str("  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"id\": \"{}\",", r.id);
        let _ = writeln!(out, "      \"old_ns\": {},", r.old_ns);
        let _ = writeln!(out, "      \"new_ns\": {},", r.new_ns);
        match r.target {
            Some(t) => {
                let _ = writeln!(out, "      \"speedup\": {:.2},", r.speedup());
                let _ = writeln!(out, "      \"target_speedup\": {t:.1}");
            }
            None => {
                let _ = writeln!(out, "      \"speedup\": {:.2}", r.speedup());
            }
        }
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts the number following `"key":` in `obj`, if present.
fn field_number(obj: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let start = obj.find(&marker)? + marker.len();
    let rest = obj[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn verify(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading: {e}"))?;
    if !text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("schema marker {SCHEMA:?} not found"));
    }
    let mut report = String::from("baseline OK:\n");
    for (id, target) in EXPECTED {
        let marker = format!("\"id\": \"{id}\"");
        let at = text
            .find(&marker)
            .ok_or_else(|| format!("bench id {id:?} missing"))?;
        // The entry's fields live between this id and the next object.
        let entry = &text[at..text[at..].find('}').map_or(text.len(), |e| at + e)];
        let old_ns =
            field_number(entry, "old_ns").ok_or_else(|| format!("{id}: old_ns missing"))?;
        let new_ns =
            field_number(entry, "new_ns").ok_or_else(|| format!("{id}: new_ns missing"))?;
        let speedup =
            field_number(entry, "speedup").ok_or_else(|| format!("{id}: speedup missing"))?;
        if !(old_ns > 0.0 && new_ns > 0.0 && speedup > 0.0) {
            return Err(format!("{id}: non-positive timings"));
        }
        if let Some(t) = target {
            if speedup < *t {
                return Err(format!(
                    "{id}: recorded speedup {speedup:.2}x below target {t:.0}x"
                ));
            }
        }
        let _ = writeln!(report, "  {id}: {speedup:.2}x");
    }
    Ok(report.trim_end().to_string())
}
