//! Timer resolution and overhead measurement (§4.2.1 of the paper).
//!
//! "Measuring run times induces overheads for reading the timer, and so
//! researchers need to ensure that the timer overhead is only a small
//! fraction (we suggest <5 %) of the measurement interval. Furthermore,
//! researchers need to ensure that the timer's precision is sufficient to
//! measure the interval (we suggest 10× higher)."
//!
//! [`TimerProfile`] captures a clock's measured resolution and per-call
//! overhead (like LibSciBench's startup report); [`audit_timer`] applies
//! the two thresholds to a planned measurement interval.

use crate::clock::Clock;

/// Measured characteristics of a time source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimerProfile {
    /// Smallest nonzero difference observed between consecutive reads, in
    /// nanoseconds — the effective resolution.
    pub resolution_ns: f64,
    /// Average cost of one timer read, in nanoseconds.
    pub overhead_ns: f64,
    /// Number of reads used for the calibration.
    pub samples: usize,
}

impl TimerProfile {
    /// Calibrates `clock` with `samples` consecutive reads.
    ///
    /// Resolution is the smallest nonzero delta between consecutive reads;
    /// overhead is the mean delta (each read pays one call).
    pub fn measure(clock: &impl Clock, samples: usize) -> Self {
        let samples = samples.max(16);
        let mut min_delta = u64::MAX;
        let mut prev = clock.now_ns();
        let start = prev;
        let mut nonzero = 0usize;
        for _ in 0..samples {
            let t = clock.now_ns();
            let d = t - prev;
            if d > 0 {
                min_delta = min_delta.min(d);
                nonzero += 1;
            }
            prev = t;
        }
        let total = prev - start;
        let resolution_ns = if nonzero == 0 {
            // Clock never ticked during calibration: resolution is at
            // least the whole window; report the window as a lower bound.
            (total.max(1)) as f64
        } else {
            min_delta as f64
        };
        Self {
            resolution_ns,
            overhead_ns: total as f64 / samples as f64,
            samples,
        }
    }
}

/// Outcome of auditing a timer against a planned measurement interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimerAudit {
    /// Ratio of timer overhead to the interval (paper threshold: < 0.05).
    pub overhead_fraction: f64,
    /// Ratio of interval to resolution (paper threshold: ≥ 10).
    pub precision_ratio: f64,
    /// Whether the overhead criterion holds.
    pub overhead_ok: bool,
    /// Whether the precision criterion holds.
    pub precision_ok: bool,
}

impl TimerAudit {
    /// Whether both of the paper's criteria hold.
    pub fn acceptable(&self) -> bool {
        self.overhead_ok && self.precision_ok
    }

    /// The minimum interval (ns) this timer can measure acceptably.
    pub fn minimum_interval_ns(profile: &TimerProfile) -> f64 {
        let by_overhead = profile.overhead_ns / MAX_OVERHEAD_FRACTION;
        let by_precision = profile.resolution_ns * MIN_PRECISION_RATIO;
        by_overhead.max(by_precision)
    }
}

/// The paper's suggested maximum overhead fraction (<5 %).
pub const MAX_OVERHEAD_FRACTION: f64 = 0.05;
/// The paper's suggested minimum interval/resolution ratio (10×).
pub const MIN_PRECISION_RATIO: f64 = 10.0;

/// Audits a timer profile against a planned measurement interval.
pub fn audit_timer(profile: &TimerProfile, interval_ns: f64) -> TimerAudit {
    let overhead_fraction = if interval_ns > 0.0 {
        profile.overhead_ns / interval_ns
    } else {
        f64::INFINITY
    };
    let precision_ratio = if profile.resolution_ns > 0.0 {
        interval_ns / profile.resolution_ns
    } else {
        f64::INFINITY
    };
    TimerAudit {
        overhead_fraction,
        precision_ratio,
        overhead_ok: overhead_fraction < MAX_OVERHEAD_FRACTION,
        precision_ok: precision_ratio >= MIN_PRECISION_RATIO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{VirtualClock, WallClock};
    use parking_lot::Mutex;

    /// A clock that ticks a fixed amount per read, for deterministic
    /// calibration tests.
    struct TickingClock {
        inner: Mutex<VirtualClock>,
        tick_ns: u64,
    }

    impl TickingClock {
        fn new(tick_ns: u64, granularity_ns: u64) -> Self {
            Self {
                inner: Mutex::new(VirtualClock::with_granularity(granularity_ns)),
                tick_ns,
            }
        }
    }

    impl Clock for TickingClock {
        fn now_ns(&self) -> u64 {
            let mut c = self.inner.lock();
            c.advance(self.tick_ns);
            c.now_ns()
        }
    }

    #[test]
    fn profile_of_ticking_clock() {
        // 7 ns per read, 1 ns granularity → overhead 7 ns, resolution 7 ns.
        let c = TickingClock::new(7, 1);
        let p = TimerProfile::measure(&c, 100);
        assert_eq!(p.resolution_ns, 7.0);
        assert!((p.overhead_ns - 7.0).abs() < 1e-9);
        assert_eq!(p.samples, 100);
    }

    #[test]
    fn profile_detects_coarse_granularity() {
        // Reads cost 10 ns but the clock only shows 100 ns steps.
        let c = TickingClock::new(10, 100);
        let p = TimerProfile::measure(&c, 1000);
        assert_eq!(p.resolution_ns, 100.0);
    }

    #[test]
    fn audit_thresholds() {
        let p = TimerProfile {
            resolution_ns: 10.0,
            overhead_ns: 20.0,
            samples: 100,
        };
        // Interval 1000 ns: overhead 2% ok, precision 100x ok.
        let a = audit_timer(&p, 1000.0);
        assert!(a.acceptable());
        assert!((a.overhead_fraction - 0.02).abs() < 1e-12);
        assert!((a.precision_ratio - 100.0).abs() < 1e-12);
        // Interval 100 ns: overhead 20% fails, precision 10x ok.
        let a = audit_timer(&p, 100.0);
        assert!(!a.overhead_ok && a.precision_ok && !a.acceptable());
        // Interval 50 ns: both fail.
        let a = audit_timer(&p, 50.0);
        assert!(!a.overhead_ok && !a.precision_ok);
    }

    #[test]
    fn minimum_interval_combines_both_criteria() {
        let p = TimerProfile {
            resolution_ns: 10.0,
            overhead_ns: 20.0,
            samples: 0,
        };
        // overhead: 20/0.05 = 400; precision: 10*10 = 100 → 400.
        assert_eq!(TimerAudit::minimum_interval_ns(&p), 400.0);
        let p2 = TimerProfile {
            resolution_ns: 100.0,
            overhead_ns: 1.0,
            samples: 0,
        };
        // overhead: 20; precision: 1000 → 1000.
        assert_eq!(TimerAudit::minimum_interval_ns(&p2), 1000.0);
    }

    #[test]
    fn audit_degenerate_interval() {
        let p = TimerProfile {
            resolution_ns: 10.0,
            overhead_ns: 20.0,
            samples: 0,
        };
        let a = audit_timer(&p, 0.0);
        assert!(!a.acceptable());
    }

    #[test]
    fn wall_clock_profile_is_sane() {
        let c = WallClock::new();
        let p = TimerProfile::measure(&c, 10_000);
        // Any real machine: resolution under 1 ms, overhead under 100 µs.
        assert!(p.resolution_ns > 0.0);
        assert!(
            p.resolution_ns < 1_000_000.0,
            "resolution {}",
            p.resolution_ns
        );
        assert!(p.overhead_ns < 100_000.0, "overhead {}", p.overhead_ns);
        // A 1-second interval is measurable with any sane wall clock.
        assert!(audit_timer(&p, 1e9).acceptable());
    }

    #[test]
    fn frozen_clock_reports_window_lower_bound() {
        // A clock that never ticks.
        struct Frozen;
        impl Clock for Frozen {
            fn now_ns(&self) -> u64 {
                42
            }
        }
        let p = TimerProfile::measure(&Frozen, 100);
        assert!(p.resolution_ns >= 1.0);
        assert_eq!(p.overhead_ns, 0.0);
    }
}
