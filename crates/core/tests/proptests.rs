//! Property-based tests of the core library's invariants: typed metrics,
//! speedups, bounds ordering, plot data and dataset round trips.

use proptest::prelude::*;

use scibench::bounds::{CapabilityVector, OverheadModel, OverheadTerm, ScalingBound};
use scibench::data::DataSet;
use scibench::experiment::design::{Design, Factor};
use scibench::metric::{Cost, Ratio};
use scibench::plot::boxplot::{BoxPlotStats, WhiskerRule};
use scibench::plot::series::Series;
use scibench::speedup::{BaseCase, Speedup};
use scibench::units::{format_quantity, Unit};

fn positive_samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.001f64..1e6, 2..100)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cost_aggregate_rate_equals_harmonic_mean_of_rates(times in positive_samples(), work in 0.1f64..1e6) {
        let cost = Cost::new(times.clone(), Unit::Seconds);
        let agg = cost.aggregate_rate(work).unwrap();
        let rates = cost.rate_for_work(work, Unit::FlopPerSecond);
        let hm = rates.mean().unwrap();
        prop_assert!((agg - hm).abs() < 1e-9 * (1.0 + agg.abs()), "{agg} vs {hm}");
    }

    #[test]
    fn arithmetic_mean_of_rates_never_below_harmonic(times in positive_samples(), work in 0.1f64..1e6) {
        // The misleading mean always flatters (AM >= HM).
        let rates = Cost::new(times, Unit::Seconds).rate_for_work(work, Unit::FlopPerSecond);
        prop_assert!(
            rates.arithmetic_mean_for_comparison_only().unwrap()
                >= rates.mean().unwrap() - 1e-9
        );
    }

    #[test]
    fn geometric_mean_of_ratios_bounded(ratios in prop::collection::vec(0.01f64..100.0, 2..50)) {
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ratios.iter().cloned().fold(0.0, f64::max);
        let g = Ratio::new(ratios).geometric_mean_last_resort().unwrap();
        prop_assert!(min - 1e-12 <= g && g <= max + 1e-12);
    }

    #[test]
    fn speedup_identities(base in 0.001f64..1e4, new in 0.001f64..1e4) {
        let s = Speedup::from_times(base, new, BaseCase::BestSerial);
        prop_assert!((s.factor() - base / new).abs() < 1e-12);
        prop_assert!((s.relative_gain() - (s.factor() - 1.0)).abs() < 1e-12);
        prop_assert_eq!(s.is_slowdown(), base < new);
        // Display always names the base case and its absolute time.
        let text = s.to_string();
        prop_assert!(text.contains("best serial"));
    }

    #[test]
    fn bounds_are_ordered_for_all_parameters(
        base in 0.001f64..10.0,
        b_frac in 0.0f64..0.5,
        p in 1usize..1024,
        ovh in 0.0f64..0.01,
    ) {
        let ideal = ScalingBound::IdealLinear;
        let amdahl = ScalingBound::Amdahl { serial_fraction: b_frac };
        let parallel = ScalingBound::ParallelOverhead {
            serial_fraction: b_frac,
            overhead: OverheadModel::uniform(OverheadTerm::LogLinear(ovh)),
        };
        let ti = ideal.time_bound_s(base, p);
        let ta = amdahl.time_bound_s(base, p);
        let tp = parallel.time_bound_s(base, p);
        prop_assert!(ti <= ta + 1e-15);
        prop_assert!(ta <= tp + 1e-15);
        // Speedup bounds never exceed p for ideal.
        prop_assert!((ideal.speedup_bound(base, p) - p as f64).abs() < 1e-9);
        // Amdahl bound at p=1 is exactly 1.
        prop_assert!((amdahl.speedup_bound(base, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amdahl_monotone_in_serial_fraction(b1 in 0.0f64..1.0, b2 in 0.0f64..1.0, p in 2usize..512) {
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        let s_lo = ScalingBound::Amdahl { serial_fraction: lo }.speedup_bound(1.0, p);
        let s_hi = ScalingBound::Amdahl { serial_fraction: hi }.speedup_bound(1.0, p);
        prop_assert!(s_hi <= s_lo + 1e-12);
    }

    #[test]
    fn roofline_is_min_of_two_ceilings(flops in 1.0f64..1e6, bw in 1.0f64..1e6, intensity in 0.001f64..1e6) {
        let cap = CapabilityVector::roofline(flops, bw);
        let attainable = cap.roofline_attainable(intensity);
        prop_assert!(attainable <= flops + 1e-12);
        prop_assert!(attainable <= intensity * bw + 1e-12);
        prop_assert!(
            (attainable - flops).abs() < 1e-9 || (attainable - intensity * bw).abs() < 1e-9
        );
    }

    #[test]
    fn normalized_performance_in_unit_interval(
        peaks in prop::collection::vec(1.0f64..1e6, 1..6),
        fracs in prop::collection::vec(0.0f64..1.0, 6),
    ) {
        let named: Vec<(String, f64)> =
            peaks.iter().enumerate().map(|(i, &p)| (format!("f{i}"), p)).collect();
        let refs: Vec<(&str, f64)> = named.iter().map(|(n, p)| (n.as_str(), *p)).collect();
        let cap = CapabilityVector::new(&refs);
        let achieved: Vec<f64> =
            peaks.iter().zip(&fracs).map(|(&p, &f)| p * f).collect();
        let norm = cap.normalized(&achieved);
        prop_assert!(norm.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Bottleneck is an argmax.
        let (idx, _) = cap.bottleneck(&achieved);
        prop_assert!(norm.iter().all(|&v| v <= norm[idx] + 1e-12));
    }

    #[test]
    fn boxplot_invariants(xs in prop::collection::vec(-1e5f64..1e5, 4..200)) {
        for rule in [WhiskerRule::MinMax, WhiskerRule::TukeyIqr] {
            let b = BoxPlotStats::from_samples("x", &xs, rule).unwrap();
            prop_assert!(b.whisker_low <= b.five_number.q1 + 1e-12);
            prop_assert!(b.whisker_high >= b.five_number.q3 - 1e-12);
            // Outliers lie strictly outside the whiskers.
            for &o in &b.outliers {
                prop_assert!(o < b.whisker_low || o > b.whisker_high);
            }
            // Every observation is either inside the whiskers or an outlier.
            let inside =
                xs.iter().filter(|&&x| x >= b.whisker_low && x <= b.whisker_high).count();
            prop_assert_eq!(inside + b.outliers.len(), xs.len());
        }
    }

    #[test]
    fn series_sorted_and_range_contains_points(pts in prop::collection::vec((-1e4f64..1e4, -1e4f64..1e4), 1..50)) {
        let s = Series::from_xy("s", &pts, false);
        for w in s.points.windows(2) {
            prop_assert!(w[0].x <= w[1].x);
        }
        let (lo, hi) = s.y_range();
        for p in &s.points {
            prop_assert!(lo <= p.y && p.y <= hi);
        }
    }

    #[test]
    fn dataset_csv_round_trips(rows in prop::collection::vec(prop::collection::vec(-1e6f64..1e6, 3), 0..40)) {
        let mut d = DataSet::new(&["a", "b", "c"]).with_metadata("k", "v");
        for r in &rows {
            d.push_row(r);
        }
        let parsed = DataSet::from_csv(&d.to_csv()).unwrap();
        prop_assert_eq!(parsed.len(), rows.len());
        // Values survive the round trip to printed precision.
        if let (Some(orig), Some(back)) = (d.column("b"), parsed.column("b")) {
            for (o, b) in orig.iter().zip(&back) {
                prop_assert!((o - b).abs() < 1e-9 * (1.0 + o.abs()));
            }
        }
        prop_assert_eq!(parsed.metadata("k"), Some("v"));
    }

    #[test]
    fn full_factorial_size_and_uniqueness(a1 in 1usize..5, a2 in 1usize..5, a3 in 1usize..4) {
        let design = Design::new(vec![
            Factor::numeric("f1", &(0..a1).map(|i| i as f64).collect::<Vec<_>>()),
            Factor::numeric("f2", &(0..a2).map(|i| i as f64).collect::<Vec<_>>()),
            Factor::numeric("f3", &(0..a3).map(|i| i as f64).collect::<Vec<_>>()),
        ]);
        let points = design.full_factorial();
        prop_assert_eq!(points.len(), a1 * a2 * a3);
        let mut dedup = points.clone();
        dedup.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
        dedup.dedup();
        prop_assert_eq!(dedup.len(), points.len());
    }

    #[test]
    fn format_quantity_always_names_the_unit(v in -1e15f64..1e15) {
        let text = format_quantity(v, Unit::FlopPerSecond);
        prop_assert!(text.contains("flop/s"), "{text}");
        let text = format_quantity(v, Unit::Bytes);
        prop_assert!(text.ends_with('B'), "{text}");
    }
}

mod campaign_invariance {
    use proptest::prelude::*;

    use scibench::experiment::campaign::{run_campaign, CampaignConfig};
    use scibench::experiment::design::{Design, Factor};
    use scibench::experiment::measurement::{MeasurementPlan, StoppingRule};
    use scibench::experiment::resilience::{run_campaign_resilient, MeasureFailure, RetryPolicy};

    fn small_design(a: usize, b: usize) -> Design {
        Design::new(vec![
            Factor::numeric("f1", &(0..a).map(|i| i as f64).collect::<Vec<_>>()),
            Factor::numeric("f2", &(0..b).map(|i| i as f64).collect::<Vec<_>>()),
        ])
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn campaign_results_bit_identical_across_thread_counts(
            a in 1usize..4,
            b in 1usize..4,
            n in 3usize..25,
            seed in any::<u64>(),
        ) {
            // Thread count is a pure execution knob: every point's stream
            // derives from (seed, design index), so the full result —
            // every sample of every point — is identical at any width.
            let plan = MeasurementPlan::new("op").stopping(StoppingRule::FixedCount(n));
            let measure = |point: &scibench::experiment::design::RunPoint,
                           rng: &mut scibench_sim::rng::SimRng| {
                let lvl: f64 = point.level(0).parse().unwrap();
                1.0 + lvl * 0.1 + rng.uniform()
            };
            let reference = run_campaign(
                &small_design(a, b),
                &plan,
                &CampaignConfig { seed, threads: 1 },
                measure,
            )
            .unwrap();
            for threads in [2usize, 8] {
                let wide = run_campaign(
                    &small_design(a, b),
                    &plan,
                    &CampaignConfig { seed, threads },
                    measure,
                )
                .unwrap();
                prop_assert_eq!(reference.runs.len(), wide.runs.len());
                for (r, w) in reference.runs.iter().zip(&wide.runs) {
                    prop_assert_eq!(&r.point, &w.point);
                    prop_assert_eq!(r.outcome.samples.len(), w.outcome.samples.len());
                    for (x, y) in r.outcome.samples.iter().zip(&w.outcome.samples) {
                        prop_assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
            }
        }

        #[test]
        fn resilient_campaign_bit_identical_across_thread_counts(
            a in 1usize..4,
            n in 5usize..20,
            fail_rate in 0.0f64..0.3,
            seed in any::<u64>(),
        ) {
            let plan = MeasurementPlan::new("op").stopping(StoppingRule::FixedCount(n));
            let measure = move |_point: &scibench::experiment::design::RunPoint,
                                rng: &mut scibench_sim::rng::SimRng| {
                if rng.uniform() < fail_rate {
                    Err(MeasureFailure::Failed("transient".into()))
                } else {
                    Ok(1.0 + rng.uniform())
                }
            };
            let run = |threads: usize| {
                run_campaign_resilient(
                    &small_design(a, 2),
                    &plan,
                    &CampaignConfig { seed, threads },
                    &RetryPolicy::default(),
                    measure,
                )
            };
            let reference = run(1);
            for threads in [2usize, 8] {
                let wide = run(threads);
                match (&reference, &wide) {
                    (Ok(r), Ok(w)) => {
                        prop_assert_eq!(r.health, w.health);
                        for (x, y) in r.runs.iter().zip(&w.runs) {
                            prop_assert_eq!(&x.point, &y.point);
                            prop_assert_eq!(&x.fate, &y.fate);
                            prop_assert_eq!(x.panics_contained, y.panics_contained);
                            match (&x.outcome, &y.outcome) {
                                (Some(ox), Some(oy)) => {
                                    prop_assert_eq!(ox.samples.len(), oy.samples.len());
                                    for (s, t) in ox.samples.iter().zip(&oy.samples) {
                                        prop_assert_eq!(s.to_bits(), t.to_bits());
                                    }
                                }
                                (None, None) => {}
                                other => prop_assert!(false, "outcome mismatch: {other:?}"),
                            }
                        }
                    }
                    (Err(re), Err(we)) => prop_assert_eq!(re, we),
                    other => prop_assert!(false, "result kind mismatch: {other:?}"),
                }
            }
        }
    }
}
