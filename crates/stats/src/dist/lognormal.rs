//! Log-normal distribution.
//!
//! §3.1.2 of the paper: "Many nondeterministic measurements that are always
//! positive are skewed to the right and have a long tail following a so
//! called log-normal distribution." The simulator uses this distribution as
//! its primary noise model and the normalization pipeline inverts it.

use crate::error::{StatsError, StatsResult};
use crate::special::erfc;

use super::{normal::std_normal_inv_cdf, ContinuousDistribution};

/// Log-normal distribution: `ln X ~ N(mu, sigma²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates the distribution; `sigma` must be positive and finite.
    pub fn new(mu: f64, sigma: f64) -> StatsResult<Self> {
        if !mu.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "mu",
                value: mu,
            });
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "sigma",
                value: sigma,
            });
        }
        Ok(Self { mu, sigma })
    }

    /// Location parameter of the underlying normal (`E[ln X]`).
    pub fn location(&self) -> f64 {
        self.mu
    }

    /// Scale parameter of the underlying normal (`sd[ln X]`).
    pub fn scale(&self) -> f64 {
        self.sigma
    }

    /// Mean of the distribution: `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Median of the distribution: `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Variance of the distribution.
    pub fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }
}

impl ContinuousDistribution for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        0.5 * erfc(-z / std::f64::consts::SQRT_2)
    }

    fn inv_cdf(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "LogNormal::inv_cdf requires 0 < p < 1");
        (self.mu + self.sigma * std_normal_inv_cdf(p)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_exp_mu() {
        let d = LogNormal::new(1.2, 0.4).unwrap();
        assert!((d.cdf(d.median()) - 0.5).abs() < 1e-10);
        assert!((d.median() - 1.2f64.exp()).abs() < 1e-12);
    }

    #[test]
    fn mean_exceeds_median_right_skew() {
        // Right-skew: mean > median, exactly as the paper describes for
        // latency measurements.
        let d = LogNormal::new(0.0, 1.0).unwrap();
        assert!(d.mean() > d.median());
        assert!((d.mean() - 0.5f64.exp()).abs() < 1e-12);
    }

    #[test]
    fn inv_round_trip() {
        let d = LogNormal::new(-0.5, 0.7).unwrap();
        for &p in &[0.01, 0.25, 0.5, 0.9, 0.999] {
            let x = d.inv_cdf(p);
            assert!((d.cdf(x) - p).abs() < 1e-8);
        }
    }

    #[test]
    fn support_is_positive() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        assert_eq!(d.pdf(0.0), 0.0);
        assert_eq!(d.cdf(-3.0), 0.0);
        assert!(d.inv_cdf(0.001) > 0.0);
    }

    #[test]
    fn variance_formula() {
        let d = LogNormal::new(0.3, 0.5).unwrap();
        let want = ((0.25f64).exp() - 1.0) * (0.6 + 0.25f64).exp();
        assert!((d.variance() - want).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::new(f64::INFINITY, 1.0).is_err());
    }
}
