//! Regenerates Figure 2: normalization of 1M ping-pong samples.

use scibench_bench::figures::fig2_normalization;
use scibench_bench::{output, samples_from_env, DEFAULT_SEED};

fn main() {
    let samples = samples_from_env(1_000_000);
    let fig = fig2_normalization::compute(samples, DEFAULT_SEED).expect("figure 2 pipeline");
    println!("{}", fig.render());
    let path = output::write_csv("fig2_qq", &fig.dataset()).expect("write csv");
    println!("Q-Q data: {}", path.display());
}
