//! Harness self-accounting: what did measuring cost?
//!
//! Rules 4 and 5 of Hoefler & Belli require the measurement apparatus
//! itself to be characterized and disclosed. This module measures the
//! tracer's own primitive costs (one clock read, one event record) and
//! combines them with the event tallies of an actual trace to estimate
//! how many nanoseconds the harness spent observing, relative to the
//! payload it observed.

use std::fmt::Write as _;

use scibench_timer::{Clock, WallClock};

use crate::event::category;
use crate::trace::Trace;
use crate::tracer::Tracer;

/// Median per-call cost of `f`, measured over `reps` batches of `batch`
/// calls each.
fn median_cost_ns(reps: usize, batch: usize, mut f: impl FnMut()) -> f64 {
    let clock = WallClock::new();
    let mut costs: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = clock.now_ns();
            for _ in 0..batch {
                f();
            }
            (clock.now_ns() - t0) as f64 / batch as f64
        })
        .collect();
    costs.sort_by(|a, b| a.partial_cmp(b).expect("costs are finite"));
    costs[costs.len() / 2]
}

/// Measured primitive costs of the tracing harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadProbe {
    /// Median cost of one clock read, in nanoseconds.
    pub timer_read_ns: f64,
    /// Median cost of recording one event into a lane buffer (clock read
    /// included), in nanoseconds.
    pub record_ns: f64,
}

impl OverheadProbe {
    /// Measures both primitive costs on the current machine.
    pub fn measure() -> Self {
        let clock = WallClock::new();
        let timer_read_ns = median_cost_ns(9, 1_000, || {
            std::hint::black_box(clock.now_ns());
        });
        let tracer = Tracer::new();
        let mut lane = tracer.lane(0);
        let record_ns = median_cost_ns(9, 1_000, || {
            lane.instant(category::HARNESS, "probe", &[]);
        });
        Self {
            timer_read_ns,
            record_ns,
        }
    }
}

/// The harness-overhead report: primitive costs × event tallies, set
/// against the payload the trace observed.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadReport {
    /// Total events in the trace.
    pub events: usize,
    /// Span events (each costs two clock reads and one record).
    pub spans: usize,
    /// Instant events (one clock read, one record).
    pub instants: usize,
    /// Counter events (one clock read, one record).
    pub counters: usize,
    /// Median cost of one clock read, in nanoseconds.
    pub timer_read_ns: f64,
    /// Median cost of one event record, in nanoseconds.
    pub record_ns: f64,
    /// Estimated total tracing cost, in nanoseconds.
    pub tracing_ns: f64,
    /// Total span time in the payload category, in nanoseconds.
    pub payload_span_ns: u64,
    /// The category whose span time is treated as payload.
    pub payload_cat: String,
}

impl OverheadReport {
    /// Accounts for `trace` using the primitive costs in `probe`, with
    /// `payload_cat` span time as the denominator.
    pub fn from_trace(trace: &Trace, probe: &OverheadProbe, payload_cat: &str) -> Self {
        let (spans, instants, counters) = trace.kind_counts();
        let events = trace.len();
        // A span performs one extra clock read (begin) beyond the read
        // already folded into `record_ns`.
        let tracing_ns = events as f64 * probe.record_ns + spans as f64 * probe.timer_read_ns;
        Self {
            events,
            spans,
            instants,
            counters,
            timer_read_ns: probe.timer_read_ns,
            record_ns: probe.record_ns,
            tracing_ns,
            payload_span_ns: trace.total_span_ns(payload_cat),
            payload_cat: payload_cat.to_string(),
        }
    }

    /// Estimated tracing cost as a fraction of payload span time, or
    /// `None` when the trace holds no payload spans.
    pub fn overhead_fraction(&self) -> Option<f64> {
        if self.payload_span_ns == 0 {
            None
        } else {
            Some(self.tracing_ns / self.payload_span_ns as f64)
        }
    }

    /// Renders the Rule 4/5 disclosure block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "harness self-accounting (Rules 4-5):");
        let _ = writeln!(
            out,
            "  timer read: {:.1} ns/call; event record: {:.1} ns/event",
            self.timer_read_ns, self.record_ns
        );
        let _ = writeln!(
            out,
            "  events recorded: {} ({} spans, {} instants, {} counters)",
            self.events, self.spans, self.instants, self.counters
        );
        let _ = writeln!(
            out,
            "  estimated tracing cost: {:.1} us over {:.1} us of '{}' payload",
            self.tracing_ns / 1e3,
            self.payload_span_ns as f64 / 1e3,
            self.payload_cat
        );
        match self.overhead_fraction() {
            Some(f) => {
                let _ = writeln!(
                    out,
                    "  overhead fraction: {:.3}% of payload span time{}",
                    f * 100.0,
                    if f > 0.05 {
                        " -- EXCEEDS the 5% budget; treat timings as perturbed"
                    } else {
                        " (within the 5% budget)"
                    }
                );
            }
            None => {
                let _ = writeln!(out, "  overhead fraction: n/a (no payload spans recorded)");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ArgValue, EventKind, EventName, TraceEvent};

    #[test]
    fn probe_yields_positive_costs() {
        let probe = OverheadProbe::measure();
        assert!(probe.timer_read_ns > 0.0);
        assert!(probe.record_ns > 0.0);
        assert!(probe.timer_read_ns.is_finite());
        assert!(probe.record_ns.is_finite());
    }

    #[test]
    fn report_accounts_for_event_mix() {
        let trace = Trace {
            events: vec![
                TraceEvent {
                    cat: category::CAMPAIGN,
                    name: EventName::from("point"),
                    t_ns: 0,
                    lane: 0,
                    seq: 0,
                    kind: EventKind::Span { dur_ns: 1_000_000 },
                    args: vec![("i", ArgValue::U64(0))],
                },
                TraceEvent {
                    cat: category::RESILIENCE,
                    name: EventName::from("retry"),
                    t_ns: 10,
                    lane: 0,
                    seq: 1,
                    kind: EventKind::Instant,
                    args: vec![],
                },
            ],
        };
        let probe = OverheadProbe {
            timer_read_ns: 20.0,
            record_ns: 50.0,
        };
        let report = OverheadReport::from_trace(&trace, &probe, category::CAMPAIGN);
        assert_eq!(report.events, 2);
        assert_eq!(report.spans, 1);
        assert_eq!(report.instants, 1);
        // 2 records (50 each) + 1 extra span clock read (20).
        assert_eq!(report.tracing_ns, 120.0);
        assert_eq!(report.payload_span_ns, 1_000_000);
        let f = report.overhead_fraction().unwrap();
        assert!((f - 0.00012).abs() < 1e-12);
        let text = report.render();
        assert!(text.contains("Rules 4-5"));
        assert!(text.contains("within the 5% budget"));
    }

    #[test]
    fn empty_payload_renders_na() {
        let report = OverheadReport::from_trace(
            &Trace::default(),
            &OverheadProbe {
                timer_read_ns: 1.0,
                record_ns: 1.0,
            },
            category::CAMPAIGN,
        );
        assert_eq!(report.overhead_fraction(), None);
        assert!(report.render().contains("n/a"));
    }

    #[test]
    fn over_budget_is_flagged() {
        let trace = Trace {
            events: vec![TraceEvent {
                cat: category::CAMPAIGN,
                name: EventName::from("point"),
                t_ns: 0,
                lane: 0,
                seq: 0,
                kind: EventKind::Span { dur_ns: 100 },
                args: vec![],
            }],
        };
        let probe = OverheadProbe {
            timer_read_ns: 100.0,
            record_ns: 100.0,
        };
        let report = OverheadReport::from_trace(&trace, &probe, category::CAMPAIGN);
        assert!(report.overhead_fraction().unwrap() > 0.05);
        assert!(report.render().contains("EXCEEDS"));
    }
}
