//! The merged, post-run view of a tracer's events.

use std::collections::BTreeMap;

use crate::event::{is_schedule_dependent, EventKind, TraceEvent};

/// A merged trace: all lanes' events, sorted by `(t_ns, lane, seq)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// The events, in stable merged order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events in `cat`.
    pub fn count(&self, cat: &str) -> usize {
        self.events.iter().filter(|e| e.cat == cat).count()
    }

    /// Event count per category.
    pub fn category_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for e in &self.events {
            *out.entry(e.cat).or_insert(0) += 1;
        }
        out
    }

    /// Event count per category, excluding schedule-dependent categories.
    ///
    /// For a fixed seed and design this map is identical at any thread
    /// count — the determinism invariant the proptests pin down.
    pub fn deterministic_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for e in &self.events {
            if !is_schedule_dependent(e.cat) {
                *out.entry(e.cat).or_insert(0) += 1;
            }
        }
        out
    }

    /// `(spans, instants, counters)` tallies over the whole trace.
    pub fn kind_counts(&self) -> (usize, usize, usize) {
        let mut spans = 0;
        let mut instants = 0;
        let mut counters = 0;
        for e in &self.events {
            match e.kind {
                EventKind::Span { .. } => spans += 1,
                EventKind::Instant => instants += 1,
                EventKind::Counter { .. } => counters += 1,
            }
        }
        (spans, instants, counters)
    }

    /// Sum of span durations in `cat`, in nanoseconds.
    pub fn total_span_ns(&self, cat: &str) -> u64 {
        self.events
            .iter()
            .filter(|e| e.cat == cat)
            .filter_map(TraceEvent::dur_ns)
            .sum()
    }

    /// Appends another trace's events and re-sorts into stable order.
    pub fn merge(&mut self, other: Trace) {
        self.events.extend(other.events);
        self.events.sort_by_key(|e| (e.t_ns, e.lane, e.seq));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{category, ArgValue, EventName};

    fn ev(cat: &'static str, t_ns: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            cat,
            name: EventName::from("e"),
            t_ns,
            lane: 0,
            seq: t_ns,
            kind,
            args: vec![("k", ArgValue::U64(1))],
        }
    }

    #[test]
    fn counts_and_sums() {
        let trace = Trace {
            events: vec![
                ev(category::POOL, 0, EventKind::Span { dur_ns: 10 }),
                ev(category::POOL, 5, EventKind::Span { dur_ns: 20 }),
                ev(category::SCHED, 6, EventKind::Instant),
                ev(category::CAMPAIGN, 7, EventKind::Counter { value: 3.0 }),
            ],
        };
        assert_eq!(trace.len(), 4);
        assert!(!trace.is_empty());
        assert_eq!(trace.count(category::POOL), 2);
        assert_eq!(trace.total_span_ns(category::POOL), 30);
        assert_eq!(trace.kind_counts(), (2, 1, 1));
        assert_eq!(trace.category_counts().len(), 3);
        let det = trace.deterministic_counts();
        assert!(!det.contains_key(category::SCHED));
        assert_eq!(det[category::POOL], 2);
        assert_eq!(trace.events[0].arg("k"), Some(&ArgValue::U64(1)));
        assert_eq!(trace.events[0].arg("missing"), None);
    }

    #[test]
    fn merge_restores_order() {
        let mut a = Trace {
            events: vec![ev(category::POOL, 10, EventKind::Instant)],
        };
        let b = Trace {
            events: vec![ev(category::POOL, 2, EventKind::Instant)],
        };
        a.merge(b);
        assert_eq!(a.events[0].t_ns, 2);
        assert_eq!(a.events[1].t_ns, 10);
    }
}
