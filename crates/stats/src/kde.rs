//! Gaussian kernel density estimation for the paper's density plots
//! (Figures 1, 2, 3 and the violin plots of Figure 7(c)).
//!
//! Two evaluation strategies share one API: exact O(n·g) summation for
//! small samples and linear-binned convolution (O(n + g·w)) for the
//! million-sample latency datasets the paper works with.

use serde::{Deserialize, Serialize};

use crate::error::{StatsError, StatsResult};
use crate::quantile::FiveNumberSummary;
use crate::summary::sample_std_dev;
use crate::validate_samples;

/// Bandwidth selection rules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Bandwidth {
    /// Silverman's rule of thumb:
    /// `h = 0.9·min(s, IQR/1.34)·n^(−1/5)` (R's `bw.nrd0`).
    Silverman,
    /// Scott's rule: `h = 1.06·s·n^(−1/5)`.
    Scott,
    /// A fixed, user-supplied bandwidth (> 0).
    Fixed(f64),
}

/// One evaluated density curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityEstimate {
    /// Grid positions (ascending, evenly spaced).
    pub x: Vec<f64>,
    /// Density values at each grid position.
    pub density: Vec<f64>,
    /// The bandwidth that was used.
    pub bandwidth: f64,
}

impl DensityEstimate {
    /// Location of the highest density (the main mode).
    pub fn mode(&self) -> f64 {
        let mut best = 0;
        for (i, &d) in self.density.iter().enumerate() {
            if d > self.density[best] {
                best = i;
            }
        }
        self.x[best]
    }

    /// Numerically integrates the density over the grid (trapezoid);
    /// should be close to 1 when the grid covers the support.
    pub fn integral(&self) -> f64 {
        if self.x.len() < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        for i in 1..self.x.len() {
            total += 0.5 * (self.density[i] + self.density[i - 1]) * (self.x[i] - self.x[i - 1]);
        }
        total
    }

    /// Interpolated density at an arbitrary position (0 outside the grid).
    pub fn at(&self, x: f64) -> f64 {
        if self.x.is_empty() || x < self.x[0] || x > *self.x.last().unwrap() {
            return 0.0;
        }
        // Degenerate single-point grid: `x` equals the only grid point.
        if self.x.len() < 2 {
            return self.density.first().copied().unwrap_or(0.0);
        }
        let step = self.x[1] - self.x[0];
        if !step.is_finite() || step <= 0.0 {
            return self.density.first().copied().unwrap_or(0.0);
        }
        let idx = (((x - self.x[0]) / step).floor() as usize).min(self.x.len() - 1);
        if idx + 1 >= self.x.len() {
            return *self.density.last().unwrap();
        }
        let frac = (x - self.x[idx]) / step;
        self.density[idx] * (1.0 - frac) + self.density[idx + 1] * frac
    }
}

/// Resolves a bandwidth rule against the sample.
pub fn resolve_bandwidth(xs: &[f64], rule: Bandwidth) -> StatsResult<f64> {
    validate_samples(xs)?;
    match rule {
        Bandwidth::Fixed(h) => {
            if !(h.is_finite() && h > 0.0) {
                return Err(StatsError::InvalidParameter {
                    name: "bandwidth",
                    value: h,
                });
            }
            Ok(h)
        }
        Bandwidth::Silverman | Bandwidth::Scott => {
            if xs.len() < 2 {
                return Err(StatsError::TooFewSamples {
                    required: 2,
                    actual: xs.len(),
                });
            }
            let s = sample_std_dev(xs)?;
            let n = xs.len() as f64;
            let h = match rule {
                Bandwidth::Silverman => {
                    let iqr = FiveNumberSummary::from_samples(xs)?.iqr();
                    let spread = if iqr > 0.0 { s.min(iqr / 1.34) } else { s };
                    0.9 * spread * n.powf(-0.2)
                }
                Bandwidth::Scott => 1.06 * s * n.powf(-0.2),
                Bandwidth::Fixed(_) => unreachable!(),
            };
            if h <= 0.0 {
                return Err(StatsError::ZeroVariance);
            }
            Ok(h)
        }
    }
}

/// Threshold above which the binned evaluation is used.
const BINNED_THRESHOLD: usize = 4096;

/// Estimates the density of `xs` on `grid_size` evenly spaced points
/// covering `[min − 3h, max + 3h]`.
///
/// Samples larger than a few thousand observations are evaluated by linear
/// binning plus kernel convolution, which is exact to well under plotting
/// resolution and fast enough for the paper's 10⁶-sample figures.
pub fn kde(xs: &[f64], rule: Bandwidth, grid_size: usize) -> StatsResult<DensityEstimate> {
    validate_samples(xs)?;
    if grid_size < 2 {
        return Err(StatsError::InvalidParameter {
            name: "grid_size",
            value: grid_size as f64,
        });
    }
    let h = resolve_bandwidth(xs, rule)?;
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let lo = min - 3.0 * h;
    let hi = max + 3.0 * h;
    let step = (hi - lo) / (grid_size - 1) as f64;
    let grid: Vec<f64> = (0..grid_size).map(|i| lo + i as f64 * step).collect();

    let density = if xs.len() <= BINNED_THRESHOLD {
        kde_exact(xs, &grid, h)
    } else {
        kde_binned(xs, &grid, lo, step, h)
    };

    Ok(DensityEstimate {
        x: grid,
        density,
        bandwidth: h,
    })
}

/// Exact Gaussian KDE: O(n · g).
fn kde_exact(xs: &[f64], grid: &[f64], h: f64) -> Vec<f64> {
    let norm = 1.0 / (xs.len() as f64 * h * (2.0 * std::f64::consts::PI).sqrt());
    grid.iter()
        .map(|&g| {
            let mut acc = 0.0;
            for &x in xs {
                let z = (g - x) / h;
                if z.abs() < 8.0 {
                    acc += (-0.5 * z * z).exp();
                }
            }
            acc * norm
        })
        .collect()
}

/// Linear-binned Gaussian KDE: O(n + g·w) where w is the kernel halfwidth
/// in grid cells.
fn kde_binned(xs: &[f64], grid: &[f64], lo: f64, step: f64, h: f64) -> Vec<f64> {
    let g = grid.len();
    // Linear binning: distribute each sample over its two nearest grid
    // points proportionally.
    let mut counts = vec![0.0f64; g];
    for &x in xs {
        // Clamp before the cast: float rounding at the grid edges (or a
        // sample exactly at `hi`) must not index one past the last bin.
        let pos = ((x - lo) / step).clamp(0.0, (g - 1) as f64);
        let i = (pos.floor() as usize).min(g - 1);
        let frac = pos - i as f64;
        if i + 1 < g {
            counts[i] += 1.0 - frac;
            counts[i + 1] += frac;
        } else {
            counts[g - 1] += 1.0;
        }
    }
    // Precompute the kernel on the grid spacing out to 6h.
    let halfwidth = ((6.0 * h / step).ceil() as usize).min(g);
    let kernel: Vec<f64> = (0..=halfwidth)
        .map(|d| {
            let z = d as f64 * step / h;
            (-0.5 * z * z).exp()
        })
        .collect();
    let norm = 1.0 / (xs.len() as f64 * h * (2.0 * std::f64::consts::PI).sqrt());
    let mut density = vec![0.0f64; g];
    for (i, &c) in counts.iter().enumerate() {
        if c == 0.0 {
            continue;
        }
        let lo_j = i.saturating_sub(halfwidth);
        let hi_j = (i + halfwidth).min(g - 1);
        for (j, dens) in density.iter_mut().enumerate().take(hi_j + 1).skip(lo_j) {
            *dens += c * kernel[i.abs_diff(j)];
        }
    }
    for d in &mut density {
        *d *= norm;
    }
    density
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normal_sample(n: usize, mu: f64, sigma: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                mu + sigma * crate::dist::normal::std_normal_inv_cdf(u)
            })
            .collect()
    }

    #[test]
    fn density_integrates_to_one() {
        let xs = normal_sample(500, 10.0, 2.0);
        let d = kde(&xs, Bandwidth::Silverman, 512).unwrap();
        assert!(
            (d.integral() - 1.0).abs() < 0.01,
            "integral = {}",
            d.integral()
        );
    }

    #[test]
    fn mode_near_true_mean_for_normal_data() {
        let xs = normal_sample(1000, 5.0, 1.0);
        let d = kde(&xs, Bandwidth::Silverman, 512).unwrap();
        assert!((d.mode() - 5.0).abs() < 0.2, "mode = {}", d.mode());
    }

    #[test]
    fn binned_matches_exact() {
        // Same data evaluated both ways must agree closely.
        let xs = normal_sample(2000, 0.0, 1.0);
        let h = resolve_bandwidth(&xs, Bandwidth::Silverman).unwrap();
        let d = kde(&xs, Bandwidth::Fixed(h), 256).unwrap();
        let exact = kde_exact(&xs, &d.x, h);
        for (a, b) in d.density.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        // Force the binned path with a large sample and check integral.
        let big: Vec<f64> = (0..20_000)
            .map(|i| {
                let u = (i as f64 + 0.5) / 20_000.0;
                crate::dist::normal::std_normal_inv_cdf(u)
            })
            .collect();
        let db = kde(&big, Bandwidth::Silverman, 512).unwrap();
        assert!((db.integral() - 1.0).abs() < 0.01);
        assert!(db.mode().abs() < 0.1);
    }

    #[test]
    fn bimodal_data_has_two_modes() {
        let mut xs = normal_sample(400, 0.0, 0.3);
        xs.extend(normal_sample(400, 5.0, 0.3));
        let d = kde(&xs, Bandwidth::Silverman, 512).unwrap();
        // Density at both centers far above density at the valley.
        let at0 = d.at(0.0);
        let at5 = d.at(5.0);
        let mid = d.at(2.5);
        assert!(at0 > 4.0 * mid, "{at0} vs {mid}");
        assert!(at5 > 4.0 * mid);
    }

    #[test]
    fn silverman_matches_formula() {
        let xs = normal_sample(100, 0.0, 1.0);
        let h = resolve_bandwidth(&xs, Bandwidth::Silverman).unwrap();
        let s = sample_std_dev(&xs).unwrap();
        let iqr = FiveNumberSummary::from_samples(&xs).unwrap().iqr();
        let want = 0.9 * s.min(iqr / 1.34) * 100f64.powf(-0.2);
        assert!((h - want).abs() < 1e-12);
    }

    #[test]
    fn fixed_bandwidth_respected() {
        let xs = normal_sample(50, 0.0, 1.0);
        let d = kde(&xs, Bandwidth::Fixed(0.5), 64).unwrap();
        assert_eq!(d.bandwidth, 0.5);
    }

    #[test]
    fn at_outside_grid_is_zero() {
        let xs = normal_sample(50, 0.0, 1.0);
        let d = kde(&xs, Bandwidth::Silverman, 64).unwrap();
        assert_eq!(d.at(1e9), 0.0);
        assert_eq!(d.at(-1e9), 0.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(kde(&[], Bandwidth::Silverman, 64).is_err());
        assert!(kde(&[1.0, 2.0], Bandwidth::Fixed(0.0), 64).is_err());
        assert!(kde(&[1.0, 2.0], Bandwidth::Silverman, 1).is_err());
        assert!(resolve_bandwidth(&[1.0], Bandwidth::Silverman).is_err());
    }

    #[test]
    fn constant_sample_rejected() {
        assert!(matches!(
            kde(&[2.0; 10], Bandwidth::Silverman, 64),
            Err(StatsError::ZeroVariance)
        ));
    }
}
