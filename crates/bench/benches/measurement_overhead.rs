//! Criterion benches of the measurement harness itself: how much the
//! bookkeeping (timer reads, adaptive CI checks, Welford accumulation)
//! costs relative to a bare loop — LibSciBench's "low-overhead data
//! collection" claim, quantified.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scibench::experiment::measurement::{MeasurementPlan, StoppingRule};
use scibench_stats::summary::OnlineMoments;
use scibench_timer::clock::{Clock, WallClock};
use scibench_timer::watch::{MultiEventTimer, Stopwatch};

fn work() -> f64 {
    let mut acc = 0u64;
    for i in 0..64u64 {
        acc = acc.wrapping_add(i.wrapping_mul(0x9E3779B97F4A7C15));
    }
    (acc & 0xFF) as f64
}

fn bench_bare_vs_harness(c: &mut Criterion) {
    let mut g = c.benchmark_group("harness_overhead");
    g.bench_function("bare_loop_100", |b| {
        b.iter(|| {
            let mut sink = 0.0;
            for _ in 0..100 {
                sink += work();
            }
            black_box(sink)
        })
    });
    g.bench_function("fixed_plan_100", |b| {
        let plan = MeasurementPlan::new("op").stopping(StoppingRule::FixedCount(100));
        b.iter(|| plan.run(|| black_box(work())).unwrap())
    });
    g.bench_function("adaptive_median_plan", |b| {
        let plan = MeasurementPlan::new("op").stopping(StoppingRule::AdaptiveMedianCi {
            confidence: 0.95,
            rel_error: 0.05,
            batch: 25,
            max_samples: 2_000,
        });
        b.iter(|| plan.run(|| black_box(work())).unwrap())
    });
    g.finish();
}

fn bench_timer_reads(c: &mut Criterion) {
    let clock = WallClock::new();
    let mut g = c.benchmark_group("timer");
    g.bench_function("clock_read", |b| b.iter(|| black_box(clock.now_ns())));
    g.bench_function("stopwatch_cycle", |b| {
        b.iter(|| {
            let mut sw = Stopwatch::new();
            sw.start(&clock);
            black_box(work());
            sw.stop(&clock)
        })
    });
    g.bench_function("multi_event_k16_blocks4", |b| {
        let timer = MultiEventTimer::new(16);
        b.iter(|| {
            timer.measure(&clock, 4, || {
                black_box(work());
            })
        })
    });
    g.finish();
}

fn bench_accumulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("accumulation");
    g.bench_function("welford_push_1000", |b| {
        b.iter(|| {
            let mut m = OnlineMoments::new();
            for i in 0..1000 {
                m.push(black_box(i as f64));
            }
            m
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_bare_vs_harness,
    bench_timer_reads,
    bench_accumulation
);
criterion_main!(benches);
