//! Complete descriptive statistics of a sample.
//!
//! A [`Description`] bundles every summary the paper's reporting sections
//! use — location (three means, median), spread (sd, CoV, IQR, min/max),
//! shape (skewness, excess kurtosis, Bowley skewness) — so report code
//! computes them once and consistently. Moment-based skewness > 0 together
//! with a rejected normality test is the crate's operational definition of
//! the "right-skewed, long-tailed" latency data of §3.1.2.

use serde::{Deserialize, Serialize};

use crate::error::StatsResult;
use crate::quantile::FiveNumberSummary;
use crate::summary::{arithmetic_mean, geometric_mean, harmonic_mean, sample_std_dev};
use crate::validate_samples;

/// Full descriptive summary of one sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Description {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Geometric mean (`None` if any observation ≤ 0).
    pub geometric_mean: Option<f64>,
    /// Harmonic mean (`None` if any observation ≤ 0).
    pub harmonic_mean: Option<f64>,
    /// Five-number summary (min, quartiles, max).
    pub five_number: FiveNumberSummary,
    /// Sample standard deviation (`None` for n < 2).
    pub std_dev: Option<f64>,
    /// Coefficient of variation (`None` when undefined).
    pub cov: Option<f64>,
    /// Moment-based sample skewness g₁ (`None` for n < 3 or zero sd).
    pub skewness: Option<f64>,
    /// Excess kurtosis g₂ (`None` for n < 4 or zero sd).
    pub excess_kurtosis: Option<f64>,
}

/// Sample skewness `g₁ = m₃ / m₂^{3/2}` (biased moment estimator).
pub fn skewness(xs: &[f64]) -> StatsResult<Option<f64>> {
    validate_samples(xs)?;
    if xs.len() < 3 {
        return Ok(None);
    }
    let n = xs.len() as f64;
    let mean = arithmetic_mean(xs)?;
    let m2: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    if m2 <= 0.0 {
        return Ok(None);
    }
    let m3: f64 = xs.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n;
    Ok(Some(m3 / m2.powf(1.5)))
}

/// Excess kurtosis `g₂ = m₄ / m₂² − 3` (biased moment estimator).
pub fn excess_kurtosis(xs: &[f64]) -> StatsResult<Option<f64>> {
    validate_samples(xs)?;
    if xs.len() < 4 {
        return Ok(None);
    }
    let n = xs.len() as f64;
    let mean = arithmetic_mean(xs)?;
    let m2: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    if m2 <= 0.0 {
        return Ok(None);
    }
    let m4: f64 = xs.iter().map(|x| (x - mean).powi(4)).sum::<f64>() / n;
    Ok(Some(m4 / (m2 * m2) - 3.0))
}

/// Computes the full description of a sample.
pub fn describe(xs: &[f64]) -> StatsResult<Description> {
    validate_samples(xs)?;
    let mean = arithmetic_mean(xs)?;
    let five_number = FiveNumberSummary::from_samples(xs)?;
    let std_dev = if xs.len() >= 2 {
        sample_std_dev(xs).ok()
    } else {
        None
    };
    let cov = std_dev.and_then(|s| (mean != 0.0).then(|| s / mean));
    Ok(Description {
        n: xs.len(),
        mean,
        geometric_mean: geometric_mean(xs).ok(),
        harmonic_mean: harmonic_mean(xs).ok(),
        five_number,
        std_dev,
        cov,
        skewness: skewness(xs)?,
        excess_kurtosis: excess_kurtosis(xs)?,
    })
}

impl Description {
    /// Renders a one-block textual summary.
    pub fn render(&self) -> String {
        let fmt_opt = |o: Option<f64>| match o {
            Some(v) => format!("{v:.6}"),
            None => "n/a".into(),
        };
        format!(
            "n={}  mean={:.6}  gm={}  hm={}\nmin={:.6}  q1={:.6}  median={:.6}  q3={:.6}  max={:.6}\nsd={}  CoV={}  skew={}  ex.kurtosis={}\n",
            self.n,
            self.mean,
            fmt_opt(self.geometric_mean),
            fmt_opt(self.harmonic_mean),
            self.five_number.min,
            self.five_number.q1,
            self.five_number.median,
            self.five_number.q3,
            self.five_number.max,
            fmt_opt(self.std_dev),
            fmt_opt(self.cov),
            fmt_opt(self.skewness),
            fmt_opt(self.excess_kurtosis),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normal_sample(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                crate::dist::normal::std_normal_inv_cdf(u)
            })
            .collect()
    }

    #[test]
    fn symmetric_sample_has_zero_skew() {
        let xs = normal_sample(1001);
        let s = skewness(&xs).unwrap().unwrap();
        assert!(s.abs() < 0.01, "skew {s}");
        // Normal data: excess kurtosis near 0.
        let k = excess_kurtosis(&xs).unwrap().unwrap();
        assert!(k.abs() < 0.25, "kurtosis {k}");
    }

    #[test]
    fn lognormal_sample_is_right_skewed_heavy_tailed() {
        let xs: Vec<f64> = normal_sample(2000).iter().map(|z| z.exp()).collect();
        assert!(skewness(&xs).unwrap().unwrap() > 1.0);
        assert!(excess_kurtosis(&xs).unwrap().unwrap() > 1.0);
    }

    #[test]
    fn left_skew_detected() {
        let xs: Vec<f64> = normal_sample(2000).iter().map(|z| -(z.exp())).collect();
        assert!(skewness(&xs).unwrap().unwrap() < -1.0);
    }

    #[test]
    fn uniform_has_negative_excess_kurtosis() {
        // Uniform: excess kurtosis = -1.2.
        let xs: Vec<f64> = (0..5000).map(|i| i as f64 / 5000.0).collect();
        let k = excess_kurtosis(&xs).unwrap().unwrap();
        assert!((k + 1.2).abs() < 0.05, "kurtosis {k}");
    }

    #[test]
    fn describe_bundles_everything() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let d = describe(&xs).unwrap();
        assert_eq!(d.n, 100);
        assert_eq!(d.mean, 50.5);
        assert!(d.geometric_mean.unwrap() < d.mean);
        assert!(d.harmonic_mean.unwrap() < d.geometric_mean.unwrap());
        assert!(d.std_dev.is_some());
        assert!(d.cov.is_some());
        assert!(d.skewness.unwrap().abs() < 1e-9); // symmetric
        let text = d.render();
        assert!(text.contains("median=50.5"));
        assert!(text.contains("skew="));
    }

    #[test]
    fn degenerate_samples() {
        assert_eq!(skewness(&[1.0, 2.0]).unwrap(), None);
        assert_eq!(excess_kurtosis(&[1.0, 2.0, 3.0]).unwrap(), None);
        assert_eq!(skewness(&[5.0; 10]).unwrap(), None); // zero variance
        let d = describe(&[-1.0, 0.0, 1.0]).unwrap();
        assert_eq!(d.geometric_mean, None); // non-positive values
        assert_eq!(d.harmonic_mean, None);
    }
}
