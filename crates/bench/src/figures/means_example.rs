//! The worked HPL-summarization example of §3.1.1.
//!
//! Three 100-Gflop runs with times (10, 100, 40) s:
//!
//! - arithmetic mean of the *times*: 50 s → 2 Gflop/s (correct);
//! - arithmetic mean of the *rates*: 4.5 Gflop/s (wrong — Rule 3);
//! - harmonic mean of the rates: 2 Gflop/s (correct);
//! - geometric mean of the peak-relative *ratios* (1, 0.1, 0.25): 0.29 →
//!   "2.9 Gflop/s" (wrong — Rule 4).

use scibench::metric::{Cost, Ratio};
use scibench::units::Unit;
use scibench_stats::error::StatsResult;

/// The numbers of the worked example.
#[derive(Debug, Clone, PartialEq)]
pub struct MeansExample {
    /// Arithmetic mean of the execution times, seconds.
    pub mean_time_s: f64,
    /// Correct rate derived from summarized costs, Gflop/s.
    pub correct_rate: f64,
    /// Harmonic mean of the per-run rates, Gflop/s (equals the correct
    /// rate).
    pub harmonic_rate: f64,
    /// The misleading arithmetic mean of the per-run rates, Gflop/s.
    pub misleading_arith_rate: f64,
    /// Geometric mean of the peak-relative ratios.
    pub geometric_ratio: f64,
    /// The misleading "efficiency rate" implied by the geometric mean,
    /// Gflop/s.
    pub misleading_geo_rate: f64,
}

/// Work per run, Gflop.
pub const WORK_GFLOP: f64 = 100.0;
/// Execution times of the three runs, seconds.
pub const TIMES_S: [f64; 3] = [10.0, 100.0, 40.0];
/// Assumed peak rate, Gflop/s.
pub const PEAK_GFLOPS: f64 = 10.0;

/// Computes the example.
pub fn compute() -> StatsResult<MeansExample> {
    let costs = Cost::new(TIMES_S.to_vec(), Unit::Seconds);
    let mean_time_s = costs.mean()?;
    let correct_rate = costs.aggregate_rate(WORK_GFLOP)?;
    let rates = costs.rate_for_work(WORK_GFLOP, Unit::FlopPerSecond);
    let harmonic_rate = rates.mean()?;
    let misleading_arith_rate = rates.arithmetic_mean_for_comparison_only()?;
    let ratios = Ratio::new(rates.values().iter().map(|r| r / PEAK_GFLOPS).collect());
    let geometric_ratio = ratios.geometric_mean_last_resort()?;
    Ok(MeansExample {
        mean_time_s,
        correct_rate,
        harmonic_rate,
        misleading_arith_rate,
        geometric_ratio,
        misleading_geo_rate: geometric_ratio * PEAK_GFLOPS,
    })
}

impl MeansExample {
    /// Renders the worked example as the paper narrates it.
    pub fn render(&self) -> String {
        format!(
            "Worked example (§3.1.1): three 100-Gflop HPL runs, times (10, 100, 40) s\n\n\
             arithmetic mean of times:        {:5.1} s  -> {:.1} Gflop/s  [CORRECT, Rule 3]\n\
             harmonic mean of rates:          {:5.1} Gflop/s            [CORRECT, Rule 3]\n\
             arithmetic mean of rates:        {:5.1} Gflop/s            [WRONG: overweights the fast run]\n\
             geometric mean of ratios (peak): {:5.2}   -> {:.1} Gflop/s  [WRONG, Rule 4]\n",
            self.mean_time_s,
            self.correct_rate,
            self.harmonic_rate,
            self.misleading_arith_rate,
            self.geometric_ratio,
            self.misleading_geo_rate,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_numbers_exactly() {
        let e = compute().unwrap();
        assert_eq!(e.mean_time_s, 50.0);
        assert_eq!(e.correct_rate, 2.0);
        assert!((e.harmonic_rate - 2.0).abs() < 1e-12);
        assert!((e.misleading_arith_rate - 4.5).abs() < 1e-12);
        assert!((e.geometric_ratio - 0.2924).abs() < 1e-3);
        assert!((e.misleading_geo_rate - 2.9).abs() < 0.05);
    }

    #[test]
    fn render_tells_the_story() {
        let text = compute().unwrap().render();
        assert!(text.contains("CORRECT"));
        assert!(text.contains("WRONG"));
        assert!(text.contains("4.5"));
    }
}
