//! End-to-end resilience: the simulator's fault substrate driving the
//! resilient campaign runner, with graceful statistical degradation of
//! the resulting summaries (Rules 4 and 6: disclose what was lost and
//! fall back to nonparametric statements when the data demand it).

use std::sync::atomic::{AtomicUsize, Ordering};

use scibench::experiment::design::{Design, Factor, RunPoint};
use scibench::experiment::measurement::{MeasurementPlan, StoppingRule};
use scibench::experiment::resilience::{
    run_campaign_resilient, CampaignError, MeasureFailure, PointFate, RetryPolicy,
};
use scibench::experiment::CampaignConfig;
use scibench_sim::fault::{FaultContext, FaultPlan};
use scibench_sim::machine::MachineSpec;
use scibench_sim::network::NetworkModel;
use scibench_sim::rng::SimRng;
use scibench_stats::ci::ConfidenceInterval;

fn fixed_plan(n: usize) -> MeasurementPlan {
    MeasurementPlan::new("pingpong").stopping(StoppingRule::FixedCount(n))
}

/// One simulated ping-pong round trip under a fault plan. Every random
/// decision flows from the per-sample `rng` handed in by the runner, so
/// the measurement is a pure function of (point, attempt, sample).
fn faulty_pingpong(
    net: &NetworkModel,
    nodes: usize,
    plan: &FaultPlan,
    bytes: usize,
    rng: &mut SimRng,
) -> Result<f64, MeasureFailure> {
    let ctx_seed = (rng.uniform() * (1u64 << 53) as f64) as u64;
    let mut ctx = FaultContext::new(plan, nodes, &SimRng::new(ctx_seed));
    // Start somewhere inside (or past) the crash window so scheduled
    // crashes can actually fire during the microsecond-scale transfer.
    ctx.advance(rng.uniform() * 2.0 * plan.crash_window_ns);
    let ping = net.transfer_faulty_ns(0, 1, bytes, &mut ctx, rng)?;
    let pong = net.transfer_faulty_ns(1, 0, bytes, &mut ctx, rng)?;
    Ok(ping + pong)
}

fn bytes_of(point: &RunPoint) -> usize {
    point.level(0).parse::<f64>().expect("numeric level") as usize
}

fn bytes_design() -> Design {
    Design::new(vec![Factor::numeric("bytes", &[64.0, 4096.0])])
}

fn run_with_rate(
    rate: f64,
    threads: usize,
    samples: usize,
) -> Result<scibench::experiment::resilience::ResilientCampaignResult, CampaignError> {
    let machine = MachineSpec::piz_dora();
    let net = NetworkModel::new(&machine);
    let fault_plan = FaultPlan::with_failure_rate(rate);
    run_campaign_resilient(
        &bytes_design(),
        &fixed_plan(samples),
        &CampaignConfig { seed: 42, threads },
        &RetryPolicy::default().attempts(4).contamination(0.1),
        |point, rng| faulty_pingpong(&net, machine.nodes, &fault_plan, bytes_of(point), rng),
    )
}

#[test]
fn faulty_campaign_completes_and_reports_health() {
    let result = run_with_rate(0.5, 2, 300).expect("campaign must survive a 0.5 failure rate");
    let health = &result.health;
    assert_eq!(health.points_total, 2);
    assert!(health.points_completed >= 1);
    assert!(
        health.samples_dropped > 0,
        "a 0.5 failure rate must cost some samples: {}",
        health.render()
    );
    assert_eq!(
        health.points_completed + health.points_timed_out + health.points_abandoned,
        health.points_total
    );
    // Completed-but-contaminated points degrade gracefully: usable
    // sample count shrinks, the mean CI is withheld, the median CI stays.
    for (_, summary) in result.summaries(0.95).expect("summaries") {
        assert_eq!(
            summary.n + summary.samples_dropped,
            summary.samples_recorded
        );
        if summary.samples_dropped > 0 {
            assert!(!summary.mean_ci_valid);
            assert!(summary.median_ci.is_some());
            assert!(summary.render().contains("contamination"));
        }
    }
}

#[test]
fn surviving_summaries_match_fault_free_within_ci() {
    let clean = run_with_rate(0.0, 1, 300).expect("fault-free campaign");
    assert!(clean.health.pristine(), "{}", clean.health.render());
    let faulty = run_with_rate(0.25, 1, 300).expect("mildly faulty campaign");

    let overlap =
        |a: &ConfidenceInterval, b: &ConfidenceInterval| a.lower <= b.upper && b.lower <= a.upper;
    let clean_summaries = clean.summaries(0.95).unwrap();
    for (point, faulty_summary) in faulty.summaries(0.95).unwrap() {
        let (_, clean_summary) = clean_summaries
            .iter()
            .find(|(p, _)| *p == point)
            .expect("point completed in both campaigns");
        let a = clean_summary.median_ci.as_ref().expect("clean median CI");
        let b = faulty_summary.median_ci.as_ref().expect("faulty median CI");
        assert!(
            overlap(a, b),
            "median CIs drifted apart at {point:?}: [{}, {}] vs [{}, {}]",
            a.lower,
            a.upper,
            b.lower,
            b.upper
        );
    }
}

#[test]
fn fault_schedules_identical_across_thread_counts() {
    let one = run_with_rate(0.5, 1, 200).expect("threads=1");
    let eight = run_with_rate(0.5, 8, 200).expect("threads=8");
    assert_eq!(one.health, eight.health);
    assert_eq!(one.runs.len(), eight.runs.len());
    for (a, b) in one.runs.iter().zip(eight.runs.iter()) {
        assert_eq!(a.point, b.point);
        assert_eq!(a.fate, b.fate);
        match (&a.outcome, &b.outcome) {
            (Some(x), Some(y)) => {
                assert_eq!(x.samples.len(), y.samples.len());
                // NaN placeholders defeat `==`; compare bit patterns.
                for (sa, sb) in x.samples.iter().zip(y.samples.iter()) {
                    assert_eq!(sa.to_bits(), sb.to_bits());
                }
            }
            (None, None) => {}
            _ => panic!("outcome presence differs at {:?}", a.point),
        }
    }
}

#[test]
fn transient_faults_are_retried_to_success() {
    let calls = AtomicUsize::new(0);
    let result = run_campaign_resilient(
        &Design::new(vec![Factor::new("only", &["x"])]),
        &fixed_plan(10),
        &CampaignConfig {
            seed: 9,
            threads: 1,
        },
        &RetryPolicy::default(),
        |_point, rng| {
            // The whole first attempt hits a crashed node; the fault
            // clears before the retry (a transient outage).
            if calls.fetch_add(1, Ordering::SeqCst) < 10 {
                Err(MeasureFailure::Fault(
                    scibench_sim::fault::SimFault::NodeCrashed {
                        node: 1,
                        at_ns: 0.0,
                    },
                ))
            } else {
                Ok(1.0e3 + rng.uniform())
            }
        },
    )
    .expect("retry must rescue the point");
    assert_eq!(result.health.points_retried, 1);
    assert!(matches!(
        result.runs[0].fate,
        PointFate::Completed { attempts: 2, .. }
    ));
    assert_eq!(result.summaries(0.95).unwrap().len(), 1);
}

#[test]
fn timeout_quarantines_expensive_point_without_panicking() {
    // A quiet machine makes transfer costs deterministic, so a budget
    // strictly between the cheap and expensive point totals is safe.
    let machine = MachineSpec::test_machine(4);
    let net = NetworkModel::new(&machine);
    let samples = 50.0;
    let small_total = samples * 2.0 * net.base_transfer_ns(0, 1, 64);
    let big_total = samples * 2.0 * net.base_transfer_ns(0, 1, 1 << 20);
    assert!(
        small_total * 2.0 < big_total / 2.0,
        "degenerate cost model: {small_total} vs {big_total}"
    );
    let budget = (small_total * 2.0).max(big_total / 4.0);
    let no_faults = FaultPlan::none();
    let result = run_campaign_resilient(
        &Design::new(vec![Factor::numeric("bytes", &[64.0, (1 << 20) as f64])]),
        &fixed_plan(samples as usize),
        &CampaignConfig {
            seed: 11,
            threads: 1,
        },
        &RetryPolicy::default().budget_ns(budget),
        |point, rng| faulty_pingpong(&net, machine.nodes, &no_faults, bytes_of(point), rng),
    )
    .expect("the cheap point must survive");
    assert_eq!(result.health.points_timed_out, 1);
    assert_eq!(result.health.points_completed, 1);
    let quarantined = result.quarantined();
    assert_eq!(quarantined.len(), 1);
    assert_eq!(bytes_of(quarantined[0]), 1 << 20);
    assert_eq!(result.summaries(0.95).unwrap().len(), 1);
}

#[test]
fn total_outage_is_a_typed_error_not_a_panic() {
    // Every node is scheduled to crash inside a 1 ns window; every
    // measurement starts after it. Nothing can succeed.
    let plan = FaultPlan {
        node_crash_prob: 1.0,
        crash_window_ns: 1.0,
        ..FaultPlan::none()
    };
    let machine = MachineSpec::test_machine(4);
    let net = NetworkModel::new(&machine);
    let err = run_campaign_resilient(
        &bytes_design(),
        &fixed_plan(20),
        &CampaignConfig {
            seed: 13,
            threads: 2,
        },
        &RetryPolicy::default().attempts(2),
        |point, rng| {
            let ctx_seed = (rng.uniform() * (1u64 << 53) as f64) as u64;
            let mut ctx = FaultContext::new(&plan, machine.nodes, &SimRng::new(ctx_seed));
            ctx.advance(2.0); // past the crash window: the fabric is down
            let ns = net.transfer_faulty_ns(0, 1, bytes_of(point), &mut ctx, rng)?;
            Ok(ns)
        },
    )
    .expect_err("a total outage must fail the campaign");
    match err {
        CampaignError::AllPointsFailed { health } => {
            assert_eq!(health.points_completed, 0);
            assert_eq!(health.points_abandoned, 2);
            assert!(health.render().contains("0/2 points completed"));
        }
        other => panic!("unexpected error {other}"),
    }
}

#[test]
fn panicking_measurement_is_contained() {
    let design = Design::new(vec![Factor::new("mode", &["ok", "boom"])]);
    let result = run_campaign_resilient(
        &design,
        &fixed_plan(10),
        &CampaignConfig {
            seed: 17,
            threads: 1,
        },
        &RetryPolicy::default().attempts(2),
        |point, rng| {
            if point.level(0) == "boom" {
                panic!("simulated driver bug");
            }
            Ok(1.0 + rng.uniform())
        },
    )
    .expect("the healthy point must survive its neighbor's panic");
    assert_eq!(result.health.points_completed, 1);
    assert_eq!(result.health.panics_contained, 2);
    let boom = result
        .runs
        .iter()
        .find(|r| r.point.level(0) == "boom")
        .unwrap();
    assert!(matches!(boom.fate, PointFate::Abandoned { .. }));
}
