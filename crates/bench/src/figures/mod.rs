//! One module per paper artifact.
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`fig1_hpl`] | Figure 1 — distribution of 50 HPL completion times |
//! | [`table1`] | Table 1 — literature survey |
//! | [`fig2_normalization`] | Figure 2 — normalization of 1M ping-pong samples |
//! | [`fig3_significance`] | Figure 3 — latency significance on two systems |
//! | [`fig4_quantreg`] | Figure 4 — quantile regression Dora vs Pilatus |
//! | [`fig5_reduce`] | Figure 5 — MPI_Reduce scaling, powers of two vs others |
//! | [`fig6_variation`] | Figure 6 — per-process variation of MPI_Reduce |
//! | [`fig7ab_bounds`] | Figure 7(a,b) — time/speedup bounds for π |
//! | [`fig7c_plots`] | Figure 7(c) — box/violin/combined latency plots |
//! | [`means_example`] | §3.1.1 — worked mean-summarization example |

pub mod fig1_hpl;
pub mod fig2_normalization;
pub mod fig3_significance;
pub mod fig4_quantreg;
pub mod fig5_reduce;
pub mod fig6_variation;
pub mod fig7ab_bounds;
pub mod fig7c_plots;
pub mod means_example;
pub mod table1;
