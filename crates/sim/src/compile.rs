//! Compiled collective schedules: a zero-allocation replay engine for the
//! simulator hot path.
//!
//! The interpreter in [`crate::collectives`] re-derives the communication
//! structure of a collective — who sends to whom, in which round — on
//! every invocation, reallocating its `ready`/`done`/`have` buffers each
//! time and recomputing the deterministic LogGP base cost of every
//! message. Within one campaign point none of that changes: the machine,
//! the allocation, the operation and the payload are fixed, and only the
//! stochastic terms (noise, congestion, faults) differ between samples.
//!
//! [`CompiledSchedule`] lowers one collective, once, into a flat
//! structure-of-arrays *message program*: for each message in interpreter
//! order, its (src, dst) rank pair, the (src, dst) node pair, and the
//! precomputed deterministic base transfer cost. Replaying the program
//! against a reusable [`ReplayCtx`] scratch arena then performs **zero
//! heap allocations** per sample and draws exactly the stochastic terms,
//! from the same [`SimRng`], **in exactly the same order** as the
//! interpreter — so per-rank completion times are bit-identical (pinned
//! by proptests in `tests/replay_equivalence.rs`).
//!
//! The message order is not re-derived here: compilation *records* it by
//! running the interpreter's own `reduce_impl`/`broadcast_impl`/
//! `barrier_impl` loops with a transfer callback that logs each (src,
//! dst) pair instead of drawing noise. The control flow of all three
//! algorithms depends only on rank indices, never on transfer times, so
//! the recorded program is exact by construction and cannot drift from
//! the interpreter.

use std::convert::Infallible;

use scibench_trace::{category, ArgValue, LocalTracer};

use crate::alloc::Allocation;
use crate::collectives::{
    barrier_impl, broadcast_impl, pow2_floor, reduce_impl, reduction_op_ns, send_exit_ns,
    CollectiveOutcome,
};
use crate::fault::{FaultContext, SimFault};
use crate::machine::MachineSpec;
use crate::network::NetworkModel;
use crate::noise::NoiseProfile;
use crate::rng::SimRng;

/// Which collective a [`CompiledSchedule`] encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveOp {
    /// `MPI_Reduce` to root 0 (fold-to-power-of-two + binomial tree).
    Reduce,
    /// Binomial-tree `MPI_Bcast` from root 0.
    Broadcast,
    /// Dissemination `MPI_Barrier`.
    Barrier,
}

/// One collective lowered to a flat message program for a fixed
/// `(machine, allocation, operation, message size)`.
///
/// All per-message data lives in parallel arrays (SoA) indexed by message
/// position in interpreter order; replay is a single linear walk.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledSchedule {
    op: CollectiveOp,
    ranks: usize,
    bytes: usize,
    pof2: usize,
    /// Number of fold-phase messages (reduce only; 0 otherwise). The
    /// fold phase needs extra bookkeeping (`fold_end` barrier) on replay.
    fold_len: usize,
    /// Dissemination rounds (barrier only; each round has exactly
    /// `ranks` messages).
    rounds: usize,
    src_rank: Vec<u32>,
    dst_rank: Vec<u32>,
    src_node: Vec<u32>,
    dst_node: Vec<u32>,
    /// Deterministic LogGP base cost of each message, precomputed at
    /// compile time; bit-identical to what the interpreter recomputes.
    base_ns: Vec<f64>,
    send_exit_ns: f64,
    reduction_op_ns: f64,
    noise: NoiseProfile,
}

/// Unwraps a `Result` whose error type is uninhabited.
fn unwrap_infallible<T>(r: Result<T, Infallible>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

impl CompiledSchedule {
    /// Compiles one `MPI_Reduce` to root 0 with payload `bytes`.
    pub fn compile_reduce(machine: &MachineSpec, alloc: &Allocation, bytes: usize) -> Self {
        let mut s = Self::record(machine, alloc, bytes, CollectiveOp::Reduce);
        s.fold_len = alloc.ranks() - pow2_floor(alloc.ranks());
        s
    }

    /// Compiles one binomial-tree `MPI_Bcast` from root 0 with payload
    /// `bytes`.
    pub fn compile_broadcast(machine: &MachineSpec, alloc: &Allocation, bytes: usize) -> Self {
        Self::record(machine, alloc, bytes, CollectiveOp::Broadcast)
    }

    /// Compiles one dissemination `MPI_Barrier` (1-byte signals).
    pub fn compile_barrier(machine: &MachineSpec, alloc: &Allocation) -> Self {
        let mut s = Self::record(machine, alloc, 1, CollectiveOp::Barrier);
        let p = alloc.ranks();
        let mut rounds = 0usize;
        let mut step = 1usize;
        while step < p {
            rounds += 1;
            step <<= 1;
        }
        debug_assert_eq!(s.base_ns.len(), rounds * p);
        s.rounds = rounds;
        s
    }

    /// Records the interpreter's message order for `op` by running its
    /// own algorithm loop with a logging transfer callback.
    fn record(machine: &MachineSpec, alloc: &Allocation, bytes: usize, op: CollectiveOp) -> Self {
        let p = alloc.ranks();
        let net = NetworkModel::new(machine);
        let mut src_rank = Vec::new();
        let mut dst_rank = Vec::new();
        let mut src_node = Vec::new();
        let mut dst_node = Vec::new();
        let mut base_ns = Vec::new();
        {
            let mut log = |s: usize, d: usize| -> Result<f64, Infallible> {
                let (sn, dn) = (alloc.node_of[s], alloc.node_of[d]);
                src_rank.push(s as u32);
                dst_rank.push(d as u32);
                src_node.push(sn as u32);
                dst_node.push(dn as u32);
                base_ns.push(net.base_transfer_ns(sn, dn, bytes));
                Ok(0.0)
            };
            match op {
                CollectiveOp::Reduce => {
                    unwrap_infallible(reduce_impl(machine, alloc, bytes, &mut log));
                }
                CollectiveOp::Broadcast => {
                    unwrap_infallible(broadcast_impl(alloc, &mut log));
                }
                CollectiveOp::Barrier => {
                    unwrap_infallible(barrier_impl(alloc, &mut log));
                }
            }
        }
        CompiledSchedule {
            op,
            ranks: p,
            bytes,
            pof2: pow2_floor(p),
            fold_len: 0,
            rounds: 0,
            src_rank,
            dst_rank,
            src_node,
            dst_node,
            base_ns,
            send_exit_ns: send_exit_ns(machine),
            reduction_op_ns: reduction_op_ns(bytes),
            noise: machine.noise,
        }
    }

    /// The operation this schedule encodes.
    pub fn op(&self) -> CollectiveOp {
        self.op
    }

    /// Number of participating ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Payload bytes per message (1 for barrier signals).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Total number of messages in the program.
    pub fn messages(&self) -> usize {
        self.base_ns.len()
    }

    /// Replays one sample into `ctx`, drawing noise from `rng` in
    /// interpreter order. Returns the per-rank completion times as a
    /// slice borrowed from `ctx`'s arena — **no heap allocation** occurs
    /// once the arena has grown to this schedule's rank count.
    pub fn replay_into<'a>(&self, ctx: &'a mut ReplayCtx, rng: &mut SimRng) -> &'a [f64] {
        let (a, b) = ctx.buffers(self.ranks);
        let mut noisy = |i: usize, r: &mut SimRng| -> Result<f64, Infallible> {
            Ok(self.noise.perturb(self.base_ns[i], r))
        };
        match self.op {
            CollectiveOp::Reduce => {
                unwrap_infallible(self.replay_reduce(a, b, &mut noisy, rng));
                b
            }
            CollectiveOp::Broadcast => {
                unwrap_infallible(self.replay_broadcast(a, &mut noisy, rng));
                a
            }
            CollectiveOp::Barrier => unwrap_infallible(self.replay_barrier(a, b, &mut noisy, rng)),
        }
    }

    /// [`CompiledSchedule::replay_into`] with a fresh allocation —
    /// convenience for call sites that want a [`CollectiveOutcome`].
    pub fn replay(&self, ctx: &mut ReplayCtx, rng: &mut SimRng) -> CollectiveOutcome {
        CollectiveOutcome {
            per_rank_done_ns: self.replay_into(ctx, rng).to_vec(),
        }
    }

    /// Replays one sample on a machine with injected faults, mirroring
    /// [`NetworkModel::transfer_faulty_ns`] message by message: crash
    /// checks on both endpoint nodes, straggler slowdown, link-drop coins
    /// from the context's dedicated stream, and clock advancement. A run
    /// experiencing zero fault events is bit-identical to
    /// [`CompiledSchedule::replay_into`].
    pub fn replay_faulty_into<'a>(
        &self,
        ctx: &'a mut ReplayCtx,
        fctx: &mut FaultContext,
        rng: &mut SimRng,
    ) -> Result<&'a [f64], SimFault> {
        let (a, b) = ctx.buffers(self.ranks);
        let mut transfer = |i: usize, r: &mut SimRng| -> Result<f64, SimFault> {
            let (sn, dn) = (self.src_node[i] as usize, self.dst_node[i] as usize);
            for node in [sn, dn] {
                if let Some(fault) = fctx.crashed(node) {
                    return Err(fault);
                }
            }
            let mut t = self.noise.perturb(self.base_ns[i], r);
            let schedule = fctx.schedule();
            let slowdown = schedule.slowdown_of(sn).max(schedule.slowdown_of(dn));
            t *= slowdown;
            let max_retransmits = schedule.plan().max_retransmits;
            let retransmit_penalty_ns = schedule.plan().retransmit_penalty_ns;
            let mut drops = 0u32;
            while fctx.link_drop_coin() {
                drops += 1;
                if drops > max_retransmits {
                    return Err(SimFault::LinkFailed {
                        src: sn,
                        dst: dn,
                        drops,
                    });
                }
                // Resend: penalty plus another deterministic transfer.
                t += retransmit_penalty_ns + self.base_ns[i] * slowdown;
            }
            fctx.advance(t);
            Ok(t)
        };
        match self.op {
            CollectiveOp::Reduce => {
                self.replay_reduce(a, b, &mut transfer, rng)?;
                Ok(b)
            }
            CollectiveOp::Broadcast => {
                self.replay_broadcast(a, &mut transfer, rng)?;
                Ok(a)
            }
            CollectiveOp::Barrier => self.replay_barrier(a, b, &mut transfer, rng),
        }
    }

    /// Replays one sample with phase tracing, emitting exactly the events
    /// of the interpreter's traced variants ([`crate::collectives::reduce_traced`]
    /// et al.): the per-phase instants, then one [`category::SIM`] span
    /// whose `sim_ns` argument is the slowest rank. Tracing reads the wall
    /// clock but never touches `rng`, so the returned times are
    /// bit-identical to [`CompiledSchedule::replay_into`].
    pub fn replay_traced_into<'a>(
        &self,
        ctx: &'a mut ReplayCtx,
        rng: &mut SimRng,
        lane: &mut LocalTracer<'_>,
    ) -> &'a [f64] {
        let span = lane.begin();
        let p = self.ranks;
        if lane.is_on() {
            match self.op {
                CollectiveOp::Reduce => {
                    if self.pof2 < p {
                        lane.instant(
                            category::SIM,
                            "fold-phase",
                            &[("remainder_ranks", ArgValue::U64((p - self.pof2) as u64))],
                        );
                    }
                    lane.instant(
                        category::SIM,
                        "tree-phase",
                        &[("rounds", ArgValue::U64(self.pof2.trailing_zeros() as u64))],
                    );
                }
                CollectiveOp::Broadcast => {
                    let rounds = (usize::BITS - p.saturating_sub(1).leading_zeros()) as u64;
                    lane.instant(
                        category::SIM,
                        "tree-phase",
                        &[("rounds", ArgValue::U64(rounds))],
                    );
                }
                CollectiveOp::Barrier => {
                    let rounds = (usize::BITS - p.saturating_sub(1).leading_zeros()) as u64;
                    lane.instant(
                        category::SIM,
                        "dissemination-phase",
                        &[("rounds", ArgValue::U64(rounds))],
                    );
                }
            }
        }
        let done = self.replay_into(ctx, rng);
        let sim_ns = done.iter().cloned().reduce(f64::max).unwrap_or(0.0);
        match self.op {
            CollectiveOp::Reduce => lane.end(
                span,
                category::SIM,
                "reduce",
                &[
                    ("ranks", ArgValue::U64(p as u64)),
                    ("bytes", ArgValue::U64(self.bytes as u64)),
                    ("sim_ns", ArgValue::F64(sim_ns)),
                ],
            ),
            CollectiveOp::Broadcast => lane.end(
                span,
                category::SIM,
                "broadcast",
                &[
                    ("ranks", ArgValue::U64(p as u64)),
                    ("bytes", ArgValue::U64(self.bytes as u64)),
                    ("sim_ns", ArgValue::F64(sim_ns)),
                ],
            ),
            CollectiveOp::Barrier => lane.end(
                span,
                category::SIM,
                "barrier",
                &[
                    ("ranks", ArgValue::U64(p as u64)),
                    ("sim_ns", ArgValue::F64(sim_ns)),
                ],
            ),
        }
        done
    }

    /// Reduce replay: mirrors `reduce_impl` over the recorded message
    /// program. `a` is the `ready` buffer, `b` the `done` buffer.
    fn replay_reduce<E, F: FnMut(usize, &mut SimRng) -> Result<f64, E>>(
        &self,
        a: &mut [f64],
        b: &mut [f64],
        noisy: &mut F,
        rng: &mut SimRng,
    ) -> Result<(), E> {
        let p = self.ranks;
        a[..p].fill(0.0);
        b[..p].fill(f64::NAN);
        // Fold phase (non-power-of-two remainder): same update rule as the
        // tree, plus the fold_end barrier clamping the power-of-two group.
        if self.fold_len > 0 {
            let mut fold_end = 0.0f64;
            for i in 0..self.fold_len {
                let (s, d) = (self.src_rank[i] as usize, self.dst_rank[i] as usize);
                let t = noisy(i, rng)?;
                b[s] = a[s] + self.send_exit_ns;
                a[d] = a[d].max(a[s] + t) + self.reduction_op_ns;
                fold_end = fold_end.max(a[d]);
            }
            for r in a.iter_mut().take(self.pof2) {
                *r = r.max(fold_end);
            }
        }
        // Binomial tree: each recorded message is one sender's single send.
        for i in self.fold_len..self.base_ns.len() {
            let (s, d) = (self.src_rank[i] as usize, self.dst_rank[i] as usize);
            let t = noisy(i, rng)?;
            b[s] = a[s] + self.send_exit_ns;
            a[d] = a[d].max(a[s] + t) + self.reduction_op_ns;
        }
        b[0] = a[0];
        // Ranks that never sent (possible only when p == 1).
        for r in 0..p {
            if b[r].is_nan() {
                b[r] = a[r];
            }
        }
        Ok(())
    }

    /// Broadcast replay: mirrors `broadcast_impl` over the recorded
    /// message program. `a` is the `have` buffer.
    fn replay_broadcast<E, F: FnMut(usize, &mut SimRng) -> Result<f64, E>>(
        &self,
        a: &mut [f64],
        noisy: &mut F,
        rng: &mut SimRng,
    ) -> Result<(), E> {
        a[..self.ranks].fill(f64::NAN);
        a[0] = 0.0;
        for i in 0..self.base_ns.len() {
            let (s, d) = (self.src_rank[i] as usize, self.dst_rank[i] as usize);
            let t = noisy(i, rng)?;
            a[d] = a[s] + t;
        }
        Ok(())
    }

    /// Barrier replay: mirrors `barrier_impl`'s double-buffered
    /// dissemination rounds over the two halves of the arena, returning
    /// whichever buffer holds the final round.
    fn replay_barrier<'a, E, F: FnMut(usize, &mut SimRng) -> Result<f64, E>>(
        &self,
        a: &'a mut [f64],
        b: &'a mut [f64],
        noisy: &mut F,
        rng: &mut SimRng,
    ) -> Result<&'a [f64], E> {
        let p = self.ranks;
        a[..p].fill(0.0);
        let (mut ready, mut next) = (a, b);
        let mut i = 0usize;
        for _ in 0..self.rounds {
            for r in 0..p {
                let s = self.src_rank[i] as usize;
                let t = noisy(i, rng)?;
                next[r] = ready[r].max(ready[s] + t);
                i += 1;
            }
            std::mem::swap(&mut ready, &mut next);
        }
        Ok(&*ready)
    }
}

/// Reusable scratch arena for replaying [`CompiledSchedule`]s.
///
/// Holds the two per-rank working buffers every collective needs
/// (`ready`/`done`, `have`, or the barrier's double buffer). Buffers grow
/// monotonically and are reused across replays, so a steady-state replay
/// performs zero heap allocations. One context must be owned by exactly
/// one execution lane — sharing across worker threads would serialize
/// them and is prevented by `&mut` access.
#[derive(Debug, Clone, Default)]
pub struct ReplayCtx {
    a: Vec<f64>,
    b: Vec<f64>,
}

impl ReplayCtx {
    /// Creates an empty arena (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an arena pre-sized for collectives of up to `ranks` ranks.
    pub fn with_capacity(ranks: usize) -> Self {
        ReplayCtx {
            a: vec![0.0; ranks],
            b: vec![0.0; ranks],
        }
    }

    /// Capacities of the two working buffers — the observable the
    /// zero-allocation tests pin: in steady state they never change.
    pub fn capacities(&self) -> (usize, usize) {
        (self.a.capacity(), self.b.capacity())
    }

    /// The two working buffers, grown to at least `ranks` slots.
    fn buffers(&mut self, ranks: usize) -> (&mut [f64], &mut [f64]) {
        if self.a.len() < ranks {
            self.a.resize(ranks, 0.0);
            self.b.resize(ranks, 0.0);
        }
        (&mut self.a[..ranks], &mut self.b[..ranks])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocationPolicy;
    use crate::collectives::{barrier, broadcast, reduce};
    use crate::fault::FaultPlan;

    fn setup(p: usize) -> (MachineSpec, Allocation, SimRng) {
        let m = MachineSpec::piz_daint();
        let mut rng = SimRng::new(11);
        let a = Allocation::one_rank_per_node(&m, p, AllocationPolicy::Random, &mut rng);
        (m, a, rng)
    }

    #[test]
    fn reduce_replay_matches_interpreter_bitwise() {
        for p in [1usize, 2, 3, 8, 13, 64] {
            let (m, a, rng) = setup(p);
            let mut r1 = rng.fork("samples");
            let mut r2 = rng.fork("samples");
            let compiled = CompiledSchedule::compile_reduce(&m, &a, 8);
            let mut ctx = ReplayCtx::new();
            for _ in 0..10 {
                let interp = reduce(&m, &a, 8, &mut r1);
                let replay = compiled.replay_into(&mut ctx, &mut r2);
                assert_eq!(interp.per_rank_done_ns, replay, "p={p}");
            }
        }
    }

    #[test]
    fn broadcast_replay_matches_interpreter_bitwise() {
        for p in [1usize, 2, 5, 16, 33] {
            let (m, a, rng) = setup(p);
            let mut r1 = rng.fork("samples");
            let mut r2 = rng.fork("samples");
            let compiled = CompiledSchedule::compile_broadcast(&m, &a, 1 << 14);
            let mut ctx = ReplayCtx::new();
            for _ in 0..10 {
                let interp = broadcast(&m, &a, 1 << 14, &mut r1);
                let replay = compiled.replay_into(&mut ctx, &mut r2);
                assert_eq!(interp.per_rank_done_ns, replay, "p={p}");
            }
        }
    }

    #[test]
    fn barrier_replay_matches_interpreter_bitwise() {
        for p in [1usize, 2, 3, 7, 8, 32, 33] {
            let (m, a, rng) = setup(p);
            let mut r1 = rng.fork("samples");
            let mut r2 = rng.fork("samples");
            let compiled = CompiledSchedule::compile_barrier(&m, &a);
            let mut ctx = ReplayCtx::new();
            for _ in 0..10 {
                let interp = barrier(&m, &a, &mut r1);
                let replay = compiled.replay_into(&mut ctx, &mut r2);
                assert_eq!(interp.per_rank_done_ns, replay, "p={p}");
            }
        }
    }

    #[test]
    fn faulty_replay_matches_interpreter_including_failures() {
        use crate::collectives::reduce_faulty;
        let plan = FaultPlan::with_failure_rate(0.6);
        for seed in 0..8u64 {
            let m = MachineSpec::piz_daint();
            let root = SimRng::new(seed);
            let mut rng = SimRng::new(77);
            let a = Allocation::one_rank_per_node(&m, 32, AllocationPolicy::Random, &mut rng);
            let compiled = CompiledSchedule::compile_reduce(&m, &a, 8);
            let mut ctx = ReplayCtx::new();
            let mut fctx1 = FaultContext::new(&plan, m.nodes, &root);
            let mut fctx2 = FaultContext::new(&plan, m.nodes, &root);
            let mut r1 = root.fork("samples");
            let mut r2 = root.fork("samples");
            for _ in 0..5 {
                let interp = reduce_faulty(&m, &a, 8, &mut fctx1, &mut r1);
                let replay = compiled
                    .replay_faulty_into(&mut ctx, &mut fctx2, &mut r2)
                    .map(|d| CollectiveOutcome {
                        per_rank_done_ns: d.to_vec(),
                    });
                assert_eq!(interp, replay, "seed={seed}");
                assert_eq!(fctx1.now_ns(), fctx2.now_ns());
                assert_eq!(fctx1.coins_drawn(), fctx2.coins_drawn());
            }
        }
    }

    #[test]
    fn traced_replay_matches_interpreter_events_and_times() {
        use crate::collectives::reduce_traced;
        use scibench_trace::Tracer;
        let (m, a, rng) = setup(13);
        let mut r1 = rng.fork("samples");
        let mut r2 = rng.fork("samples");
        let t1 = Tracer::new();
        let t2 = Tracer::new();
        let interp = {
            let mut lane = t1.lane(0);
            reduce_traced(&m, &a, 8, &mut r1, &mut lane)
        };
        let compiled = CompiledSchedule::compile_reduce(&m, &a, 8);
        let mut ctx = ReplayCtx::new();
        let replay = {
            let mut lane = t2.lane(0);
            compiled
                .replay_traced_into(&mut ctx, &mut r2, &mut lane)
                .to_vec()
        };
        assert_eq!(interp.per_rank_done_ns, replay);
        let (e1, e2) = (t1.drain(), t2.drain());
        assert_eq!(e1.count(category::SIM), e2.count(category::SIM));
        assert_eq!(e1.kind_counts(), e2.kind_counts());
    }

    #[test]
    fn replay_is_zero_allocation_in_steady_state() {
        // Indirect check: the arena buffers keep their capacity across
        // replays at the same (or smaller) rank count.
        let (m, a, rng) = setup(64);
        let compiled = CompiledSchedule::compile_reduce(&m, &a, 8);
        let mut ctx = ReplayCtx::with_capacity(64);
        let (cap_a, cap_b) = (ctx.a.capacity(), ctx.b.capacity());
        let mut r = rng.fork("samples");
        for _ in 0..100 {
            let _ = compiled.replay_into(&mut ctx, &mut r);
        }
        assert_eq!(ctx.a.capacity(), cap_a);
        assert_eq!(ctx.b.capacity(), cap_b);
    }

    #[test]
    fn schedule_reports_shape() {
        let (m, a, _) = setup(9);
        let red = CompiledSchedule::compile_reduce(&m, &a, 8);
        assert_eq!(red.op(), CollectiveOp::Reduce);
        assert_eq!(red.ranks(), 9);
        assert_eq!(red.bytes(), 8);
        // 1 fold message (9 → 8) + 7 tree messages.
        assert_eq!(red.messages(), 8);
        let bar = CompiledSchedule::compile_barrier(&m, &a);
        // ceil(log2 9) = 4 rounds of 9 messages.
        assert_eq!(bar.messages(), 36);
    }
}
