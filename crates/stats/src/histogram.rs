//! Histograms (§5.2: "Histograms show the complete distribution of data").

use serde::{Deserialize, Serialize};

use crate::error::{StatsError, StatsResult};
use crate::quantile::FiveNumberSummary;
use crate::validate_samples;

/// Bin-count selection rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinRule {
    /// Sturges' rule: `⌈log₂ n⌉ + 1` bins.
    Sturges,
    /// Freedman–Diaconis: bin width `2·IQR·n^(−1/3)` (robust to outliers).
    FreedmanDiaconis,
    /// Exactly this many bins.
    Fixed(usize),
}

/// A computed histogram with equal-width bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Left edge of each bin (ascending). `edges.len() == counts.len()+1`.
    pub edges: Vec<f64>,
    /// Observation count per bin.
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub n: usize,
}

impl Histogram {
    /// Bin width (uniform).
    pub fn bin_width(&self) -> f64 {
        self.edges[1] - self.edges[0]
    }

    /// Density value of bin `i` (count normalized by n·width), so the
    /// histogram integrates to 1 and is comparable with a KDE curve.
    pub fn density(&self, i: usize) -> f64 {
        self.counts[i] as f64 / (self.n as f64 * self.bin_width())
    }

    /// Index of the fullest bin.
    pub fn mode_bin(&self) -> usize {
        let mut best = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > self.counts[best] {
                best = i;
            }
        }
        best
    }
}

/// Builds a histogram of `xs` using `rule`.
pub fn histogram(xs: &[f64], rule: BinRule) -> StatsResult<Histogram> {
    validate_samples(xs)?;
    let n = xs.len();
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);

    let bins = match rule {
        BinRule::Fixed(b) => {
            if b == 0 {
                return Err(StatsError::InvalidParameter {
                    name: "bins",
                    value: 0.0,
                });
            }
            b
        }
        BinRule::Sturges => ((n as f64).log2().ceil() as usize) + 1,
        BinRule::FreedmanDiaconis => {
            let iqr = FiveNumberSummary::from_samples(xs)?.iqr();
            if iqr <= 0.0 || max <= min {
                1
            } else {
                let width = 2.0 * iqr * (n as f64).powf(-1.0 / 3.0);
                (((max - min) / width).ceil() as usize).clamp(1, 10_000)
            }
        }
    };

    // Degenerate range: single bin containing everything.
    let (lo, hi) = if max > min {
        (min, max)
    } else {
        (min - 0.5, min + 0.5)
    };
    let width = (hi - lo) / bins as f64;
    let edges: Vec<f64> = (0..=bins).map(|i| lo + i as f64 * width).collect();
    let mut counts = vec![0u64; bins];
    for &x in xs {
        let mut idx = ((x - lo) / width) as usize;
        if idx >= bins {
            idx = bins - 1; // max lands in the last bin
        }
        counts[idx] += 1;
    }
    Ok(Histogram { edges, counts, n })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sum_to_n() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.77).sin() * 3.0).collect();
        let h = histogram(&xs, BinRule::Sturges).unwrap();
        assert_eq!(h.counts.iter().sum::<u64>(), 100);
        assert_eq!(h.edges.len(), h.counts.len() + 1);
    }

    #[test]
    fn fixed_bin_count_respected() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let h = histogram(&xs, BinRule::Fixed(2)).unwrap();
        assert_eq!(h.counts.len(), 2);
        assert_eq!(h.counts, vec![2, 2]);
    }

    #[test]
    fn max_value_included_in_last_bin() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let h = histogram(&xs, BinRule::Fixed(4)).unwrap();
        assert_eq!(h.counts.iter().sum::<u64>(), 5);
        assert_eq!(*h.counts.last().unwrap(), 2); // 3.0 and 4.0
    }

    #[test]
    fn density_integrates_to_one() {
        let xs: Vec<f64> = (0..1000).map(|i| (i % 37) as f64).collect();
        let h = histogram(&xs, BinRule::Fixed(10)).unwrap();
        let total: f64 = (0..10).map(|i| h.density(i) * h.bin_width()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sturges_bin_count() {
        let xs: Vec<f64> = (0..64).map(f64::from).collect();
        let h = histogram(&xs, BinRule::Sturges).unwrap();
        assert_eq!(h.counts.len(), 7); // ceil(log2(64)) + 1
    }

    #[test]
    fn constant_data_single_bin() {
        let h = histogram(&[5.0; 20], BinRule::FreedmanDiaconis).unwrap();
        assert_eq!(h.counts.iter().sum::<u64>(), 20);
        assert_eq!(h.mode_bin(), 0);
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut xs = vec![0.1; 50];
        xs.extend(vec![0.9; 10]);
        let h = histogram(&xs, BinRule::Fixed(2)).unwrap();
        assert_eq!(h.mode_bin(), 0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(histogram(&[], BinRule::Sturges).is_err());
        assert!(histogram(&[1.0], BinRule::Fixed(0)).is_err());
    }
}
