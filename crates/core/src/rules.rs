//! The twelve rules, codified (the paper's central contribution).
//!
//! [`Rule`] enumerates the rules with their verbatim statements;
//! [`RuleAudit::check`] inspects an [`ExperimentReport`] and grades each
//! rule as passed, failed, warned or not applicable — the "authors could
//! ensure readers that they follow all rules and guidelines stated in
//! this paper" checklist of §8, made executable.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::report::ExperimentReport;

/// The twelve rules of Hoefler & Belli (SC '15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rule {
    /// Rule 1: speedup base case and its absolute performance.
    R1SpeedupBaseCase,
    /// Rule 2: specify reasons for benchmark subsets / partial resources.
    R2NoCherryPicking,
    /// Rule 3: arithmetic mean only for costs, harmonic mean for rates.
    R3CorrectMean,
    /// Rule 4: avoid summarizing ratios; geometric mean as last resort.
    R4NoRatioAverages,
    /// Rule 5: report determinism; CIs for nondeterministic data.
    R5ReportVariability,
    /// Rule 6: do not assume normality without diagnostic checking.
    R6CheckNormality,
    /// Rule 7: statistically sound comparison.
    R7SoundComparison,
    /// Rule 8: choose appropriate measures (percentiles for tails).
    R8RightStatistic,
    /// Rule 9: document all factors, levels and the full setup.
    R9DocumentSetup,
    /// Rule 10: report parallel measurement, sync and summarization.
    R10ParallelTime,
    /// Rule 11: show upper performance bounds.
    R11Bounds,
    /// Rule 12: informative plots; connect points only for trends.
    R12Plots,
}

impl Rule {
    /// All twelve rules in order.
    pub const ALL: [Rule; 12] = [
        Rule::R1SpeedupBaseCase,
        Rule::R2NoCherryPicking,
        Rule::R3CorrectMean,
        Rule::R4NoRatioAverages,
        Rule::R5ReportVariability,
        Rule::R6CheckNormality,
        Rule::R7SoundComparison,
        Rule::R8RightStatistic,
        Rule::R9DocumentSetup,
        Rule::R10ParallelTime,
        Rule::R11Bounds,
        Rule::R12Plots,
    ];

    /// Rule number, 1–12.
    pub fn number(&self) -> u8 {
        match self {
            Rule::R1SpeedupBaseCase => 1,
            Rule::R2NoCherryPicking => 2,
            Rule::R3CorrectMean => 3,
            Rule::R4NoRatioAverages => 4,
            Rule::R5ReportVariability => 5,
            Rule::R6CheckNormality => 6,
            Rule::R7SoundComparison => 7,
            Rule::R8RightStatistic => 8,
            Rule::R9DocumentSetup => 9,
            Rule::R10ParallelTime => 10,
            Rule::R11Bounds => 11,
            Rule::R12Plots => 12,
        }
    }

    /// The rule's statement, abridged from the paper.
    pub fn statement(&self) -> &'static str {
        match self {
            Rule::R1SpeedupBaseCase => {
                "When publishing parallel speedup, report if the base case is a single \
                 parallel process or best serial execution, as well as the absolute \
                 execution performance of the base case."
            }
            Rule::R2NoCherryPicking => {
                "Specify the reason for only reporting subsets of standard benchmarks or \
                 applications or not using all system resources."
            }
            Rule::R3CorrectMean => {
                "Use the arithmetic mean only for summarizing costs. Use the harmonic \
                 mean for summarizing rates."
            }
            Rule::R4NoRatioAverages => {
                "Avoid summarizing ratios; summarize the costs or rates that the ratios \
                 base on instead. Only if these are not available use the geometric mean."
            }
            Rule::R5ReportVariability => {
                "Report if the measurement values are deterministic. For nondeterministic \
                 data, report confidence intervals of the measurement."
            }
            Rule::R6CheckNormality => {
                "Do not assume normality of collected data (e.g., based on the number of \
                 samples) without diagnostic checking."
            }
            Rule::R7SoundComparison => {
                "Compare nondeterministic data in a statistically sound way, e.g., using \
                 non-overlapping confidence intervals or ANOVA."
            }
            Rule::R8RightStatistic => {
                "Carefully investigate if measures of central tendency such as mean or \
                 median are useful to report. Some problems, such as worst-case latency, \
                 may require other percentiles."
            }
            Rule::R9DocumentSetup => {
                "Document all varying factors and their levels as well as the complete \
                 experimental setup to facilitate reproducibility and provide \
                 interpretability."
            }
            Rule::R10ParallelTime => {
                "For parallel time measurements, report all measurement, (optional) \
                 synchronization, and summarization techniques."
            }
            Rule::R11Bounds => {
                "If possible, show upper performance bounds to facilitate \
                 interpretability of the measured results."
            }
            Rule::R12Plots => {
                "Plot as much information as needed to interpret the experimental \
                 results. Only connect measurements by lines if they indicate trends and \
                 the interpolation is valid."
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rule {}: {}", self.number(), self.statement())
    }
}

/// Audit verdict for one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The report satisfies the rule.
    Pass,
    /// The rule is violated.
    Fail,
    /// The rule is satisfiable but something deserves attention.
    Warn,
    /// The rule does not apply to this report.
    NotApplicable,
}

/// One audited rule with its verdict and explanation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// The audited rule.
    pub rule: Rule,
    /// The verdict.
    pub verdict: Verdict,
    /// Human-readable justification.
    pub message: String,
}

/// The full audit of a report.
///
/// ```
/// use scibench::report::ExperimentReport;
/// use scibench::rules::RuleAudit;
/// let audit = RuleAudit::check(&ExperimentReport::new("bare"));
/// // A bare report fails Rule 9 (nothing documented).
/// assert!(!audit.passed());
/// assert_eq!(audit.findings.len(), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleAudit {
    /// One finding per rule, in rule order.
    pub findings: Vec<Finding>,
}

impl RuleAudit {
    /// Audits an experiment report against all twelve rules.
    pub fn check(report: &ExperimentReport) -> Self {
        let mut findings = Vec::with_capacity(12);
        for rule in Rule::ALL {
            findings.push(Self::check_rule(rule, report));
        }
        Self { findings }
    }

    /// Whether no rule failed.
    pub fn passed(&self) -> bool {
        self.findings.iter().all(|f| f.verdict != Verdict::Fail)
    }

    /// The failed rules.
    pub fn failures(&self) -> Vec<Rule> {
        self.findings
            .iter()
            .filter(|f| f.verdict == Verdict::Fail)
            .map(|f| f.rule)
            .collect()
    }

    /// Renders the audit as a checklist.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let mark = match f.verdict {
                Verdict::Pass => "PASS",
                Verdict::Fail => "FAIL",
                Verdict::Warn => "WARN",
                Verdict::NotApplicable => "n/a ",
            };
            out.push_str(&format!(
                "[{mark}] Rule {:>2}: {}\n",
                f.rule.number(),
                f.message
            ));
        }
        out
    }

    fn check_rule(rule: Rule, r: &ExperimentReport) -> Finding {
        let (verdict, message) = match rule {
            Rule::R1SpeedupBaseCase => {
                if r.speedups.is_empty() {
                    (Verdict::NotApplicable, "no speedups reported".into())
                } else {
                    // The Speedup type cannot exist without a base case and
                    // its absolute time.
                    (
                        Verdict::Pass,
                        format!(
                            "{} speedup(s) carry base case and absolute base time",
                            r.speedups.len()
                        ),
                    )
                }
            }
            Rule::R2NoCherryPicking => match &r.subset_justification {
                None => (Verdict::Pass, "full benchmarks / all resources used".into()),
                Some(reason) if !reason.trim().is_empty() => {
                    (Verdict::Pass, format!("subset justified: {reason}"))
                }
                Some(_) => (Verdict::Fail, "subset used without justification".into()),
            },
            Rule::R3CorrectMean => {
                // Enforced by the Cost/Rate types; the audit confirms that
                // entries carry cost/rate units at all.
                if r.entries.is_empty() {
                    (Verdict::NotApplicable, "no measurements".into())
                } else {
                    (
                        Verdict::Pass,
                        "means computed through typed Cost/Rate summaries".into(),
                    )
                }
            }
            Rule::R4NoRatioAverages => {
                if r.ratio_geomean_used {
                    if r.notes.to_lowercase().contains("geometric") {
                        (
                            Verdict::Warn,
                            "geometric mean of ratios used (justified in notes)".into(),
                        )
                    } else {
                        (
                            Verdict::Fail,
                            "geometric mean of ratios used without justification".into(),
                        )
                    }
                } else {
                    (Verdict::Pass, "no ratio averaging".into())
                }
            }
            Rule::R5ReportVariability => {
                let mut missing = Vec::new();
                for e in &r.entries {
                    let s = &e.summary;
                    if !s.deterministic && s.median_ci.is_none() && s.mean_ci.is_none() {
                        missing.push(s.name.clone());
                    }
                }
                if r.entries.is_empty() {
                    (Verdict::NotApplicable, "no measurements".into())
                } else if missing.is_empty() {
                    (
                        Verdict::Pass,
                        "determinism flagged; CIs reported for all nondeterministic entries".into(),
                    )
                } else {
                    (
                        Verdict::Fail,
                        format!("nondeterministic entries without CI: {missing:?}"),
                    )
                }
            }
            Rule::R6CheckNormality => {
                let mut unchecked = Vec::new();
                for e in &r.entries {
                    let s = &e.summary;
                    if s.mean_ci_valid && s.normality.is_none() {
                        unchecked.push(s.name.clone());
                    }
                }
                if r.entries.is_empty() {
                    (Verdict::NotApplicable, "no measurements".into())
                } else if unchecked.is_empty() {
                    (
                        Verdict::Pass,
                        "normality diagnostics run before any parametric CI".into(),
                    )
                } else {
                    (
                        Verdict::Fail,
                        format!("parametric CI without normality check: {unchecked:?}"),
                    )
                }
            }
            Rule::R7SoundComparison => {
                if r.comparisons.is_empty() {
                    (Verdict::NotApplicable, "no configurations compared".into())
                } else {
                    (
                        Verdict::Pass,
                        format!(
                            "{} comparison(s) with tests and CI overlap analysis",
                            r.comparisons.len()
                        ),
                    )
                }
            }
            Rule::R8RightStatistic => {
                if r.comparisons.iter().any(|c| !c.quantile_effects.is_empty()) {
                    (Verdict::Pass, "quantile-level effects examined".into())
                } else if r.comparisons.is_empty() {
                    (Verdict::NotApplicable, "no comparisons".into())
                } else {
                    (
                        Verdict::Warn,
                        "only central tendencies compared; consider tail percentiles".into(),
                    )
                }
            }
            Rule::R9DocumentSetup => {
                let missing = r.environment.missing_classes();
                if missing.is_empty() {
                    (
                        Verdict::Pass,
                        "all nine documentation classes covered".into(),
                    )
                } else {
                    (
                        Verdict::Fail,
                        format!(
                            "undocumented classes: {:?}",
                            missing.iter().map(|c| c.label()).collect::<Vec<_>>()
                        ),
                    )
                }
            }
            Rule::R10ParallelTime => match &r.parallel {
                None => (Verdict::NotApplicable, "serial experiment".into()),
                Some(p) => {
                    if p.synchronization.trim().is_empty() {
                        (Verdict::Fail, "synchronization scheme not described".into())
                    } else if !p.anova_checked {
                        (
                            Verdict::Warn,
                            "per-process ANOVA not performed before summarizing".into(),
                        )
                    } else {
                        (
                            Verdict::Pass,
                            format!(
                                "{} processes, sync: {}, summary: {:?}, ANOVA checked",
                                p.processes, p.synchronization, p.summarization
                            ),
                        )
                    }
                }
            },
            Rule::R11Bounds => {
                if r.bounds.is_empty() {
                    (Verdict::Warn, "no bounds model shown".into())
                } else {
                    (
                        Verdict::Pass,
                        format!(
                            "bounds shown: {}",
                            r.bounds
                                .iter()
                                .map(|b| b.label())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    )
                }
            }
            Rule::R12Plots => {
                if r.plots.is_empty() {
                    (Verdict::Warn, "no plots attached".into())
                } else {
                    (Verdict::Pass, format!("{} plot(s) attached", r.plots.len()))
                }
            }
        };
        Finding {
            rule,
            verdict,
            message,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::compare_two;
    use crate::experiment::environment::{DocumentationClass, EnvironmentDoc};
    use crate::experiment::measurement::{MeasurementPlan, StoppingRule};
    use crate::parallel::CrossProcessSummary;
    use crate::report::ParallelMethodology;
    use crate::units::Unit;

    fn full_env() -> EnvironmentDoc {
        let mut env = EnvironmentDoc::new();
        for c in DocumentationClass::ALL {
            env = env.document(c, "documented");
        }
        env
    }

    fn summary(name: &str) -> crate::experiment::measurement::MeasurementSummary {
        let mut x = 7u64;
        MeasurementPlan::new(name)
            .stopping(StoppingRule::FixedCount(100))
            .run(|| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                1.0 + (x % 101) as f64 / 500.0
            })
            .unwrap()
            .summarize(0.95)
            .unwrap()
    }

    fn sample(n: usize, mu: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                mu + 0.1 * scibench_stats::dist::normal::std_normal_inv_cdf(u)
            })
            .collect()
    }

    fn good_report() -> ExperimentReport {
        let a = sample(200, 1.7);
        let b = sample(200, 1.8);
        ExperimentReport::new("good")
            .environment(full_env())
            .speedup(crate::speedup::Speedup::from_times(
                2.0,
                1.0,
                crate::speedup::BaseCase::BestSerial,
            ))
            .entry(summary("op"), Unit::Seconds)
            .comparison(compare_two("a", &a, "b", &b, 0.95, &[0.5, 0.9], 1).unwrap())
            .bound(crate::bounds::ScalingBound::IdealLinear)
            .parallel(ParallelMethodology {
                processes: 8,
                synchronization: "window-based".into(),
                summarization: CrossProcessSummary::Max,
                anova_checked: true,
            })
            .plot("latency density", "density", None)
    }

    #[test]
    fn good_report_passes() {
        let audit = RuleAudit::check(&good_report());
        assert!(audit.passed(), "{}", audit.render());
        assert_eq!(audit.findings.len(), 12);
    }

    #[test]
    fn undocumented_setup_fails_rule9() {
        let mut r = good_report();
        r.environment = EnvironmentDoc::new();
        let audit = RuleAudit::check(&r);
        assert!(!audit.passed());
        assert!(audit.failures().contains(&Rule::R9DocumentSetup));
        assert!(audit.render().contains("FAIL"));
    }

    #[test]
    fn unjustified_geomean_fails_rule4() {
        let mut r = good_report();
        r.ratio_geomean_used = true;
        let audit = RuleAudit::check(&r);
        assert!(audit.failures().contains(&Rule::R4NoRatioAverages));
        // With a justification it degrades to a warning.
        r.notes = "geometric mean used because raw costs unavailable".into();
        let audit = RuleAudit::check(&r);
        assert!(!audit.failures().contains(&Rule::R4NoRatioAverages));
    }

    #[test]
    fn unjustified_subset_fails_rule2() {
        let mut r = good_report();
        r.subset_justification = Some("".into());
        assert!(RuleAudit::check(&r)
            .failures()
            .contains(&Rule::R2NoCherryPicking));
        r.subset_justification =
            Some("compiler transformation cannot handle 2 of 10 NAS kernels".into());
        assert!(!RuleAudit::check(&r)
            .failures()
            .contains(&Rule::R2NoCherryPicking));
    }

    #[test]
    fn missing_sync_description_fails_rule10() {
        let mut r = good_report();
        r.parallel = Some(ParallelMethodology {
            processes: 8,
            synchronization: "  ".into(),
            summarization: CrossProcessSummary::Max,
            anova_checked: true,
        });
        assert!(RuleAudit::check(&r)
            .failures()
            .contains(&Rule::R10ParallelTime));
    }

    #[test]
    fn serial_experiment_rule10_na() {
        let mut r = good_report();
        r.parallel = None;
        let audit = RuleAudit::check(&r);
        let f = audit
            .findings
            .iter()
            .find(|f| f.rule == Rule::R10ParallelTime)
            .unwrap();
        assert_eq!(f.verdict, Verdict::NotApplicable);
    }

    #[test]
    fn missing_bounds_and_plots_warn() {
        let mut r = good_report();
        r.bounds.clear();
        r.plots.clear();
        let audit = RuleAudit::check(&r);
        assert!(audit.passed()); // warnings don't fail
        let b = audit
            .findings
            .iter()
            .find(|f| f.rule == Rule::R11Bounds)
            .unwrap();
        let p = audit
            .findings
            .iter()
            .find(|f| f.rule == Rule::R12Plots)
            .unwrap();
        assert_eq!(b.verdict, Verdict::Warn);
        assert_eq!(p.verdict, Verdict::Warn);
    }

    #[test]
    fn all_rules_have_statements_and_numbers() {
        for (i, rule) in Rule::ALL.iter().enumerate() {
            assert_eq!(rule.number() as usize, i + 1);
            assert!(rule.statement().len() > 40);
            assert!(rule.to_string().starts_with(&format!("Rule {}", i + 1)));
        }
    }

    #[test]
    fn render_is_a_checklist() {
        let text = RuleAudit::check(&good_report()).render();
        assert_eq!(text.lines().count(), 12);
        assert!(text.contains("[PASS] Rule  1"));
    }
}
