//! Old-versus-new wall-clock baselines for the performance-engineering
//! work, emitted as a committed `BENCH_stats.json`.
//!
//! Each benchmark pairs the *pre-optimization* algorithm (reimplemented
//! here, verbatim in structure) with the current implementation, times
//! both with `std::time::Instant` on identical inputs and seeds, and
//! records the speedup. The two headline pairs carry acceptance targets:
//!
//! * `campaign_adaptive_4threads` — the legacy campaign engine
//!   (static-chunk scheduling behind a mutex, full-vector `O(n²/batch)`
//!   CI replanning) versus the work-stealing pool with `O(1)` Welford
//!   replanning; target ≥ 3×.
//! * `bootstrap_median_ci_10k` — the legacy resample-and-sort median
//!   bootstrap (`O(reps · n log n)`) versus the order-statistic rank
//!   device (`O(reps)` after one sort); target ≥ 5×.
//!
//! Modes:
//!
//! * no arguments — full measurement, writes `BENCH_stats.json` into the
//!   current directory and fails if a target speedup is missed;
//! * `--quick` — tiny workloads, no file written, no thresholds (CI
//!   smoke: proves the harness runs);
//! * `--verify <path>` — parses an existing baseline file and checks the
//!   schema marker and that every expected benchmark id is present with
//!   sane numbers (CI smoke: proves the committed file stays valid).

use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Mutex;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use scibench::experiment::campaign::{run_campaign, CampaignConfig};
use scibench::experiment::design::{Design, Factor, RunPoint};
use scibench::experiment::measurement::{MeasurementPlan, StoppingRule};
use scibench::experiment::stream::run_campaign_stream;
use scibench_bench::figures::fig5_reduce;
use scibench_bench::DEFAULT_SEED;
use scibench_sim::alloc::{Allocation, AllocationPolicy};
use scibench_sim::compile::{CompiledSchedule, ReplayCtx};
use scibench_sim::machine::MachineSpec;
use scibench_sim::network::NetworkModel;
use scibench_sim::noise::NoiseProfile;
use scibench_sim::rng::SimRng;
use scibench_stats::bootstrap::{bootstrap_ci, bootstrap_median_ci, mix_seed};
use scibench_stats::ci;
use scibench_stats::dist::normal::std_normal_inv_cdf;
use scibench_stats::quantile::{quantile, FiveNumberSummary, QuantileMethod};
use scibench_stats::sketch::{MergeableSummary, StreamConfig, StreamingSummary};
use scibench_stats::sorted::SortedSamples;

const SCHEMA: &str = "scibench-bench-baseline/v1";
const SCHEMA_SIM: &str = "scibench-bench-baseline-sim/v1";
const SCHEMA_STREAM: &str = "scibench-bench-baseline-stream/v1";

/// Benchmark ids every baseline file must contain, with their targets
/// (`None` = informational, no threshold).
const EXPECTED: &[(&str, Option<f64>)] = &[
    ("campaign_adaptive_4threads", Some(3.0)),
    ("bootstrap_median_ci_10k", Some(5.0)),
    ("bootstrap_mean_ci_10k", None),
    ("sorted_quantile_queries_100k", None),
];

/// Benchmark ids of the simulator baseline (`BENCH_sim.json`).
const EXPECTED_SIM: &[(&str, Option<f64>)] = &[
    ("fig5_reduce_pipeline", Some(3.0)),
    ("sim_reduce_replay_128", Some(5.0)),
    ("sim_barrier_replay_64", None),
];

/// Benchmark ids of the streaming baseline (`BENCH_stream.json`). The
/// gate on these pairs is the *memory* ratio (vector-mode resident bytes
/// over sketch-mode resident bytes), not wall clock — streaming trades a
/// constant per-sample cost for O(sketch) memory.
const EXPECTED_STREAM: &[(&str, Option<f64>)] = &[
    ("stream_campaign_1m_samples", None),
    ("tdigest_quantiles_1m", None),
];

#[derive(Default)]
struct BenchResult {
    id: &'static str,
    old_ns: u128,
    new_ns: u128,
    target: Option<f64>,
    /// Resident bytes of the pre-change (vector) side, for memory pairs.
    old_bytes: Option<usize>,
    /// Resident bytes of the streaming side, for memory pairs.
    new_bytes: Option<usize>,
    /// Minimum acceptable `old_bytes / new_bytes`, enforced like a
    /// speedup target.
    target_mem_ratio: Option<f64>,
}

impl BenchResult {
    fn speedup(&self) -> f64 {
        self.old_ns as f64 / self.new_ns.max(1) as f64
    }

    fn mem_ratio(&self) -> Option<f64> {
        match (self.old_bytes, self.new_bytes) {
            (Some(old), Some(new)) => Some(old as f64 / new.max(1) as f64),
            _ => None,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--verify") => {
            let path = match args.get(1) {
                Some(p) => p.clone(),
                None => {
                    eprintln!("bench_baseline: --verify requires a path");
                    return ExitCode::FAILURE;
                }
            };
            match verify(&path) {
                Ok(report) => {
                    println!("{report}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("bench_baseline: verification of {path} failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            let quick = args.iter().any(|a| a == "--quick");
            let sim = args.iter().any(|a| a == "--sim");
            let stream = args.iter().any(|a| a == "--stream");
            if let Some(other) = args
                .iter()
                .find(|a| *a != "--quick" && *a != "--sim" && *a != "--stream")
            {
                eprintln!("bench_baseline: unknown argument {other}");
                return ExitCode::FAILURE;
            }
            if sim {
                run_sim_benches(quick)
            } else if stream {
                run_stream_benches(quick)
            } else {
                run_benches(quick)
            }
        }
    }
}

fn run_benches(quick: bool) -> ExitCode {
    // A statistical failure in any harness arm is a typed error and a
    // non-zero exit, never a panic (ROADMAP: crash-free bins).
    let outcomes: Result<Vec<BenchResult>, String> = [
        bench_campaign(quick),
        bench_bootstrap_median(quick),
        bench_bootstrap_mean(quick),
        bench_sorted_quantiles(quick),
    ]
    .into_iter()
    .collect();
    report_and_write(outcomes, quick, SCHEMA, "BENCH_stats.json")
}

/// Simulator hot-path pairs: the interpreted collective engine as it
/// existed before this PR (per-call allocations, base costs recomputed per
/// message, the erfc-refined normal quantile behind every noise draw)
/// versus the compiled-schedule replay engine. Writes `BENCH_sim.json`.
fn run_sim_benches(quick: bool) -> ExitCode {
    let outcomes: Result<Vec<BenchResult>, String> = [
        bench_fig5_pipeline(quick),
        bench_reduce_replay(quick),
        bench_barrier_replay(quick),
    ]
    .into_iter()
    .collect();
    report_and_write(outcomes, quick, SCHEMA_SIM, "BENCH_sim.json")
}

/// Streaming pairs: the vector-backed campaign/quantile path versus the
/// mergeable-sketch path on million-sample workloads. The headline
/// number is the memory ratio (each pair carries a ≥ 50× gate); wall
/// clock is informational. Each pair also asserts sketch accuracy
/// against the exact answer before any timing. Writes
/// `BENCH_stream.json`.
fn run_stream_benches(quick: bool) -> ExitCode {
    let outcomes: Result<Vec<BenchResult>, String> =
        [bench_stream_campaign(quick), bench_tdigest_quantiles(quick)]
            .into_iter()
            .collect();
    report_and_write(outcomes, quick, SCHEMA_STREAM, "BENCH_stream.json")
}

fn report_and_write(
    outcomes: Result<Vec<BenchResult>, String>,
    quick: bool,
    schema: &str,
    path: &str,
) -> ExitCode {
    let results = match outcomes {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_baseline: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{:<32} {:>12} {:>12} {:>9}",
        "benchmark", "old", "new", "speedup"
    );
    for r in &results {
        println!(
            "{:<32} {:>12} {:>12} {:>8.2}x{}{}",
            r.id,
            pretty_ns(r.old_ns),
            pretty_ns(r.new_ns),
            r.speedup(),
            match r.target {
                Some(t) => format!("  (target {t:.0}x)"),
                None => String::new(),
            },
            match (r.mem_ratio(), r.target_mem_ratio) {
                (Some(m), Some(t)) => format!("  mem {m:.0}x (target {t:.0}x)"),
                (Some(m), None) => format!("  mem {m:.0}x"),
                _ => String::new(),
            }
        );
    }

    if quick {
        println!("\nquick mode: no thresholds enforced, no baseline written");
        return ExitCode::SUCCESS;
    }

    let mut failed = false;
    for r in &results {
        if let Some(target) = r.target {
            if r.speedup() < target {
                eprintln!(
                    "bench_baseline: {} reached {:.2}x, below the {target:.0}x target",
                    r.id,
                    r.speedup()
                );
                failed = true;
            }
        }
        if let Some(target) = r.target_mem_ratio {
            match r.mem_ratio() {
                Some(ratio) if ratio >= target => {}
                Some(ratio) => {
                    eprintln!(
                        "bench_baseline: {} memory ratio {ratio:.1}x below the \
                         {target:.0}x target",
                        r.id
                    );
                    failed = true;
                }
                None => {
                    eprintln!("bench_baseline: {} is missing byte accounting", r.id);
                    failed = true;
                }
            }
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }

    let json = render_json(&results, schema);
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("bench_baseline: writing {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {path}");
    ExitCode::SUCCESS
}

fn pretty_ns(ns: u128) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Best of two runs (one in quick mode): coarse but stable enough for
/// order-of-magnitude regression tracking.
fn time_best<F: FnMut()>(quick: bool, mut f: F) -> u128 {
    let runs = if quick { 1 } else { 2 };
    let mut best = u128::MAX;
    for _ in 0..runs {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos());
    }
    best
}

// ---------------------------------------------------------------------
// Pair 1: campaign execution.
// ---------------------------------------------------------------------

/// The legacy adaptive-mean loop: replans by re-scanning the entire
/// sample vector after every batch (`O(n²/batch)` total).
fn legacy_adaptive_mean(
    confidence: f64,
    rel_error: f64,
    batch: usize,
    max_samples: usize,
    mut operation: impl FnMut() -> f64,
) -> Vec<f64> {
    let mut samples = Vec::new();
    for _ in 0..batch.max(5).min(max_samples) {
        samples.push(operation());
    }
    while samples.len() < max_samples {
        let required = ci::required_samples_normal(&samples, confidence, rel_error).unwrap();
        if required <= samples.len() {
            break;
        }
        let next = required.min(max_samples).min(samples.len() + batch.max(1));
        while samples.len() < next {
            samples.push(operation());
        }
    }
    samples
}

/// The legacy campaign engine: shuffled order split into static chunks,
/// one thread per chunk, results pushed through a mutex.
fn legacy_run_campaign<F>(
    design: &Design,
    config: &CampaignConfig,
    stopping: (f64, f64, usize, usize),
    measure: F,
) -> Vec<(RunPoint, Vec<f64>)>
where
    F: Fn(&RunPoint, &mut SimRng) -> f64 + Sync,
{
    let points = design.full_factorial();
    let threads = config.threads.clamp(1, points.len());
    let mut order: Vec<usize> = (0..points.len()).collect();
    let mut order_rng = SimRng::new(config.seed).fork("campaign-order");
    order_rng.shuffle(&mut order);

    let root = SimRng::new(config.seed);
    let (confidence, rel_error, batch, max_samples) = stopping;
    let run_one = |design_idx: usize| -> (RunPoint, Vec<f64>) {
        let point = &points[design_idx];
        let mut rng = root.fork_indexed("campaign-point", design_idx as u64);
        let samples = legacy_adaptive_mean(confidence, rel_error, batch, max_samples, || {
            measure(point, &mut rng)
        });
        (point.clone(), samples)
    };

    type IndexedRun = (usize, (RunPoint, Vec<f64>));
    let results: Mutex<Vec<IndexedRun>> = Mutex::new(Vec::with_capacity(points.len()));
    std::thread::scope(|scope| {
        for chunk in order.chunks(order.len().div_ceil(threads)) {
            let results = &results;
            let run_one = &run_one;
            scope.spawn(move || {
                for &idx in chunk {
                    let run = run_one(idx);
                    results.lock().expect("poisoned").push((idx, run));
                }
            });
        }
    });
    let mut slots: Vec<Option<(RunPoint, Vec<f64>)>> = (0..points.len()).map(|_| None).collect();
    for (idx, run) in results.into_inner().expect("poisoned") {
        slots[idx] = Some(run);
    }
    slots.into_iter().map(|s| s.unwrap()).collect()
}

fn bench_campaign(quick: bool) -> Result<BenchResult, String> {
    // Heavy-tailed noise (CoV ≈ 0.9) forces ~100k samples per point at
    // 0.5% relative error, which is where the legacy full-vector
    // replanning goes quadratic.
    let design = Design::new(vec![
        Factor::new("system", &["a", "b"]),
        Factor::numeric("size", &[8.0, 64.0]),
    ]);
    let measure = |point: &RunPoint, rng: &mut SimRng| {
        let base = if point.level(0) == "a" { 0.1 } else { 0.2 };
        let u = rng.uniform().clamp(1e-12, 1.0 - 1e-12);
        base + (-u.ln())
    };
    let (rel_error, batch, max_samples) = if quick {
        (0.05, 20, 5_000)
    } else {
        (0.005, 100, 150_000)
    };
    let config = CampaignConfig {
        seed: 21,
        threads: 4,
    };
    let plan = MeasurementPlan::new("op").stopping(StoppingRule::AdaptiveMeanCi {
        confidence: 0.95,
        rel_error,
        batch,
        max_samples,
    });

    let old_ns = time_best(quick, || {
        let runs = legacy_run_campaign(
            &design,
            &config,
            (0.95, rel_error, batch, max_samples),
            measure,
        );
        assert_eq!(runs.len(), 4);
    });
    let mut harness_err: Option<String> = None;
    let new_ns = time_best(quick, || {
        match run_campaign(&design, &plan, &config, measure) {
            Ok(result) => assert_eq!(result.runs.len(), 4),
            Err(e) => harness_err = Some(e.to_string()),
        }
    });
    if let Some(e) = harness_err {
        return Err(format!("campaign_adaptive_4threads: {e}"));
    }
    Ok(BenchResult {
        id: "campaign_adaptive_4threads",
        old_ns,
        new_ns,
        target: Some(3.0),
        ..BenchResult::default()
    })
}

// ---------------------------------------------------------------------
// Pair 2 and 3: bootstrap confidence intervals.
// ---------------------------------------------------------------------

fn skewed_sample(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(1e-12..1.0 - 1e-12);
            1.0 + 0.25 * (-u.ln())
        })
        .collect()
}

/// The legacy median bootstrap: every replicate materializes and sorts a
/// full resample.
fn legacy_median_bootstrap(xs: &[f64], confidence: f64, reps: usize, seed: u64) -> (f64, f64) {
    let n = xs.len();
    let mut stats = Vec::with_capacity(reps);
    let mut resample = vec![0.0f64; n];
    for rep in 0..reps {
        let mut rng = StdRng::seed_from_u64(mix_seed(seed, rep as u64));
        for slot in resample.iter_mut() {
            *slot = xs[rng.gen_range(0..n)];
        }
        resample.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mid = n / 2;
        stats.push(if n.is_multiple_of(2) {
            0.5 * (resample[mid - 1] + resample[mid])
        } else {
            resample[mid]
        });
    }
    stats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let alpha = 1.0 - confidence;
    let lo = ((alpha / 2.0) * reps as f64) as usize;
    let hi = (((1.0 - alpha / 2.0) * reps as f64) as usize).min(reps - 1);
    (stats[lo], stats[hi])
}

fn bench_bootstrap_median(quick: bool) -> Result<BenchResult, String> {
    let (n, reps) = if quick { (200, 500) } else { (1_000, 10_000) };
    let xs = skewed_sample(n, 11);
    let sorted =
        SortedSamples::new(&xs).map_err(|e| format!("bootstrap_median_ci_10k: sort: {e}"))?;
    let old_ns = time_best(quick, || {
        std::hint::black_box(legacy_median_bootstrap(&xs, 0.95, reps, 42));
    });
    let mut harness_err: Option<String> = None;
    let new_ns = time_best(quick, || {
        match bootstrap_median_ci(&sorted, 0.95, reps, 42) {
            Ok(ci) => {
                std::hint::black_box(ci);
            }
            Err(e) => harness_err = Some(e.to_string()),
        }
    });
    if let Some(e) = harness_err {
        return Err(format!("bootstrap_median_ci_10k: {e}"));
    }
    Ok(BenchResult {
        id: "bootstrap_median_ci_10k",
        old_ns,
        new_ns,
        target: Some(5.0),
        ..BenchResult::default()
    })
}

/// The legacy mean bootstrap: one sequential RNG stream, a fresh resample
/// vector allocated per replicate.
fn legacy_mean_bootstrap(xs: &[f64], confidence: f64, reps: usize, seed: u64) -> (f64, f64) {
    let n = xs.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = Vec::with_capacity(reps);
    for _ in 0..reps {
        let resample: Vec<f64> = (0..n).map(|_| xs[rng.gen_range(0..n)]).collect();
        stats.push(resample.iter().sum::<f64>() / n as f64);
    }
    stats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let alpha = 1.0 - confidence;
    let lo = ((alpha / 2.0) * reps as f64) as usize;
    let hi = (((1.0 - alpha / 2.0) * reps as f64) as usize).min(reps - 1);
    (stats[lo], stats[hi])
}

fn bench_bootstrap_mean(quick: bool) -> Result<BenchResult, String> {
    let (n, reps) = if quick { (200, 500) } else { (1_000, 10_000) };
    let xs = skewed_sample(n, 12);
    let old_ns = time_best(quick, || {
        std::hint::black_box(legacy_mean_bootstrap(&xs, 0.95, reps, 42));
    });
    let mut harness_err: Option<String> = None;
    let new_ns = time_best(quick, || {
        match bootstrap_ci(&xs, 0.95, reps, 42, |r| {
            r.iter().sum::<f64>() / r.len() as f64
        }) {
            Ok(ci) => {
                std::hint::black_box(ci);
            }
            Err(e) => harness_err = Some(e.to_string()),
        }
    });
    if let Some(e) = harness_err {
        return Err(format!("bootstrap_mean_ci_10k: {e}"));
    }
    Ok(BenchResult {
        id: "bootstrap_mean_ci_10k",
        old_ns,
        new_ns,
        target: None,
        ..BenchResult::default()
    })
}

// ---------------------------------------------------------------------
// Pair 4: order-statistic queries through the sorted cache.
// ---------------------------------------------------------------------

fn bench_sorted_quantiles(quick: bool) -> Result<BenchResult, String> {
    let n = if quick { 10_000 } else { 100_000 };
    let xs = skewed_sample(n, 13);
    let ps = [0.25, 0.5, 0.75, 0.9];
    let mut harness_err: Option<String> = None;
    let old_ns = time_best(quick, || {
        let mut acc = 0.0;
        for p in ps {
            match quantile(&xs, p, QuantileMethod::Interpolated) {
                Ok(q) => acc += q,
                Err(e) => harness_err = Some(e.to_string()),
            }
        }
        std::hint::black_box(acc);
    });
    let new_ns = time_best(quick, || {
        let sorted = match SortedSamples::new(&xs) {
            Ok(s) => s,
            Err(e) => {
                harness_err = Some(e.to_string());
                return;
            }
        };
        let mut acc = 0.0;
        for p in ps {
            match sorted.quantile(p, QuantileMethod::Interpolated) {
                Ok(q) => acc += q,
                Err(e) => harness_err = Some(e.to_string()),
            }
        }
        std::hint::black_box(acc);
    });
    if let Some(e) = harness_err {
        return Err(format!("sorted_quantile_queries_100k: {e}"));
    }
    Ok(BenchResult {
        id: "sorted_quantile_queries_100k",
        old_ns,
        new_ns,
        target: None,
        ..BenchResult::default()
    })
}

// ---------------------------------------------------------------------
// Pairs 5-7: the simulator hot path (collective interpretation versus
// compiled-schedule replay).
//
// The legacy side reimplements, verbatim in structure, the engine this PR
// replaced: every noise draw paid the erfc-refined normal quantile (one
// Acklam approximation plus a Halley step whose `std_normal_cdf` is an
// iterative incomplete-gamma expansion), every message recomputed its
// deterministic base cost from the topology, and every collective call
// allocated fresh per-rank working vectors.
// ---------------------------------------------------------------------

/// The pre-optimization standard normal draw: inverse-CDF sampling through
/// the *refined* quantile, exactly what `SimRng::std_normal` did before
/// it switched to the Acklam-only fast path.
fn legacy_std_normal(rng: &mut SimRng) -> f64 {
    let u = rng.uniform().clamp(1e-12, 1.0 - 1e-12);
    std_normal_inv_cdf(u)
}

/// `NoiseProfile::perturb` with the legacy normal draw — same mechanism
/// composition and draw order, old per-draw cost.
fn legacy_perturb(noise: &NoiseProfile, base_ns: f64, rng: &mut SimRng) -> f64 {
    let mut t = base_ns;
    if noise.jitter_sigma > 0.0 {
        t *= (noise.jitter_sigma * legacy_std_normal(rng).abs()).exp();
    }
    if noise.slow_path_prob > 0.0 && rng.bernoulli(noise.slow_path_prob) {
        t += noise.slow_path_extra_ns;
    }
    if noise.daemon_period_ns > 0.0 && noise.daemon_cost_ns > 0.0 {
        let mean = t / noise.daemon_period_ns;
        let hits = if mean <= 0.0 {
            0
        } else if mean < 30.0 {
            let l = (-mean).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.uniform();
                if p <= l || k > 1000 {
                    break k;
                }
                k += 1;
            }
        } else {
            (mean + mean.sqrt() * legacy_std_normal(rng))
                .round()
                .max(0.0) as u64
        };
        t += hits as f64 * noise.daemon_cost_ns;
    }
    if noise.congestion_prob > 0.0 && rng.bernoulli(noise.congestion_prob) {
        t += rng.pareto(noise.congestion_scale_ns, noise.congestion_shape);
    }
    t.max(base_ns)
}

/// The legacy interpreted reduce: fold phase plus binomial tree, fresh
/// `ready`/`done` vectors per call, base transfer cost recomputed from the
/// topology for every message, legacy noise draws.
fn legacy_reduce(
    machine: &MachineSpec,
    net: &NetworkModel<'_>,
    alloc: &Allocation,
    bytes: usize,
    rng: &mut SimRng,
) -> Vec<f64> {
    let reduction_op_ns = 40.0 + bytes as f64 * 0.05;
    let send_exit_ns = machine.network.injection_ns * 0.5;
    let p = alloc.ranks();
    let pof2 = {
        let mut x = 1usize;
        while x * 2 <= p {
            x *= 2;
        }
        x
    };
    let transfer = |src: usize, dst: usize, rng: &mut SimRng| {
        let base = net.base_transfer_ns(alloc.node_of[src], alloc.node_of[dst], bytes);
        legacy_perturb(&machine.noise, base, rng)
    };
    let mut ready = vec![0.0f64; p];
    let mut done = vec![f64::NAN; p];
    if pof2 < p {
        let mut fold_end = 0.0f64;
        for r in pof2..p {
            let dst = r - pof2;
            let t = transfer(r, dst, rng);
            done[r] = ready[r] + send_exit_ns;
            ready[dst] = ready[dst].max(ready[r] + t) + reduction_op_ns;
            fold_end = fold_end.max(ready[dst]);
        }
        for r in ready.iter_mut().take(pof2) {
            *r = r.max(fold_end);
        }
    }
    let mut mask = 1usize;
    while mask < pof2 {
        for r in 0..pof2 {
            if r & mask != 0 && done[r].is_nan() {
                let dst = r - mask;
                let t = transfer(r, dst, rng);
                done[r] = ready[r] + send_exit_ns;
                ready[dst] = ready[dst].max(ready[r] + t) + reduction_op_ns;
            }
        }
        mask <<= 1;
    }
    done[0] = ready[0];
    for r in 0..p {
        if done[r].is_nan() {
            done[r] = ready[r];
        }
    }
    done
}

/// The legacy dissemination barrier: per-round `next` vector allocated
/// inside the round loop, base costs recomputed per message.
fn legacy_barrier(
    machine: &MachineSpec,
    net: &NetworkModel<'_>,
    alloc: &Allocation,
    rng: &mut SimRng,
) -> Vec<f64> {
    let p = alloc.ranks();
    let mut ready = vec![0.0f64; p];
    let mut step = 1usize;
    while step < p {
        // The allocation this PR hoisted: one fresh vector per round.
        let mut next = vec![0.0f64; p];
        for (r, slot) in next.iter_mut().enumerate() {
            let from = (r + p - step % p) % p;
            let base = net.base_transfer_ns(alloc.node_of[from], alloc.node_of[r], 1);
            let t = legacy_perturb(&machine.noise, base, rng);
            *slot = ready[r].max(ready[from] + t);
        }
        ready = next;
        step <<= 1;
    }
    ready
}

fn bench_fig5_pipeline(quick: bool) -> Result<BenchResult, String> {
    // The whole Figure 5 campaign: 63 process counts, `runs` reductions
    // each. Old: sequential interpreted loop. New: per-p compiled
    // schedules replayed through per-worker arenas on the pool.
    let runs = if quick { 40 } else { 400 };
    let machine = MachineSpec::piz_daint();

    let old_ns = time_best(quick, || {
        let net = NetworkModel::new(&machine);
        let root = SimRng::new(DEFAULT_SEED);
        let mut medians = Vec::new();
        for p in 2..=64usize {
            let mut rng = root.fork_indexed("fig5", p as u64);
            let alloc =
                Allocation::one_rank_per_node(&machine, p, AllocationPolicy::Random, &mut rng);
            let mut completion_us = Vec::with_capacity(runs);
            for _ in 0..runs {
                let done = legacy_reduce(&machine, &net, &alloc, 8, &mut rng);
                let max_ns = done.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                completion_us.push(max_ns * 1e-3);
            }
            medians.push(
                FiveNumberSummary::from_samples(&completion_us)
                    .map(|s| s.median)
                    .unwrap_or(f64::NAN),
            );
        }
        std::hint::black_box(medians);
    });

    let mut harness_err: Option<String> = None;
    let new_ns = time_best(quick, || match fig5_reduce::compute(runs, DEFAULT_SEED) {
        Ok(fig) => {
            std::hint::black_box(fig.points.len());
        }
        Err(e) => harness_err = Some(e.to_string()),
    });
    if let Some(e) = harness_err {
        return Err(format!("fig5_reduce_pipeline: {e}"));
    }
    Ok(BenchResult {
        id: "fig5_reduce_pipeline",
        old_ns,
        new_ns,
        target: Some(3.0),
        ..BenchResult::default()
    })
}

fn bench_reduce_replay(quick: bool) -> Result<BenchResult, String> {
    // A single compiled reduce at p = 128, replayed back to back — the
    // simulator's innermost hot loop, no campaign machinery around it.
    let reps = if quick { 500 } else { 20_000 };
    let machine = MachineSpec::piz_daint();
    let root = SimRng::new(5);
    let mut alloc_rng = root.fork("alloc");
    let alloc =
        Allocation::one_rank_per_node(&machine, 128, AllocationPolicy::Random, &mut alloc_rng);
    let net = NetworkModel::new(&machine);

    let old_ns = time_best(quick, || {
        let mut rng = root.fork("samples");
        let mut acc = 0.0;
        for _ in 0..reps {
            let done = legacy_reduce(&machine, &net, &alloc, 8, &mut rng);
            acc += done[0];
        }
        std::hint::black_box(acc);
    });

    let schedule = CompiledSchedule::compile_reduce(&machine, &alloc, 8);
    let new_ns = time_best(quick, || {
        let mut rng = root.fork("samples");
        let mut ctx = ReplayCtx::with_capacity(128);
        let mut acc = 0.0;
        for _ in 0..reps {
            let done = schedule.replay_into(&mut ctx, &mut rng);
            acc += done[0];
        }
        std::hint::black_box(acc);
    });
    Ok(BenchResult {
        id: "sim_reduce_replay_128",
        old_ns,
        new_ns,
        target: Some(5.0),
        ..BenchResult::default()
    })
}

fn bench_barrier_replay(quick: bool) -> Result<BenchResult, String> {
    // Barrier at p = 64: p messages per round make the per-round `next`
    // allocation the legacy engine paid clearly visible.
    let reps = if quick { 200 } else { 5_000 };
    let machine = MachineSpec::piz_daint();
    let root = SimRng::new(6);
    let mut alloc_rng = root.fork("alloc");
    let alloc =
        Allocation::one_rank_per_node(&machine, 64, AllocationPolicy::Random, &mut alloc_rng);
    let net = NetworkModel::new(&machine);

    let old_ns = time_best(quick, || {
        let mut rng = root.fork("samples");
        let mut acc = 0.0;
        for _ in 0..reps {
            let done = legacy_barrier(&machine, &net, &alloc, &mut rng);
            acc += done[0];
        }
        std::hint::black_box(acc);
    });

    let schedule = CompiledSchedule::compile_barrier(&machine, &alloc);
    let new_ns = time_best(quick, || {
        let mut rng = root.fork("samples");
        let mut ctx = ReplayCtx::with_capacity(64);
        let mut acc = 0.0;
        for _ in 0..reps {
            let done = schedule.replay_into(&mut ctx, &mut rng);
            acc += done[0];
        }
        std::hint::black_box(acc);
    });
    Ok(BenchResult {
        id: "sim_barrier_replay_64",
        old_ns,
        new_ns,
        target: None,
        ..BenchResult::default()
    })
}

// ---------------------------------------------------------------------
// Pairs 8-9: streaming statistics (vector mode versus mergeable
// sketches) on million-sample workloads.
// ---------------------------------------------------------------------

/// Heavy-tailed measurement used by both streaming pairs: a shifted
/// exponential with CoV ≈ 0.9, the regime where mean-based summaries
/// mislead and quantile sketches have to earn their keep.
fn stream_measure(point: &RunPoint, rng: &mut SimRng) -> f64 {
    let base = if point.level(0) == "a" { 0.1 } else { 0.2 };
    let u = rng.uniform().clamp(1e-12, 1.0 - 1e-12);
    base + (-u.ln())
}

fn bench_stream_campaign(quick: bool) -> Result<BenchResult, String> {
    // A full campaign at 10⁶ samples per point (the ISSUE acceptance
    // scale): vector mode keeps 4 × 8 MB of samples resident, streaming
    // mode keeps 4 sketches.
    let n = if quick { 20_000 } else { 1_000_000 };
    let design = Design::new(vec![
        Factor::new("system", &["a", "b"]),
        Factor::numeric("size", &[8.0, 64.0]),
    ]);
    let plan = MeasurementPlan::new("op").stopping(StoppingRule::FixedCount(n));
    let stream_cfg = StreamConfig::default();
    let config = CampaignConfig {
        seed: 31,
        threads: 4,
    };

    // Untimed correctness + accounting pass: the sketch campaign's
    // quantiles must sit within 1% relative of the exact answer on the
    // identical sample streams before any timing is trusted.
    let vector = run_campaign(&design, &plan, &config, stream_measure)
        .map_err(|e| format!("stream_campaign_1m_samples: vector pass: {e}"))?;
    let stream = run_campaign_stream(&design, &plan, &stream_cfg, &config, stream_measure)
        .map_err(|e| format!("stream_campaign_1m_samples: stream pass: {e}"))?;
    let mut old_bytes = 0usize;
    let mut new_bytes = 0usize;
    for (vr, sr) in vector.runs.iter().zip(&stream.runs) {
        old_bytes += vr.outcome.samples.len() * std::mem::size_of::<f64>();
        new_bytes += sr.outcome.summary.resident_bytes();
        let sorted = SortedSamples::new(&vr.outcome.samples)
            .map_err(|e| format!("stream_campaign_1m_samples: sort: {e}"))?;
        for p in [0.5, 0.9, 0.99] {
            let exact = sorted
                .quantile(p, QuantileMethod::Interpolated)
                .map_err(|e| format!("stream_campaign_1m_samples: exact q{p}: {e}"))?;
            let approx = sr
                .outcome
                .summary
                .quantile(p)
                .map_err(|e| format!("stream_campaign_1m_samples: sketch q{p}: {e}"))?;
            let rel = (approx - exact).abs() / exact.abs().max(f64::MIN_POSITIVE);
            if rel > 0.01 {
                return Err(format!(
                    "stream_campaign_1m_samples: q{p} off by {:.2}% \
                     (exact {exact}, sketch {approx})",
                    rel * 100.0
                ));
            }
        }
    }

    let mut harness_err: Option<String> = None;
    let old_ns = time_best(quick, || {
        match run_campaign(&design, &plan, &config, stream_measure) {
            Ok(result) => assert_eq!(result.runs.len(), 4),
            Err(e) => harness_err = Some(e.to_string()),
        }
    });
    let new_ns = time_best(quick, || {
        match run_campaign_stream(&design, &plan, &stream_cfg, &config, stream_measure) {
            Ok(result) => assert_eq!(result.runs.len(), 4),
            Err(e) => harness_err = Some(e.to_string()),
        }
    });
    if let Some(e) = harness_err {
        return Err(format!("stream_campaign_1m_samples: {e}"));
    }
    Ok(BenchResult {
        id: "stream_campaign_1m_samples",
        old_ns,
        new_ns,
        target: None,
        old_bytes: Some(old_bytes),
        new_bytes: Some(new_bytes),
        target_mem_ratio: Some(50.0),
    })
}

fn bench_tdigest_quantiles(quick: bool) -> Result<BenchResult, String> {
    // Raw quantile extraction at n = 10⁶: sort-and-query versus
    // push-into-sketch-and-query. Accuracy is gated by *rank*: the
    // sketch's value must land between the exact quantiles at p ± 0.01.
    let n = if quick { 50_000 } else { 1_000_000 };
    let design = Design::new(vec![Factor::new("system", &["a"])]);
    let point = &design.full_factorial()[0];
    let fill =
        |rng: &mut SimRng| -> Vec<f64> { (0..n).map(|_| stream_measure(point, rng)).collect() };
    let xs = fill(&mut SimRng::new(19).fork("tdigest"));

    let mut summary = StreamingSummary::new(StreamConfig::default())
        .map_err(|e| format!("tdigest_quantiles_1m: config: {e}"))?;
    for &x in &xs {
        summary.push(x);
    }
    let sorted = SortedSamples::new(&xs).map_err(|e| format!("tdigest_quantiles_1m: sort: {e}"))?;
    for p in [0.5, 0.9, 0.99] {
        let lo = sorted
            .quantile((p - 0.01f64).max(0.0), QuantileMethod::Interpolated)
            .map_err(|e| format!("tdigest_quantiles_1m: rank lo: {e}"))?;
        let hi = sorted
            .quantile((p + 0.01f64).min(1.0), QuantileMethod::Interpolated)
            .map_err(|e| format!("tdigest_quantiles_1m: rank hi: {e}"))?;
        let approx = summary
            .quantile(p)
            .map_err(|e| format!("tdigest_quantiles_1m: sketch: {e}"))?;
        if !(lo <= approx && approx <= hi) {
            return Err(format!(
                "tdigest_quantiles_1m: q{p} = {approx} outside rank window \
                 [{lo}, {hi}]"
            ));
        }
    }

    let ps = [0.25, 0.5, 0.75, 0.9, 0.99];
    let mut harness_err: Option<String> = None;
    let old_ns = time_best(quick, || {
        let sorted = match SortedSamples::new(&xs) {
            Ok(s) => s,
            Err(e) => {
                harness_err = Some(e.to_string());
                return;
            }
        };
        let mut acc = 0.0;
        for p in ps {
            match sorted.quantile(p, QuantileMethod::Interpolated) {
                Ok(q) => acc += q,
                Err(e) => harness_err = Some(e.to_string()),
            }
        }
        std::hint::black_box(acc);
    });
    let new_ns = time_best(quick, || {
        let mut s = match StreamingSummary::new(StreamConfig::default()) {
            Ok(s) => s,
            Err(e) => {
                harness_err = Some(e.to_string());
                return;
            }
        };
        for &x in &xs {
            s.push(x);
        }
        let mut acc = 0.0;
        for p in ps {
            match s.quantile(p) {
                Ok(q) => acc += q,
                Err(e) => harness_err = Some(e.to_string()),
            }
        }
        std::hint::black_box(acc);
    });
    if let Some(e) = harness_err {
        return Err(format!("tdigest_quantiles_1m: {e}"));
    }
    Ok(BenchResult {
        id: "tdigest_quantiles_1m",
        old_ns,
        new_ns,
        target: None,
        old_bytes: Some(xs.len() * std::mem::size_of::<f64>()),
        new_bytes: Some(summary.resident_bytes()),
        target_mem_ratio: Some(50.0),
    })
}

// ---------------------------------------------------------------------
// JSON emission and verification (hand-rolled: no JSON dependency).
// ---------------------------------------------------------------------

fn render_json(results: &[BenchResult], schema: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{schema}\",");
    out.push_str("  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        let mut fields = vec![
            format!("      \"id\": \"{}\"", r.id),
            format!("      \"old_ns\": {}", r.old_ns),
            format!("      \"new_ns\": {}", r.new_ns),
            format!("      \"speedup\": {:.2}", r.speedup()),
        ];
        if let Some(t) = r.target {
            fields.push(format!("      \"target_speedup\": {t:.1}"));
        }
        if let (Some(old), Some(new)) = (r.old_bytes, r.new_bytes) {
            fields.push(format!("      \"old_bytes\": {old}"));
            fields.push(format!("      \"new_bytes\": {new}"));
            if let Some(ratio) = r.mem_ratio() {
                fields.push(format!("      \"mem_ratio\": {ratio:.2}"));
            }
        }
        if let Some(t) = r.target_mem_ratio {
            fields.push(format!("      \"target_mem_ratio\": {t:.1}"));
        }
        out.push_str(&fields.join(",\n"));
        out.push('\n');
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts the number following `"key":` in `obj`, if present.
fn field_number(obj: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let start = obj.find(&marker)? + marker.len();
    let rest = obj[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn verify(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading: {e}"))?;
    // Dispatch on the schema marker: one binary verifies both the stats
    // and the simulator baseline files.
    let expected: &[(&str, Option<f64>)] =
        if text.contains(&format!("\"schema\": \"{SCHEMA_SIM}\"")) {
            EXPECTED_SIM
        } else if text.contains(&format!("\"schema\": \"{SCHEMA_STREAM}\"")) {
            EXPECTED_STREAM
        } else if text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
            EXPECTED
        } else {
            return Err(format!(
                "no known schema marker ({SCHEMA:?}, {SCHEMA_SIM:?} or {SCHEMA_STREAM:?}) found"
            ));
        };
    let mut report = String::from("baseline OK:\n");
    for (id, target) in expected {
        let marker = format!("\"id\": \"{id}\"");
        let at = text
            .find(&marker)
            .ok_or_else(|| format!("bench id {id:?} missing"))?;
        // The entry's fields live between this id and the next object.
        let entry = &text[at..text[at..].find('}').map_or(text.len(), |e| at + e)];
        let old_ns =
            field_number(entry, "old_ns").ok_or_else(|| format!("{id}: old_ns missing"))?;
        let new_ns =
            field_number(entry, "new_ns").ok_or_else(|| format!("{id}: new_ns missing"))?;
        let speedup =
            field_number(entry, "speedup").ok_or_else(|| format!("{id}: speedup missing"))?;
        if !(old_ns > 0.0 && new_ns > 0.0 && speedup > 0.0) {
            return Err(format!("{id}: non-positive timings"));
        }
        if let Some(t) = target {
            if speedup < *t {
                return Err(format!(
                    "{id}: recorded speedup {speedup:.2}x below target {t:.0}x"
                ));
            }
        }
        // Memory pairs are gated by their recorded ratio, same as
        // speedup targets.
        if let Some(target) = field_number(entry, "target_mem_ratio") {
            let ratio = field_number(entry, "mem_ratio")
                .ok_or_else(|| format!("{id}: mem_ratio missing"))?;
            if ratio < target {
                return Err(format!(
                    "{id}: recorded memory ratio {ratio:.1}x below target {target:.0}x"
                ));
            }
            let _ = writeln!(report, "  {id}: {speedup:.2}x, mem {ratio:.0}x");
        } else {
            let _ = writeln!(report, "  {id}: {speedup:.2}x");
        }
    }
    Ok(report.trim_end().to_string())
}
