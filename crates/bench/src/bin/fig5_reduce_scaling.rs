//! Regenerates Figure 5: MPI_Reduce completion times for p = 2..64.

use std::process::ExitCode;

use scibench_bench::figures::fig5_reduce;
use scibench_bench::{output, samples_from_env, DEFAULT_SEED};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig5_reduce_scaling: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let runs = samples_from_env(1_000);
    let fig = fig5_reduce::compute(runs, DEFAULT_SEED)?;
    println!("{}", fig.render());
    let (pof2, others) = fig.series()?;
    println!("\npowers-of-two series:\n{}", pof2.to_csv());
    println!("others (not connected, Rule 12):\n{}", others.to_csv());
    let path = output::write_csv("fig5_reduce", &fig.dataset())?;
    println!("per-p summaries: {}", path.display());
    Ok(())
}
