//! CI gate for the observability layer: runs a quick measurement
//! campaign twice — untraced and fully traced — and fails (non-zero
//! exit) unless
//!
//! 1. the traced result is **bit-identical** to the untraced one (the
//!    Heisenberg check: observation must not perturb the measurement),
//! 2. the non-schedule event counts are identical across thread counts
//!    (deterministic trace contract),
//! 3. both exports — chrome://tracing JSON and JSONL — pass the schema
//!    validator after a write/read round trip.
//!
//! Usage: `trace_campaign [--out <dir>]` (default `figures`).

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use scibench::experiment::campaign::{run_campaign, run_campaign_traced, CampaignConfig};
use scibench::experiment::design::{Design, Factor, RunPoint};
use scibench::experiment::measurement::{MeasurementPlan, StoppingRule};
use scibench_sim::rng::SimRng;
use scibench_trace::{
    category, to_chrome_json, to_jsonl, validate_chrome_trace, validate_jsonl, Trace, Tracer,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = match args.as_slice() {
        [] => PathBuf::from("figures"),
        [flag, dir] if flag == "--out" => PathBuf::from(dir),
        other => {
            eprintln!(
                "trace_campaign: unknown arguments {other:?} (usage: trace_campaign [--out <dir>])"
            );
            return ExitCode::from(2);
        }
    };
    match run(&out_dir) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace_campaign: {e}");
            ExitCode::FAILURE
        }
    }
}

fn demo_design() -> Design {
    Design::new(vec![
        Factor::new("system", &["lib-a", "lib-b"]),
        Factor::numeric("size", &[8.0, 64.0, 512.0]),
    ])
}

fn measure(point: &RunPoint, rng: &mut SimRng) -> f64 {
    let base = if point.level(0) == "lib-a" { 1.0 } else { 1.4 };
    let size: f64 = point.level(1).parse().unwrap_or(1.0);
    base + size.ln() * 0.05 + rng.uniform() * 0.1
}

fn campaign_at(
    threads: usize,
    tracer: Option<&Tracer>,
) -> Result<scibench::experiment::campaign::CampaignResult, String> {
    let design = demo_design();
    let plan = MeasurementPlan::new("latency")
        .warmup(3)
        .stopping(StoppingRule::FixedCount(40));
    let config = CampaignConfig { seed: 77, threads };
    run_campaign_traced(&design, &plan, &config, tracer, measure)
        .map_err(|e| format!("traced campaign at {threads} threads: {e}"))
}

/// Runs one traced campaign, returning its result and drained trace.
fn traced_at(
    threads: usize,
) -> Result<(scibench::experiment::campaign::CampaignResult, Trace), String> {
    let tracer = Tracer::new();
    let result = campaign_at(threads, Some(&tracer))?;
    Ok((result, tracer.drain()))
}

fn run(out_dir: &PathBuf) -> Result<String, String> {
    let design = demo_design();
    let plan = MeasurementPlan::new("latency")
        .warmup(3)
        .stopping(StoppingRule::FixedCount(40));
    let config = CampaignConfig {
        seed: 77,
        threads: 2,
    };
    let untraced = run_campaign(&design, &plan, &config, measure)
        .map_err(|e| format!("untraced campaign: {e}"))?;

    // 1. Tracing must not perturb the measurement, at any thread count.
    let mut reference: Option<Trace> = None;
    for threads in [1, 2, 8] {
        let (traced, trace) = traced_at(threads)?;
        if traced != untraced {
            return Err(format!(
                "traced campaign at {threads} threads differs from the untraced result"
            ));
        }
        // 2. Deterministic (non-SCHED) event counts across thread counts.
        match &reference {
            None => reference = Some(trace),
            Some(base) => {
                if trace.deterministic_counts() != base.deterministic_counts() {
                    return Err(format!(
                        "non-schedule event counts at {threads} threads differ from 1 thread: {:?} vs {:?}",
                        trace.deterministic_counts(),
                        base.deterministic_counts()
                    ));
                }
            }
        }
    }
    let trace = reference.expect("at least one traced run");
    let points = design.full_factorial().len();
    if trace.count(category::CAMPAIGN) != 2 * points {
        return Err(format!(
            "expected {} campaign events (span + counter per point), found {}",
            2 * points,
            trace.count(category::CAMPAIGN)
        ));
    }

    // 3. Export round trip: write both formats, read back, validate.
    fs::create_dir_all(out_dir).map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    let mut lines = vec![format!(
        "traced campaign bit-identical to untraced at threads 1, 2, 8 ({} events)",
        trace.len()
    )];
    for (name, text, is_jsonl) in [
        ("trace_campaign.json", to_chrome_json(&trace), false),
        ("trace_campaign.jsonl", to_jsonl(&trace), true),
    ] {
        let path = out_dir.join(name);
        fs::write(&path, &text).map_err(|e| format!("writing {}: {e}", path.display()))?;
        let back =
            fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let events = if is_jsonl {
            validate_jsonl(&back)
        } else {
            validate_chrome_trace(&back)
        }
        .map_err(|e| format!("{name} failed schema validation: {e}"))?;
        lines.push(format!("{} valid ({events} events)", path.display()));
    }
    Ok(lines.join("\n"))
}
