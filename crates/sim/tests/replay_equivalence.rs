//! Property-based equivalence of the compiled-schedule replayer and the
//! collective interpreter (the PR's correctness gate): for every process
//! count, message size (both sides of the rendezvous threshold), fault
//! plan, and tracing mode, replaying a compiled schedule must produce
//! per-rank completion times that are bit-identical to interpreting the
//! collective with the same RNG stream.

use proptest::prelude::*;

use scibench_sim::alloc::{Allocation, AllocationPolicy};
use scibench_sim::collectives::{barrier, broadcast, reduce};
use scibench_sim::collectives::{barrier_faulty, broadcast_faulty, reduce_faulty};
use scibench_sim::compile::{CompiledSchedule, ReplayCtx};
use scibench_sim::fault::{FaultContext, FaultPlan};
use scibench_sim::machine::MachineSpec;
use scibench_sim::rng::SimRng;

/// Process counts stressing every algorithmic branch: p = 1 (degenerate),
/// powers of two (no fold phase), and 2^k ± 1 (fold phase, ragged trees).
const PROCS: &[usize] = &[1, 2, 3, 4, 5, 8, 9, 16, 17, 32, 33, 64, 65, 128, 129];

/// Message sizes spanning the Piz Daint eager/rendezvous threshold
/// (8192 B) — the protocol switch changes the base cost formula.
const BYTES: &[usize] = &[1, 64, 4096, 8192, 8193, 65536];

fn setup(p: usize, seed: u64) -> (MachineSpec, Allocation, SimRng) {
    let machine = MachineSpec::piz_daint();
    let root = SimRng::new(seed);
    let mut alloc_rng = root.fork("alloc");
    let alloc =
        Allocation::one_rank_per_node(&machine, p, AllocationPolicy::Random, &mut alloc_rng);
    (machine, alloc, root)
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn reduce_replay_is_bit_identical(
        p_idx in 0..PROCS.len(),
        b_idx in 0..BYTES.len(),
        seed in 0u64..10_000,
    ) {
        let (p, bytes) = (PROCS[p_idx], BYTES[b_idx]);
        let (machine, alloc, root) = setup(p, seed);
        let mut rng_a = root.fork("samples");
        let mut rng_b = root.fork("samples");
        let schedule = CompiledSchedule::compile_reduce(&machine, &alloc, bytes);
        let mut ctx = ReplayCtx::with_capacity(p);
        for _ in 0..3 {
            let interpreted = reduce(&machine, &alloc, bytes, &mut rng_a);
            let replayed = schedule.replay_into(&mut ctx, &mut rng_b);
            prop_assert_eq!(bits(&interpreted.per_rank_done_ns), bits(replayed));
        }
    }

    #[test]
    fn broadcast_replay_is_bit_identical(
        p_idx in 0..PROCS.len(),
        b_idx in 0..BYTES.len(),
        seed in 0u64..10_000,
    ) {
        let (p, bytes) = (PROCS[p_idx], BYTES[b_idx]);
        let (machine, alloc, root) = setup(p, seed);
        let mut rng_a = root.fork("samples");
        let mut rng_b = root.fork("samples");
        let schedule = CompiledSchedule::compile_broadcast(&machine, &alloc, bytes);
        let mut ctx = ReplayCtx::with_capacity(p);
        for _ in 0..3 {
            let interpreted = broadcast(&machine, &alloc, bytes, &mut rng_a);
            let replayed = schedule.replay_into(&mut ctx, &mut rng_b);
            prop_assert_eq!(bits(&interpreted.per_rank_done_ns), bits(replayed));
        }
    }

    #[test]
    fn barrier_replay_is_bit_identical(
        p_idx in 0..PROCS.len(),
        seed in 0u64..10_000,
    ) {
        let p = PROCS[p_idx];
        let (machine, alloc, root) = setup(p, seed);
        let mut rng_a = root.fork("samples");
        let mut rng_b = root.fork("samples");
        let schedule = CompiledSchedule::compile_barrier(&machine, &alloc);
        let mut ctx = ReplayCtx::with_capacity(p);
        for _ in 0..3 {
            let interpreted = barrier(&machine, &alloc, &mut rng_a);
            let replayed = schedule.replay_into(&mut ctx, &mut rng_b);
            prop_assert_eq!(bits(&interpreted.per_rank_done_ns), bits(replayed));
        }
    }

    #[test]
    fn faulty_replay_is_bit_identical_including_failures(
        p_idx in 0..PROCS.len(),
        b_idx in 0..BYTES.len(),
        seed in 0u64..10_000,
        rate in 0.0f64..0.8,
    ) {
        let (p, bytes) = (PROCS[p_idx], BYTES[b_idx]);
        let (machine, alloc, root) = setup(p, seed);
        let plan = FaultPlan::with_failure_rate(rate);
        let mut ctx_a = FaultContext::new(&plan, machine.nodes, &root);
        let mut ctx_b = FaultContext::new(&plan, machine.nodes, &root);
        let mut rng_a = root.fork("samples");
        let mut rng_b = root.fork("samples");
        let schedule = CompiledSchedule::compile_reduce(&machine, &alloc, bytes);
        let mut arena = ReplayCtx::with_capacity(p);
        for _ in 0..3 {
            let interpreted =
                reduce_faulty(&machine, &alloc, bytes, &mut ctx_a, &mut rng_a);
            let replayed = schedule.replay_faulty_into(&mut arena, &mut ctx_b, &mut rng_b);
            match (interpreted, replayed) {
                (Ok(a), Ok(b)) => prop_assert_eq!(bits(&a.per_rank_done_ns), bits(b)),
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(false, "diverged: {:?} vs {:?}", a.is_ok(), b.is_ok()),
            }
            // The simulated clocks must march in lockstep too.
            prop_assert_eq!(ctx_a.now_ns().to_bits(), ctx_b.now_ns().to_bits());
        }
    }

    #[test]
    fn faulty_broadcast_and_barrier_replay_match(
        p_idx in 0..PROCS.len(),
        seed in 0u64..10_000,
        rate in 0.0f64..0.8,
    ) {
        let p = PROCS[p_idx];
        let (machine, alloc, root) = setup(p, seed);
        let plan = FaultPlan::with_failure_rate(rate);
        for op in 0..2usize {
            let mut ctx_a = FaultContext::new(&plan, machine.nodes, &root);
            let mut ctx_b = FaultContext::new(&plan, machine.nodes, &root);
            let mut rng_a = root.fork("samples");
            let mut rng_b = root.fork("samples");
            let schedule = if op == 0 {
                CompiledSchedule::compile_broadcast(&machine, &alloc, 4096)
            } else {
                CompiledSchedule::compile_barrier(&machine, &alloc)
            };
            let mut arena = ReplayCtx::with_capacity(p);
            let interpreted = if op == 0 {
                broadcast_faulty(&machine, &alloc, 4096, &mut ctx_a, &mut rng_a)
            } else {
                barrier_faulty(&machine, &alloc, &mut ctx_a, &mut rng_a)
            };
            let replayed = schedule.replay_faulty_into(&mut arena, &mut ctx_b, &mut rng_b);
            match (interpreted, replayed) {
                (Ok(a), Ok(b)) => prop_assert_eq!(bits(&a.per_rank_done_ns), bits(b)),
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(false, "op {}: diverged: {:?} vs {:?}", op, a.is_ok(), b.is_ok()),
            }
            prop_assert_eq!(ctx_a.now_ns().to_bits(), ctx_b.now_ns().to_bits());
        }
    }

    #[test]
    fn replay_reuses_its_arena(
        p_idx in 0..PROCS.len(),
        seed in 0u64..10_000,
    ) {
        // Zero-allocation contract: after the first replay the arena's
        // buffers never grow again for same-or-smaller schedules.
        let p = PROCS[p_idx];
        let (machine, alloc, root) = setup(p, seed);
        let schedule = CompiledSchedule::compile_reduce(&machine, &alloc, 8);
        let mut ctx = ReplayCtx::new();
        let mut rng = root.fork("samples");
        schedule.replay_into(&mut ctx, &mut rng);
        let caps = ctx.capacities();
        for _ in 0..5 {
            schedule.replay_into(&mut ctx, &mut rng);
            prop_assert_eq!(ctx.capacities(), caps);
        }
    }
}
