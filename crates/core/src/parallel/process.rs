//! Summarizing measurements across processes (§4.2.1 "Summarize times
//! across processes", Rule 10).
//!
//! After measuring `n` events on `P` processes the experimenter holds
//! `n·P` values. The paper: "We recommend performing an ANOVA test to
//! determine if the timings of different processes are significantly
//! different. If the test indicates no significant difference, then all
//! values can be considered from the same population. Otherwise, more
//! detailed investigations may be necessary."
//!
//! [`summarize_across_processes`] runs that ANOVA and picks the summary
//! accordingly; all the paper's cross-process summaries (max, median,
//! pooled) are available explicitly as [`CrossProcessSummary`] variants.

use serde::{Deserialize, Serialize};

use scibench_stats::error::{StatsError, StatsResult};
use scibench_stats::htest::{one_way_anova, AnovaResult};
use scibench_stats::quantile::median;
use scibench_stats::summary::arithmetic_mean;

/// How to collapse per-process samples into one number per repetition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrossProcessSummary {
    /// Maximum across processes — worst-case completion (used by the
    /// paper for Figure 5 "to assess worst-case performance").
    Max,
    /// Median across processes — robust central tendency.
    Median,
    /// Minimum across processes — a non-robust measure the paper advises
    /// against; present so its bias can be demonstrated.
    Min,
}

/// Result of the Rule-10 cross-process analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessAnalysis {
    /// ANOVA over the per-process groups.
    pub anova: AnovaResult,
    /// Whether process identity matters at the given significance level.
    pub processes_differ: bool,
    /// Per-process means (one per rank).
    pub per_process_mean: Vec<f64>,
    /// Pooled values if the processes do *not* differ (single
    /// population); `None` otherwise.
    pub pooled: Option<Vec<f64>>,
}

/// Runs the paper's ANOVA check across process groups.
///
/// `per_process[r]` holds the repeated measurements of rank `r`. Returns
/// the analysis at significance `alpha` (e.g. 0.05).
pub fn summarize_across_processes(
    per_process: &[Vec<f64>],
    alpha: f64,
) -> StatsResult<ProcessAnalysis> {
    if per_process.len() < 2 {
        return Err(StatsError::InvalidGroups("need at least two processes"));
    }
    let groups: Vec<&[f64]> = per_process.iter().map(Vec::as_slice).collect();
    let anova = one_way_anova(&groups)?;
    let processes_differ = anova.significant_at(alpha);
    let per_process_mean = per_process
        .iter()
        .map(|g| arithmetic_mean(g))
        .collect::<StatsResult<Vec<f64>>>()?;
    let pooled = if processes_differ {
        None
    } else {
        Some(per_process.iter().flat_map(|g| g.iter().copied()).collect())
    };
    Ok(ProcessAnalysis {
        anova,
        processes_differ,
        per_process_mean,
        pooled,
    })
}

/// Collapses one repetition's per-rank values with the chosen summary.
///
/// Non-finite values are rejected with [`StatsError::NonFiniteSample`]:
/// `f64::max`/`f64::min` silently discard NaN operands, so a NaN rank
/// timing would otherwise vanish into a plausible-looking max/min
/// instead of flagging the corrupt measurement.
pub fn collapse_repetition(values_per_rank: &[f64], how: CrossProcessSummary) -> StatsResult<f64> {
    if values_per_rank.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if values_per_rank.iter().any(|v| !v.is_finite()) {
        return Err(StatsError::NonFiniteSample);
    }
    Ok(match how {
        CrossProcessSummary::Max => values_per_rank
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max),
        CrossProcessSummary::Min => values_per_rank
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min),
        CrossProcessSummary::Median => median(values_per_rank)?,
    })
}

/// Collapses a whole campaign: `reps[i]` holds repetition `i`'s per-rank
/// values; returns one summarized value per repetition.
pub fn collapse_campaign(reps: &[Vec<f64>], how: CrossProcessSummary) -> StatsResult<Vec<f64>> {
    reps.iter().map(|r| collapse_repetition(r, how)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy(n: usize, mu: f64, seed: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(seed.wrapping_mul(2654435761) | 1);
                mu + ((x % 1000) as f64 / 1000.0 - 0.5) * 0.2
            })
            .collect()
    }

    #[test]
    fn homogeneous_processes_pool() {
        let per_process: Vec<Vec<f64>> = (0..8).map(|r| noisy(50, 10.0, r + 1)).collect();
        let a = summarize_across_processes(&per_process, 0.05).unwrap();
        assert!(!a.processes_differ, "p = {}", a.anova.p_value);
        let pooled = a.pooled.unwrap();
        assert_eq!(pooled.len(), 400);
    }

    #[test]
    fn divergent_process_detected() {
        // Figure 6's situation: some ranks significantly slower.
        let mut per_process: Vec<Vec<f64>> = (0..8).map(|r| noisy(50, 10.0, r + 1)).collect();
        per_process[3] = noisy(50, 12.0, 99);
        let a = summarize_across_processes(&per_process, 0.05).unwrap();
        assert!(a.processes_differ);
        assert!(a.pooled.is_none());
        assert!(a.per_process_mean[3] > a.per_process_mean[0] + 1.0);
    }

    #[test]
    fn collapse_variants() {
        let vals = [3.0, 1.0, 2.0];
        assert_eq!(
            collapse_repetition(&vals, CrossProcessSummary::Max).unwrap(),
            3.0
        );
        assert_eq!(
            collapse_repetition(&vals, CrossProcessSummary::Min).unwrap(),
            1.0
        );
        assert_eq!(
            collapse_repetition(&vals, CrossProcessSummary::Median).unwrap(),
            2.0
        );
    }

    #[test]
    fn collapse_campaign_shapes() {
        let reps = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 0.0]];
        let maxes = collapse_campaign(&reps, CrossProcessSummary::Max).unwrap();
        assert_eq!(maxes, vec![2.0, 4.0, 5.0]);
        let mins = collapse_campaign(&reps, CrossProcessSummary::Min).unwrap();
        assert_eq!(mins, vec![1.0, 3.0, 0.0]);
    }

    #[test]
    fn max_exceeds_median_exceeds_min() {
        let reps = vec![noisy(32, 5.0, 7)];
        let mx = collapse_campaign(&reps, CrossProcessSummary::Max).unwrap()[0];
        let md = collapse_campaign(&reps, CrossProcessSummary::Median).unwrap()[0];
        let mn = collapse_campaign(&reps, CrossProcessSummary::Min).unwrap()[0];
        assert!(mn <= md && md <= mx);
    }

    #[test]
    fn errors_on_degenerate_input() {
        assert!(summarize_across_processes(&[vec![1.0, 2.0]], 0.05).is_err());
        assert!(collapse_repetition(&[], CrossProcessSummary::Max).is_err());
    }

    #[test]
    fn non_finite_ranks_are_rejected_not_dropped() {
        // Without the guard, fold(NEG_INFINITY, f64::max) over
        // [NaN, 1.0] returns 1.0 — the corrupt rank silently vanishes.
        for how in [
            CrossProcessSummary::Max,
            CrossProcessSummary::Min,
            CrossProcessSummary::Median,
        ] {
            for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
                assert_eq!(
                    collapse_repetition(&[bad, 1.0], how),
                    Err(StatsError::NonFiniteSample),
                    "{how:?} accepted {bad}"
                );
                assert_eq!(
                    collapse_repetition(&[1.0, 2.0, bad], how),
                    Err(StatsError::NonFiniteSample),
                    "{how:?} accepted trailing {bad}"
                );
            }
            // All-NaN input must not produce the fold identity element.
            assert_eq!(
                collapse_repetition(&[f64::NAN], how),
                Err(StatsError::NonFiniteSample)
            );
        }
        // Boundary: extreme but finite values still collapse normally.
        let extremes = [f64::MAX, f64::MIN, 0.0];
        assert_eq!(
            collapse_repetition(&extremes, CrossProcessSummary::Max).unwrap(),
            f64::MAX
        );
        assert_eq!(
            collapse_repetition(&extremes, CrossProcessSummary::Min).unwrap(),
            f64::MIN
        );
        assert_eq!(
            collapse_repetition(&extremes, CrossProcessSummary::Median).unwrap(),
            0.0
        );
        // One bad repetition fails the whole campaign collapse loudly.
        let reps = vec![vec![1.0, 2.0], vec![f64::NAN, 3.0]];
        assert_eq!(
            collapse_campaign(&reps, CrossProcessSummary::Max),
            Err(StatsError::NonFiniteSample)
        );
    }
}
