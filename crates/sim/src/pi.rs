//! The π-digits scaling workload of Figure 7(a,b).
//!
//! The paper: "Figure 7 shows scaling results from calculating digits of
//! Pi on Piz Daint. The code is fully parallel until the execution of a
//! single reduction; the base case takes 20 ms of which 0.2 ms is caused
//! by a serial initialization (b = 0.01)." The final reduction follows the
//! empirical piecewise model
//!
//! ```text
//! f(p ≤ 8)        = 10 ns
//! f(8 < p ≤ 16)   = 0.1 ms · log₂ p
//! f(p > 16)       = 0.17 ms · log₂ p
//! ```
//!
//! (the three pieces reflect Piz Daint's intra-socket / intra-group /
//! inter-group communication tiers).

use serde::{Deserialize, Serialize};

use crate::machine::MachineSpec;
use crate::rng::SimRng;

/// Configuration of the π workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PiConfig {
    /// Total single-process runtime in seconds (paper: 20 ms).
    pub base_time_s: f64,
    /// Serial fraction `b` (paper: 0.01).
    pub serial_fraction: f64,
    /// Relative measurement noise (folded sigma); Figure 7's caption says
    /// the 95 % CI was within 5 % of the mean over 10 repetitions.
    pub noise_sigma: f64,
}

impl PiConfig {
    /// The paper's Figure 7 configuration.
    pub fn paper_figure7() -> Self {
        Self {
            base_time_s: 20e-3,
            serial_fraction: 0.01,
            noise_sigma: 0.012,
        }
    }

    /// Serial time (seconds).
    pub fn serial_time_s(&self) -> f64 {
        self.base_time_s * self.serial_fraction
    }

    /// Parallelizable time (seconds).
    pub fn parallel_time_s(&self) -> f64 {
        self.base_time_s * (1.0 - self.serial_fraction)
    }
}

/// The paper's piecewise reduction-overhead model, seconds.
pub fn reduction_overhead_s(p: usize) -> f64 {
    assert!(p >= 1);
    let log2p = (p as f64).log2();
    if p <= 8 {
        10e-9
    } else if p <= 16 {
        0.1e-3 * log2p
    } else {
        0.17e-3 * log2p
    }
}

/// Deterministic model time for `p` processes (the curve the bounds models
/// are compared against), seconds.
pub fn model_time_s(config: &PiConfig, p: usize) -> f64 {
    assert!(p >= 1);
    config.serial_time_s() + config.parallel_time_s() / p as f64 + reduction_overhead_s(p)
}

/// Simulates one measured run at `p` processes: the model time perturbed
/// by folded-lognormal noise (plus the machine's daemon duty cycle).
pub fn pi_run_s(machine: &MachineSpec, config: &PiConfig, p: usize, rng: &mut SimRng) -> f64 {
    let base = model_time_s(config, p);
    let jitter = (config.noise_sigma * rng.std_normal().abs()).exp();
    let daemon_factor = if machine.noise.daemon_period_ns > 0.0 {
        1.0 + machine.noise.daemon_cost_ns / machine.noise.daemon_period_ns
    } else {
        1.0
    };
    base * jitter * daemon_factor
}

/// Runs `reps` measurements at each process count in `process_counts`.
///
/// Returns one vector of measured times (seconds) per process count.
pub fn pi_scaling_study(
    machine: &MachineSpec,
    config: &PiConfig,
    process_counts: &[usize],
    reps: usize,
    rng: &mut SimRng,
) -> Vec<Vec<f64>> {
    process_counts
        .iter()
        .map(|&p| {
            (0..reps)
                .map(|_| pi_run_s(machine, config, p, rng))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_model_pieces() {
        assert_eq!(reduction_overhead_s(1), 10e-9);
        assert_eq!(reduction_overhead_s(8), 10e-9);
        assert!((reduction_overhead_s(16) - 0.1e-3 * 4.0).abs() < 1e-12);
        assert!((reduction_overhead_s(32) - 0.17e-3 * 5.0).abs() < 1e-12);
        // Discontinuity at the 8→9 boundary is upward.
        assert!(reduction_overhead_s(9) > reduction_overhead_s(8));
    }

    #[test]
    fn base_case_matches_paper() {
        let c = PiConfig::paper_figure7();
        assert!((c.serial_time_s() - 0.2e-3).abs() < 1e-12);
        assert!((model_time_s(&c, 1) - 20e-3).abs() < 1e-6);
    }

    #[test]
    fn speedup_is_sublinear_and_bounded_by_amdahl() {
        let c = PiConfig::paper_figure7();
        let t1 = model_time_s(&c, 1);
        for p in [2usize, 4, 8, 16, 32] {
            let speedup = t1 / model_time_s(&c, p);
            assert!(speedup < p as f64, "p={p} speedup={speedup}");
            let amdahl = 1.0 / (c.serial_fraction + (1.0 - c.serial_fraction) / p as f64);
            assert!(
                speedup <= amdahl + 1e-9,
                "p={p}: {speedup} vs Amdahl {amdahl}"
            );
        }
    }

    #[test]
    fn parallel_overhead_eventually_dominates() {
        // With the 0.17 ms·log₂ p overhead the model must flatten hard:
        // the speedup at 32 is well below Amdahl's bound.
        let c = PiConfig::paper_figure7();
        let t1 = model_time_s(&c, 1);
        let s32 = t1 / model_time_s(&c, 32);
        let amdahl32 = 1.0 / (0.01 + 0.99 / 32.0);
        assert!(s32 < 0.9 * amdahl32, "s32 = {s32}, amdahl = {amdahl32}");
    }

    #[test]
    fn measured_runs_are_close_to_model() {
        // Figure 7 caption: 95 % CI within 5 % of the mean.
        let m = MachineSpec::piz_daint();
        let c = PiConfig::paper_figure7();
        let mut rng = SimRng::new(1);
        for p in [1usize, 4, 16, 32] {
            let runs: Vec<f64> = (0..10).map(|_| pi_run_s(&m, &c, p, &mut rng)).collect();
            let model = model_time_s(&c, p);
            for &r in &runs {
                assert!(r >= model, "measurement below model");
                assert!(
                    r < model * 1.15,
                    "measurement {r} too far above model {model}"
                );
            }
        }
    }

    #[test]
    fn scaling_study_shapes() {
        let m = MachineSpec::piz_daint();
        let c = PiConfig::paper_figure7();
        let mut rng = SimRng::new(2);
        let counts = [1usize, 2, 4, 8];
        let data = pi_scaling_study(&m, &c, &counts, 5, &mut rng);
        assert_eq!(data.len(), 4);
        assert!(data.iter().all(|v| v.len() == 5));
        // Mean time decreases with p in this range.
        let means: Vec<f64> = data
            .iter()
            .map(|v| v.iter().sum::<f64>() / v.len() as f64)
            .collect();
        for w in means.windows(2) {
            assert!(w[1] < w[0], "{means:?}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let m = MachineSpec::piz_daint();
        let c = PiConfig::paper_figure7();
        let a = pi_scaling_study(&m, &c, &[1, 2, 4], 3, &mut SimRng::new(7));
        let b = pi_scaling_study(&m, &c, &[1, 2, 4], 3, &mut SimRng::new(7));
        assert_eq!(a, b);
    }
}
