//! Outlier handling ("On Removing Outliers", §3.1.3 of the paper).
//!
//! The paper's advice: *avoid* removing outliers and use robust measures
//! instead; if removal is unavoidable (e.g. the mean is required), use
//! Tukey's fences and **report the number of removed outliers**. The
//! return type of [`tukey_filter`] makes that count impossible to lose.

use serde::{Deserialize, Serialize};

use crate::error::{StatsError, StatsResult};
use crate::quantile::FiveNumberSummary;

/// Validates a Tukey-fence multiplier: it must be finite and
/// non-negative, otherwise the fences invert (`lower > upper`) and every
/// observation is silently classified as an outlier.
pub(crate) fn validate_fence_constant(constant: f64) -> StatsResult<()> {
    if !constant.is_finite() || constant < 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "constant",
            value: constant,
        });
    }
    Ok(())
}

/// Tukey's fences: `[Q1 − c·IQR, Q3 + c·IQR]` with the conventional
/// constant `c = 1.5` (increase for a more conservative filter).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TukeyFences {
    /// Lower fence; observations below are outliers.
    pub lower: f64,
    /// Upper fence; observations above are outliers.
    pub upper: f64,
    /// The multiplier used (1.5 in Tukey's original definition).
    pub constant: f64,
}

impl TukeyFences {
    /// Computes the fences for a sample with multiplier `constant`.
    ///
    /// Errors with [`StatsError::InvalidParameter`] when `constant` is
    /// negative or non-finite (which would invert the fences).
    pub fn from_samples(xs: &[f64], constant: f64) -> StatsResult<Self> {
        validate_fence_constant(constant)?;
        let s = FiveNumberSummary::from_samples(xs)?;
        let iqr = s.iqr();
        Ok(Self {
            lower: s.q1 - constant * iqr,
            upper: s.q3 + constant * iqr,
            constant,
        })
    }

    /// Whether `x` lies inside the fences (is *not* an outlier).
    pub fn contains(&self, x: f64) -> bool {
        self.lower <= x && x <= self.upper
    }
}

/// Result of outlier removal; keeps the removal count front and center as
/// the paper demands ("one should report the number of removed outliers
/// for each experiment").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilteredSample {
    /// Observations within the fences, in input order.
    pub kept: Vec<f64>,
    /// Observations removed as outliers, in input order.
    pub removed: Vec<f64>,
    /// The fences that were applied.
    pub fences: TukeyFences,
}

impl FilteredSample {
    /// Number of removed outliers (the figure that must be reported).
    pub fn removed_count(&self) -> usize {
        self.removed.len()
    }

    /// Fraction of the sample that was removed.
    pub fn removed_fraction(&self) -> f64 {
        let total = self.kept.len() + self.removed.len();
        if total == 0 {
            0.0
        } else {
            self.removed.len() as f64 / total as f64
        }
    }
}

/// Filters a sample with Tukey's method (constant 1.5).
pub fn tukey_filter(xs: &[f64]) -> StatsResult<FilteredSample> {
    tukey_filter_with_constant(xs, 1.5)
}

/// Filters a sample with Tukey's method and a custom multiplier
/// (the paper: "one can increase Tukey's constant 1.5 in order to be more
/// conservative").
pub fn tukey_filter_with_constant(xs: &[f64], constant: f64) -> StatsResult<FilteredSample> {
    let fences = TukeyFences::from_samples(xs, constant)?;
    let mut kept = Vec::with_capacity(xs.len());
    let mut removed = Vec::new();
    for &x in xs {
        if fences.contains(x) {
            kept.push(x);
        } else {
            removed.push(x);
        }
    }
    Ok(FilteredSample {
        kept,
        removed,
        fences,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_outliers_in_tight_data() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let f = tukey_filter(&xs).unwrap();
        assert_eq!(f.removed_count(), 0);
        assert_eq!(f.kept, xs.to_vec());
    }

    #[test]
    fn detects_gross_outlier() {
        let xs = [10.0, 11.0, 9.0, 10.5, 9.5, 10.2, 100.0];
        let f = tukey_filter(&xs).unwrap();
        assert_eq!(f.removed, vec![100.0]);
        assert_eq!(f.kept.len(), 6);
        assert!((f.removed_fraction() - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn detects_low_outlier() {
        let xs = [10.0, 11.0, 9.0, 10.5, 9.5, 10.2, -50.0];
        let f = tukey_filter(&xs).unwrap();
        assert_eq!(f.removed, vec![-50.0]);
    }

    #[test]
    fn larger_constant_is_more_conservative() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 9.5];
        let strict = tukey_filter_with_constant(&xs, 1.0).unwrap();
        let lax = tukey_filter_with_constant(&xs, 3.0).unwrap();
        assert!(strict.removed_count() >= lax.removed_count());
    }

    #[test]
    fn preserves_input_order() {
        let xs = [5.0, 100.0, 3.0, 4.0, -100.0, 5.5, 4.5, 5.2];
        let f = tukey_filter(&xs).unwrap();
        assert_eq!(f.kept, vec![5.0, 3.0, 4.0, 5.5, 4.5, 5.2]);
        assert_eq!(f.removed, vec![100.0, -100.0]);
    }

    #[test]
    fn fences_formula() {
        // 1..=8: Q1 = 2.75, Q3 = 6.25, IQR = 3.5 (type-7 quantiles)
        let xs: Vec<f64> = (1..=8).map(f64::from).collect();
        let fences = TukeyFences::from_samples(&xs, 1.5).unwrap();
        assert!((fences.lower - (2.75 - 5.25)).abs() < 1e-12);
        assert!((fences.upper - (6.25 + 5.25)).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_rejected() {
        assert!(tukey_filter(&[]).is_err());
    }
}
