//! Setup documentation (Rule 9 and the Table 1 checklist).
//!
//! Table 1 of the paper grades 95 papers on nine experimental-design
//! classes (hardware: processor / memory / network; software: compiler /
//! runtime / filesystem; configuration: input / measurement setup / code
//! availability). [`EnvironmentDoc`] is that checklist as a struct: an
//! experiment report embeds one, and [`EnvironmentDoc::missing_classes`]
//! tells the rule auditor which classes an experimenter failed to
//! document.

use serde::{Deserialize, Serialize};

/// The nine documentation classes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DocumentationClass {
    /// Processor model / accelerator.
    Processor,
    /// RAM size / type / bus.
    Memory,
    /// NIC model / network topology, latency, bandwidth.
    Network,
    /// Compiler version / flags.
    Compiler,
    /// Kernel / library versions.
    Runtime,
    /// Filesystem / storage.
    Filesystem,
    /// Software and input configuration.
    Input,
    /// Measurement setup (timers, sync, repetitions).
    MeasurementSetup,
    /// Source code available online.
    CodeAvailability,
}

impl DocumentationClass {
    /// All nine classes, in Table 1 order.
    pub const ALL: [DocumentationClass; 9] = [
        DocumentationClass::Processor,
        DocumentationClass::Memory,
        DocumentationClass::Network,
        DocumentationClass::Compiler,
        DocumentationClass::Runtime,
        DocumentationClass::Filesystem,
        DocumentationClass::Input,
        DocumentationClass::MeasurementSetup,
        DocumentationClass::CodeAvailability,
    ];

    /// The row label used in Table 1.
    pub fn label(&self) -> &'static str {
        match self {
            DocumentationClass::Processor => "Processor Model / Accelerator",
            DocumentationClass::Memory => "RAM Size / Type / Bus Infos",
            DocumentationClass::Network => "NIC Model / Network Infos",
            DocumentationClass::Compiler => "Compiler Version / Flags",
            DocumentationClass::Runtime => "Kernel / Libraries Version",
            DocumentationClass::Filesystem => "Filesystem / Storage",
            DocumentationClass::Input => "Software and Input",
            DocumentationClass::MeasurementSetup => "Measurement Setup",
            DocumentationClass::CodeAvailability => "Code Available Online",
        }
    }
}

/// One documented class: either a description, or an explicit statement
/// that the class does not affect the experiment ("a shared memory
/// experiment does not need to describe the network" — which Table 1 also
/// counts as documented).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClassDoc {
    /// The class is described by this text.
    Documented(String),
    /// The class is irrelevant to this experiment, with a justification.
    NotApplicable(String),
    /// The class was not documented (the Table 1 gap).
    Missing,
}

impl ClassDoc {
    /// Whether this class counts as documented for the Rule 9 audit.
    pub fn is_covered(&self) -> bool {
        !matches!(self, ClassDoc::Missing)
    }
}

/// The full Rule-9 environment documentation of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvironmentDoc {
    entries: Vec<(DocumentationClass, ClassDoc)>,
}

impl Default for EnvironmentDoc {
    fn default() -> Self {
        Self::new()
    }
}

impl EnvironmentDoc {
    /// Creates an empty (all-missing) documentation record.
    pub fn new() -> Self {
        Self {
            entries: DocumentationClass::ALL
                .iter()
                .map(|&c| (c, ClassDoc::Missing))
                .collect(),
        }
    }

    /// Documents a class.
    pub fn document(mut self, class: DocumentationClass, text: &str) -> Self {
        self.set(class, ClassDoc::Documented(text.to_owned()));
        self
    }

    /// Marks a class as not applicable, with a reason.
    pub fn not_applicable(mut self, class: DocumentationClass, reason: &str) -> Self {
        self.set(class, ClassDoc::NotApplicable(reason.to_owned()));
        self
    }

    /// Builds the documentation from a simulated machine description: the
    /// machine spec covers processor, memory, network, compiler and
    /// runtime in one call.
    pub fn from_machine(machine: &scibench_sim::machine::MachineSpec) -> Self {
        let acc = machine
            .node
            .accelerator
            .clone()
            .unwrap_or_else(|| "none".into());
        Self::new()
            .document(
                DocumentationClass::Processor,
                &format!(
                    "{} ({} cores), accelerator: {acc}",
                    machine.node.cpu_model, machine.node.cores
                ),
            )
            .document(
                DocumentationClass::Memory,
                &format!("{} GiB {}", machine.node.mem_gib, machine.node.mem_type),
            )
            .document(
                DocumentationClass::Network,
                &format!(
                    "{} ({:?}), {:.0} ns injection, {:.0} ns/hop, {:.1} GB/s",
                    machine.network.name,
                    machine.network.topology,
                    machine.network.injection_ns,
                    machine.network.per_hop_ns,
                    machine.network.bandwidth_bytes_per_ns
                ),
            )
            .document(DocumentationClass::Compiler, &machine.software)
            .document(DocumentationClass::Runtime, &machine.software)
    }

    fn set(&mut self, class: DocumentationClass, doc: ClassDoc) {
        for (c, d) in &mut self.entries {
            if *c == class {
                *d = doc;
                return;
            }
        }
    }

    /// The documentation state of one class.
    pub fn get(&self, class: DocumentationClass) -> &ClassDoc {
        &self
            .entries
            .iter()
            .find(|(c, _)| *c == class)
            .expect("all classes initialized")
            .1
    }

    /// Classes that are neither documented nor excused.
    pub fn missing_classes(&self) -> Vec<DocumentationClass> {
        self.entries
            .iter()
            .filter(|(_, d)| !d.is_covered())
            .map(|(c, _)| *c)
            .collect()
    }

    /// Number of covered classes, 0..=9 — the per-paper score that
    /// Table 1's box plots aggregate.
    pub fn coverage_score(&self) -> usize {
        self.entries.iter().filter(|(_, d)| d.is_covered()).count()
    }

    /// Renders the checklist as text (✓ documented, ~ not applicable,
    /// ✗ missing).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (c, d) in &self.entries {
            let (mark, detail) = match d {
                ClassDoc::Documented(t) => ("ok ", t.as_str()),
                ClassDoc::NotApplicable(r) => ("n/a", r.as_str()),
                ClassDoc::Missing => ("MISSING", ""),
            };
            out.push_str(&format!("[{mark}] {}: {detail}\n", c.label()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scibench_sim::machine::MachineSpec;

    #[test]
    fn new_doc_is_all_missing() {
        let d = EnvironmentDoc::new();
        assert_eq!(d.coverage_score(), 0);
        assert_eq!(d.missing_classes().len(), 9);
    }

    #[test]
    fn documenting_reduces_missing() {
        let d = EnvironmentDoc::new()
            .document(DocumentationClass::Processor, "Xeon E5-2670")
            .not_applicable(DocumentationClass::Network, "shared-memory experiment");
        assert_eq!(d.coverage_score(), 2);
        assert!(!d.missing_classes().contains(&DocumentationClass::Processor));
        assert!(!d.missing_classes().contains(&DocumentationClass::Network));
        assert!(d.missing_classes().contains(&DocumentationClass::Compiler));
    }

    #[test]
    fn not_applicable_counts_as_covered() {
        // Table 1: "we mark the class also with ✓" for irrelevant classes.
        let d = EnvironmentDoc::new().not_applicable(DocumentationClass::Filesystem, "no I/O");
        assert!(d.get(DocumentationClass::Filesystem).is_covered());
    }

    #[test]
    fn from_machine_covers_hardware_and_software() {
        let d = EnvironmentDoc::from_machine(&MachineSpec::piz_dora());
        assert!(d.get(DocumentationClass::Processor).is_covered());
        assert!(d.get(DocumentationClass::Memory).is_covered());
        assert!(d.get(DocumentationClass::Network).is_covered());
        assert!(d.get(DocumentationClass::Compiler).is_covered());
        assert!(d.get(DocumentationClass::Runtime).is_covered());
        // Input, measurement setup, filesystem, code remain the
        // experimenter's responsibility.
        assert_eq!(d.coverage_score(), 5);
    }

    #[test]
    fn render_marks_all_states() {
        let d = EnvironmentDoc::new()
            .document(DocumentationClass::Processor, "CPU-X")
            .not_applicable(DocumentationClass::Filesystem, "no I/O");
        let text = d.render();
        assert!(text.contains("[ok ] Processor Model / Accelerator: CPU-X"));
        assert!(text.contains("[n/a] Filesystem / Storage: no I/O"));
        assert!(text.contains("[MISSING] Compiler Version / Flags"));
    }

    #[test]
    fn all_classes_have_labels() {
        for c in DocumentationClass::ALL {
            assert!(!c.label().is_empty());
        }
        assert_eq!(DocumentationClass::ALL.len(), 9);
    }
}
