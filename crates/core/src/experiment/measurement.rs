//! The measurement loop (§4.2 of the paper) and Rule 5/6-compliant
//! summaries.
//!
//! A [`MeasurementPlan`] describes *how* to measure one operation:
//! how many warmup iterations to discard (§4.1.2 "Warmup"), and when to
//! stop — either after a fixed count, or adaptively once the confidence
//! interval is tight enough (§4.2.2 "Number of measurements"):
//!
//! * [`StoppingRule::AdaptiveMeanCi`] uses the closed-form
//!   `n = (s·t(n−1, α/2)/(e·x̄))²` for (approximately) normal data;
//! * [`StoppingRule::AdaptiveMedianCi`] recomputes the nonparametric CI
//!   of the median every `batch` measurements — the distribution-free
//!   variant the paper recommends when normality cannot be assumed.
//!
//! [`MeasurementOutcome::summarize`] produces a [`MeasurementSummary`]
//! that always contains the nonparametric statistics, runs the
//! Shapiro–Wilk diagnostic (Rule 6), and only blesses the parametric mean
//! CI when the diagnostic does not reject normality.

use serde::{Deserialize, Serialize};

use scibench_stats::ci::{self, ConfidenceInterval};
use scibench_stats::error::{StatsError, StatsResult};
use scibench_stats::normality::{shapiro_wilk_thinned, ShapiroWilk};
use scibench_stats::quantile::FiveNumberSummary;
use scibench_stats::sanitize::sanitize;
use scibench_stats::sorted::SortedSamples;
use scibench_stats::summary::{self, OnlineMoments};

/// When to stop measuring.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StoppingRule {
    /// Exactly `n` samples (after warmup).
    FixedCount(usize),
    /// Stop when the `confidence` CI of the *mean* is within
    /// `rel_error · x̄`, re-planned with the §4.2.2 formula after each
    /// batch. Assumes approximate normality — pair with the summary's
    /// diagnostic. Never exceeds `max_samples`.
    AdaptiveMeanCi {
        /// CI confidence level, e.g. 0.95.
        confidence: f64,
        /// Allowed relative half-width `e`, e.g. 0.05.
        rel_error: f64,
        /// Samples per planning round ("recompute after each n_i = i·k").
        batch: usize,
        /// Hard ceiling on the number of samples.
        max_samples: usize,
    },
    /// Stop when the `confidence` nonparametric CI of the *median* is
    /// within `rel_error · median`; checked every `batch` samples.
    AdaptiveMedianCi {
        /// CI confidence level, e.g. 0.95.
        confidence: f64,
        /// Allowed relative half-width `e`, e.g. 0.05.
        rel_error: f64,
        /// Samples between CI recomputations (the paper: "choose k based
        /// on the cost of the experiment").
        batch: usize,
        /// Hard ceiling on the number of samples.
        max_samples: usize,
    },
}

/// A plan for measuring one operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasurementPlan {
    /// Name of the measured operation (for reports).
    pub name: String,
    /// Iterations discarded before recording (§4.1.2: "the first
    /// measurement iteration should be excluded").
    pub warmup_iterations: usize,
    /// The stopping rule.
    pub stopping: StoppingRule,
}

impl MeasurementPlan {
    /// Creates a plan with no warmup and a default fixed count of 30.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            warmup_iterations: 0,
            stopping: StoppingRule::FixedCount(30),
        }
    }

    /// Sets the warmup iteration count.
    pub fn warmup(mut self, iterations: usize) -> Self {
        self.warmup_iterations = iterations;
        self
    }

    /// Sets the stopping rule.
    pub fn stopping(mut self, rule: StoppingRule) -> Self {
        self.stopping = rule;
        self
    }

    /// Runs the plan: `operation` is invoked repeatedly and must return
    /// the measured cost of one execution (seconds, nanoseconds — any
    /// consistent cost unit).
    pub fn run(&self, mut operation: impl FnMut() -> f64) -> StatsResult<MeasurementOutcome> {
        self.validate()?;
        // Warmup: execute and discard.
        let mut warmup = Vec::with_capacity(self.warmup_iterations);
        for _ in 0..self.warmup_iterations {
            warmup.push(operation());
        }

        let mut samples = Vec::new();
        let converged = match self.stopping {
            StoppingRule::FixedCount(n) => {
                samples.reserve(n);
                for _ in 0..n {
                    samples.push(operation());
                }
                true
            }
            StoppingRule::AdaptiveMeanCi {
                confidence,
                rel_error,
                batch,
                max_samples,
            } => {
                let mut converged = false;
                // Running Welford moments make each replanning round O(1)
                // instead of re-scanning the whole sample vector, so the
                // loop is O(n) total rather than O(n²/batch).
                let mut moments = OnlineMoments::new();
                // Pilot batch (at least 5 to make the t-quantile sane).
                let pilot = batch.max(5);
                for _ in 0..pilot.min(max_samples) {
                    let x = operation();
                    moments.push(x);
                    samples.push(x);
                }
                while samples.len() < max_samples {
                    let required =
                        ci::required_samples_from_moments(&moments, confidence, rel_error)?;
                    if required <= samples.len() {
                        converged = true;
                        break;
                    }
                    let next = required.min(max_samples).min(samples.len() + batch.max(1));
                    while samples.len() < next {
                        let x = operation();
                        moments.push(x);
                        samples.push(x);
                    }
                }
                // Final check if we filled up to a boundary.
                if !converged {
                    converged = ci::required_samples_from_moments(&moments, confidence, rel_error)?
                        <= samples.len();
                }
                converged
            }
            StoppingRule::AdaptiveMedianCi {
                confidence,
                rel_error,
                batch,
                max_samples,
            } => {
                let mut converged = false;
                let batch = batch.max(1);
                // Each batch is merged into a sorted cache (O(n + b) per
                // batch) instead of re-sorting all samples at every check.
                let mut sorted: Option<SortedSamples> = None;
                while samples.len() < max_samples {
                    let start = samples.len();
                    for _ in 0..batch.min(max_samples - samples.len()) {
                        samples.push(operation());
                    }
                    let fresh = &samples[start..];
                    match sorted.as_mut() {
                        Some(cache) => cache.merge_extend(fresh)?,
                        None => sorted = Some(SortedSamples::new(fresh)?),
                    }
                    let cache = sorted.as_ref().expect("batch just merged");
                    if let Some((_ci, tight)) =
                        ci::nonparametric_stop_check_sorted(cache, confidence, rel_error)?
                    {
                        if tight {
                            converged = true;
                            break;
                        }
                    }
                }
                converged
            }
        };

        Ok(MeasurementOutcome {
            name: self.name.clone(),
            warmup_samples: warmup,
            samples,
            converged,
        })
    }

    pub(crate) fn validate(&self) -> StatsResult<()> {
        match self.stopping {
            StoppingRule::FixedCount(n) => {
                if n == 0 {
                    return Err(StatsError::InvalidParameter {
                        name: "n",
                        value: 0.0,
                    });
                }
            }
            StoppingRule::AdaptiveMeanCi {
                confidence,
                rel_error,
                max_samples,
                ..
            }
            | StoppingRule::AdaptiveMedianCi {
                confidence,
                rel_error,
                max_samples,
                ..
            } => {
                if !(confidence > 0.0 && confidence < 1.0) {
                    return Err(StatsError::InvalidProbability {
                        name: "confidence",
                        value: confidence,
                    });
                }
                if !(rel_error > 0.0 && rel_error < 1.0) {
                    return Err(StatsError::InvalidProbability {
                        name: "rel_error",
                        value: rel_error,
                    });
                }
                if max_samples == 0 {
                    return Err(StatsError::InvalidParameter {
                        name: "max_samples",
                        value: 0.0,
                    });
                }
            }
        }
        Ok(())
    }
}

/// The raw result of running a measurement plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasurementOutcome {
    /// Operation name.
    pub name: String,
    /// Discarded warmup measurements (kept so reports can show them).
    pub warmup_samples: Vec<f64>,
    /// The recorded measurements.
    pub samples: Vec<f64>,
    /// Whether the adaptive stopping criterion was met (always true for
    /// fixed-count plans).
    pub converged: bool,
}

impl MeasurementOutcome {
    /// Summarizes the measurements per Rules 5 and 6.
    ///
    /// Non-finite samples (NaN from clock jumps, ±∞ from overflowed
    /// timers) are partitioned out first and *counted* rather than
    /// propagated as an error, per Rule 4: the summary discloses how many
    /// samples were dropped, and while any contamination is present the
    /// parametric mean CI is withheld — the nonparametric median CI of
    /// the surviving samples is the only interval reported. An
    /// all-contaminated outcome still fails with a typed error because
    /// there is nothing left to summarize.
    pub fn summarize(&self, confidence: f64) -> StatsResult<MeasurementSummary> {
        let sanitized = sanitize(&self.samples);
        if sanitized.clean.is_empty() && sanitized.contaminated() {
            return Err(StatsError::NonFiniteSample);
        }
        let xs = &sanitized.clean;
        // One sort feeds both order-statistic consumers (five-number
        // summary and median CI) below.
        let sorted = SortedSamples::new(xs)?;
        let five = sorted.five_number();
        let mean = summary::arithmetic_mean(xs)?;
        let deterministic = five.max == five.min;

        let (std_dev, cov) = if xs.len() >= 2 && !deterministic {
            let s = summary::sample_std_dev(xs)?;
            (Some(s), if mean != 0.0 { Some(s / mean) } else { None })
        } else {
            (None, None)
        };

        // Rule 6: diagnostic checking before using normal statistics.
        let normality = if deterministic || xs.len() < 3 {
            None
        } else {
            shapiro_wilk_thinned(xs, 2000).ok()
        };
        let normal_ok = normality
            .as_ref()
            .map(|sw| !sw.rejects_normality(0.05))
            .unwrap_or(false);

        let mean_ci = if deterministic {
            None
        } else {
            ci::mean_ci(xs, confidence).ok()
        };
        let median_ci = sorted.median_ci(confidence).ok();

        Ok(MeasurementSummary {
            name: self.name.clone(),
            n: xs.len(),
            samples_recorded: sanitized.recorded(),
            samples_dropped: sanitized.dropped(),
            dropped_nan: sanitized.dropped_nan,
            dropped_infinite: sanitized.dropped_infinite,
            deterministic,
            converged: self.converged,
            mean,
            std_dev,
            cov,
            five_number: five,
            normality,
            // Contamination degrades the summary to nonparametric-only:
            // the mean of a partially-dropped sample is biased in an
            // unknown direction, so its CI must not be blessed.
            mean_ci_valid: normal_ok && !sanitized.contaminated(),
            mean_ci,
            median_ci,
            confidence,
            harness_overhead: None,
        })
    }
}

/// A Rule 5/6-compliant summary of one measurement campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasurementSummary {
    /// Operation name.
    pub name: String,
    /// Number of *usable* (finite) samples the statistics are based on.
    pub n: usize,
    /// Number of samples recorded before sanitization (`n` plus drops).
    #[serde(default)]
    pub samples_recorded: usize,
    /// Total non-finite samples dropped during sanitization (Rule 4).
    #[serde(default)]
    pub samples_dropped: usize,
    /// NaN samples dropped (e.g. clock-jump-corrupted readings).
    #[serde(default)]
    pub dropped_nan: usize,
    /// Infinite samples dropped (e.g. overflowed timer deltas).
    #[serde(default)]
    pub dropped_infinite: usize,
    /// Rule 5: "report if the measurement values are deterministic".
    pub deterministic: bool,
    /// Whether the adaptive stopping criterion was met.
    pub converged: bool,
    /// Arithmetic mean (costs).
    pub mean: f64,
    /// Sample standard deviation; `None` for deterministic data.
    pub std_dev: Option<f64>,
    /// Coefficient of variation; `None` for deterministic data.
    pub cov: Option<f64>,
    /// Min / quartiles / max.
    pub five_number: FiveNumberSummary,
    /// Shapiro–Wilk diagnostic (Rule 6); `None` when not computable.
    pub normality: Option<ShapiroWilk>,
    /// Whether the parametric mean CI may be trusted (diagnostic did not
    /// reject normality at α = 0.05).
    pub mean_ci_valid: bool,
    /// Student-t CI of the mean (report only when `mean_ci_valid`).
    pub mean_ci: Option<ConfidenceInterval>,
    /// Nonparametric CI of the median (valid regardless of distribution).
    pub median_ci: Option<ConfidenceInterval>,
    /// The confidence level used for both CIs.
    pub confidence: f64,
    /// Harness self-accounting (Rules 4-5): what observing this
    /// measurement cost. `None` when the run was not traced.
    #[serde(default)]
    pub harness_overhead: Option<crate::obs::HarnessOverhead>,
}

impl MeasurementSummary {
    /// Attaches the harness-overhead disclosure (builder style), so
    /// traced campaigns can surface the Rule 4/5 self-accounting in
    /// their reports.
    pub fn with_harness_overhead(mut self, overhead: crate::obs::HarnessOverhead) -> Self {
        self.harness_overhead = Some(overhead);
        self
    }

    /// Renders the summary as interpretable text.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}: n={}{}{}\n  min={:.6} q1={:.6} median={:.6} q3={:.6} max={:.6}\n  mean={:.6}",
            self.name,
            self.n,
            if self.deterministic {
                " [deterministic]"
            } else {
                ""
            },
            if self.converged {
                ""
            } else {
                " [NOT CONVERGED]"
            },
            self.five_number.min,
            self.five_number.q1,
            self.five_number.median,
            self.five_number.q3,
            self.five_number.max,
            self.mean,
        );
        if let Some(s) = self.std_dev {
            out.push_str(&format!(" sd={s:.6}"));
        }
        if let Some(c) = self.cov {
            out.push_str(&format!(" CoV={c:.4}"));
        }
        out.push('\n');
        if self.samples_dropped > 0 {
            out.push_str(&format!(
                "  contamination: {} of {} samples usable, {} dropped \
                 ({} NaN, {} infinite); mean CI withheld, median CI reported\n",
                self.n,
                self.samples_recorded,
                self.samples_dropped,
                self.dropped_nan,
                self.dropped_infinite,
            ));
        }
        if let Some(sw) = &self.normality {
            out.push_str(&format!(
                "  normality: Shapiro-Wilk W={:.4} p={:.4} -> {}\n",
                sw.w,
                sw.p_value,
                if self.mean_ci_valid {
                    "no rejection; mean CI usable"
                } else {
                    "REJECTED; use median CI"
                },
            ));
        }
        if let (true, Some(ci)) = (self.mean_ci_valid, &self.mean_ci) {
            out.push_str(&format!(
                "  {:.0}% CI(mean): [{:.6}, {:.6}]\n",
                self.confidence * 100.0,
                ci.lower,
                ci.upper
            ));
        }
        if let Some(ci) = &self.median_ci {
            out.push_str(&format!(
                "  {:.0}% CI(median): [{:.6}, {:.6}]\n",
                self.confidence * 100.0,
                ci.lower,
                ci.upper
            ));
        }
        if let Some(overhead) = &self.harness_overhead {
            out.push_str(&overhead.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-noise generator for tests.
    struct Gen {
        state: u64,
    }

    impl Gen {
        fn new(seed: u64) -> Self {
            Self {
                state: seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
            }
        }
        fn next_uniform(&mut self) -> f64 {
            self.state = self
                .state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.state >> 11) as f64 / (1u64 << 53) as f64
        }
        /// Right-skewed sample around 1.0.
        fn next_latency(&mut self) -> f64 {
            let u = self.next_uniform().clamp(1e-9, 1.0 - 1e-9);
            1.0 + 0.1 * (-(u.ln()))
        }
    }

    #[test]
    fn fixed_count_records_exactly_n() {
        let plan = MeasurementPlan::new("op").stopping(StoppingRule::FixedCount(17));
        let mut g = Gen::new(1);
        let out = plan.run(|| g.next_latency()).unwrap();
        assert_eq!(out.samples.len(), 17);
        assert!(out.converged);
        assert!(out.warmup_samples.is_empty());
    }

    #[test]
    fn warmup_is_discarded_but_recorded() {
        let plan = MeasurementPlan::new("op")
            .warmup(4)
            .stopping(StoppingRule::FixedCount(10));
        let mut calls = 0usize;
        let out = plan
            .run(|| {
                calls += 1;
                // Warmup iterations are 10x slower.
                if calls <= 4 {
                    10.0
                } else {
                    1.0
                }
            })
            .unwrap();
        assert_eq!(out.warmup_samples, vec![10.0; 4]);
        assert_eq!(out.samples, vec![1.0; 10]);
        assert_eq!(calls, 14);
    }

    #[test]
    fn adaptive_mean_stops_quickly_on_quiet_data() {
        let plan = MeasurementPlan::new("op").stopping(StoppingRule::AdaptiveMeanCi {
            confidence: 0.95,
            rel_error: 0.05,
            batch: 10,
            max_samples: 10_000,
        });
        let mut g = Gen::new(2);
        // Tiny noise: should converge almost immediately.
        let out = plan.run(|| 100.0 + 0.01 * g.next_uniform()).unwrap();
        assert!(out.converged);
        assert!(
            out.samples.len() <= 20,
            "took {} samples",
            out.samples.len()
        );
    }

    #[test]
    fn adaptive_mean_takes_more_samples_on_noisy_data() {
        let mk = |seed| {
            let plan = MeasurementPlan::new("op").stopping(StoppingRule::AdaptiveMeanCi {
                confidence: 0.95,
                rel_error: 0.02,
                batch: 10,
                max_samples: 100_000,
            });
            let mut g = Gen::new(seed);
            plan.run(|| 1.0 + g.next_uniform()).unwrap()
        };
        let out = mk(3);
        assert!(out.converged);
        assert!(
            out.samples.len() > 100,
            "only {} samples",
            out.samples.len()
        );
        // Verify the promise: CI is within 2 % of the mean.
        let summary = out.summarize(0.95).unwrap();
        let ci = summary.mean_ci.unwrap();
        assert!(ci.relative_half_width().unwrap() <= 0.021);
    }

    #[test]
    fn adaptive_mean_respects_max_samples() {
        let plan = MeasurementPlan::new("op").stopping(StoppingRule::AdaptiveMeanCi {
            confidence: 0.99,
            rel_error: 0.001,
            batch: 16,
            max_samples: 64,
        });
        let mut g = Gen::new(4);
        let out = plan.run(|| 1.0 + g.next_uniform()).unwrap();
        assert_eq!(out.samples.len(), 64);
        assert!(!out.converged);
    }

    #[test]
    fn adaptive_median_converges() {
        let plan = MeasurementPlan::new("op").stopping(StoppingRule::AdaptiveMedianCi {
            confidence: 0.95,
            rel_error: 0.05,
            batch: 25,
            max_samples: 50_000,
        });
        let mut g = Gen::new(5);
        let out = plan.run(|| g.next_latency()).unwrap();
        assert!(
            out.converged,
            "did not converge in {} samples",
            out.samples.len()
        );
        let s = out.summarize(0.95).unwrap();
        let ci = s.median_ci.unwrap();
        assert!(ci.relative_half_width().unwrap() <= 0.05);
    }

    #[test]
    fn deterministic_data_flagged() {
        let plan = MeasurementPlan::new("det").stopping(StoppingRule::FixedCount(20));
        let out = plan.run(|| 42.0).unwrap();
        let s = out.summarize(0.95).unwrap();
        assert!(s.deterministic);
        assert_eq!(s.std_dev, None);
        assert_eq!(s.mean_ci, None);
        assert!(s.render().contains("[deterministic]"));
    }

    #[test]
    fn skewed_data_rejects_mean_ci() {
        let plan = MeasurementPlan::new("skewed").stopping(StoppingRule::FixedCount(500));
        let mut g = Gen::new(6);
        // Strongly skewed: exponentiate.
        let out = plan.run(|| (3.0 * g.next_uniform()).exp()).unwrap();
        let s = out.summarize(0.95).unwrap();
        assert!(!s.deterministic);
        assert!(s.normality.is_some());
        assert!(!s.mean_ci_valid, "skewed data must invalidate the mean CI");
        assert!(s.median_ci.is_some());
        assert!(s.render().contains("REJECTED"));
    }

    #[test]
    fn near_normal_data_allows_mean_ci() {
        let plan = MeasurementPlan::new("normal").stopping(StoppingRule::FixedCount(200));
        let mut g = Gen::new(7);
        // Sum of 12 uniforms ≈ normal (Irwin–Hall).
        let out = plan
            .run(|| (0..12).map(|_| g.next_uniform()).sum::<f64>())
            .unwrap();
        let s = out.summarize(0.95).unwrap();
        assert!(
            s.mean_ci_valid,
            "Irwin-Hall sum should pass normality (p = {:?})",
            s.normality
        );
        assert!(s.mean_ci.is_some());
        assert!(s.render().contains("CI(mean)"));
    }

    #[test]
    fn invalid_plans_rejected() {
        let mut g = Gen::new(8);
        assert!(MeasurementPlan::new("x")
            .stopping(StoppingRule::FixedCount(0))
            .run(|| g.next_uniform())
            .is_err());
        assert!(MeasurementPlan::new("x")
            .stopping(StoppingRule::AdaptiveMeanCi {
                confidence: 1.5,
                rel_error: 0.05,
                batch: 10,
                max_samples: 100
            })
            .run(|| 1.0)
            .is_err());
        assert!(MeasurementPlan::new("x")
            .stopping(StoppingRule::AdaptiveMedianCi {
                confidence: 0.95,
                rel_error: 0.0,
                batch: 10,
                max_samples: 100
            })
            .run(|| 1.0)
            .is_err());
    }

    #[test]
    fn contaminated_samples_degrade_to_median_ci() {
        let mut g = Gen::new(10);
        // Near-normal data that would normally bless the mean CI.
        let mut samples: Vec<f64> = (0..200)
            .map(|_| (0..12).map(|_| g.next_uniform()).sum::<f64>())
            .collect();
        samples[5] = f64::NAN;
        samples[17] = f64::INFINITY;
        samples[90] = f64::NEG_INFINITY;
        let out = MeasurementOutcome {
            name: "contaminated".to_owned(),
            warmup_samples: Vec::new(),
            samples,
            converged: true,
        };
        let s = out.summarize(0.95).unwrap();
        assert_eq!(s.n, 197);
        assert_eq!(s.samples_recorded, 200);
        assert_eq!(s.samples_dropped, 3);
        assert_eq!(s.dropped_nan, 1);
        assert_eq!(s.dropped_infinite, 2);
        assert!(
            !s.mean_ci_valid,
            "contamination must withhold the mean CI even for normal data"
        );
        assert!(s.median_ci.is_some());
        let text = s.render();
        assert!(text.contains("197 of 200 samples usable"), "{text}");
        assert!(!text.contains("CI(mean)"), "{text}");
        assert!(text.contains("CI(median)"), "{text}");
    }

    #[test]
    fn all_contaminated_outcome_fails_with_typed_error() {
        let out = MeasurementOutcome {
            name: "dead".to_owned(),
            warmup_samples: Vec::new(),
            samples: vec![f64::NAN, f64::INFINITY, f64::NAN],
            converged: false,
        };
        assert!(matches!(
            out.summarize(0.95),
            Err(StatsError::NonFiniteSample)
        ));
    }

    #[test]
    fn clean_samples_report_zero_drops() {
        let plan = MeasurementPlan::new("clean").stopping(StoppingRule::FixedCount(30));
        let mut g = Gen::new(11);
        let s = plan
            .run(|| g.next_latency())
            .unwrap()
            .summarize(0.95)
            .unwrap();
        assert_eq!(s.samples_recorded, 30);
        assert_eq!(s.samples_dropped, 0);
        assert!(!s.render().contains("contamination"));
    }

    #[test]
    fn summary_render_contains_five_numbers() {
        let plan = MeasurementPlan::new("render").stopping(StoppingRule::FixedCount(50));
        let mut g = Gen::new(9);
        let out = plan.run(|| g.next_latency()).unwrap();
        let text = out.summarize(0.99).unwrap().render();
        for needle in ["min=", "median=", "max=", "mean=", "99% CI(median)"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
