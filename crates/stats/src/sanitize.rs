//! Sample sanitization for graceful statistical degradation.
//!
//! Fault-injected (and real) measurement campaigns produce contaminated
//! sample vectors: a crashed node yields no reading, a clock jump yields a
//! NaN or a negative/infinite duration. Rule 4 of the paper demands that
//! such losses be *reported*, not silently discarded — "report the
//! experimental setup completely, including failed runs". This module
//! partitions a raw sample vector into its finite, usable part and counts
//! of what was dropped, so downstream summaries can disclose "n of m runs
//! usable, k samples dropped" instead of either crashing on the first NaN
//! or quietly pretending the campaign was clean.

use serde::{Deserialize, Serialize};

/// The result of partitioning raw samples into usable and contaminated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sanitized {
    /// The finite samples, in their original order.
    pub clean: Vec<f64>,
    /// Number of NaN samples removed.
    pub dropped_nan: usize,
    /// Number of ±∞ samples removed.
    pub dropped_infinite: usize,
}

impl Sanitized {
    /// Total number of samples dropped (NaN + infinite).
    pub fn dropped(&self) -> usize {
        self.dropped_nan + self.dropped_infinite
    }

    /// Number of samples before sanitization.
    pub fn recorded(&self) -> usize {
        self.clean.len() + self.dropped()
    }

    /// Whether any sample was dropped.
    pub fn contaminated(&self) -> bool {
        self.dropped() > 0
    }

    /// Fraction of recorded samples that were dropped; 0 for an empty
    /// input.
    pub fn contamination_rate(&self) -> f64 {
        if self.recorded() == 0 {
            0.0
        } else {
            self.dropped() as f64 / self.recorded() as f64
        }
    }
}

/// Partitions `samples` into finite values and counts of NaN / infinite
/// contaminants. Never fails: an all-contaminated (or empty) input simply
/// yields an empty `clean` vector, which downstream estimators reject
/// with their usual typed errors.
pub fn sanitize(samples: &[f64]) -> Sanitized {
    let mut clean = Vec::with_capacity(samples.len());
    let mut dropped_nan = 0usize;
    let mut dropped_infinite = 0usize;
    for &x in samples {
        if x.is_nan() {
            dropped_nan += 1;
        } else if x.is_infinite() {
            dropped_infinite += 1;
        } else {
            clean.push(x);
        }
    }
    Sanitized {
        clean,
        dropped_nan,
        dropped_infinite,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_input_passes_through() {
        let s = sanitize(&[1.0, 2.0, 3.0]);
        assert_eq!(s.clean, vec![1.0, 2.0, 3.0]);
        assert_eq!(s.dropped(), 0);
        assert!(!s.contaminated());
        assert_eq!(s.contamination_rate(), 0.0);
        assert_eq!(s.recorded(), 3);
    }

    #[test]
    fn nan_and_inf_are_counted_separately() {
        let s = sanitize(&[
            1.0,
            f64::NAN,
            2.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ]);
        assert_eq!(s.clean, vec![1.0, 2.0]);
        assert_eq!(s.dropped_nan, 2);
        assert_eq!(s.dropped_infinite, 2);
        assert_eq!(s.dropped(), 4);
        assert!(s.contaminated());
        assert_eq!(s.recorded(), 6);
    }

    #[test]
    fn order_is_preserved() {
        let s = sanitize(&[3.0, f64::NAN, 1.0, 2.0]);
        assert_eq!(s.clean, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn empty_and_all_contaminated_inputs() {
        let empty = sanitize(&[]);
        assert!(empty.clean.is_empty());
        assert_eq!(empty.contamination_rate(), 0.0);

        let bad = sanitize(&[f64::NAN, f64::INFINITY]);
        assert!(bad.clean.is_empty());
        assert_eq!(bad.dropped(), 2);
        assert_eq!(bad.contamination_rate(), 1.0);
    }

    #[test]
    fn negative_zero_and_subnormals_are_clean() {
        let s = sanitize(&[-0.0, f64::MIN_POSITIVE / 2.0]);
        assert_eq!(s.clean.len(), 2);
        assert!(!s.contaminated());
    }
}
