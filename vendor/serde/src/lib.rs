//! Minimal offline stand-in for `serde` (see `vendor/README.md`).
//!
//! The workspace only uses the derive macros as declarative markers — nothing is
//! ever actually serialized — so the traits carry no methods and the derives emit
//! empty impls. `#[serde(...)]` helper attributes are accepted and ignored.

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_primitives {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_primitives!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
}
impl Serialize for &str {}
