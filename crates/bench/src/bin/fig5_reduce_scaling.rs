//! Regenerates Figure 5: MPI_Reduce completion times for p = 2..64.

use scibench_bench::figures::fig5_reduce;
use scibench_bench::{output, samples_from_env, DEFAULT_SEED};

fn main() {
    let runs = samples_from_env(1_000);
    let fig = fig5_reduce::compute(runs, DEFAULT_SEED).expect("figure 5 pipeline");
    println!("{}", fig.render());
    let (pof2, others) = fig.series().expect("series");
    println!("\npowers-of-two series:\n{}", pof2.to_csv());
    println!("others (not connected, Rule 12):\n{}", others.to_csv());
    let path = output::write_csv("fig5_reduce", &fig.dataset()).expect("write csv");
    println!("per-p summaries: {}", path.display());
}
