//! Quantile regression (§3.2.3 of the paper, Rule 8).
//!
//! Quantile regression models the effect of a factor on arbitrary quantiles
//! rather than the mean — "most useful if the effect appears at a certain
//! percentile", e.g. worst-case latency. The paper's Figure 4 regresses
//! ping-pong latency on the system factor (Piz Dora vs Pilatus) across
//! quantiles 0.1…0.9.
//!
//! Two solvers are provided:
//!
//! * [`two_sample`]: the exact solution for one binary factor. For the
//!   model `y = β₀ + β₁·1[group B]`, the τ-quantile regression estimate is
//!   `β₀ = Q_τ(A)` and `β₁ = Q_τ(B) − Q_τ(A)`, because the check loss
//!   decomposes over the two groups. CIs come from order-statistic ranks
//!   (intercept) and a moving-blocks-free percentile bootstrap
//!   (difference).
//! * [`fit`]: a general iteratively-reweighted least-squares solver on a
//!   smoothed check loss for arbitrary design matrices, cross-validated
//!   against the exact path in the tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::bootstrap::mix_seed;
use crate::ci::ConfidenceInterval;
use crate::error::{StatsError, StatsResult};
use crate::quantile::{quantile_sorted, QuantileMethod};
use crate::sorted::SortedSamples;
use crate::validate_samples;

/// The quantile-regression estimate at one quantile τ for the two-sample
/// (one binary factor) design of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantileEffect {
    /// The quantile τ ∈ (0, 1).
    pub tau: f64,
    /// Intercept β₀ = Q_τ(base group) with its nonparametric CI.
    pub intercept: ConfidenceInterval,
    /// Difference β₁ = Q_τ(other) − Q_τ(base) with a bootstrap CI.
    pub difference: ConfidenceInterval,
}

impl QuantileEffect {
    /// Whether the difference at this quantile is significant (its CI does
    /// not contain zero).
    pub fn difference_significant(&self) -> bool {
        !self.difference.contains(0.0)
    }
}

/// Exact two-sample quantile regression across the given quantiles.
///
/// `base` is the intercept group (Piz Dora in Figure 4) and `other` the
/// comparison group (Pilatus). `boot_reps` bootstrap resamples are drawn
/// with the deterministic `seed` for the difference CIs.
pub fn two_sample(
    base: &[f64],
    other: &[f64],
    taus: &[f64],
    confidence: f64,
    boot_reps: usize,
    seed: u64,
) -> StatsResult<Vec<QuantileEffect>> {
    validate_samples(base)?;
    validate_samples(other)?;
    if taus.is_empty() {
        return Err(StatsError::EmptySample);
    }
    for &tau in taus {
        if !(tau > 0.0 && tau < 1.0) {
            return Err(StatsError::InvalidProbability {
                name: "tau",
                value: tau,
            });
        }
    }
    if boot_reps < 10 {
        return Err(StatsError::InvalidParameter {
            name: "boot_reps",
            value: boot_reps as f64,
        });
    }

    // Sort each group exactly once; every tau reads the shared cache
    // (intercept CI, point estimates and bootstrap draws all work on
    // order statistics).
    let base_cache = SortedSamples::new(base)?;
    let other_cache = SortedSamples::new(other)?;

    // Bootstrap quantile differences per tau. To keep this O(reps) rather
    // than O(reps · n log n) we exploit that the quantile of a bootstrap
    // resample can be drawn directly: the tau-quantile of an iid resample
    // of sorted data is the order statistic at a Binomial(n, tau)-like
    // rank, sampled via its normal limit. The RNG stream of replicate `r`
    // at tau index `t` is derived only from `(seed, t, r)`, so each tau's
    // CI is independent of which other taus are requested and of any
    // execution order.
    let mut effects = Vec::with_capacity(taus.len());
    for (tau_idx, &tau) in taus.iter().enumerate() {
        let intercept = base_cache.quantile_ci(tau, confidence)?;
        let est_base = quantile_sorted(base_cache.as_slice(), tau, QuantileMethod::Interpolated);
        let est_other = quantile_sorted(other_cache.as_slice(), tau, QuantileMethod::Interpolated);
        let estimate = est_other - est_base;

        let tau_seed = mix_seed(seed, tau_idx as u64);
        let mut diffs = Vec::with_capacity(boot_reps);
        for rep in 0..boot_reps {
            let mut rng = StdRng::seed_from_u64(mix_seed(tau_seed, rep as u64));
            let qb = bootstrap_quantile(base_cache.as_slice(), tau, &mut rng);
            let qo = bootstrap_quantile(other_cache.as_slice(), tau, &mut rng);
            diffs.push(qo - qb);
        }
        diffs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let alpha = 1.0 - confidence;
        let lower = quantile_sorted(&diffs, alpha / 2.0, QuantileMethod::Interpolated);
        let upper = quantile_sorted(&diffs, 1.0 - alpha / 2.0, QuantileMethod::Interpolated);
        effects.push(QuantileEffect {
            tau,
            intercept,
            difference: ConfidenceInterval {
                estimate,
                lower,
                upper,
                confidence,
            },
        });
    }
    Ok(effects)
}

/// Draws the τ-quantile of one bootstrap resample of `sorted` data.
///
/// Equivalent to resampling n observations with replacement and taking the
/// τ-quantile, but in O(1): the rank of the resample quantile follows a
/// Binomial(n, τ) distribution, which we sample via its normal
/// approximation (n is large in benchmarking contexts; for small n the
/// clamping keeps the rank valid).
fn bootstrap_quantile(sorted: &[f64], tau: f64, rng: &mut StdRng) -> f64 {
    let n = sorted.len();
    let nf = n as f64;
    let mean = nf * tau;
    let sd = (nf * tau * (1.0 - tau)).sqrt();
    // Box-Muller-free normal draw from rand's uniform: inverse CDF.
    let u: f64 = rng.gen_range(1e-12..1.0 - 1e-12);
    let z = crate::dist::normal::std_normal_inv_cdf(u);
    let rank = (mean + sd * z).round().clamp(1.0, nf) as usize;
    sorted[rank - 1]
}

/// A fitted general quantile-regression model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantRegFit {
    /// The quantile τ that was fitted.
    pub tau: f64,
    /// Coefficient vector β (one per design-matrix column).
    pub coefficients: Vec<f64>,
    /// Final value of the check-loss objective Σ ρ_τ(yᵢ − xᵢβ).
    pub objective: f64,
    /// IRLS iterations used.
    pub iterations: usize,
}

/// Fits `y ≈ X β` at quantile `tau` by iteratively reweighted least squares
/// on a smoothed check loss.
///
/// `x` is row-major with `ncols` columns (include a column of ones for an
/// intercept). Suitable for the small design matrices of benchmarking
/// studies (a handful of factors); the solver is O(iter · n · p²).
pub fn fit(x: &[f64], ncols: usize, y: &[f64], tau: f64) -> StatsResult<QuantRegFit> {
    validate_samples(y)?;
    if !(tau > 0.0 && tau < 1.0) {
        return Err(StatsError::InvalidProbability {
            name: "tau",
            value: tau,
        });
    }
    if ncols == 0 || x.len() != y.len() * ncols {
        return Err(StatsError::InvalidGroups("design matrix shape mismatch"));
    }
    if y.len() < ncols + 1 {
        return Err(StatsError::TooFewSamples {
            required: ncols + 1,
            actual: y.len(),
        });
    }
    let n = y.len();
    let p = ncols;
    // Smoothing parameter: scaled to the response spread, annealed.
    let spread = {
        let mn = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let mx = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (mx - mn).max(1e-12)
    };

    let mut beta = vec![0.0f64; p];
    // Start from the unweighted least-squares solution.
    solve_weighted_ls(x, p, y, None, &mut beta)?;

    let mut eps = spread * 1e-2;
    let mut iterations = 0;
    let max_outer = 60;
    for outer in 0..max_outer {
        let mut weights = vec![0.0f64; n];
        for i in 0..n {
            let mut pred = 0.0;
            for j in 0..p {
                pred += x[i * p + j] * beta[j];
            }
            let r = y[i] - pred;
            let a = (r * r + eps * eps).sqrt();
            // Asymmetric weight: tau on positive residuals, 1-tau negative.
            let side = if r >= 0.0 { tau } else { 1.0 - tau };
            weights[i] = side / a;
        }
        let mut new_beta = vec![0.0f64; p];
        solve_weighted_ls(x, p, y, Some(&weights), &mut new_beta)?;
        let delta: f64 = new_beta
            .iter()
            .zip(&beta)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        beta = new_beta;
        iterations = outer + 1;
        if delta < 1e-10 * spread && eps <= spread * 1e-8 {
            break;
        }
        // Anneal the smoothing towards the true check loss.
        eps = (eps * 0.5).max(spread * 1e-9);
    }

    let objective = check_loss(x, p, y, &beta, tau);
    Ok(QuantRegFit {
        tau,
        coefficients: beta,
        objective,
        iterations,
    })
}

/// Check loss Σ ρ_τ(yᵢ − xᵢβ) with ρ_τ(r) = r·(τ − `1{r<0}`).
pub fn check_loss(x: &[f64], p: usize, y: &[f64], beta: &[f64], tau: f64) -> f64 {
    let n = y.len();
    let mut total = 0.0;
    for i in 0..n {
        let mut pred = 0.0;
        for j in 0..p {
            pred += x[i * p + j] * beta[j];
        }
        let r = y[i] - pred;
        total += if r >= 0.0 { tau * r } else { (tau - 1.0) * r };
    }
    total
}

/// Solves the (optionally weighted) normal equations `XᵀWX β = XᵀWy` by
/// Gaussian elimination with partial pivoting. Small `p` only.
fn solve_weighted_ls(
    x: &[f64],
    p: usize,
    y: &[f64],
    weights: Option<&[f64]>,
    out: &mut [f64],
) -> StatsResult<()> {
    let n = y.len();
    let mut ata = vec![0.0f64; p * p];
    let mut aty = vec![0.0f64; p];
    for i in 0..n {
        let w = weights.map_or(1.0, |ws| ws[i]);
        for j in 0..p {
            let xij = x[i * p + j];
            aty[j] += w * xij * y[i];
            for k in j..p {
                ata[j * p + k] += w * xij * x[i * p + k];
            }
        }
    }
    // Mirror the symmetric part.
    for j in 0..p {
        for k in 0..j {
            ata[j * p + k] = ata[k * p + j];
        }
    }
    // Tiny ridge for numerical safety.
    let trace: f64 = (0..p).map(|j| ata[j * p + j]).sum();
    let ridge = trace / p as f64 * 1e-12;
    for j in 0..p {
        ata[j * p + j] += ridge;
    }
    gauss_solve(&mut ata, &mut aty, p)?;
    out.copy_from_slice(&aty);
    Ok(())
}

/// In-place Gaussian elimination with partial pivoting; solution left in `b`.
fn gauss_solve(a: &mut [f64], b: &mut [f64], p: usize) -> StatsResult<()> {
    for col in 0..p {
        // Pivot.
        let mut pivot = col;
        for row in col + 1..p {
            if a[row * p + col].abs() > a[pivot * p + col].abs() {
                pivot = row;
            }
        }
        if a[pivot * p + col].abs() < 1e-300 {
            return Err(StatsError::NoConvergence {
                what: "singular normal equations",
                iterations: 0,
            });
        }
        if pivot != col {
            for k in 0..p {
                a.swap(col * p + k, pivot * p + k);
            }
            b.swap(col, pivot);
        }
        // Eliminate.
        let diag = a[col * p + col];
        for row in col + 1..p {
            let factor = a[row * p + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..p {
                a[row * p + k] -= factor * a[col * p + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    for col in (0..p).rev() {
        let mut acc = b[col];
        for k in col + 1..p {
            acc -= a[col * p + k] * b[k];
        }
        b[col] = acc / a[col * p + col];
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::quantile;

    fn skewed_sample(n: usize, shift: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                shift + crate::dist::normal::std_normal_inv_cdf(u).exp() * 0.1
            })
            .collect()
    }

    #[test]
    fn two_sample_estimates_are_quantile_differences() {
        let a = skewed_sample(2000, 1.5);
        let b = skewed_sample(2000, 1.7);
        let taus = [0.1, 0.5, 0.9];
        let effects = two_sample(&a, &b, &taus, 0.95, 200, 42).unwrap();
        for (e, &tau) in effects.iter().zip(&taus) {
            let qa = quantile(&a, tau, QuantileMethod::Interpolated).unwrap();
            let qb = quantile(&b, tau, QuantileMethod::Interpolated).unwrap();
            assert!((e.intercept.estimate - qa).abs() < 1e-12);
            assert!((e.difference.estimate - (qb - qa)).abs() < 1e-12);
        }
    }

    #[test]
    fn two_sample_detects_constant_shift() {
        let a = skewed_sample(3000, 1.5);
        let b: Vec<f64> = a.iter().map(|x| x + 0.1).collect();
        let effects = two_sample(&a, &b, &[0.25, 0.5, 0.75], 0.95, 400, 7).unwrap();
        for e in &effects {
            assert!(e.difference_significant(), "tau {} not significant", e.tau);
            assert!((e.difference.estimate - 0.1).abs() < 1e-9);
            assert!(e.difference.lower <= 0.1 && 0.1 <= e.difference.upper);
        }
    }

    #[test]
    fn two_sample_no_difference_is_insignificant() {
        let a = skewed_sample(2000, 1.5);
        let effects = two_sample(&a, &a, &[0.5], 0.95, 400, 3).unwrap();
        assert!(!effects[0].difference_significant());
        assert!(effects[0].difference.estimate.abs() < 1e-12);
    }

    #[test]
    fn two_sample_crossing_effect() {
        // Construct the Figure-4 situation: group B better at high
        // quantiles, worse at low quantiles.
        let n = 4000;
        let a: Vec<f64> = (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                1.7 + 0.05 * crate::dist::normal::std_normal_inv_cdf(u)
            })
            .collect();
        let b: Vec<f64> = (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                1.7 + 0.20 * crate::dist::normal::std_normal_inv_cdf(u)
            })
            .collect();
        let effects = two_sample(&a, &b, &[0.1, 0.9], 0.95, 300, 11).unwrap();
        assert!(effects[0].difference.estimate < 0.0); // B faster at P10
        assert!(effects[1].difference.estimate > 0.0); // B slower at P90
    }

    #[test]
    fn irls_median_regression_recovers_line() {
        // y = 2 + 3x with sparse asymmetric outliers; median regression
        // must ignore them.
        let n = 200;
        let mut x = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let xi = i as f64 / 10.0;
            x.push(1.0);
            x.push(xi);
            let noise = if i % 17 == 0 {
                50.0
            } else {
                ((i * 37 % 13) as f64 - 6.0) * 0.01
            };
            y.push(2.0 + 3.0 * xi + noise);
        }
        let fit = fit(&x, 2, &y, 0.5).unwrap();
        assert!(
            (fit.coefficients[0] - 2.0).abs() < 0.1,
            "b0 = {}",
            fit.coefficients[0]
        );
        assert!(
            (fit.coefficients[1] - 3.0).abs() < 0.02,
            "b1 = {}",
            fit.coefficients[1]
        );
    }

    #[test]
    fn irls_matches_exact_two_sample_solution() {
        let a = skewed_sample(500, 1.5);
        let b = skewed_sample(500, 1.8);
        // Design: intercept + group dummy.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for &v in &a {
            x.push(1.0);
            x.push(0.0);
            y.push(v);
        }
        for &v in &b {
            x.push(1.0);
            x.push(1.0);
            y.push(v);
        }
        for tau in [0.25, 0.5, 0.75] {
            let f = fit(&x, 2, &y, tau).unwrap();
            let qa = quantile(&a, tau, QuantileMethod::Interpolated).unwrap();
            let qb = quantile(&b, tau, QuantileMethod::Interpolated).unwrap();
            let tol = 0.01 * (1.0 + qa.abs());
            assert!(
                (f.coefficients[0] - qa).abs() < tol,
                "tau {tau}: {} vs {qa}",
                f.coefficients[0]
            );
            assert!(
                (f.coefficients[1] - (qb - qa)).abs() < 2.0 * tol,
                "tau {tau}: {} vs {}",
                f.coefficients[1],
                qb - qa
            );
        }
    }

    #[test]
    fn irls_objective_not_worse_than_exact() {
        // The IRLS objective should be within a whisker of the exact
        // two-sample optimum.
        let a = skewed_sample(300, 1.0);
        let b = skewed_sample(300, 1.2);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for &v in &a {
            x.extend([1.0, 0.0]);
            y.push(v);
        }
        for &v in &b {
            x.extend([1.0, 1.0]);
            y.push(v);
        }
        let tau = 0.5;
        let f = fit(&x, 2, &y, tau).unwrap();
        let qa = quantile(&a, tau, QuantileMethod::Interpolated).unwrap();
        let qb = quantile(&b, tau, QuantileMethod::Interpolated).unwrap();
        let exact = check_loss(&x, 2, &y, &[qa, qb - qa], tau);
        assert!(f.objective <= exact * 1.001, "{} vs {}", f.objective, exact);
    }

    #[test]
    fn quantile_effects_monotone_intercepts() {
        let a = skewed_sample(1000, 0.0);
        let effects = two_sample(&a, &a, &[0.1, 0.3, 0.5, 0.7, 0.9], 0.95, 100, 1).unwrap();
        for w in effects.windows(2) {
            assert!(w[0].intercept.estimate <= w[1].intercept.estimate);
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let a = [1.0, 2.0, 3.0];
        assert!(two_sample(&a, &a, &[], 0.95, 100, 0).is_err());
        assert!(two_sample(&a, &a, &[1.5], 0.95, 100, 0).is_err());
        assert!(two_sample(&a, &a, &[0.5], 0.95, 5, 0).is_err());
        assert!(fit(&[1.0, 2.0], 2, &[1.0, 2.0], 0.5).is_err()); // shape mismatch
        assert!(fit(&[1.0, 1.0], 1, &[1.0, 2.0], 1.5).is_err());
    }
}
