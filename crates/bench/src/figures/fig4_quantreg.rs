//! Figure 4: quantile regression comparing Pilatus against Piz Dora.
//!
//! Top panel: the intercept — Piz Dora's latency as a function of the
//! quantile (with 95 % CIs) against its mean. Bottom panel: the
//! difference Pilatus − Dora per quantile. The paper's observation: the
//! difference of means (≈ +0.108 µs) hides that the sign of the effect
//! *crosses zero* across quantiles — quantile regression reveals it
//! (Rule 8).

use scibench::data::DataSet;
use scibench_sim::machine::MachineSpec;
use scibench_sim::pingpong::{pingpong_latencies_us, PingPongConfig};
use scibench_sim::rng::SimRng;
use scibench_stats::ci::{mean_ci, ConfidenceInterval};
use scibench_stats::error::StatsResult;
use scibench_stats::quantreg::{two_sample, QuantileEffect};

/// Regenerated Figure 4 data.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// The quantiles examined (0.1 … 0.9).
    pub taus: Vec<f64>,
    /// Per-quantile intercept (Dora) and difference (Pilatus − Dora).
    pub effects: Vec<QuantileEffect>,
    /// Dora's mean with 95 % CI (the straight+dotted line of the figure).
    pub dora_mean: ConfidenceInterval,
    /// The difference of means (Pilatus − Dora), µs.
    pub mean_difference: f64,
}

/// Runs the Figure 4 pipeline with `samples` per system.
pub fn compute(samples: usize, seed: u64) -> StatsResult<Fig4> {
    let root = SimRng::new(seed);
    let mut cfg = PingPongConfig::paper_64b(samples);
    cfg.warmup_iterations = 0;
    let dora = pingpong_latencies_us(&MachineSpec::piz_dora(), &cfg, &mut root.fork("fig4-dora"));
    let pilatus = pingpong_latencies_us(
        &MachineSpec::pilatus(),
        &cfg,
        &mut root.fork("fig4-pilatus"),
    );

    let taus: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
    let effects = two_sample(&dora, &pilatus, &taus, 0.95, 400, seed ^ 0xF164)?;
    let dora_mean = mean_ci(&dora, 0.95)?;
    let pilatus_mean = mean_ci(&pilatus, 0.95)?;
    Ok(Fig4 {
        taus,
        effects,
        mean_difference: pilatus_mean.estimate - dora_mean.estimate,
        dora_mean,
    })
}

impl Fig4 {
    /// The quantile where the difference changes sign, if any (linear
    /// interpolation between adjacent quantiles).
    pub fn crossover_tau(&self) -> Option<f64> {
        for w in self.effects.windows(2) {
            let (a, b) = (w[0].difference.estimate, w[1].difference.estimate);
            if a <= 0.0 && b > 0.0 {
                let f = -a / (b - a);
                return Some(w[0].tau + f * (w[1].tau - w[0].tau));
            }
        }
        None
    }

    /// Renders both panels as tables.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 4: Quantile regression, Pilatus vs Piz Dora (base)\n\n\
             Piz Dora (intercept):\n  tau   latency[us]   95% CI\n",
        );
        for e in &self.effects {
            out.push_str(&format!(
                "  {:.1}   {:8.4}   [{:.4}, {:.4}]\n",
                e.tau, e.intercept.estimate, e.intercept.lower, e.intercept.upper
            ));
        }
        out.push_str(&format!(
            "  mean: {:.4} us, 95% CI [{:.4}, {:.4}]\n\n\
             Pilatus (difference to Piz Dora):\n  tau   diff[us]      95% CI\n",
            self.dora_mean.estimate, self.dora_mean.lower, self.dora_mean.upper
        ));
        for e in &self.effects {
            out.push_str(&format!(
                "  {:.1}   {:+8.4}   [{:+.4}, {:+.4}]{}\n",
                e.tau,
                e.difference.estimate,
                e.difference.lower,
                e.difference.upper,
                if e.difference_significant() { " *" } else { "" }
            ));
        }
        out.push_str(&format!(
            "  difference of means: {:+.4} us\n",
            self.mean_difference
        ));
        if let Some(tau) = self.crossover_tau() {
            out.push_str(&format!(
                "  sign crossover near tau = {tau:.2}: the mean difference hides a\n\
                 \x20 quantile-dependent effect (Rule 8)\n"
            ));
        }
        out
    }

    /// Exports both panels as CSV.
    pub fn dataset(&self) -> DataSet {
        let mut d = DataSet::new(&[
            "tau",
            "intercept",
            "intercept_lo",
            "intercept_hi",
            "difference",
            "difference_lo",
            "difference_hi",
        ])
        .with_metadata("figure", "4")
        .with_metadata("base", "Piz Dora");
        for e in &self.effects {
            d.push_row(&[
                e.tau,
                e.intercept.estimate,
                e.intercept.lower,
                e.intercept.upper,
                e.difference.estimate,
                e.difference.lower,
                e.difference.upper,
            ]);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_figure4_shape() {
        let f = compute(50_000, 42).unwrap();
        assert_eq!(f.effects.len(), 9);
        // Intercept rises with the quantile (right-skewed latency).
        assert!(f.effects[8].intercept.estimate > f.effects[0].intercept.estimate);
        // Difference negative at low quantiles, positive at high.
        assert!(
            f.effects[0].difference.estimate < 0.0,
            "{:?}",
            f.effects[0].difference
        );
        assert!(
            f.effects[8].difference.estimate > 0.0,
            "{:?}",
            f.effects[8].difference
        );
        assert!(f.crossover_tau().is_some());
        // Mean difference ballpark of the paper's 0.108 µs.
        assert!(
            (0.02..0.30).contains(&f.mean_difference),
            "{}",
            f.mean_difference
        );
    }

    #[test]
    fn extremes_are_significant() {
        let f = compute(50_000, 42).unwrap();
        assert!(f.effects[0].difference_significant());
        assert!(f.effects[8].difference_significant());
    }

    #[test]
    fn render_and_dataset() {
        let f = compute(20_000, 3).unwrap();
        let text = f.render();
        assert!(text.contains("intercept"));
        assert!(text.contains("difference of means"));
        assert_eq!(f.dataset().len(), 9);
    }
}
