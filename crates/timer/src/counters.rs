//! Software event counters — the PAPI substitute.
//!
//! LibSciBench "has support for arbitrary PAPI counters"; hardware
//! counters are unavailable in a portable library, so this module provides
//! deterministic software counters with the same collection semantics:
//! named monotonically increasing counts that can be snapshotted around a
//! measured region and differenced.

use std::collections::BTreeMap;

/// A set of named monotonic event counters.
///
/// Counter names are interned on first use; reads of unknown counters
/// return 0 so that instrumentation can be sprinkled without registration
/// ceremony.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSet {
    counts: BTreeMap<String, u64>,
}

/// An immutable snapshot of a [`CounterSet`] at one instant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    counts: BTreeMap<String, u64>,
}

impl CounterSet {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name` (creating it at zero first).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counts.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Increments counter `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            counts: self.counts.clone(),
        }
    }

    /// Names of all counters that have been touched, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.counts.keys().map(String::as_str)
    }
}

impl CounterSnapshot {
    /// Value of counter `name` in this snapshot.
    pub fn get(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// Per-counter difference `later − self`; counters only present in
    /// `later` count from zero.
    ///
    /// Panics in debug builds if `later` is actually earlier (a counter
    /// decreased), since counters are monotonic.
    pub fn delta(&self, later: &CounterSnapshot) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for (name, &after) in &later.counts {
            let before = self.get(name);
            debug_assert!(after >= before, "counter {name} decreased");
            let d = after.saturating_sub(before);
            if d > 0 {
                out.insert(name.clone(), d);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let c = CounterSet::new();
        assert_eq!(c.get("flop"), 0);
    }

    #[test]
    fn add_and_incr() {
        let mut c = CounterSet::new();
        c.add("flop", 100);
        c.incr("messages");
        c.incr("messages");
        assert_eq!(c.get("flop"), 100);
        assert_eq!(c.get("messages"), 2);
    }

    #[test]
    fn snapshot_delta_measures_region() {
        let mut c = CounterSet::new();
        c.add("flop", 50);
        let before = c.snapshot();
        c.add("flop", 200);
        c.add("bytes", 4096);
        let after = c.snapshot();
        let d = before.delta(&after);
        assert_eq!(d.get("flop"), Some(&200));
        assert_eq!(d.get("bytes"), Some(&4096));
        // Untouched counters are omitted from the delta.
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn snapshot_is_immutable() {
        let mut c = CounterSet::new();
        c.add("x", 1);
        let snap = c.snapshot();
        c.add("x", 10);
        assert_eq!(snap.get("x"), 1);
        assert_eq!(c.get("x"), 11);
    }

    #[test]
    fn names_are_sorted() {
        let mut c = CounterSet::new();
        c.incr("zeta");
        c.incr("alpha");
        c.incr("mid");
        let names: Vec<&str> = c.names().collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn zero_delta_omitted() {
        let mut c = CounterSet::new();
        c.add("idle", 5);
        let a = c.snapshot();
        let b = c.snapshot();
        assert!(a.delta(&b).is_empty());
    }
}
