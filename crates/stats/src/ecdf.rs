//! Empirical cumulative distribution functions.
//!
//! ECDFs complement the paper's density plots: where a KDE shows shape,
//! the ECDF reads off "what fraction of runs finished within t" directly
//! — the natural companion to percentile reporting (Rule 8) and the
//! Kolmogorov–Smirnov distance used to compare two systems' full latency
//! profiles.

use serde::{Deserialize, Serialize};

use crate::error::StatsResult;
use crate::sorted::SortedSamples;
use crate::{sorted_copy, validate_samples};

/// An empirical CDF: a right-continuous step function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF of a sample.
    pub fn from_samples(xs: &[f64]) -> StatsResult<Self> {
        validate_samples(xs)?;
        Ok(Self {
            sorted: sorted_copy(xs),
        })
    }

    /// Builds the ECDF from an already-sorted cache, skipping the sort.
    pub fn from_sorted(sorted: &SortedSamples) -> Self {
        Self {
            sorted: sorted.as_slice().to_vec(),
        }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x) = (# observations ≤ x) / n`.
    pub fn eval(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Generalized inverse: the smallest observation `v` with `F(v) ≥ p`.
    pub fn inverse(&self, p: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&p));
        if p <= 0.0 {
            return self.sorted[0];
        }
        let rank = ((p * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// The plot steps `(x, F(x))`, thinned to at most `max_points`.
    pub fn steps(&self, max_points: usize) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let m = max_points.max(2).min(n);
        let mut out = Vec::with_capacity(m);
        for j in 0..m {
            let idx = if m == n {
                j
            } else {
                // Clamped: float rounding must not push the thinned index
                // past the last observation (n, m as small as 2 are legal).
                ((j as f64 / (m - 1) as f64 * (n - 1) as f64) as usize).min(n - 1)
            };
            out.push((self.sorted[idx], (idx + 1) as f64 / n as f64));
        }
        out
    }

    /// Two-sample Kolmogorov–Smirnov distance `sup |F₁ − F₂|`.
    pub fn ks_distance(&self, other: &Ecdf) -> f64 {
        let mut d = 0.0f64;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_steps_correctly() {
        let e = Ecdf::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(1e9), 1.0);
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
    }

    #[test]
    fn inverse_is_a_quantile() {
        let e = Ecdf::from_samples(&[10.0, 20.0, 30.0, 40.0, 50.0]).unwrap();
        assert_eq!(e.inverse(0.0), 10.0);
        assert_eq!(e.inverse(0.2), 10.0);
        assert_eq!(e.inverse(0.21), 20.0);
        assert_eq!(e.inverse(1.0), 50.0);
    }

    #[test]
    fn eval_inverse_galois_connection() {
        let xs: Vec<f64> = (1..=50).map(f64::from).collect();
        let e = Ecdf::from_samples(&xs).unwrap();
        for i in 1..=10 {
            let p = i as f64 / 10.0;
            let x = e.inverse(p);
            assert!(e.eval(x) >= p - 1e-12);
        }
    }

    #[test]
    fn ks_distance_properties() {
        let a = Ecdf::from_samples(&(1..=100).map(f64::from).collect::<Vec<_>>()).unwrap();
        let b = Ecdf::from_samples(&(51..=150).map(f64::from).collect::<Vec<_>>()).unwrap();
        assert_eq!(a.ks_distance(&a), 0.0);
        let d = a.ks_distance(&b);
        assert!((d - 0.5).abs() < 0.02, "d = {d}");
        assert!((d - b.ks_distance(&a)).abs() < 1e-12);
        // Disjoint supports: distance 1.
        let c = Ecdf::from_samples(&[1000.0, 1001.0]).unwrap();
        assert_eq!(a.ks_distance(&c), 1.0);
    }

    #[test]
    fn steps_are_monotone_and_thinned() {
        let xs: Vec<f64> = (0..10_000).map(|i| (i as f64 * 0.377).sin()).collect();
        let e = Ecdf::from_samples(&xs).unwrap();
        let steps = e.steps(100);
        assert_eq!(steps.len(), 100);
        for w in steps.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((steps.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_empty() {
        assert!(Ecdf::from_samples(&[]).is_err());
    }
}
