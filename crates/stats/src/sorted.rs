//! A sort-once sample cache shared by every order-statistic consumer.
//!
//! Quantiles, ECDFs, nonparametric CIs and Tukey fences all start from the
//! same ascending order statistics, yet historically each call re-sorted
//! the raw slice. [`SortedSamples`] sorts exactly once and hands the
//! sorted view to all of them, turning a summary that needed four
//! `O(n log n)` sorts into one sort plus `O(1)`/`O(log n)` queries.
//!
//! # Invariants
//!
//! A constructed `SortedSamples` always holds a non-empty, ascending,
//! all-finite sample. Every constructor and mutator validates its input,
//! so downstream consumers (e.g. [`crate::quantile::quantile_sorted`])
//! can rely on the invariant without re-checking.

use serde::{Deserialize, Serialize};

use crate::ci::{quantile_ci_ranks, ConfidenceInterval};
use crate::error::{StatsError, StatsResult};
use crate::outlier::TukeyFences;
use crate::quantile::{quantile_sorted, FiveNumberSummary, QuantileMethod};
use crate::validate_samples;

/// A validated, ascending copy of a sample: sort once, query many times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SortedSamples {
    xs: Vec<f64>,
}

impl SortedSamples {
    /// Sorts a copy of `xs`. Errors on empty or non-finite input.
    pub fn new(xs: &[f64]) -> StatsResult<Self> {
        Self::from_vec(xs.to_vec())
    }

    /// Sorts `xs` in place, avoiding the copy [`SortedSamples::new`] makes.
    pub fn from_vec(mut xs: Vec<f64>) -> StatsResult<Self> {
        validate_samples(&xs)?;
        xs.sort_by(|a, b| a.partial_cmp(b).expect("samples validated finite"));
        Ok(Self { xs })
    }

    /// Wraps data that is already ascending; errors if it is not (or is
    /// empty / non-finite). Useful when the producer sorted already.
    pub fn from_sorted_vec(xs: Vec<f64>) -> StatsResult<Self> {
        validate_samples(&xs)?;
        if xs.windows(2).any(|w| w[0] > w[1]) {
            return Err(StatsError::InvalidGroups("input is not ascending"));
        }
        Ok(Self { xs })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Always `false` for a constructed value (constructors reject empty
    /// samples); present for API completeness.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The ascending order statistics.
    pub fn as_slice(&self) -> &[f64] {
        &self.xs
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.xs[0]
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.xs[self.xs.len() - 1]
    }

    /// The `p`-quantile (`0 ≤ p ≤ 1`), without re-sorting.
    pub fn quantile(&self, p: f64, method: QuantileMethod) -> StatsResult<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::InvalidProbability {
                name: "p",
                value: p,
            });
        }
        Ok(quantile_sorted(&self.xs, p, method))
    }

    /// Median (interpolated), without re-sorting.
    pub fn median(&self) -> f64 {
        quantile_sorted(&self.xs, 0.5, QuantileMethod::Interpolated)
    }

    /// Min / quartiles / max, without re-sorting.
    pub fn five_number(&self) -> FiveNumberSummary {
        FiveNumberSummary {
            min: self.min(),
            q1: quantile_sorted(&self.xs, 0.25, QuantileMethod::Interpolated),
            median: self.median(),
            q3: quantile_sorted(&self.xs, 0.75, QuantileMethod::Interpolated),
            max: self.max(),
        }
    }

    /// Nonparametric `1−α` CI of the `p`-quantile from order-statistic
    /// ranks — same contract as [`crate::ci::quantile_ci`], minus the sort.
    pub fn quantile_ci(&self, p: f64, confidence: f64) -> StatsResult<ConfidenceInterval> {
        let ranks = quantile_ci_ranks(self.xs.len(), p, confidence)?;
        Ok(ConfidenceInterval {
            estimate: quantile_sorted(&self.xs, p, QuantileMethod::Interpolated),
            lower: self.xs[ranks.lower - 1],
            upper: self.xs[ranks.upper - 1],
            confidence,
        })
    }

    /// Nonparametric `1−α` CI of the median, without re-sorting.
    pub fn median_ci(&self, confidence: f64) -> StatsResult<ConfidenceInterval> {
        self.quantile_ci(0.5, confidence)
    }

    /// The empirical CDF, without re-sorting.
    pub fn ecdf(&self) -> crate::ecdf::Ecdf {
        crate::ecdf::Ecdf::from_sorted(self)
    }

    /// Tukey's fences `[Q1 − c·IQR, Q3 + c·IQR]`, without re-sorting.
    ///
    /// Errors with [`StatsError::InvalidParameter`] when `constant` is
    /// negative or non-finite — the same contract as
    /// [`TukeyFences::from_samples`]; a negative multiplier would invert
    /// the fences and flag the whole sample as outliers.
    pub fn tukey_fences(&self, constant: f64) -> StatsResult<TukeyFences> {
        crate::outlier::validate_fence_constant(constant)?;
        let five = self.five_number();
        let iqr = five.iqr();
        Ok(TukeyFences {
            lower: five.q1 - constant * iqr,
            upper: five.q3 + constant * iqr,
            constant,
        })
    }

    /// Inserts one observation at its sorted position (binary search +
    /// shift). Errors on non-finite input and leaves the cache unchanged.
    pub fn push(&mut self, x: f64) -> StatsResult<()> {
        if !x.is_finite() {
            return Err(StatsError::NonFiniteSample);
        }
        let at = self.xs.partition_point(|&v| v <= x);
        self.xs.insert(at, x);
        Ok(())
    }

    /// Merges a batch of new observations: sorts the batch (`O(b log b)`)
    /// and merges the two runs (`O(n + b)`) — much cheaper than re-sorting
    /// everything when batches arrive incrementally, as in the adaptive
    /// median stopping rule. Errors on non-finite input and leaves the
    /// cache unchanged.
    pub fn merge_extend(&mut self, batch: &[f64]) -> StatsResult<()> {
        if batch.is_empty() {
            return Ok(());
        }
        if batch.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::NonFiniteSample);
        }
        let mut incoming = batch.to_vec();
        incoming.sort_by(|a, b| a.partial_cmp(b).expect("validated finite"));
        let mut merged = Vec::with_capacity(self.xs.len() + incoming.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.xs.len() && j < incoming.len() {
            if self.xs[i] <= incoming[j] {
                merged.push(self.xs[i]);
                i += 1;
            } else {
                merged.push(incoming[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&self.xs[i..]);
        merged.extend_from_slice(&incoming[j..]);
        self.xs = merged;
        Ok(())
    }

    /// Consumes the cache, returning the sorted vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.xs
    }
}

/// Merges pre-sorted runs into one ascending vector, deterministically:
/// runs are merged pairwise in index order (ties taken from the
/// lower-indexed run), so the output is a pure function of the inputs.
///
/// This is the reduction step of the chunked bootstrap: each chunk sorts
/// its own resampled statistics and the merge replaces one giant
/// `O(R log R)` sort with `O(R log k)` work for `k` chunks.
///
/// Every run is validated up front: a NaN in any run made the merge
/// comparison `a[i] <= b[j]` false on both sides, so the old infallible
/// version silently emitted an out-of-order "sorted" vector that corrupted
/// every downstream order-statistic lookup. Non-finite input now returns
/// [`StatsError::NonFiniteSample`] and a run that is not ascending returns
/// [`StatsError::InvalidGroups`], before any merging happens.
pub fn merge_sorted_runs(mut runs: Vec<Vec<f64>>) -> StatsResult<Vec<f64>> {
    for run in &runs {
        if run.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::NonFiniteSample);
        }
        if run.windows(2).any(|w| w[0] > w[1]) {
            return Err(StatsError::InvalidGroups("run is not ascending"));
        }
    }
    runs.retain(|r| !r.is_empty());
    if runs.is_empty() {
        return Ok(Vec::new());
    }
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut iter = runs.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(merge_two(a, b)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    Ok(runs.pop().expect("one run remains"))
}

fn merge_two(a: Vec<f64>, b: Vec<f64>) -> Vec<f64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ci::{median_ci, quantile_ci};
    use crate::quantile::quantile;

    fn sample() -> Vec<f64> {
        (0..200)
            .map(|i| ((i as f64 * 0.7311).sin() * 50.0) + 100.0)
            .collect()
    }

    #[test]
    fn matches_fresh_sort_consumers_exactly() {
        let xs = sample();
        let s = SortedSamples::new(&xs).unwrap();
        assert_eq!(s.len(), xs.len());
        for p in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            for m in [QuantileMethod::Interpolated, QuantileMethod::NearestRank] {
                assert_eq!(s.quantile(p, m).unwrap(), quantile(&xs, p, m).unwrap());
            }
        }
        assert_eq!(
            s.five_number(),
            FiveNumberSummary::from_samples(&xs).unwrap()
        );
        assert_eq!(s.median_ci(0.95).unwrap(), median_ci(&xs, 0.95).unwrap());
        assert_eq!(
            s.quantile_ci(0.9, 0.95).unwrap(),
            quantile_ci(&xs, 0.9, 0.95).unwrap()
        );
        assert_eq!(
            s.tukey_fences(1.5).unwrap(),
            TukeyFences::from_samples(&xs, 1.5).unwrap()
        );
        assert_eq!(s.ecdf(), crate::ecdf::Ecdf::from_samples(&xs).unwrap());
        assert_eq!(s.min(), s.as_slice()[0]);
        assert_eq!(s.max(), *s.as_slice().last().unwrap());
    }

    #[test]
    fn constructors_validate() {
        assert!(SortedSamples::new(&[]).is_err());
        assert!(SortedSamples::new(&[1.0, f64::NAN]).is_err());
        assert!(SortedSamples::from_sorted_vec(vec![2.0, 1.0]).is_err());
        assert!(SortedSamples::from_sorted_vec(vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn degenerate_singleton_sample_never_panics() {
        let s = SortedSamples::new(&[42.0]).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
        assert_eq!(s.median(), 42.0);
        for p in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(s.quantile(p, QuantileMethod::Interpolated).unwrap(), 42.0);
            assert_eq!(s.quantile(p, QuantileMethod::NearestRank).unwrap(), 42.0);
        }
        let five = s.five_number();
        assert_eq!(five.min, five.max);
        assert_eq!(five.iqr(), 0.0);
        // CIs are impossible with one sample: typed error, not a panic.
        assert!(matches!(
            s.median_ci(0.95),
            Err(StatsError::TooFewSamples { .. })
        ));
        assert!(matches!(
            s.quantile_ci(0.9, 0.95),
            Err(StatsError::TooFewSamples { .. })
        ));
        // Fences collapse to the point; ECDF is a single step.
        let f = s.tukey_fences(1.5).unwrap();
        assert_eq!((f.lower, f.upper), (42.0, 42.0));
        assert!(f.contains(42.0));
        assert_eq!(s.ecdf().eval(42.0), 1.0);
        assert_eq!(s.ecdf().steps(10), vec![(42.0, 1.0)]);
    }

    #[test]
    fn degenerate_pair_sample_never_panics() {
        let s = SortedSamples::new(&[2.0, 1.0]).unwrap();
        assert_eq!(s.as_slice(), &[1.0, 2.0]);
        assert_eq!(s.median(), 1.5);
        let five = s.five_number();
        assert!(five.q1 <= five.median && five.median <= five.q3);
        assert!(matches!(
            s.median_ci(0.95),
            Err(StatsError::TooFewSamples { .. })
        ));
        let f = s.tukey_fences(1.5).unwrap();
        assert!(f.lower <= f.upper, "fences inverted: {f:?}");
        let steps = s.ecdf().steps(100);
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[1].1, 1.0);
    }

    #[test]
    fn negative_or_nonfinite_fence_constant_is_a_typed_error() {
        let s = SortedSamples::new(&[1.0, 2.0, 3.0, 10.0]).unwrap();
        for bad in [-1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(
                matches!(
                    s.tukey_fences(bad),
                    Err(StatsError::InvalidParameter {
                        name: "constant",
                        ..
                    })
                ),
                "constant {bad} accepted"
            );
            assert!(TukeyFences::from_samples(s.as_slice(), bad).is_err());
        }
        // Zero is legal: fences equal the quartiles.
        let f = s.tukey_fences(0.0).unwrap();
        let five = s.five_number();
        assert_eq!((f.lower, f.upper), (five.q1, five.q3));
    }

    #[test]
    fn push_keeps_order() {
        let mut s = SortedSamples::new(&[5.0, 1.0, 3.0]).unwrap();
        s.push(2.0).unwrap();
        s.push(10.0).unwrap();
        s.push(0.0).unwrap();
        assert_eq!(s.as_slice(), &[0.0, 1.0, 2.0, 3.0, 5.0, 10.0]);
        assert!(s.push(f64::INFINITY).is_err());
        assert_eq!(s.len(), 6, "failed push must not mutate");
    }

    #[test]
    fn merge_extend_equals_full_sort() {
        let xs = sample();
        let mut incremental = SortedSamples::new(&xs[..50]).unwrap();
        incremental.merge_extend(&xs[50..140]).unwrap();
        incremental.merge_extend(&xs[140..]).unwrap();
        incremental.merge_extend(&[]).unwrap();
        let full = SortedSamples::new(&xs).unwrap();
        assert_eq!(incremental, full);
        assert!(incremental.merge_extend(&[f64::NAN]).is_err());
        assert_eq!(incremental.len(), xs.len());
    }

    #[test]
    fn merge_sorted_runs_equals_global_sort() {
        let xs = sample();
        let mut runs = Vec::new();
        for chunk in xs.chunks(37) {
            let mut c = chunk.to_vec();
            c.sort_by(|a, b| a.partial_cmp(b).unwrap());
            runs.push(c);
        }
        runs.push(Vec::new()); // empty runs are tolerated
        let merged = merge_sorted_runs(runs).unwrap();
        let mut expect = xs.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(merged, expect);
        assert!(merge_sorted_runs(Vec::new()).unwrap().is_empty());
    }

    #[test]
    fn merge_sorted_runs_rejects_nan_and_unsorted_runs() {
        // Regression: a NaN run used to pass straight through `merge_two`
        // (`a[i] <= b[j]` is false for NaN) and yield an out-of-order
        // result. Now it is a typed error before any merging happens.
        let with_nan = vec![vec![1.0, f64::NAN], vec![0.5, 2.0]];
        assert!(matches!(
            merge_sorted_runs(with_nan),
            Err(StatsError::NonFiniteSample)
        ));
        let with_inf = vec![vec![1.0, f64::INFINITY]];
        assert!(matches!(
            merge_sorted_runs(with_inf),
            Err(StatsError::NonFiniteSample)
        ));
        let unsorted = vec![vec![3.0, 1.0], vec![0.5, 2.0]];
        assert!(matches!(
            merge_sorted_runs(unsorted),
            Err(StatsError::InvalidGroups(_))
        ));
        // Valid runs still merge; ties keep the lower-indexed run first.
        let ok = merge_sorted_runs(vec![vec![1.0, 2.0], vec![2.0, 3.0]]).unwrap();
        assert_eq!(ok, vec![1.0, 2.0, 2.0, 3.0]);
    }
}
