//! Figure 7(c): box plot, violin plot and combined plot of 64 B
//! ping-pong latencies on Piz Dora.
//!
//! The paper plots 10⁶ samples three ways to show how much information
//! each representation carries: the box (quartiles + 1.5 IQR whiskers +
//! mean/median), the violin (full density + quartiles), and the
//! combination with the 95 % CI of the median marked.

use scibench::data::DataSet;
use scibench::plot::ascii::{render_box, render_violin};
use scibench::plot::boxplot::{BoxPlotStats, WhiskerRule};
use scibench::plot::violin::ViolinData;
use scibench_sim::machine::MachineSpec;
use scibench_sim::pingpong::{pingpong_latencies_us, PingPongConfig};
use scibench_sim::rng::SimRng;
use scibench_stats::ci::{median_ci, ConfidenceInterval};
use scibench_stats::error::StatsResult;

/// Regenerated Figure 7(c) data.
#[derive(Debug, Clone)]
pub struct Fig7c {
    /// Latency samples (µs).
    pub latencies_us: Vec<f64>,
    /// Box statistics (1.5 IQR whiskers as in the figure).
    pub boxplot: BoxPlotStats,
    /// Violin data (density + quartiles + both means).
    pub violin: ViolinData,
    /// 95 % CI of the median (the combined panel's annotation).
    pub median_ci: ConfidenceInterval,
}

/// Runs the Figure 7(c) pipeline with `samples` ping-pong measurements.
pub fn compute(samples: usize, seed: u64) -> StatsResult<Fig7c> {
    let machine = MachineSpec::piz_dora();
    let mut cfg = PingPongConfig::paper_64b(samples);
    cfg.warmup_iterations = 0;
    let mut rng = SimRng::new(seed).fork("fig7c");
    let latencies = pingpong_latencies_us(&machine, &cfg, &mut rng);
    let boxplot = BoxPlotStats::from_samples("ping-pong 64B", &latencies, WhiskerRule::TukeyIqr)?;
    let violin = ViolinData::from_samples("ping-pong 64B", &latencies, 256)?;
    let median_ci = median_ci(&latencies, 0.95)?;
    Ok(Fig7c {
        latencies_us: latencies,
        boxplot,
        violin,
        median_ci,
    })
}

impl Fig7c {
    /// Renders all three representations.
    pub fn render(&self) -> String {
        let b = &self.boxplot;
        let mut out = format!(
            "Figure 7(c): {} ping-pong latencies on Piz Dora (model), in us\n\n\
             box plot ({}):\n",
            self.latencies_us.len(),
            b.whisker_rule.describe()
        );
        let hi = b.five_number.max.min(b.whisker_high * 2.0);
        out.push_str(&render_box(b, b.five_number.min * 0.95, hi, 70));
        out.push_str(&format!(
            "  q1 {:.4}  median {:.4}  q3 {:.4}  mean {:.4}\n  outliers beyond 1.5 IQR: {}\n\n\
             violin (density silhouette):\n",
            b.five_number.q1,
            b.five_number.median,
            b.five_number.q3,
            b.mean,
            b.outliers.len()
        ));
        out.push_str(&render_violin(&self.violin, 70, 13));
        out.push_str(&format!(
            "\ncombined annotations:\n  arithmetic mean {:.4} us, geometric mean {:.4} us\n  95% CI(median): [{:.4}, {:.4}] us\n",
            self.violin.mean,
            self.violin.geometric_mean.unwrap_or(f64::NAN),
            self.median_ci.lower,
            self.median_ci.upper
        ));
        out
    }

    /// Exports the box/violin statistics as CSV.
    pub fn dataset(&self) -> DataSet {
        let b = &self.boxplot;
        let mut d = DataSet::new(&[
            "min",
            "q1",
            "median",
            "q3",
            "max",
            "mean",
            "geometric_mean",
            "whisker_low",
            "whisker_high",
            "outliers",
            "median_ci_lo",
            "median_ci_hi",
        ])
        .with_metadata("figure", "7c")
        .with_metadata("workload", "64B ping-pong, Piz Dora model");
        d.push_row(&[
            b.five_number.min,
            b.five_number.q1,
            b.five_number.median,
            b.five_number.q3,
            b.five_number.max,
            b.mean,
            self.violin.geometric_mean.unwrap_or(f64::NAN),
            b.whisker_low,
            b.whisker_high,
            b.outliers.len() as f64,
            self.median_ci.lower,
            self.median_ci.upper,
        ]);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_magnitudes() {
        let f = compute(100_000, 42).unwrap();
        let b = &f.boxplot;
        // The figure's axis spans roughly 1.75..2.5 µs; our model targets
        // the same body (median ~1.75, q3 below 2.1).
        assert!(
            (1.5..2.1).contains(&b.five_number.median),
            "median {}",
            b.five_number.median
        );
        assert!(b.five_number.q3 < 2.6);
        // Long right tail → outliers beyond 1.5 IQR exist.
        assert!(!b.outliers.is_empty());
        // Mean above median; geometric mean between them and min.
        assert!(b.mean > b.five_number.median);
        let gm = f.violin.geometric_mean.unwrap();
        assert!(gm < b.mean && gm > b.five_number.min);
    }

    #[test]
    fn median_ci_is_tight_with_many_samples() {
        let f = compute(100_000, 42).unwrap();
        assert!(f.median_ci.relative_half_width().unwrap() < 0.01);
    }

    #[test]
    fn render_and_dataset() {
        let f = compute(20_000, 1).unwrap();
        let text = f.render();
        assert!(text.contains("box plot"));
        assert!(text.contains("violin"));
        assert!(text.contains("95% CI(median)"));
        assert_eq!(f.dataset().len(), 1);
    }
}
