//! Raw-data collection and CSV export.
//!
//! LibSciBench's "low-overhead data collection mechanism produces datasets
//! that can be read directly with established statistical tools such as
//! GNU R". [`DataSet`] is that mechanism: a named column store of f64
//! measurements plus string metadata, serialized to plain CSV that R,
//! pandas or gnuplot ingest directly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// A column-oriented measurement dataset.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DataSet {
    columns: Vec<String>,
    rows: Vec<Vec<f64>>,
    metadata: BTreeMap<String, String>,
}

impl DataSet {
    /// Creates an empty dataset with the given column names.
    ///
    /// # Panics
    /// Panics on an empty or duplicated column list.
    pub fn new(columns: &[&str]) -> Self {
        assert!(!columns.is_empty(), "a dataset needs at least one column");
        let mut seen = std::collections::BTreeSet::new();
        for c in columns {
            assert!(seen.insert(*c), "duplicate column {c}");
        }
        Self {
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            metadata: BTreeMap::new(),
        }
    }

    /// Attaches a metadata key (emitted as `# key: value` CSV comments —
    /// the place for Rule 9 environment descriptions).
    pub fn with_metadata(mut self, key: &str, value: &str) -> Self {
        self.metadata.insert(key.to_owned(), value.to_owned());
        self
    }

    /// Appends a row; length must match the column count.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row.to_vec());
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Extracts one column by name.
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.columns.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|r| r[idx]).collect())
    }

    /// Serializes to CSV with `# key: value` metadata header comments.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.metadata {
            let _ = writeln!(out, "# {k}: {v}");
        }
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }

    /// Parses a CSV produced by [`DataSet::to_csv`].
    ///
    /// Returns `None` on malformed input (wrong arity, non-numeric cell).
    pub fn from_csv(text: &str) -> Option<Self> {
        let mut metadata = BTreeMap::new();
        let mut lines = text.lines().peekable();
        while let Some(line) = lines.peek() {
            if let Some(rest) = line.strip_prefix('#') {
                if let Some((k, v)) = rest.split_once(':') {
                    metadata.insert(k.trim().to_owned(), v.trim().to_owned());
                }
                lines.next();
            } else {
                break;
            }
        }
        let header = lines.next()?;
        let columns: Vec<String> = header.split(',').map(|s| s.trim().to_owned()).collect();
        if columns.is_empty() || columns.iter().any(String::is_empty) {
            return None;
        }
        let mut rows = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let cells: Vec<&str> = line.split(',').collect();
            if cells.len() != columns.len() {
                return None;
            }
            let row: Option<Vec<f64>> = cells.iter().map(|c| c.trim().parse().ok()).collect();
            rows.push(row?);
        }
        Some(Self {
            columns,
            rows,
            metadata,
        })
    }

    /// Metadata accessor.
    pub fn metadata(&self, key: &str) -> Option<&str> {
        self.metadata.get(key).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_extract_columns() {
        let mut d = DataSet::new(&["p", "time_us"]);
        d.push_row(&[2.0, 5.1]);
        d.push_row(&[4.0, 7.3]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.column("p").unwrap(), vec![2.0, 4.0]);
        assert_eq!(d.column("time_us").unwrap(), vec![5.1, 7.3]);
        assert!(d.column("nope").is_none());
    }

    #[test]
    fn csv_round_trip_with_metadata() {
        let mut d = DataSet::new(&["x", "y"]).with_metadata("system", "Piz Dora");
        d.push_row(&[1.0, 2.5]);
        d.push_row(&[2.0, -3.125]);
        let csv = d.to_csv();
        assert!(csv.starts_with("# system: Piz Dora\n"));
        let back = DataSet::from_csv(&csv).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.metadata("system"), Some("Piz Dora"));
    }

    #[test]
    fn from_csv_rejects_malformed() {
        assert!(DataSet::from_csv("").is_none());
        assert!(DataSet::from_csv("a,b\n1,2,3\n").is_none());
        assert!(DataSet::from_csv("a,b\n1,two\n").is_none());
    }

    #[test]
    fn empty_dataset() {
        let d = DataSet::new(&["only"]);
        assert!(d.is_empty());
        let csv = d.to_csv();
        assert_eq!(csv, "only\n");
        assert_eq!(DataSet::from_csv(&csv).unwrap(), d);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn wrong_arity_panics() {
        DataSet::new(&["a", "b"]).push_row(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_panic() {
        DataSet::new(&["a", "a"]);
    }
}
