//! Batch-system node allocation policies.
//!
//! §4.1.2: "batch system allocation policies (e.g., packed or scattered
//! node layout) can play an important role for performance and need to be
//! mentioned", and for the Figure 1 HPL runs "we chose different
//! allocations for each experiment; all other experiments were repeated in
//! the same allocation. Allocated nodes were chosen by the batch system."

use serde::{Deserialize, Serialize};

use crate::machine::MachineSpec;
use crate::rng::SimRng;

/// How the batch system places a job's processes onto nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocationPolicy {
    /// Contiguous node ids starting at 0 (densest possible packing:
    /// minimizes hop distances).
    Packed,
    /// Nodes spread with a fixed stride (maximizes distances, models a
    /// fragmented machine).
    Scattered {
        /// Node-id stride between consecutive processes.
        stride: usize,
    },
    /// Uniformly random distinct nodes — what a busy batch system hands
    /// out in practice.
    Random,
}

/// A concrete job placement: `node_of[rank]` is the node of each process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// Node id hosting each rank.
    pub node_of: Vec<usize>,
    /// The policy that produced this allocation.
    pub policy: AllocationPolicy,
}

impl Allocation {
    /// Allocates one node per rank for `p` ranks on `machine`.
    ///
    /// Panics if the machine has fewer nodes than ranks.
    pub fn one_rank_per_node(
        machine: &MachineSpec,
        p: usize,
        policy: AllocationPolicy,
        rng: &mut SimRng,
    ) -> Self {
        assert!(
            p <= machine.nodes,
            "cannot place {p} ranks on {} nodes one-per-node",
            machine.nodes
        );
        let node_of = match policy {
            AllocationPolicy::Packed => (0..p).collect(),
            AllocationPolicy::Scattered { stride } => {
                let stride = stride.max(1);
                (0..p).map(|r| (r * stride) % machine.nodes).collect()
            }
            AllocationPolicy::Random => {
                let mut nodes: Vec<usize> = (0..machine.nodes).collect();
                rng.shuffle(&mut nodes);
                nodes.truncate(p);
                nodes
            }
        };
        Self { node_of, policy }
    }

    /// Number of ranks in the job.
    pub fn ranks(&self) -> usize {
        self.node_of.len()
    }

    /// Mean topology hop count over all distinct rank pairs — a scalar
    /// "how spread out is this allocation" metric.
    pub fn mean_pairwise_hops(&self, machine: &MachineSpec) -> f64 {
        let p = self.node_of.len();
        if p < 2 {
            return 0.0;
        }
        let mut total = 0usize;
        let mut pairs = 0usize;
        for i in 0..p {
            for j in i + 1..p {
                total += machine
                    .network
                    .topology
                    .hops(self.node_of[i], self.node_of[j]);
                pairs += 1;
            }
        }
        total as f64 / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_is_contiguous() {
        let m = MachineSpec::piz_daint();
        let mut rng = SimRng::new(1);
        let a = Allocation::one_rank_per_node(&m, 8, AllocationPolicy::Packed, &mut rng);
        assert_eq!(a.node_of, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(a.ranks(), 8);
    }

    #[test]
    fn scattered_uses_stride() {
        let m = MachineSpec::piz_daint();
        let mut rng = SimRng::new(1);
        let a = Allocation::one_rank_per_node(
            &m,
            4,
            AllocationPolicy::Scattered { stride: 64 },
            &mut rng,
        );
        assert_eq!(a.node_of, vec![0, 64, 128, 192]);
    }

    #[test]
    fn random_nodes_are_distinct() {
        let m = MachineSpec::piz_daint();
        let mut rng = SimRng::new(2);
        let a = Allocation::one_rank_per_node(&m, 64, AllocationPolicy::Random, &mut rng);
        let mut sorted = a.node_of.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64);
        assert!(sorted.iter().all(|&n| n < m.nodes));
    }

    #[test]
    fn random_is_seed_deterministic() {
        let m = MachineSpec::piz_daint();
        let a =
            Allocation::one_rank_per_node(&m, 16, AllocationPolicy::Random, &mut SimRng::new(5));
        let b =
            Allocation::one_rank_per_node(&m, 16, AllocationPolicy::Random, &mut SimRng::new(5));
        assert_eq!(a, b);
    }

    #[test]
    fn packed_has_fewer_hops_than_scattered() {
        let m = MachineSpec::piz_daint();
        let mut rng = SimRng::new(3);
        let packed = Allocation::one_rank_per_node(&m, 16, AllocationPolicy::Packed, &mut rng);
        let scattered = Allocation::one_rank_per_node(
            &m,
            16,
            AllocationPolicy::Scattered { stride: 64 },
            &mut rng,
        );
        assert!(
            packed.mean_pairwise_hops(&m) < scattered.mean_pairwise_hops(&m),
            "{} vs {}",
            packed.mean_pairwise_hops(&m),
            scattered.mean_pairwise_hops(&m)
        );
    }

    #[test]
    fn single_rank_has_no_pairs() {
        let m = MachineSpec::test_machine(4);
        let mut rng = SimRng::new(1);
        let a = Allocation::one_rank_per_node(&m, 1, AllocationPolicy::Packed, &mut rng);
        assert_eq!(a.mean_pairwise_hops(&m), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn oversubscription_panics() {
        let m = MachineSpec::test_machine(2);
        let mut rng = SimRng::new(1);
        Allocation::one_rank_per_node(&m, 3, AllocationPolicy::Packed, &mut rng);
    }
}
