//! Performance suite for the statistical kernels: bootstrap CIs (legacy
//! resample-and-sort versus the order-statistic rank device), chunked
//! mean bootstrap, quantile regression, and the sort-once sample cache.
//!
//! The `legacy_*` benchmarks reimplement the pre-optimization algorithms
//! locally so a single binary can report honest old-versus-new pairs;
//! `bench_baseline` (in `scibench-bench`) uses the same pairing to emit
//! the committed `BENCH_stats.json`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use scibench_stats::bootstrap::{bootstrap_ci, bootstrap_median_ci, mix_seed, BootstrapConfig};
use scibench_stats::quantile::{quantile, QuantileMethod};
use scibench_stats::quantreg;
use scibench_stats::sorted::SortedSamples;

fn skewed_sample(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(1e-12..1.0 - 1e-12);
            1.0 + 0.25 * (-u.ln())
        })
        .collect()
}

/// The pre-optimization median bootstrap: every replicate resamples the
/// full vector and sorts it to extract the median — `O(reps · n log n)`.
fn legacy_median_bootstrap(xs: &[f64], confidence: f64, reps: usize, seed: u64) -> (f64, f64) {
    let n = xs.len();
    let mut stats = Vec::with_capacity(reps);
    let mut resample = vec![0.0f64; n];
    for rep in 0..reps {
        let mut rng = StdRng::seed_from_u64(mix_seed(seed, rep as u64));
        for slot in resample.iter_mut() {
            *slot = xs[rng.gen_range(0..n)];
        }
        resample.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mid = n / 2;
        let median = if n.is_multiple_of(2) {
            0.5 * (resample[mid - 1] + resample[mid])
        } else {
            resample[mid]
        };
        stats.push(median);
    }
    stats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let alpha = 1.0 - confidence;
    let lo = ((alpha / 2.0) * reps as f64) as usize;
    let hi = (((1.0 - alpha / 2.0) * reps as f64) as usize).min(reps - 1);
    (stats[lo], stats[hi])
}

fn bench_bootstrap(c: &mut Criterion) {
    let xs = skewed_sample(1_000, 11);
    let sorted = SortedSamples::new(&xs).unwrap();
    let mut group = c.benchmark_group("bootstrap");
    group.bench_function(BenchmarkId::new("median_ci_rank_device", "10k_reps"), |b| {
        b.iter(|| bootstrap_median_ci(black_box(&sorted), 0.95, 10_000, 42).unwrap())
    });
    group.bench_function(
        BenchmarkId::new("median_ci_legacy_resample_sort", "10k_reps"),
        |b| b.iter(|| legacy_median_bootstrap(black_box(&xs), 0.95, 10_000, 42)),
    );
    group.bench_function(BenchmarkId::new("mean_ci_chunked", "10k_reps"), |b| {
        b.iter(|| {
            bootstrap_ci(black_box(&xs), 0.95, 10_000, 42, |r| {
                r.iter().sum::<f64>() / r.len() as f64
            })
            .unwrap()
        })
    });
    group.bench_function(
        BenchmarkId::new("mean_ci_chunked_2threads", "10k_reps"),
        |b| {
            let config = BootstrapConfig::new(10_000, 42).threads(2);
            b.iter(|| {
                scibench_stats::bootstrap::bootstrap_ci_with(black_box(&xs), 0.95, &config, |r| {
                    r.iter().sum::<f64>() / r.len() as f64
                })
                .unwrap()
            })
        },
    );
    group.finish();
}

fn bench_quantreg(c: &mut Criterion) {
    let base = skewed_sample(2_000, 3);
    let other = skewed_sample(2_000, 4);
    c.bench_function("quantreg/two_sample_3taus_200reps", |b| {
        b.iter(|| {
            quantreg::two_sample(
                black_box(&base),
                black_box(&other),
                &[0.25, 0.5, 0.75],
                0.95,
                200,
                7,
            )
            .unwrap()
        })
    });
}

fn bench_sorted_cache(c: &mut Criterion) {
    let xs = skewed_sample(100_000, 5);
    let mut group = c.benchmark_group("sorted_cache");
    group.bench_function("resort_per_query_4_quantiles", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in [0.25, 0.5, 0.75, 0.9] {
                acc += quantile(black_box(&xs), p, QuantileMethod::Interpolated).unwrap();
            }
            acc
        })
    });
    group.bench_function("sort_once_4_quantiles", |b| {
        b.iter(|| {
            let sorted = SortedSamples::new(black_box(&xs)).unwrap();
            let mut acc = 0.0;
            for p in [0.25, 0.5, 0.75, 0.9] {
                acc += sorted.quantile(p, QuantileMethod::Interpolated).unwrap();
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bootstrap, bench_quantreg, bench_sorted_cache);
criterion_main!(benches);
