//! Low-overhead event tracing and harness self-accounting.
//!
//! The third pillar of LibSciBench (Hoefler & Belli, SC '15) is data
//! collection that does not perturb the experiment it measures. This
//! crate provides it for the workspace:
//!
//! - [`tracer::Tracer`] / [`tracer::LocalTracer`]: per-worker, lock-free
//!   append-only event buffers (spans, instants, counters), merged
//!   post-run into a [`trace::Trace`]. Zero-cost when disabled — every
//!   recording call is one branch.
//! - [`export`]: JSONL and chrome://tracing JSON exporters (hand-rolled,
//!   no JSON dependency, workspace convention).
//! - [`json`]: a minimal JSON parser and trace schema validators, so CI
//!   can check emitted traces without external tooling.
//! - [`overhead`]: self-accounting — measures the tracer's own timer and
//!   record costs and reports them against the traced payload, the
//!   Rule 4/5 disclosure the paper asks for.
//!
//! Tracing never touches RNG state or sample values, so a traced run is
//! bit-identical to an untraced one; see [`tracer`] for the determinism
//! argument and [`event::category`] for which event streams are
//! schedule-dependent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod export;
pub mod json;
pub mod overhead;
pub mod trace;
pub mod tracer;

pub use event::{category, is_schedule_dependent, ArgValue, EventKind, EventName, TraceEvent};
pub use export::{to_chrome_json, to_jsonl, write_chrome_json, write_jsonl};
pub use json::{parse as parse_json, validate_chrome_trace, validate_jsonl, JsonValue};
pub use overhead::{OverheadProbe, OverheadReport};
pub use trace::Trace;
pub use tracer::{lane_of, LocalTracer, SpanStart, Tracer};
