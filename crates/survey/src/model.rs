//! Data model of the literature survey.

use serde::{Deserialize, Serialize};

/// The three anonymized conferences of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Conference {
    /// "ConfA".
    A,
    /// "ConfB".
    B,
    /// "ConfC".
    C,
}

impl Conference {
    /// All conferences.
    pub const ALL: [Conference; 3] = [Conference::A, Conference::B, Conference::C];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Conference::A => "ConfA",
            Conference::B => "ConfB",
            Conference::C => "ConfC",
        }
    }
}

/// Years covered by the survey.
pub const YEARS: [u16; 4] = [2011, 2012, 2013, 2014];

/// The nine experimental-design documentation classes (upper block of
/// Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignCriterion {
    /// Processor model / accelerator.
    Processor,
    /// RAM size / type / bus.
    Memory,
    /// NIC model / network.
    Network,
    /// Compiler version / flags.
    Compiler,
    /// Kernel / libraries version.
    Runtime,
    /// Filesystem / storage.
    Filesystem,
    /// Software and input.
    Input,
    /// Measurement setup.
    MeasurementSetup,
    /// Code available online.
    CodeAvailability,
}

impl DesignCriterion {
    /// All nine criteria in Table 1 row order.
    pub const ALL: [DesignCriterion; 9] = [
        DesignCriterion::Processor,
        DesignCriterion::Memory,
        DesignCriterion::Network,
        DesignCriterion::Compiler,
        DesignCriterion::Runtime,
        DesignCriterion::Filesystem,
        DesignCriterion::Input,
        DesignCriterion::MeasurementSetup,
        DesignCriterion::CodeAvailability,
    ];

    /// Table 1 row label.
    pub fn label(&self) -> &'static str {
        match self {
            DesignCriterion::Processor => "Processor Model / Accelerator",
            DesignCriterion::Memory => "RAM Size / Type / Bus Infos",
            DesignCriterion::Network => "NIC Model / Network Infos",
            DesignCriterion::Compiler => "Compiler Version / Flags",
            DesignCriterion::Runtime => "Kernel / Libraries Version",
            DesignCriterion::Filesystem => "Filesystem / Storage",
            DesignCriterion::Input => "Software and Input",
            DesignCriterion::MeasurementSetup => "Measurement Setup",
            DesignCriterion::CodeAvailability => "Code Available Online",
        }
    }

    /// The count of satisfying papers published in Table 1 (out of 95
    /// applicable).
    pub fn published_count(&self) -> usize {
        match self {
            DesignCriterion::Processor => 79,
            DesignCriterion::Memory => 26,
            DesignCriterion::Network => 60,
            DesignCriterion::Compiler => 35,
            DesignCriterion::Runtime => 20,
            DesignCriterion::Filesystem => 12,
            DesignCriterion::Input => 48,
            DesignCriterion::MeasurementSetup => 30,
            DesignCriterion::CodeAvailability => 7,
        }
    }
}

/// The four data-analysis rows (lower block of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnalysisCriterion {
    /// Uses a mean to summarize results.
    Mean,
    /// Reports best / worst performance.
    BestWorst,
    /// Uses rank-based statistics (median, percentiles).
    RankBased,
    /// Reports a measure of variation.
    Variation,
}

impl AnalysisCriterion {
    /// All four criteria in Table 1 row order.
    pub const ALL: [AnalysisCriterion; 4] = [
        AnalysisCriterion::Mean,
        AnalysisCriterion::BestWorst,
        AnalysisCriterion::RankBased,
        AnalysisCriterion::Variation,
    ];

    /// Table 1 row label.
    pub fn label(&self) -> &'static str {
        match self {
            AnalysisCriterion::Mean => "Mean",
            AnalysisCriterion::BestWorst => "Best / Worst Performance",
            AnalysisCriterion::RankBased => "Rank Based Statistics",
            AnalysisCriterion::Variation => "Measure of Variation",
        }
    }

    /// The count published in Table 1 (out of 95 applicable).
    pub fn published_count(&self) -> usize {
        match self {
            AnalysisCriterion::Mean => 51,
            AnalysisCriterion::BestWorst => 13,
            AnalysisCriterion::RankBased => 9,
            AnalysisCriterion::Variation => 17,
        }
    }
}

/// Grade of one paper on one criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Grade {
    /// The paper satisfies the criterion (✓ in Table 1).
    Satisfied,
    /// The paper does not satisfy the criterion (blank in Table 1).
    Unsatisfied,
    /// The paper is not applicable (· in Table 1).
    NotApplicable,
}

/// One surveyed paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperRecord {
    /// Conference the paper appeared at.
    pub conference: Conference,
    /// Publication year.
    pub year: u16,
    /// Index within its conference-year group (0..10).
    pub index: usize,
    /// Whether the paper reports real-world performance numbers at all.
    pub applicable: bool,
    /// Grades on the nine design criteria (order of
    /// [`DesignCriterion::ALL`]).
    pub design: [Grade; 9],
    /// Grades on the four analysis criteria (order of
    /// [`AnalysisCriterion::ALL`]).
    pub analysis: [Grade; 4],
    /// Whether the paper reports speedups (§2.1.1: 39 papers do).
    pub reports_speedup: bool,
    /// Whether a reported speedup includes the absolute base-case
    /// performance (§2.1.1: 15 of the 39 do not).
    pub speedup_base_given: bool,
    /// Whether all units in the paper are unambiguous (§2.1.2: only 2 of
    /// 95).
    pub units_unambiguous: bool,
}

impl PaperRecord {
    /// The paper's design-documentation score: number of satisfied design
    /// criteria, 0..=9 (what Table 1's box plots aggregate).
    pub fn design_score(&self) -> usize {
        self.design
            .iter()
            .filter(|g| matches!(g, Grade::Satisfied))
            .count()
    }

    /// Grade on one design criterion.
    pub fn design_grade(&self, c: DesignCriterion) -> Grade {
        let idx = DesignCriterion::ALL
            .iter()
            .position(|&x| x == c)
            .expect("valid criterion");
        self.design[idx]
    }

    /// Grade on one analysis criterion.
    pub fn analysis_grade(&self, c: AnalysisCriterion) -> Grade {
        let idx = AnalysisCriterion::ALL
            .iter()
            .position(|&x| x == c)
            .expect("valid criterion");
        self.analysis[idx]
    }
}

/// The full survey: a set of paper records with aggregate queries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Survey {
    /// All surveyed papers.
    pub papers: Vec<PaperRecord>,
}

impl Survey {
    /// Number of papers.
    pub fn len(&self) -> usize {
        self.papers.len()
    }

    /// Whether the survey is empty.
    pub fn is_empty(&self) -> bool {
        self.papers.is_empty()
    }

    /// Applicable papers (those reporting real performance numbers).
    pub fn applicable(&self) -> impl Iterator<Item = &PaperRecord> {
        self.papers.iter().filter(|p| p.applicable)
    }

    /// Count of applicable papers satisfying a design criterion.
    pub fn design_count(&self, c: DesignCriterion) -> usize {
        self.applicable()
            .filter(|p| p.design_grade(c) == Grade::Satisfied)
            .count()
    }

    /// Count of applicable papers satisfying an analysis criterion.
    pub fn analysis_count(&self, c: AnalysisCriterion) -> usize {
        self.applicable()
            .filter(|p| p.analysis_grade(c) == Grade::Satisfied)
            .count()
    }

    /// The papers of one conference-year group.
    pub fn group(&self, conf: Conference, year: u16) -> Vec<&PaperRecord> {
        self.papers
            .iter()
            .filter(|p| p.conference == conf && p.year == year)
            .collect()
    }

    /// §2.1.1 statistics: (papers reporting speedup, of which without the
    /// absolute base case).
    pub fn speedup_stats(&self) -> (usize, usize) {
        let with = self.applicable().filter(|p| p.reports_speedup).count();
        let missing_base = self
            .applicable()
            .filter(|p| p.reports_speedup && !p.speedup_base_given)
            .count();
        (with, missing_base)
    }

    /// §2.1.2 statistic: applicable papers with fully unambiguous units.
    pub fn unambiguous_units_count(&self) -> usize {
        self.applicable().filter(|p| p.units_unambiguous).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank_paper() -> PaperRecord {
        PaperRecord {
            conference: Conference::A,
            year: 2011,
            index: 0,
            applicable: true,
            design: [Grade::Unsatisfied; 9],
            analysis: [Grade::Unsatisfied; 4],
            reports_speedup: false,
            speedup_base_given: false,
            units_unambiguous: false,
        }
    }

    #[test]
    fn design_score_counts_satisfied() {
        let mut p = blank_paper();
        assert_eq!(p.design_score(), 0);
        p.design[0] = Grade::Satisfied;
        p.design[8] = Grade::Satisfied;
        assert_eq!(p.design_score(), 2);
        p.design[1] = Grade::NotApplicable;
        assert_eq!(p.design_score(), 2);
    }

    #[test]
    fn grade_lookup_by_criterion() {
        let mut p = blank_paper();
        p.design[2] = Grade::Satisfied;
        assert_eq!(p.design_grade(DesignCriterion::Network), Grade::Satisfied);
        assert_eq!(
            p.design_grade(DesignCriterion::Processor),
            Grade::Unsatisfied
        );
        p.analysis[3] = Grade::Satisfied;
        assert_eq!(
            p.analysis_grade(AnalysisCriterion::Variation),
            Grade::Satisfied
        );
    }

    #[test]
    fn survey_counts_skip_non_applicable() {
        let mut a = blank_paper();
        a.design[0] = Grade::Satisfied;
        let mut b = blank_paper();
        b.applicable = false;
        b.design[0] = Grade::Satisfied; // must not count
        let s = Survey { papers: vec![a, b] };
        assert_eq!(s.design_count(DesignCriterion::Processor), 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.applicable().count(), 1);
    }

    #[test]
    fn group_filter() {
        let mut a = blank_paper();
        a.year = 2012;
        let mut b = blank_paper();
        b.conference = Conference::B;
        b.year = 2012;
        let s = Survey { papers: vec![a, b] };
        assert_eq!(s.group(Conference::A, 2012).len(), 1);
        assert_eq!(s.group(Conference::B, 2012).len(), 1);
        assert_eq!(s.group(Conference::C, 2012).len(), 0);
    }

    #[test]
    fn speedup_and_unit_stats() {
        let mut a = blank_paper();
        a.reports_speedup = true;
        a.speedup_base_given = true;
        let mut b = blank_paper();
        b.reports_speedup = true;
        let mut c = blank_paper();
        c.units_unambiguous = true;
        let s = Survey {
            papers: vec![a, b, c],
        };
        assert_eq!(s.speedup_stats(), (2, 1));
        assert_eq!(s.unambiguous_units_count(), 1);
    }

    #[test]
    fn published_counts_match_paper_text() {
        // The headline numbers quoted in the prose.
        assert_eq!(DesignCriterion::Processor.published_count(), 79);
        assert_eq!(DesignCriterion::CodeAvailability.published_count(), 7);
        assert_eq!(AnalysisCriterion::Mean.published_count(), 51);
        assert_eq!(AnalysisCriterion::Variation.published_count(), 17);
    }

    #[test]
    fn labels_nonempty() {
        for c in DesignCriterion::ALL {
            assert!(!c.label().is_empty());
        }
        for c in AnalysisCriterion::ALL {
            assert!(!c.label().is_empty());
        }
        assert_eq!(Conference::A.label(), "ConfA");
    }
}
