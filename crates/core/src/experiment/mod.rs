//! Experimental design (§4 of the paper).
//!
//! - [`design`]: factors, levels, full factorial designs and randomized
//!   run orders (§4 "We recommend factorial design", §4.1.1
//!   randomization);
//! - [`environment`]: machine/software/configuration documentation — the
//!   nine Table 1 experimental-design classes as a checklist (Rule 9);
//! - [`measurement`]: the measurement loop with warmup exclusion, fixed
//!   or adaptive (CI-driven) stopping (§4.2.2), and Rule 5/6-compliant
//!   summaries;
//! - [`adaptive`]: SKaMPI-style adaptive level refinement (§4.2);
//! - [`campaign`]: deterministic (optionally thread-parallel) execution
//!   of a whole design through a measurement plan;
//! - [`resilience`]: the same execution with retry, timeout and
//!   graceful degradation instead of first-error abort — for faulty
//!   machines and fault-injected simulations;
//! - [`journal`]: a crash-consistent, CRC-framed write-ahead log of
//!   per-point results with content-addressed keys, so interrupted
//!   campaigns resume bit-identically instead of restarting;
//! - [`stream`]: bounded-memory campaign execution — samples fold into
//!   mergeable sketches (`scibench_stats::sketch`) instead of O(n)
//!   vectors, with bit-identical cross-thread/cross-shard merges;
//! - [`scaling`]: strong/weak scaling declarations with explicit scaling
//!   functions (§4.2).

pub mod adaptive;
pub mod campaign;
pub mod design;
pub mod environment;
pub mod journal;
pub mod measurement;
pub mod resilience;
pub mod scaling;
pub mod stream;

pub use adaptive::{refine_levels, Refinement, RefinementConfig};
pub use campaign::{run_campaign, CampaignConfig, CampaignResult, CampaignRun};
pub use design::{Design, Factor, RunPoint};
pub use environment::{DocumentationClass, EnvironmentDoc};
pub use journal::{
    result_digest, Journal, JournalError, JournalKey, JournalMeta, JournalSnapshot, JournalSpec,
    PointRecord,
};
pub use measurement::{MeasurementOutcome, MeasurementPlan, MeasurementSummary, StoppingRule};
pub use resilience::{
    run_campaign_resilient, run_campaign_resilient_journaled,
    run_campaign_resilient_journaled_subset, CampaignError, CampaignHealth, JournaledCampaign,
    MeasureFailure, PointFate, ResilientCampaignResult, ResilientRun, ResumeStats, RetryPolicy,
};
pub use stream::{
    merge_stream_shards, run_campaign_stream, run_campaign_stream_journaled_subset,
    run_campaign_stream_subset, run_stream, StreamCampaign, StreamOutcome, StreamResume, StreamRun,
};
