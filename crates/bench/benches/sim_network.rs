//! Criterion benches of the simulated HPC substrate: message-cost
//! evaluation, ping-pong sample generation throughput, and collectives at
//! several scales.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scibench_sim::alloc::{Allocation, AllocationPolicy};
use scibench_sim::collectives::{barrier, broadcast, reduce};
use scibench_sim::compile::{CompiledSchedule, ReplayCtx};
use scibench_sim::machine::MachineSpec;
use scibench_sim::network::NetworkModel;
use scibench_sim::pingpong::{pingpong_latencies_ns, PingPongConfig};
use scibench_sim::rng::SimRng;

fn bench_pt2pt(c: &mut Criterion) {
    let machine = MachineSpec::piz_dora();
    let net = NetworkModel::new(&machine);
    let mut rng = SimRng::new(1);
    c.bench_function("pt2pt_noisy_64B", |b| {
        b.iter(|| net.transfer_ns(black_box(0), black_box(18), 64, &mut rng))
    });
}

fn bench_pingpong_generation(c: &mut Criterion) {
    let machine = MachineSpec::piz_dora();
    let mut g = c.benchmark_group("pingpong_samples");
    g.sample_size(20);
    for n in [1_000usize, 100_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut cfg = PingPongConfig::paper_64b(n);
            cfg.warmup_iterations = 0;
            let mut rng = SimRng::new(2);
            b.iter(|| pingpong_latencies_ns(&machine, &cfg, &mut rng))
        });
    }
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let machine = MachineSpec::piz_daint();
    let mut g = c.benchmark_group("collectives");
    for p in [8usize, 64, 512] {
        let mut rng = SimRng::new(p as u64);
        let alloc = Allocation::one_rank_per_node(&machine, p, AllocationPolicy::Random, &mut rng);
        g.bench_with_input(BenchmarkId::new("reduce", p), &p, |b, _| {
            b.iter(|| reduce(&machine, black_box(&alloc), 8, &mut rng))
        });
        g.bench_with_input(BenchmarkId::new("broadcast", p), &p, |b, _| {
            b.iter(|| broadcast(&machine, black_box(&alloc), 8, &mut rng))
        });
        g.bench_with_input(BenchmarkId::new("barrier", p), &p, |b, _| {
            b.iter(|| barrier(&machine, black_box(&alloc), &mut rng))
        });
    }
    g.finish();
}

/// Interpreted vs compiled replay of the same reduce, head to head. The
/// schedule is compiled and the arena allocated outside `b.iter`, so the
/// compiled arm measures exactly the steady-state replay cost the figure
/// pipelines pay per sample.
fn bench_reduce_replay(c: &mut Criterion) {
    let machine = MachineSpec::piz_daint();
    let mut g = c.benchmark_group("reduce_replay");
    for p in [32usize, 64, 128] {
        let mut setup = SimRng::new(p as u64);
        let alloc =
            Allocation::one_rank_per_node(&machine, p, AllocationPolicy::Random, &mut setup);

        g.bench_with_input(BenchmarkId::new("interpreted", p), &p, |b, _| {
            let mut rng = SimRng::new(42);
            b.iter(|| reduce(&machine, black_box(&alloc), 8, &mut rng))
        });

        let schedule = CompiledSchedule::compile_reduce(&machine, &alloc, 8);
        let mut ctx = ReplayCtx::with_capacity(p);
        g.bench_with_input(BenchmarkId::new("compiled", p), &p, |b, _| {
            let mut rng = SimRng::new(42);
            b.iter(|| {
                let done = schedule.replay_into(&mut ctx, &mut rng);
                black_box(done[0])
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_pt2pt,
    bench_pingpong_generation,
    bench_collectives,
    bench_reduce_replay
);
criterion_main!(benches);
