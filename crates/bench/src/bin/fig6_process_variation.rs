//! Regenerates Figure 6: per-process variation of MPI_Reduce on 64 ranks.

use scibench_bench::figures::fig6_variation;
use scibench_bench::{output, samples_from_env, DEFAULT_SEED};

fn main() {
    let runs = samples_from_env(1_000);
    let fig = fig6_variation::compute(64, runs, DEFAULT_SEED).expect("figure 6 pipeline");
    println!("{}", fig.render());
    let path = output::write_csv("fig6_variation", &fig.dataset()).expect("write csv");
    println!("per-rank boxes: {}", path.display());
}
