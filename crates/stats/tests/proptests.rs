//! Property-based tests of the statistical invariants that Rules 3–8
//! lean on. Strategies draw arbitrary finite samples; every property must
//! hold for *all* of them, not just the unit-test fixtures.

use proptest::prelude::*;

use scibench_stats::bootstrap::{bootstrap_ci_with, bootstrap_quantile_ci, BootstrapConfig};
use scibench_stats::ci::{mean_ci, median_ci, quantile_ci_ranks};
use scibench_stats::dist::normal::{std_normal_cdf, std_normal_inv_cdf};
use scibench_stats::dist::{ChiSquared, ContinuousDistribution, FisherF, StudentT};
use scibench_stats::histogram::{histogram, BinRule};
use scibench_stats::kde::{kde, Bandwidth};
use scibench_stats::normality::{batch_means, shapiro_wilk};
use scibench_stats::outlier::tukey_filter;
use scibench_stats::quantile::{quantile, FiveNumberSummary, QuantileMethod};
use scibench_stats::quantreg::check_loss;
use scibench_stats::rank::average_ranks;
use scibench_stats::sorted::SortedSamples;
use scibench_stats::summary::{
    arithmetic_mean, geometric_mean, harmonic_mean, sample_std_dev, OnlineMoments,
};

/// A modest positive sample.
fn positive_samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.001f64..1e6, 2..200)
}

/// Any finite sample (possibly negative).
fn finite_samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 2..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mean_inequality_chain(xs in positive_samples()) {
        // Rule 3/4 backbone: HM <= GM <= AM for positive data.
        let am = arithmetic_mean(&xs).unwrap();
        let gm = geometric_mean(&xs).unwrap();
        let hm = harmonic_mean(&xs).unwrap();
        prop_assert!(hm <= gm * (1.0 + 1e-9));
        prop_assert!(gm <= am * (1.0 + 1e-9));
    }

    #[test]
    fn means_are_scale_equivariant(xs in positive_samples(), c in 0.01f64..100.0) {
        let scaled: Vec<f64> = xs.iter().map(|x| x * c).collect();
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);
        prop_assert!(rel(arithmetic_mean(&scaled).unwrap(), c * arithmetic_mean(&xs).unwrap()) < 1e-9);
        prop_assert!(rel(harmonic_mean(&scaled).unwrap(), c * harmonic_mean(&xs).unwrap()) < 1e-9);
        prop_assert!(rel(geometric_mean(&scaled).unwrap(), c * geometric_mean(&xs).unwrap()) < 1e-9);
    }

    #[test]
    fn mean_bounded_by_extremes(xs in finite_samples()) {
        let m = arithmetic_mean(&xs).unwrap();
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(min - 1e-9 <= m && m <= max + 1e-9);
    }

    #[test]
    fn welford_matches_two_pass(xs in finite_samples()) {
        let online: OnlineMoments = xs.iter().copied().collect();
        let mean = arithmetic_mean(&xs).unwrap();
        prop_assert!((online.mean().unwrap() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        if xs.len() >= 2 {
            let sd = sample_std_dev(&xs).unwrap();
            prop_assert!((online.std_dev().unwrap() - sd).abs() < 1e-6 * (1.0 + sd));
        }
        prop_assert_eq!(online.count() as usize, xs.len());
    }

    #[test]
    fn welford_merge_is_consistent(xs in finite_samples(), split in 0usize..200) {
        let k = split.min(xs.len());
        let mut left: OnlineMoments = xs[..k].iter().copied().collect();
        let right: OnlineMoments = xs[k..].iter().copied().collect();
        left.merge(&right);
        let whole: OnlineMoments = xs.iter().copied().collect();
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-6);
    }

    #[test]
    fn quantiles_monotone_and_bounded(xs in finite_samples(), a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for method in [QuantileMethod::Interpolated, QuantileMethod::NearestRank] {
            let qlo = quantile(&xs, lo, method).unwrap();
            let qhi = quantile(&xs, hi, method).unwrap();
            prop_assert!(qlo <= qhi + 1e-12);
            let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(min <= qlo && qhi <= max);
        }
    }

    #[test]
    fn five_number_summary_is_ordered(xs in finite_samples()) {
        let s = FiveNumberSummary::from_samples(&xs).unwrap();
        prop_assert!(s.min <= s.q1 && s.q1 <= s.median && s.median <= s.q3 && s.q3 <= s.max);
        prop_assert!(s.iqr() >= 0.0);
    }

    #[test]
    fn mean_ci_contains_mean_and_orders_by_confidence(xs in finite_samples()) {
        prop_assume!(xs.len() >= 3);
        let m = arithmetic_mean(&xs).unwrap();
        if let (Ok(c90), Ok(c99)) = (mean_ci(&xs, 0.90), mean_ci(&xs, 0.99)) {
            prop_assert!(c90.contains(m));
            prop_assert!(c99.contains(m));
            prop_assert!(c99.width() >= c90.width() - 1e-12);
        }
    }

    #[test]
    fn median_ci_brackets_the_median(xs in prop::collection::vec(-1e6f64..1e6, 10..300)) {
        let med = quantile(&xs, 0.5, QuantileMethod::Interpolated).unwrap();
        if let Ok(ci) = median_ci(&xs, 0.95) {
            prop_assert!(ci.lower <= med + 1e-12 && med <= ci.upper + 1e-12);
            // Bounds are observed order statistics.
            prop_assert!(xs.contains(&ci.lower));
            prop_assert!(xs.contains(&ci.upper));
        }
    }

    #[test]
    fn quantile_ci_ranks_are_valid(n in 10usize..5000, p in 0.05f64..0.95, conf in 0.80f64..0.99) {
        if let Ok(rb) = quantile_ci_ranks(n, p, conf) {
            prop_assert!(rb.lower >= 1);
            prop_assert!(rb.upper <= n);
            prop_assert!(rb.lower < rb.upper);
        }
    }

    #[test]
    fn tukey_filter_partitions(xs in finite_samples()) {
        let f = tukey_filter(&xs).unwrap();
        prop_assert_eq!(f.kept.len() + f.removed.len(), xs.len());
        for v in &f.kept {
            prop_assert!(f.fences.contains(*v));
        }
        for v in &f.removed {
            prop_assert!(!f.fences.contains(*v));
        }
    }

    #[test]
    fn histogram_conserves_observations(xs in finite_samples()) {
        for rule in [BinRule::Sturges, BinRule::FreedmanDiaconis, BinRule::Fixed(7)] {
            let h = histogram(&xs, rule).unwrap();
            prop_assert_eq!(h.counts.iter().sum::<u64>() as usize, xs.len());
        }
    }

    #[test]
    fn batch_means_preserve_mean_on_exact_multiples(
        blocks in 2usize..20,
        k in 1usize..10,
        base in -100.0f64..100.0,
    ) {
        let xs: Vec<f64> = (0..blocks * k).map(|i| base + (i % 7) as f64).collect();
        let b = batch_means(&xs, k).unwrap();
        prop_assert_eq!(b.len(), blocks);
        let m1 = arithmetic_mean(&xs).unwrap();
        let m2 = arithmetic_mean(&b).unwrap();
        prop_assert!((m1 - m2).abs() < 1e-9);
    }

    #[test]
    fn ranks_sum_invariant(xs in finite_samples()) {
        let r = average_ranks(&xs);
        let n = xs.len() as f64;
        let total: f64 = r.iter().sum();
        prop_assert!((total - n * (n + 1.0) / 2.0).abs() < 1e-6);
        prop_assert!(r.iter().all(|&v| v >= 1.0 && v <= n));
    }

    #[test]
    fn normal_cdf_inv_round_trip(p in 0.001f64..0.999) {
        let z = std_normal_inv_cdf(p);
        prop_assert!((std_normal_cdf(z) - p).abs() < 1e-9);
    }

    #[test]
    fn distribution_cdfs_are_monotone(x1 in -50.0f64..50.0, x2 in -50.0f64..50.0, df in 1.0f64..50.0) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let t = StudentT::new(df).unwrap();
        prop_assert!(t.cdf(lo) <= t.cdf(hi) + 1e-12);
        let c = ChiSquared::new(df).unwrap();
        prop_assert!(c.cdf(lo.abs()) <= c.cdf(hi.abs().max(lo.abs())) + 1e-12);
        let f = FisherF::new(df, df + 1.0).unwrap();
        prop_assert!(f.cdf(lo.abs()) <= f.cdf(hi.abs().max(lo.abs())) + 1e-12);
    }

    #[test]
    fn shapiro_wilk_outputs_in_range(xs in prop::collection::vec(-100.0f64..100.0, 3..500)) {
        // Skip constant samples (zero variance is a documented error).
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assume!(max > min);
        let sw = shapiro_wilk(&xs).unwrap();
        prop_assert!(sw.w > 0.0 && sw.w <= 1.0, "W = {}", sw.w);
        prop_assert!((0.0..=1.0).contains(&sw.p_value));
    }

    #[test]
    fn kde_density_is_nonnegative_and_normalized(xs in prop::collection::vec(-1e3f64..1e3, 5..300)) {
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assume!(max > min);
        let d = kde(&xs, Bandwidth::Silverman, 256).unwrap();
        prop_assert!(d.density.iter().all(|&v| v >= 0.0));
        prop_assert!((d.integral() - 1.0).abs() < 0.05, "integral {}", d.integral());
    }

    #[test]
    fn ecdf_is_a_distribution_function(xs in finite_samples(), probe in -1e6f64..1e6) {
        use scibench_stats::ecdf::Ecdf;
        let e = Ecdf::from_samples(&xs).unwrap();
        let v = e.eval(probe);
        prop_assert!((0.0..=1.0).contains(&v));
        // Monotone: F(probe) <= F(probe + delta).
        prop_assert!(v <= e.eval(probe + 1.0) + 1e-15);
        // Galois: F(inverse(p)) >= p.
        prop_assert!(e.eval(e.inverse(0.5)) >= 0.5 - 1e-12);
        // KS distance to itself is 0; to anything else within [0, 1].
        prop_assert_eq!(e.ks_distance(&e), 0.0);
    }

    #[test]
    fn ecdf_steps_are_in_bounds_monotone_at_adversarial_sizes(
        xs in prop::collection::vec(-1e6f64..1e6, 1..400),
        max_points in 1usize..50,
    ) {
        use scibench_stats::ecdf::Ecdf;
        // Boundary sweep for the float → usize thinning cast: every
        // returned step must be an observed order statistic with a
        // monotone plotting position, down to n, m ∈ {1, 2, 3}.
        let e = Ecdf::from_samples(&xs).unwrap();
        let steps = e.steps(max_points);
        prop_assert!(!steps.is_empty());
        prop_assert!(steps.len() <= max_points.max(2).min(xs.len()));
        for w in steps.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "x not monotone");
            prop_assert!(w[0].1 < w[1].1 + 1e-15, "F not monotone");
        }
        for (x, f) in &steps {
            prop_assert!(xs.contains(x), "step x {x} not an observation");
            prop_assert!((0.0..=1.0).contains(f));
        }
        prop_assert!((steps.last().unwrap().1 - 1.0).abs() < 1e-12, "last step must reach 1");
    }

    #[test]
    fn qq_thinning_stays_in_bounds_and_monotone(
        xs in prop::collection::vec(-1e6f64..1e6, 1..500),
        max_points in 2usize..40,
    ) {
        use scibench_stats::qq::qq_points;
        let qq = qq_points(&xs, max_points).unwrap();
        prop_assert!(qq.points.len() <= max_points.max(2));
        prop_assert!(!qq.points.is_empty());
        for w in qq.points.windows(2) {
            prop_assert!(w[0].theoretical <= w[1].theoretical);
            prop_assert!(w[0].sample <= w[1].sample, "sample quantiles not monotone");
        }
        for p in &qq.points {
            prop_assert!(xs.contains(&p.sample), "thinned sample {p:?} not an observation");
            prop_assert!(p.theoretical.is_finite());
        }
    }

    #[test]
    fn shapiro_wilk_thinned_never_indexes_out_of_bounds(
        xs in prop::collection::vec(-100.0f64..100.0, 3..800),
        max_n in 3usize..50,
    ) {
        use scibench_stats::normality::shapiro_wilk_thinned;
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assume!(max > min);
        // Must never panic; on success W stays in (0, 1].
        if let Ok(sw) = shapiro_wilk_thinned(&xs, max_n) {
            prop_assert!(sw.w > 0.0 && sw.w <= 1.0);
        }
    }

    #[test]
    fn kde_binned_edges_never_panic(
        xs in prop::collection::vec(-1e3f64..1e3, 2..40),
        grid in 2usize..64,
    ) {
        // Duplicate the sample to cross the binned threshold indirectly is
        // too slow; instead hammer `at` across and beyond the grid edges,
        // which exercises the clamped interpolation index.
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assume!(max > min);
        let d = kde(&xs, Bandwidth::Silverman, grid).unwrap();
        let lo = d.x[0];
        let hi = *d.x.last().unwrap();
        for probe in [lo, hi, lo - 1.0, hi + 1.0, (lo + hi) / 2.0,
                      f64::from_bits(hi.to_bits() - 1), f64::from_bits(lo.to_bits() + 1)] {
            let v = d.at(probe);
            prop_assert!(v >= 0.0 && v.is_finite());
        }
    }

    #[test]
    fn describe_is_internally_consistent(xs in positive_samples()) {
        use scibench_stats::describe::describe;
        let d = describe(&xs).unwrap();
        prop_assert_eq!(d.n, xs.len());
        // Mean chain for positive data.
        let gm = d.geometric_mean.unwrap();
        let hm = d.harmonic_mean.unwrap();
        prop_assert!(hm <= gm * (1.0 + 1e-9) && gm <= d.mean * (1.0 + 1e-9));
        // Mean within [min, max].
        prop_assert!(d.five_number.min - 1e-9 <= d.mean && d.mean <= d.five_number.max + 1e-9);
    }

    #[test]
    fn power_is_monotone_in_n_and_effect(
        n1 in 2usize..500,
        n2 in 2usize..500,
        d1 in 0.05f64..2.0,
        d2 in 0.05f64..2.0,
    ) {
        use scibench_stats::power::power_two_sample;
        let (n_lo, n_hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        let (d_lo, d_hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        // More samples -> more power (same effect).
        prop_assert!(
            power_two_sample(n_hi, d_lo, 0.05).unwrap()
                >= power_two_sample(n_lo, d_lo, 0.05).unwrap() - 1e-12
        );
        // Bigger effect -> more power (same n).
        prop_assert!(
            power_two_sample(n_lo, d_hi, 0.05).unwrap()
                >= power_two_sample(n_lo, d_lo, 0.05).unwrap() - 1e-12
        );
    }

    #[test]
    fn check_loss_is_minimized_at_group_quantiles(
        a in prop::collection::vec(0.0f64..100.0, 10..60),
        b in prop::collection::vec(0.0f64..100.0, 10..60),
        tau in 0.1f64..0.9,
        eps in 0.05f64..5.0,
    ) {
        // Exact two-sample QR solution: the nearest-rank quantile is a
        // minimizer of the check loss, so perturbing either coefficient
        // cannot decrease it. (The interpolated type-7 quantile is NOT a
        // minimizer in general — which is why the CI machinery uses order
        // statistics.)
        let qa = quantile(&a, tau, QuantileMethod::NearestRank).unwrap();
        let qb = quantile(&b, tau, QuantileMethod::NearestRank).unwrap();
        let mut x = Vec::new();
        let mut y = Vec::new();
        for &v in &a { x.extend([1.0, 0.0]); y.push(v); }
        for &v in &b { x.extend([1.0, 1.0]); y.push(v); }
        let best = [qa, qb - qa];
        let opt = check_loss(&x, 2, &y, &best, tau);
        for delta in [[eps, 0.0], [-eps, 0.0], [0.0, eps], [0.0, -eps]] {
            let cand = [best[0] + delta[0], best[1] + delta[1]];
            let loss = check_loss(&x, 2, &y, &cand, tau);
            prop_assert!(loss >= opt - 1e-9, "perturbed loss {loss} < optimum {opt}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bootstrap_ci_bit_identical_across_threads_and_chunks(
        xs in prop::collection::vec(0.1f64..1e3, 10..60),
        reps in 10usize..300,
        chunk in 1usize..400,
        seed in any::<u64>(),
    ) {
        // The determinism contract: chunk size and thread count are pure
        // execution knobs; every replicate's stream derives from
        // (seed, rep) alone, so the CI is bit-identical regardless.
        let mean = |r: &[f64]| r.iter().sum::<f64>() / r.len() as f64;
        let reference = bootstrap_ci_with(&xs, 0.95, &BootstrapConfig::new(reps, seed), mean).unwrap();
        for threads in [1usize, 2, 8] {
            let tuned = bootstrap_ci_with(
                &xs,
                0.95,
                &BootstrapConfig::new(reps, seed).chunk_size(chunk).threads(threads),
                mean,
            )
            .unwrap();
            prop_assert_eq!(reference.lower.to_bits(), tuned.lower.to_bits());
            prop_assert_eq!(reference.upper.to_bits(), tuned.upper.to_bits());
            prop_assert_eq!(reference.estimate.to_bits(), tuned.estimate.to_bits());
        }
    }

    #[test]
    fn bootstrap_reps_below_chunk_size_work(
        xs in prop::collection::vec(0.1f64..1e3, 10..40),
        reps in 10usize..200,
        seed in any::<u64>(),
    ) {
        // Regression guard: fewer replicates than one chunk must still
        // produce the same CI as any other chunking.
        let mean = |r: &[f64]| r.iter().sum::<f64>() / r.len() as f64;
        let small = bootstrap_ci_with(&xs, 0.95, &BootstrapConfig::new(reps, seed).chunk_size(reps + 1), mean).unwrap();
        let reference = bootstrap_ci_with(&xs, 0.95, &BootstrapConfig::new(reps, seed), mean).unwrap();
        prop_assert_eq!(small.lower.to_bits(), reference.lower.to_bits());
        prop_assert_eq!(small.upper.to_bits(), reference.upper.to_bits());
    }

    #[test]
    fn bootstrap_quantile_ci_is_deterministic_and_ordered(
        xs in prop::collection::vec(0.1f64..1e3, 10..80),
        p in 0.05f64..0.95,
        seed in any::<u64>(),
    ) {
        let sorted = SortedSamples::new(&xs).unwrap();
        let a = bootstrap_quantile_ci(&sorted, p, 0.95, 500, seed).unwrap();
        let b = bootstrap_quantile_ci(&sorted, p, 0.95, 500, seed).unwrap();
        prop_assert_eq!(a.lower.to_bits(), b.lower.to_bits());
        prop_assert_eq!(a.upper.to_bits(), b.upper.to_bits());
        prop_assert!(a.lower <= a.upper);
        prop_assert!(sorted.min() <= a.lower && a.upper <= sorted.max());
    }
}
