//! Per-paper scores and per-group distributions — the horizontal box
//! plots in the "Experimental Design" header of Table 1.

use serde::{Deserialize, Serialize};

use scibench_stats::quantile::FiveNumberSummary;

use crate::model::{Conference, Survey, YEARS};

/// The score distribution of one conference-year group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupScores {
    /// Conference of the group.
    pub conference: Conference,
    /// Year of the group.
    pub year: u16,
    /// Design scores (0..=9) of the applicable papers in the group.
    pub scores: Vec<usize>,
    /// Box statistics over the scores (`None` when the whole group is not
    /// applicable).
    pub box_stats: Option<FiveNumberSummary>,
}

impl GroupScores {
    /// Median score, if any applicable papers exist.
    pub fn median(&self) -> Option<f64> {
        self.box_stats.map(|b| b.median)
    }
}

/// Computes the score distribution of every conference-year group, in
/// (conference, year) order.
pub fn group_scores(survey: &Survey) -> Vec<GroupScores> {
    let mut out = Vec::new();
    for conf in Conference::ALL {
        for &year in &YEARS {
            let scores: Vec<usize> = survey
                .group(conf, year)
                .iter()
                .filter(|p| p.applicable)
                .map(|p| p.design_score())
                .collect();
            let box_stats = if scores.is_empty() {
                None
            } else {
                let as_f64: Vec<f64> = scores.iter().map(|&s| s as f64).collect();
                Some(FiveNumberSummary::from_samples(&as_f64).expect("non-empty scores"))
            };
            out.push(GroupScores {
                conference: conf,
                year,
                scores,
                box_stats,
            });
        }
    }
    out
}

/// Renders one group's box as the Table 1 mini box plot: a 10-character
/// strip covering scores 0..=9 with `=` for the IQR, `|` for the median
/// and `-` for the whisker range.
pub fn render_mini_box(g: &GroupScores) -> String {
    let Some(b) = g.box_stats else {
        return " ".repeat(10);
    };
    let mut cells = vec![' '; 10];
    let clamp = |v: f64| (v.round().clamp(0.0, 9.0)) as usize;
    for c in cells.iter_mut().take(clamp(b.max) + 1).skip(clamp(b.min)) {
        *c = '-';
    }
    for c in cells.iter_mut().take(clamp(b.q3) + 1).skip(clamp(b.q1)) {
        *c = '=';
    }
    cells[clamp(b.median)] = '|';
    cells.into_iter().collect()
}

/// Tests whether a conference's design scores improve across the years.
///
/// The paper: "While the median scores of ConfA and ConfC seem to be
/// improving over the years, there is no statistically significant
/// evidence for this." This runs the Kruskal–Wallis test across the four
/// year-groups of one conference; `None` if any year has no applicable
/// papers.
pub fn year_trend_test(
    survey: &Survey,
    conference: Conference,
) -> Option<scibench_stats::htest::TestResult> {
    let mut year_scores: Vec<Vec<f64>> = Vec::with_capacity(YEARS.len());
    for &year in &YEARS {
        let scores: Vec<f64> = survey
            .group(conference, year)
            .iter()
            .filter(|p| p.applicable)
            .map(|p| p.design_score() as f64)
            .collect();
        if scores.is_empty() {
            return None;
        }
        year_scores.push(scores);
    }
    let refs: Vec<&[f64]> = year_scores.iter().map(Vec::as_slice).collect();
    scibench_stats::htest::kruskal_wallis(&refs).ok()
}

/// Mean design score over all applicable papers — the headline "state of
/// the practice" number.
pub fn overall_mean_score(survey: &Survey) -> f64 {
    let scores: Vec<f64> = survey
        .applicable()
        .map(|p| p.design_score() as f64)
        .collect();
    if scores.is_empty() {
        return 0.0;
    }
    scores.iter().sum::<f64>() / scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::paper_dataset;

    #[test]
    fn twelve_groups() {
        let gs = group_scores(&paper_dataset());
        assert_eq!(gs.len(), 12);
        for g in &gs {
            assert!(g.scores.len() <= 10);
            assert!(
                !g.scores.is_empty(),
                "{:?} {} fully n/a?",
                g.conference,
                g.year
            );
        }
    }

    #[test]
    fn scores_bounded_by_nine() {
        for g in group_scores(&paper_dataset()) {
            for &s in &g.scores {
                assert!(s <= 9);
            }
            if let Some(b) = g.box_stats {
                assert!(b.min >= 0.0 && b.max <= 9.0);
                assert!(g.median().unwrap() >= b.min);
            }
        }
    }

    #[test]
    fn mini_box_renders_ten_cells() {
        for g in group_scores(&paper_dataset()) {
            let strip = render_mini_box(&g);
            assert_eq!(strip.chars().count(), 10);
            assert!(strip.contains('|'), "no median marker in {strip:?}");
        }
    }

    #[test]
    fn mini_box_empty_group() {
        let g = GroupScores {
            conference: Conference::A,
            year: 2011,
            scores: vec![],
            box_stats: None,
        };
        assert_eq!(render_mini_box(&g), " ".repeat(10));
        assert_eq!(g.median(), None);
    }

    #[test]
    fn no_significant_year_trend_in_any_conference() {
        // The paper's claim: apparent improvements are not statistically
        // significant. Our synthesized dataset spreads grades uniformly
        // over years, so the test must agree.
        let survey = paper_dataset();
        for conf in Conference::ALL {
            let t = year_trend_test(&survey, conf).expect("all groups populated");
            assert!(
                !t.significant_at(0.05),
                "{conf:?}: H = {}, p = {}",
                t.statistic,
                t.p_value
            );
        }
    }

    #[test]
    fn overall_mean_is_moderate() {
        // The paper's diagnosis: the average paper documents some but far
        // from all classes. Our dataset totals 317/95 ≈ 3.3.
        let m = overall_mean_score(&paper_dataset());
        assert!((2.5..4.5).contains(&m), "mean score {m}");
    }
}
