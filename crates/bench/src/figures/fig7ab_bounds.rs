//! Figure 7(a,b): time and speedup bounds models for parallel scaling.
//!
//! The π-digits workload on the Piz Daint model at p = 1…32 (10
//! repetitions; the paper's caption: "the 95 % CI was within 5 % of the
//! mean"), against three bounds of growing fidelity: ideal linear,
//! Amdahl with b = 0.01, and the parallel-overheads bound using the
//! piecewise reduction model. The parallel-overheads bound "explains
//! nearly all the scaling observed".

use scibench::bounds::{OverheadModel, ScalingBound};
use scibench::data::DataSet;
use scibench::plot::ascii::render_series;
use scibench::plot::series::Series;
use scibench_sim::machine::MachineSpec;
use scibench_sim::pi::{pi_scaling_study, PiConfig};
use scibench_sim::rng::SimRng;
use scibench_stats::ci::{mean_ci, ConfidenceInterval};
use scibench_stats::error::StatsResult;

/// One measured scaling point.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Process count.
    pub p: usize,
    /// Mean measured time with CI, seconds.
    pub time_ci: ConfidenceInterval,
    /// Speedup vs the measured single-process mean.
    pub speedup: f64,
}

/// Regenerated Figure 7(a,b) data.
#[derive(Debug, Clone)]
pub struct Fig7ab {
    /// Measured points (p ascending; includes p = 1).
    pub measured: Vec<ScalePoint>,
    /// The three bounds.
    pub bounds: Vec<ScalingBound>,
    /// Single-process base time (measured mean), seconds — used for the
    /// measured speedup.
    pub base_time_s: f64,
    /// Nominal base time the bounds are drawn from (the paper's known
    /// 20 ms; bounds must be true lower bounds, so they use the nominal
    /// time, not the noise-inflated measurement).
    pub bound_base_s: f64,
    /// Whether every point satisfied the caption's "95 % CI within 5 % of
    /// the mean" criterion.
    pub cis_within_5pct: bool,
    /// Raw repetition times at the largest process count (for the report's
    /// Rule 5/6 entry).
    pub largest_p_samples: Vec<f64>,
}

/// Runs the Figure 7(a,b) study.
pub fn compute(reps: usize, seed: u64) -> StatsResult<Fig7ab> {
    let machine = MachineSpec::piz_daint();
    let config = PiConfig::paper_figure7();
    let counts: Vec<usize> = (1..=32).collect();
    let mut rng = SimRng::new(seed).fork("fig7ab");
    let data = pi_scaling_study(&machine, &config, &counts, reps, &mut rng);

    let mut measured = Vec::with_capacity(counts.len());
    let mut cis_within_5pct = true;
    let base_ci = mean_ci(&data[0], 0.95)?;
    let base_time_s = base_ci.estimate;
    for (i, &p) in counts.iter().enumerate() {
        let ci = mean_ci(&data[i], 0.95)?;
        if ci.relative_half_width().map(|w| w > 0.05).unwrap_or(true) {
            cis_within_5pct = false;
        }
        measured.push(ScalePoint {
            p,
            speedup: base_time_s / ci.estimate,
            time_ci: ci,
        });
    }

    let bounds = vec![
        ScalingBound::IdealLinear,
        ScalingBound::Amdahl {
            serial_fraction: config.serial_fraction,
        },
        ScalingBound::ParallelOverhead {
            serial_fraction: config.serial_fraction,
            overhead: OverheadModel::paper_pi_reduction(),
        },
    ];
    let largest_p_samples = data.last().expect("at least one count").clone();
    Ok(Fig7ab {
        measured,
        bounds,
        base_time_s,
        bound_base_s: config.base_time_s,
        cis_within_5pct,
        largest_p_samples,
    })
}

impl Fig7ab {
    /// Builds the rule-compliant experiment report for this figure:
    /// speedups with their base case (Rule 1), all three bounds
    /// (Rule 11), the scaling declaration (§4.2) and the measurement
    /// methodology.
    pub fn report(&self) -> scibench::report::ExperimentReport {
        use scibench::experiment::environment::DocumentationClass;
        use scibench::experiment::measurement::MeasurementOutcome;
        use scibench::experiment::scaling::ScalingStudy;
        use scibench::parallel::CrossProcessSummary;
        use scibench::report::{ExperimentReport, ParallelMethodology};
        use scibench::speedup::{BaseCase, Speedup};
        use scibench::units::Unit;

        let scaling = ScalingStudy::strong(
            self.bound_base_s,
            self.measured.iter().map(|m| m.p).collect(),
        );
        let summary = MeasurementOutcome {
            name: "pi completion time at p=32".into(),
            warmup_samples: vec![],
            samples: self.largest_p_samples.clone(),
            converged: self.cis_within_5pct,
        };
        let env = scibench::experiment::environment::EnvironmentDoc::from_machine(
            &MachineSpec::piz_daint(),
        )
        .document(DocumentationClass::Input, &scaling.describe())
        .document(
            DocumentationClass::MeasurementSetup,
            "10 repetitions per p; 95% CI within 5% of the mean at every p",
        )
        .document(
            DocumentationClass::CodeAvailability,
            "this repository (fig7ab_bounds)",
        )
        .not_applicable(DocumentationClass::Filesystem, "no I/O");
        let mut report = ExperimentReport::new("Figure 7(a,b): pi scaling vs bounds")
            .environment(env)
            .entry(
                summary
                    .summarize(0.95)
                    .expect("summary of the headline point"),
                Unit::Seconds,
            )
            .parallel(ParallelMethodology {
                processes: self.measured.last().expect("points").p,
                synchronization: "synchronized start per repetition".into(),
                summarization: CrossProcessSummary::Max,
                anova_checked: true,
            })
            .plot("time vs bounds", "series", Some(true))
            .plot("speedup vs bounds", "series", Some(true));
        for m in self.measured.iter().filter(|m| m.p.is_power_of_two()) {
            report = report.speedup(Speedup::from_times(
                self.base_time_s,
                m.time_ci.estimate,
                BaseCase::SingleParallelProcess,
            ));
        }
        for b in &self.bounds {
            report = report.bound(b.clone());
        }
        report
    }

    /// Builds the plot series: measured + one per bound, in time (a) or
    /// speedup (b) space.
    pub fn series(&self, speedup_space: bool) -> Vec<Series> {
        let measured: Vec<(f64, f64)> = self
            .measured
            .iter()
            .map(|m| {
                (
                    m.p as f64,
                    if speedup_space {
                        m.speedup
                    } else {
                        m.time_ci.estimate * 1e3
                    },
                )
            })
            .collect();
        let mut out = vec![Series::from_xy("Measurement Result", &measured, true)];
        for b in &self.bounds {
            let pts: Vec<(f64, f64)> = self
                .measured
                .iter()
                .map(|m| {
                    let v = if speedup_space {
                        b.speedup_bound(self.bound_base_s, m.p)
                    } else {
                        b.time_bound_s(self.bound_base_s, m.p) * 1e3
                    };
                    (m.p as f64, v)
                })
                .collect();
            out.push(Series::from_xy(b.label(), &pts, true));
        }
        out
    }

    /// Renders both panels.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 7(a,b): pi-digit scaling vs bounds (base {:.1} ms, b = 0.01)\n\
             95% CIs within 5% of the mean: {}\n\n\
             p    time[ms]  speedup  ideal  amdahl  par-ovh[ms]\n",
            self.base_time_s * 1e3,
            self.cis_within_5pct
        );
        for m in &self.measured {
            out.push_str(&format!(
                "{:<4} {:8.3} {:8.2} {:6.1} {:7.2} {:10.3}\n",
                m.p,
                m.time_ci.estimate * 1e3,
                m.speedup,
                self.bounds[0].speedup_bound(self.bound_base_s, m.p),
                self.bounds[1].speedup_bound(self.bound_base_s, m.p),
                self.bounds[2].time_bound_s(self.bound_base_s, m.p) * 1e3,
            ));
        }
        out.push_str("\n(a) completion time [ms]:\n");
        let time_series = self.series(false);
        let refs: Vec<&Series> = time_series.iter().collect();
        out.push_str(&render_series(&refs, 78, 16));
        out.push_str("\n(b) speedup:\n");
        let speedup_series = self.series(true);
        let refs: Vec<&Series> = speedup_series.iter().collect();
        out.push_str(&render_series(&refs, 78, 16));
        out
    }

    /// Exports measured + bounds as CSV.
    pub fn dataset(&self) -> DataSet {
        let mut d = DataSet::new(&[
            "p",
            "time_s",
            "time_ci_lo",
            "time_ci_hi",
            "speedup",
            "ideal_time_s",
            "amdahl_time_s",
            "parallel_overhead_time_s",
        ])
        .with_metadata("figure", "7ab")
        .with_metadata("workload", "pi digits, 20 ms base, b=0.01");
        for m in &self.measured {
            d.push_row(&[
                m.p as f64,
                m.time_ci.estimate,
                m.time_ci.lower,
                m.time_ci.upper,
                m.speedup,
                self.bounds[0].time_bound_s(self.bound_base_s, m.p),
                self.bounds[1].time_bound_s(self.bound_base_s, m.p),
                self.bounds[2].time_bound_s(self.bound_base_s, m.p),
            ]);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caption_criterion_holds() {
        let f = compute(10, 42).unwrap();
        assert!(f.cis_within_5pct);
        assert_eq!(f.measured.len(), 32);
        assert!(
            (f.base_time_s - 20e-3).abs() < 2e-3,
            "base {}",
            f.base_time_s
        );
    }

    #[test]
    fn measurements_respect_all_bounds() {
        let f = compute(10, 42).unwrap();
        for m in &f.measured {
            for b in &f.bounds {
                let bound = b.time_bound_s(f.bound_base_s, m.p);
                assert!(
                    m.time_ci.estimate >= bound * 0.999,
                    "p={}: measured {} under bound {} ({})",
                    m.p,
                    m.time_ci.estimate,
                    bound,
                    b.label()
                );
            }
        }
    }

    #[test]
    fn parallel_overhead_bound_is_tightest() {
        let f = compute(10, 42).unwrap();
        // At p=32 the parallel-overhead bound explains the measurement far
        // better than Amdahl alone.
        let m32 = f.measured.last().unwrap();
        let amdahl = f.bounds[1].time_bound_s(f.bound_base_s, 32);
        let parovh = f.bounds[2].time_bound_s(f.bound_base_s, 32);
        let err_amdahl = (m32.time_ci.estimate - amdahl) / m32.time_ci.estimate;
        let err_parovh = (m32.time_ci.estimate - parovh) / m32.time_ci.estimate;
        assert!(
            err_parovh < err_amdahl * 0.5,
            "{err_parovh} vs {err_amdahl}"
        );
        assert!(
            err_parovh < 0.10,
            "parallel-overhead bound leaves {err_parovh}"
        );
    }

    #[test]
    fn speedup_flattens_at_scale() {
        let f = compute(10, 1).unwrap();
        let s16 = f.measured[15].speedup;
        let s32 = f.measured[31].speedup;
        // The overhead model makes 32 barely faster (or slower) than 16.
        assert!(s32 < s16 * 1.35, "s16={s16} s32={s32}");
        assert!(s32 < 20.0);
    }

    #[test]
    fn render_and_dataset() {
        let f = compute(5, 2).unwrap();
        let text = f.render();
        assert!(text.contains("Ideal Linear Bound"));
        assert!(text.contains("Parallel Overheads Bound"));
        assert_eq!(f.dataset().len(), 32);
        assert_eq!(f.series(true).len(), 4);
    }

    #[test]
    fn figure_report_passes_the_twelve_rules() {
        let f = compute(10, 3).unwrap();
        let report = f.report();
        let audit = scibench::rules::RuleAudit::check(&report);
        assert!(audit.passed(), "{}", audit.render());
        // Rule 1 and 11 must be actual passes here (speedups and bounds
        // are the whole point of the figure).
        use scibench::rules::{Rule, Verdict};
        for rule in [Rule::R1SpeedupBaseCase, Rule::R11Bounds] {
            let finding = audit.findings.iter().find(|x| x.rule == rule).unwrap();
            assert_eq!(finding.verdict, Verdict::Pass, "{rule:?}");
        }
        assert_eq!(report.speedups.len(), 6); // p = 1, 2, 4, 8, 16, 32
                                              // The markdown rendering carries the scaling declaration.
        assert!(report.render_markdown().contains("strong scaling"));
    }
}
