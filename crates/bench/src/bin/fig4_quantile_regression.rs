//! Regenerates Figure 4: quantile regression Pilatus vs Piz Dora.

use std::process::ExitCode;

use scibench_bench::figures::fig4_quantreg;
use scibench_bench::{output, samples_from_env, DEFAULT_SEED};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig4_quantile_regression: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let samples = samples_from_env(1_000_000);
    let fig = fig4_quantreg::compute(samples, DEFAULT_SEED)?;
    println!("{}", fig.render());
    let path = output::write_csv("fig4_quantreg", &fig.dataset())?;
    println!("quantile effects: {}", path.display());
    Ok(())
}
