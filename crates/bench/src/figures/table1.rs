//! Table 1: the literature survey.
//!
//! Thin adapter over `scibench-survey`: builds the embedded dataset,
//! renders the table, and exports the per-group score distributions as
//! CSV.

use scibench::data::DataSet;
use scibench_survey::score::group_scores;
use scibench_survey::table::render_table1;
use scibench_survey::{paper_dataset, Survey};

/// Regenerated Table 1.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// The survey dataset.
    pub survey: Survey,
}

/// Builds the table.
pub fn compute() -> Table1 {
    Table1 {
        survey: paper_dataset(),
    }
}

impl Table1 {
    /// Renders the table as text.
    pub fn render(&self) -> String {
        render_table1(&self.survey)
    }

    /// Exports the full per-paper grade matrix as CSV (one row per paper,
    /// one 0/1 column per criterion, −1 for not-applicable) — the raw
    /// data behind the rendered table, in the spirit of the paper's "the
    /// raw data can be found on the LibSciBench webpage".
    pub fn raw_dataset(&self) -> DataSet {
        use scibench_survey::model::{AnalysisCriterion, DesignCriterion, Grade};
        let mut columns: Vec<String> = vec![
            "conference".into(),
            "year".into(),
            "index".into(),
            "applicable".into(),
            "design_score".into(),
        ];
        for c in DesignCriterion::ALL {
            columns.push(format!("design_{c:?}").to_lowercase());
        }
        for c in AnalysisCriterion::ALL {
            columns.push(format!("analysis_{c:?}").to_lowercase());
        }
        let refs: Vec<&str> = columns.iter().map(String::as_str).collect();
        let mut d = DataSet::new(&refs).with_metadata("table", "1-raw");
        let encode = |g: Grade| match g {
            Grade::Satisfied => 1.0,
            Grade::Unsatisfied => 0.0,
            Grade::NotApplicable => -1.0,
        };
        for p in &self.survey.papers {
            let mut row = vec![
                p.conference as usize as f64,
                p.year as f64,
                p.index as f64,
                p.applicable as u8 as f64,
                p.design_score() as f64,
            ];
            row.extend(
                DesignCriterion::ALL
                    .iter()
                    .map(|&c| encode(p.design_grade(c))),
            );
            row.extend(
                AnalysisCriterion::ALL
                    .iter()
                    .map(|&c| encode(p.analysis_grade(c))),
            );
            d.push_row(&row);
        }
        d
    }

    /// Exports the per-group score distributions as CSV.
    pub fn dataset(&self) -> DataSet {
        let mut d = DataSet::new(&["group", "min", "q1", "median", "q3", "max"])
            .with_metadata("table", "1")
            .with_metadata("groups", "conference-major order, 4 years each");
        for (i, g) in group_scores(&self.survey).iter().enumerate() {
            if let Some(b) = g.box_stats {
                d.push_row(&[i as f64, b.min, b.q1, b.median, b.q3, b.max]);
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_regenerates_with_counts() {
        let t = compute();
        let text = t.render();
        assert!(text.contains("(79/95)"));
        assert!(text.contains("(7/95)"));
        assert!(text.contains("(51/95)"));
    }

    #[test]
    fn dataset_has_twelve_groups() {
        assert_eq!(compute().dataset().len(), 12);
    }

    #[test]
    fn raw_dataset_round_trips_the_aggregates() {
        let t = compute();
        let raw = t.raw_dataset();
        assert_eq!(raw.len(), 120);
        // Reconstitute one aggregate from the raw matrix.
        let proc_col = raw.column("design_processor").unwrap();
        let satisfied = proc_col.iter().filter(|&&v| v == 1.0).count();
        assert_eq!(satisfied, 79);
        let na = proc_col.iter().filter(|&&v| v == -1.0).count();
        assert_eq!(na, 25);
        // CSV round trip preserves everything.
        let back = scibench::data::DataSet::from_csv(&raw.to_csv()).unwrap();
        assert_eq!(back, raw);
    }
}
