//! Offline stub of `proptest` (see `vendor/README.md`).
//!
//! Implements the subset of proptest 1.x this workspace uses: the `proptest!`
//! macro (with `#![proptest_config(...)]`), `prop_assert*`/`prop_assume!`,
//! `prop_oneof!`, `Just`, `Strategy::prop_map`, numeric range strategies, tuple
//! strategies, `prop::collection::vec`, `any::<T>()`, and simple `[x-y]{m,n}`
//! string-regex strategies. Cases are generated from a deterministic per-test
//! RNG (seeded from the test's module path), so failures are reproducible.
//! There is **no shrinking**: a failing case is reported as-is.

#![forbid(unsafe_code)]

/// Test-case generation driver types.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange, SeedableRng, StandardSample};

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases each property must pass.
        pub cases: u32,
        /// Upper bound on `prop_assume!` rejections before the test errors out.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Self::default()
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was vetoed by `prop_assume!`; it does not count.
        Reject(String),
        /// A `prop_assert*` failed; the whole property fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure with a message.
        pub fn fail<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection with a message.
        pub fn reject<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic per-test random source.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// RNG seeded from a test's fully-qualified name, so every run of a
        /// given test sees the same case sequence.
        pub fn for_test(test_path: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }

        /// Draw from a range (delegates to the `rand` stub).
        pub fn sample_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
            self.inner.gen_range(range)
        }

        /// Draw a full-domain value.
        pub fn sample_standard<T: StandardSample>(&mut self) -> T {
            self.inner.gen()
        }

        /// Draw a uniform index in `0..n`.
        pub fn index(&mut self, n: usize) -> usize {
            self.inner.gen_range(0..n)
        }
    }
}

/// Core strategy trait and combinators.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// Strategy yielding a single cloned value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Type-erased strategy, as produced by [`Strategy::boxed`].
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.sample(rng)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Union over the given (non-empty) alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.options.len());
            self.options[i].sample(rng)
        }
    }

    macro_rules! numeric_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.sample_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.sample_range(self.clone())
                }
            }
        )*};
    }

    numeric_range_strategy!(usize, u64, u32, i64, i32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    /// String-pattern strategy: supports literals and `[x-y...]{m}` / `[x-y...]{m,n}`
    /// character-class repetitions (the subset this workspace's tests use).
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let bytes = pattern.as_bytes();
        if !pattern.contains('[') {
            // No metacharacters we support -> treat as a literal.
            return pattern.to_string();
        }
        let open = pattern.find('[').expect("checked above");
        let close = pattern[open..]
            .find(']')
            .map(|i| i + open)
            .unwrap_or_else(|| panic!("proptest stub: unclosed class in pattern {pattern:?}"));
        let class = &pattern[open + 1..close];
        let mut alphabet: Vec<char> = Vec::new();
        let cs: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < cs.len() {
            if i + 2 < cs.len() && cs[i + 1] == '-' {
                let (lo, hi) = (cs[i] as u32, cs[i + 2] as u32);
                assert!(lo <= hi, "proptest stub: inverted range in {pattern:?}");
                for c in lo..=hi {
                    alphabet.push(char::from_u32(c).unwrap());
                }
                i += 3;
            } else {
                alphabet.push(cs[i]);
                i += 1;
            }
        }
        // Repetition suffix: {m} or {m,n}; default exactly one.
        let (min, max, _suffix_len) = if bytes.get(close + 1) == Some(&b'{') {
            let end = pattern[close..]
                .find('}')
                .map(|i| i + close)
                .unwrap_or_else(|| panic!("proptest stub: unclosed repetition in {pattern:?}"));
            let body = &pattern[close + 2..end];
            let (m, n) = match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().unwrap(),
                    n.trim().parse::<usize>().unwrap(),
                ),
                None => {
                    let m = body.trim().parse::<usize>().unwrap();
                    (m, m)
                }
            };
            (m, n, end - close)
        } else {
            (1, 1, 0)
        };
        let len = if min == max {
            min
        } else {
            rng.sample_range(min..=max)
        };
        (0..len)
            .map(|_| alphabet[rng.index(alphabet.len())])
            .collect()
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate one full-domain value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_standard {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.sample_standard()
                }
            }
        )*};
    }

    arbitrary_standard!(bool, u32, u64, usize, f64);

    /// Strategy generating any value of `T`.
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible element counts for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.sample_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Mirror of the upstream `prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Assert a condition inside a property, failing the whole property on falsehood.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among alternative strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests. Mirrors `proptest::proptest!` syntax for the forms
/// used in this workspace.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal muncher expanding each `fn` inside `proptest!` into a `#[test]`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(what)) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest: too many prop_assume! rejections ({rejected}); last: {what}"
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} failed: {msg}", accepted + 1);
                    }
                }
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}
