//! Normal (Gaussian) distribution.

use crate::error::{StatsError, StatsResult};
use crate::special::erfc;

use super::ContinuousDistribution;

/// A normal distribution with mean `mu` and standard deviation `sigma`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution; `sigma` must be positive and finite.
    pub fn new(mu: f64, sigma: f64) -> StatsResult<Self> {
        if !mu.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "mu",
                value: mu,
            });
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "sigma",
                value: sigma,
            });
        }
        Ok(Self { mu, sigma })
    }

    /// The standard normal distribution N(0, 1).
    pub fn standard() -> Self {
        Self {
            mu: 0.0,
            sigma: 1.0,
        }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mu
    }

    /// Standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.sigma
    }
}

/// CDF of the standard normal distribution.
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// PDF of the standard normal distribution.
pub fn std_normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Quantile function of the standard normal distribution.
///
/// Peter Acklam's rational approximation (relative error < 1.15e-9),
/// followed by one Halley refinement step against the erfc-based CDF,
/// which brings the result to near machine precision.
///
/// # Panics
/// Panics if `p` is not strictly inside (0, 1).
pub fn std_normal_inv_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "std_normal_inv_cdf requires 0 < p < 1, got {p}"
    );
    let x = acklam_inv_cdf(p);
    // One step of Halley's method against the high-precision CDF.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

/// Fast quantile function of the standard normal distribution: Acklam's
/// rational approximation *without* the Halley refinement step.
///
/// Relative error is below 1.15e-9 everywhere in (0, 1) — ample for
/// sampling noise in a simulator, where the refinement's erfc evaluation
/// (an iterative incomplete-gamma expansion) costs ~20× the approximation
/// itself. Statistical inference (confidence intervals, critical values)
/// should keep using [`std_normal_inv_cdf`].
///
/// # Panics
/// Panics if `p` is not strictly inside (0, 1).
#[inline]
pub fn std_normal_inv_cdf_fast(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "std_normal_inv_cdf_fast requires 0 < p < 1, got {p}"
    );
    acklam_inv_cdf(p)
}

/// Acklam's rational approximation of the standard normal quantile —
/// the shared core of [`std_normal_inv_cdf`] and
/// [`std_normal_inv_cdf_fast`]. Requires `0 < p < 1`.
#[allow(clippy::excessive_precision)] // Acklam's constants kept verbatim
#[inline]
fn acklam_inv_cdf(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_690e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Two-sided critical z-value: `z(α/2)` with `P[|Z| > z] = α`.
///
/// Used by the nonparametric rank confidence intervals (§3.1.3 of the
/// paper), e.g. `z_critical(0.05) ≈ 1.96`.
pub fn z_critical(alpha: f64) -> StatsResult<f64> {
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(StatsError::InvalidProbability {
            name: "alpha",
            value: alpha,
        });
    }
    Ok(std_normal_inv_cdf(1.0 - alpha / 2.0))
}

impl ContinuousDistribution for Normal {
    fn pdf(&self, x: f64) -> f64 {
        std_normal_pdf((x - self.mu) / self.sigma) / self.sigma
    }

    fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mu) / self.sigma)
    }

    fn inv_cdf(&self, p: f64) -> f64 {
        self.mu + self.sigma * std_normal_inv_cdf(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_reference_values() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((std_normal_cdf(1.959_963_985) - 0.975).abs() < 1e-7);
        assert!((std_normal_cdf(-1.959_963_985) - 0.025).abs() < 1e-7);
        assert!((std_normal_cdf(1.0) - 0.841_344_746).abs() < 1e-7);
        assert!((std_normal_cdf(2.326_347_874) - 0.99).abs() < 1e-7);
    }

    #[test]
    fn inv_cdf_round_trips() {
        for &p in &[1e-6, 0.01, 0.025, 0.2, 0.5, 0.8, 0.975, 0.99, 1.0 - 1e-6] {
            let z = std_normal_inv_cdf(p);
            assert!(
                (std_normal_cdf(z) - p).abs() < 1e-9,
                "round trip failed at p={p}: z={z}, cdf={}",
                std_normal_cdf(z)
            );
        }
    }

    #[test]
    fn inv_cdf_known_quantiles() {
        assert!((std_normal_inv_cdf(0.975) - 1.959_963_985).abs() < 1e-7);
        assert!((std_normal_inv_cdf(0.995) - 2.575_829_304).abs() < 1e-7);
        assert!(std_normal_inv_cdf(0.5).abs() < 1e-12);
    }

    #[test]
    fn z_critical_matches_textbook() {
        assert!((z_critical(0.05).unwrap() - 1.96).abs() < 1e-2);
        assert!((z_critical(0.01).unwrap() - 2.576).abs() < 1e-3);
        assert!(z_critical(0.0).is_err());
        assert!(z_critical(1.0).is_err());
    }

    #[test]
    fn scaled_normal_pdf_integrates_to_one() {
        let n = Normal::new(3.0, 2.0).unwrap();
        // Trapezoid over ±8 sigma.
        let (a, b, steps) = (3.0 - 16.0, 3.0 + 16.0, 4000);
        let h = (b - a) / steps as f64;
        let mut total = 0.0;
        for i in 0..=steps {
            let x = a + i as f64 * h;
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            total += w * n.pdf(x);
        }
        total *= h;
        assert!((total - 1.0).abs() < 1e-6, "integral = {total}");
    }

    #[test]
    fn scaled_normal_quantiles() {
        let n = Normal::new(10.0, 3.0).unwrap();
        assert!((n.inv_cdf(0.5) - 10.0).abs() < 1e-9);
        assert!((n.cdf(10.0) - 0.5).abs() < 1e-12);
        let q = n.inv_cdf(0.975);
        assert!((q - (10.0 + 3.0 * 1.959_963_985)).abs() < 1e-6);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    #[should_panic(expected = "requires 0 < p < 1")]
    fn inv_cdf_rejects_out_of_range() {
        std_normal_inv_cdf(1.0);
    }

    #[test]
    fn fast_inv_cdf_within_acklam_error_bound() {
        // Acklam's published bound: relative error < 1.15e-9 vs the true
        // quantile, which the refined version approximates to near machine
        // precision.
        for i in 1..2000 {
            let p = i as f64 / 2000.0;
            let fast = std_normal_inv_cdf_fast(p);
            let refined = std_normal_inv_cdf(p);
            let err = if refined.abs() > 1e-12 {
                ((fast - refined) / refined).abs()
            } else {
                (fast - refined).abs()
            };
            assert!(err < 1.2e-9, "p={p}: fast={fast}, refined={refined}");
        }
        // Deep tails, around the simulator's clamp range.
        for &p in &[1e-12, 1e-9, 1e-6, 1.0 - 1e-6, 1.0 - 1e-9] {
            let fast = std_normal_inv_cdf_fast(p);
            let refined = std_normal_inv_cdf(p);
            assert!(((fast - refined) / refined).abs() < 1e-8, "p={p}");
        }
    }

    #[test]
    fn fast_inv_cdf_is_monotone() {
        let mut prev = f64::NEG_INFINITY;
        for i in 1..5000 {
            let z = std_normal_inv_cdf_fast(i as f64 / 5000.0);
            assert!(z >= prev, "non-monotone at i={i}: {z} < {prev}");
            prev = z;
        }
    }

    #[test]
    #[should_panic(expected = "requires 0 < p < 1")]
    fn fast_inv_cdf_rejects_out_of_range() {
        std_normal_inv_cdf_fast(0.0);
    }
}
