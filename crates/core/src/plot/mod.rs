//! Graphing results (§5.2 of the paper, Rule 12).
//!
//! The modules produce *plot data* — the numbers a figure is made of —
//! plus a terminal (ASCII) renderer, so every figure of the paper can be
//! regenerated as both machine-readable series (CSV) and a human-readable
//! chart:
//!
//! - [`boxplot`]: box statistics with explicit whisker semantics ("the
//!   semantics of the whiskers must be specified") and notches;
//! - [`violin`]: density shapes with embedded quartiles;
//! - [`series`]: line/point series with CI bars and an explicit
//!   "connect points" flag ("only connect measurements by lines if they
//!   indicate trends and the interpolation is valid");
//! - [`ascii`]: terminal rendering.

pub mod ascii;
pub mod boxplot;
pub mod series;
pub mod violin;

pub use boxplot::{BoxPlotStats, WhiskerRule};
pub use series::{Series, SeriesPoint};
pub use violin::ViolinData;
