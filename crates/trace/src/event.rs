//! Trace event model: spans, instants and counters on named lanes.
//!
//! Events are deliberately small and allocation-light: categories and
//! argument keys are `&'static str`, names are `Cow<'static, str>` so the
//! hot paths (task spans in the pool, per-sample counters) never allocate
//! for the name, while cold paths (per-point labels, error messages) can
//! still attach dynamic strings.

use std::borrow::Cow;

/// An event name: static for hot paths, owned for cold dynamic labels.
pub type EventName = Cow<'static, str>;

/// Well-known event categories.
///
/// Categories partition the trace into *deterministic* streams (a pure
/// function of seed and design, identical at any thread count) and
/// *schedule-dependent* streams (steal decisions, worker occupancy) that
/// legitimately vary run-to-run. Consumers that assert determinism must
/// filter with [`is_schedule_dependent`].
pub mod category {
    /// Per-task execution spans in the work-stealing pool (deterministic
    /// count: one span per task index).
    pub const POOL: &str = "pool";
    /// Schedule-dependent events: steals, per-worker occupancy spans and
    /// per-worker tallies. Excluded from determinism checks.
    pub const SCHED: &str = "sched";
    /// Campaign-level events: per-point measurement spans and sample
    /// counters.
    pub const CAMPAIGN: &str = "campaign";
    /// Resilience events: attempts, retries, timeouts, quarantines.
    pub const RESILIENCE: &str = "resilience";
    /// Simulator fault injections (link drops, crashes, perf jumps).
    pub const FAULT: &str = "fault";
    /// Simulator collective phases (fold / binomial-tree rounds).
    pub const SIM: &str = "sim";
    /// Figure-pipeline jobs in the bench bins.
    pub const FIGURE: &str = "figure";
    /// Harness self-accounting probes (timer cost, record cost).
    pub const HARNESS: &str = "harness";
}

/// Whether events in `cat` may differ between runs at different thread
/// counts. Only [`category::SCHED`] is schedule-dependent; every other
/// category has deterministic event counts for a fixed seed.
pub fn is_schedule_dependent(cat: &str) -> bool {
    cat == category::SCHED
}

/// A typed argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (indices, counts, nanoseconds).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point value.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form text (cold paths only; allocates).
    Str(String),
}

/// The shape of an event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A closed interval starting at `TraceEvent::t_ns` lasting `dur_ns`.
    Span {
        /// Duration in nanoseconds.
        dur_ns: u64,
    },
    /// A point-in-time marker.
    Instant,
    /// A sampled counter value at a point in time.
    Counter {
        /// The counter's value when sampled.
        value: f64,
    },
}

/// One recorded event. Ordering within a lane follows `seq`; the merged
/// trace sorts by `(t_ns, lane, seq)` so the output is stable even when
/// the wall clock ties.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Category (see [`category`]).
    pub cat: &'static str,
    /// Event name.
    pub name: EventName,
    /// Start time (spans) or occurrence time (instants, counters), in
    /// nanoseconds since the owning tracer's origin.
    pub t_ns: u64,
    /// Lane (exported as chrome://tracing `tid`): worker index for pool
    /// events, offset design index for campaign points.
    pub lane: u32,
    /// Per-lane sequence number, breaking timestamp ties.
    pub seq: u64,
    /// Span / instant / counter payload.
    pub kind: EventKind,
    /// Typed key-value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// The span duration, or `None` for instants and counters.
    pub fn dur_ns(&self) -> Option<u64> {
        match self.kind {
            EventKind::Span { dur_ns } => Some(dur_ns),
            _ => None,
        }
    }

    /// Looks up an argument by key.
    pub fn arg(&self, key: &str) -> Option<&ArgValue> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}
