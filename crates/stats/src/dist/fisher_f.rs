//! Fisher's F distribution, used to assess the one-way ANOVA statistic
//! (§3.2.1: the computed F ratio must exceed `F_crit(k−1, nk−k, α)`).

use crate::error::{StatsError, StatsResult};
use crate::special::{beta_inc, ln_gamma};

use super::{bisect_inv_cdf, ContinuousDistribution};

/// F distribution with `d1` numerator and `d2` denominator degrees of
/// freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FisherF {
    d1: f64,
    d2: f64,
}

impl FisherF {
    /// Creates the distribution; both degrees of freedom must be positive.
    pub fn new(d1: f64, d2: f64) -> StatsResult<Self> {
        if !(d1.is_finite() && d1 > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "d1",
                value: d1,
            });
        }
        if !(d2.is_finite() && d2 > 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "d2",
                value: d2,
            });
        }
        Ok(Self { d1, d2 })
    }

    /// Numerator degrees of freedom.
    pub fn d1(&self) -> f64 {
        self.d1
    }

    /// Denominator degrees of freedom.
    pub fn d2(&self) -> f64 {
        self.d2
    }

    /// Upper-tail critical value `F_crit(d1, d2, α)`: `P[F > x] = α`.
    pub fn critical(&self, alpha: f64) -> StatsResult<f64> {
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(StatsError::InvalidProbability {
                name: "alpha",
                value: alpha,
            });
        }
        Ok(self.inv_cdf(1.0 - alpha))
    }
}

impl ContinuousDistribution for FisherF {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let (d1, d2) = (self.d1, self.d2);
        let ln_b = ln_gamma(d1 / 2.0) + ln_gamma(d2 / 2.0) - ln_gamma((d1 + d2) / 2.0);
        let ln_num = (d1 / 2.0) * (d1 / d2).ln() + (d1 / 2.0 - 1.0) * x.ln()
            - ((d1 + d2) / 2.0) * (1.0 + d1 * x / d2).ln();
        (ln_num - ln_b).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let (d1, d2) = (self.d1, self.d2);
        beta_inc(d1 / 2.0, d2 / 2.0, d1 * x / (d1 * x + d2))
    }

    fn inv_cdf(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "FisherF::inv_cdf requires 0 < p < 1");
        bisect_inv_cdf(|x| self.cdf(x), p, 0.0, 10.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_values_match_f_table() {
        // Classic F-table values at alpha = 0.05.
        let cases = [
            (1.0, 10.0, 0.05, 4.965),
            (2.0, 12.0, 0.05, 3.885),
            (3.0, 20.0, 0.05, 3.098),
            (5.0, 30.0, 0.05, 2.534),
            (2.0, 12.0, 0.01, 6.927),
        ];
        for (d1, d2, alpha, want) in cases {
            let got = FisherF::new(d1, d2).unwrap().critical(alpha).unwrap();
            assert!(
                (got - want).abs() < 5e-3,
                "F({d1},{d2},{alpha}): {got} vs {want}"
            );
        }
    }

    #[test]
    fn f_of_squared_t_matches_t() {
        // If T ~ t(df) then T² ~ F(1, df): P[F <= x²] = P[|T| <= x].
        use crate::dist::student_t::StudentT;
        let df = 9.0;
        let t = StudentT::new(df).unwrap();
        let f = FisherF::new(1.0, df).unwrap();
        for &x in &[0.5, 1.0, 2.0] {
            let via_t = t.cdf(x) - t.cdf(-x);
            assert!((f.cdf(x * x) - via_t).abs() < 1e-10);
        }
    }

    #[test]
    fn inv_round_trip() {
        let f = FisherF::new(4.0, 16.0).unwrap();
        for &p in &[0.1, 0.5, 0.9, 0.99] {
            let x = f.inv_cdf(p);
            assert!((f.cdf(x) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn pdf_zero_below_support() {
        let f = FisherF::new(3.0, 5.0).unwrap();
        assert_eq!(f.pdf(0.0), 0.0);
        assert_eq!(f.cdf(-1.0), 0.0);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(FisherF::new(0.0, 1.0).is_err());
        assert!(FisherF::new(1.0, -2.0).is_err());
    }
}
