//! # scibench — interpretable benchmarking for parallel systems
//!
//! A Rust implementation of the methodology of Hoefler & Belli,
//! *Scientific Benchmarking of Parallel Computing Systems: Twelve ways to
//! tell the masses when reporting performance results* (SC '15), and of
//! the LibSciBench library that accompanies it.
//!
//! The twelve rules are codified as executable machinery:
//!
//! | Rule | Where |
//! |------|-------|
//! | 1 — speedup with explicit base case          | [`speedup`] |
//! | 2 — unambiguous units                        | [`units`] |
//! | 3 — arithmetic mean for costs, harmonic for rates | [`metric`] |
//! | 4 — never average ratios (geometric mean as last resort) | [`metric`] |
//! | 5 — report CIs for nondeterministic data     | [`experiment::measurement`] |
//! | 6 — diagnostic checking before assuming normality | [`experiment::measurement`] |
//! | 7 — statistically sound comparison           | [`compare`] |
//! | 8 — choose the right percentile              | [`compare`] (quantile regression) |
//! | 9 — document the full setup                  | [`experiment::environment`] |
//! | 10 — parallel time measurement + synchronization | [`sync`], [`parallel`] |
//! | 11 — upper performance bounds                | [`bounds`] |
//! | 12 — informative plots                       | [`plot`] |
//!
//! [`rules`] enumerates the rules themselves and audits experiment
//! reports for compliance; [`report`] renders interpretable text reports
//! and CSV exports.
//!
//! # Quickstart
//!
//! ```
//! use scibench::experiment::measurement::{MeasurementPlan, StoppingRule};
//!
//! // Measure a (simulated) operation until the 95% CI of the median is
//! // within 5% — the paper's §4.2.2 stopping criterion.
//! let plan = MeasurementPlan::new("demo-op")
//!     .warmup(3)
//!     .stopping(StoppingRule::AdaptiveMedianCi {
//!         confidence: 0.95,
//!         rel_error: 0.05,
//!         batch: 10,
//!         max_samples: 10_000,
//!     });
//! let mut x = 0u64;
//! let outcome = plan.run(|| {
//!     // The "operation": anything returning an f64 cost.
//!     x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
//!     1.0 + (x % 100) as f64 / 1000.0
//! }).unwrap();
//! assert!(outcome.samples.len() >= 10);
//! let summary = outcome.summarize(0.95).unwrap();
//! assert!(summary.median_ci.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bounds;
pub mod compare;
pub mod data;
pub mod experiment;
pub mod metric;
pub mod obs;
pub mod parallel;
pub mod plot;
pub mod report;
pub mod rules;
pub mod speedup;
pub mod sync;
pub mod units;

pub use metric::{Cost, Rate, Ratio};
pub use rules::{Rule, RuleAudit};
