//! Minimal JSON parser and trace schema validators.
//!
//! The workspace vendors no JSON library, so the schema check CI runs
//! against emitted traces is implemented here: a small recursive-descent
//! parser (objects, arrays, strings with escapes, numbers, literals)
//! plus validators that enforce the chrome://tracing and JSONL event
//! shapes this crate exports.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, preserving key order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => self.err(format!("unexpected byte 0x{b:02x}")),
            None => self.err("unexpected end of input"),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected '{word}'"))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonError {
            offset: start,
            message: "invalid utf-8 in number".into(),
        })?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(JsonValue::Number(n)),
            _ => self.err(format!("invalid number '{text}'")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex =
                                self.bytes.get(self.pos + 1..self.pos + 5).ok_or_else(|| {
                                    JsonError {
                                        offset: self.pos,
                                        message: "truncated \\u escape".into(),
                                    }
                                })?;
                            let hex = std::str::from_utf8(hex).map_err(|_| JsonError {
                                offset: self.pos,
                                message: "invalid \\u escape".into(),
                            })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                                offset: self.pos,
                                message: "invalid \\u escape".into(),
                            })?;
                            // Surrogates are not paired here; replace them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str upstream,
                    // so boundaries are valid).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| JsonError {
                            offset: self.pos,
                            message: "invalid utf-8 in string".into(),
                        })?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// garbage is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after document");
    }
    Ok(v)
}

fn require_string(obj: &JsonValue, key: &str, at: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("{at}: missing or non-string \"{key}\""))
}

fn require_number(obj: &JsonValue, key: &str, at: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("{at}: missing or non-numeric \"{key}\""))
}

/// Validates a chrome://tracing JSON document against the event shape
/// this crate exports: a top-level array of objects carrying `name`,
/// `cat`, `ph` ∈ {`X`, `i`, `C`}, non-negative `ts`, `pid`, `tid`, an
/// `args` object, a non-negative `dur` for complete events and a scope
/// `s` for instants. Returns the event count.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .as_array()
        .ok_or_else(|| "top level is not an array".to_string())?;
    for (i, e) in events.iter().enumerate() {
        let at = format!("event {i}");
        if !matches!(e, JsonValue::Object(_)) {
            return Err(format!("{at}: not an object"));
        }
        require_string(e, "name", &at)?;
        require_string(e, "cat", &at)?;
        let ph = require_string(e, "ph", &at)?;
        let ts = require_number(e, "ts", &at)?;
        require_number(e, "pid", &at)?;
        require_number(e, "tid", &at)?;
        if ts < 0.0 {
            return Err(format!("{at}: negative ts"));
        }
        if !matches!(e.get("args"), Some(JsonValue::Object(_))) {
            return Err(format!("{at}: missing args object"));
        }
        match ph.as_str() {
            "X" => {
                if require_number(e, "dur", &at)? < 0.0 {
                    return Err(format!("{at}: negative dur"));
                }
            }
            "i" => {
                require_string(e, "s", &at)?;
            }
            "C" => {}
            other => return Err(format!("{at}: unknown ph \"{other}\"")),
        }
    }
    Ok(events.len())
}

/// Validates a JSONL trace: each non-empty line is an object carrying
/// `cat`, `name`, non-negative `t_ns`, `lane`, `seq`, a `kind` of
/// `span` (with `dur_ns`), `instant`, or `counter` (with `value`), and
/// an `args` object. Returns the event count.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut count = 0;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let at = format!("line {}", lineno + 1);
        let e = parse(line).map_err(|err| format!("{at}: {err}"))?;
        require_string(&e, "cat", &at)?;
        require_string(&e, "name", &at)?;
        if require_number(&e, "t_ns", &at)? < 0.0 {
            return Err(format!("{at}: negative t_ns"));
        }
        require_number(&e, "lane", &at)?;
        require_number(&e, "seq", &at)?;
        if !matches!(e.get("args"), Some(JsonValue::Object(_))) {
            return Err(format!("{at}: missing args object"));
        }
        match require_string(&e, "kind", &at)?.as_str() {
            "span" => {
                if require_number(&e, "dur_ns", &at)? < 0.0 {
                    return Err(format!("{at}: negative dur_ns"));
                }
            }
            "instant" => {}
            "counter" => {
                // `value` may be a quoted string for non-finite samples.
                if e.get("value").is_none() {
                    return Err(format!("{at}: missing \"value\""));
                }
            }
            other => return Err(format!("{at}: unknown kind \"{other}\"")),
        }
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), JsonValue::Number(-1250.0));
        assert_eq!(
            parse("\"a\\nb\\u0041\"").unwrap(),
            JsonValue::String("a\nbA".into())
        );
        let doc = parse("{\"a\": [1, {\"b\": false}], \"c\": \"x\"}").unwrap();
        assert_eq!(doc.get("c").and_then(JsonValue::as_str), Some("x"));
        let arr = doc.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b"), Some(&JsonValue::Bool(false)));
        assert_eq!(parse("[]").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), JsonValue::Object(vec![]));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"abc", "[1]]"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn chrome_validator_enforces_shape() {
        let good =
            r#"[{"name":"t","cat":"pool","ph":"X","ts":1.5,"dur":2.0,"pid":0,"tid":1,"args":{}}]"#;
        assert_eq!(validate_chrome_trace(good).unwrap(), 1);
        let missing_dur =
            r#"[{"name":"t","cat":"pool","ph":"X","ts":1.5,"pid":0,"tid":1,"args":{}}]"#;
        assert!(validate_chrome_trace(missing_dur).is_err());
        let bad_ph = r#"[{"name":"t","cat":"p","ph":"Z","ts":1,"pid":0,"tid":1,"args":{}}]"#;
        assert!(validate_chrome_trace(bad_ph).is_err());
        assert!(validate_chrome_trace("{}").is_err());
    }

    #[test]
    fn jsonl_validator_enforces_shape() {
        let good = "{\"cat\":\"pool\",\"name\":\"t\",\"t_ns\":1,\"lane\":0,\"seq\":0,\"kind\":\"span\",\"dur_ns\":5,\"args\":{}}\n";
        assert_eq!(validate_jsonl(good).unwrap(), 1);
        let bad_kind = "{\"cat\":\"pool\",\"name\":\"t\",\"t_ns\":1,\"lane\":0,\"seq\":0,\"kind\":\"x\",\"args\":{}}\n";
        assert!(validate_jsonl(bad_kind).is_err());
        assert_eq!(validate_jsonl("\n\n").unwrap(), 0);
    }
}
