//! Integration tests of the rule auditor against deliberately flawed
//! reports — each of the paper's "twelve ways to fool the masses"
//! anti-patterns must be caught.

use scibench::bounds::ScalingBound;
use scibench::compare::compare_two;
use scibench::experiment::environment::{DocumentationClass, EnvironmentDoc};
use scibench::experiment::measurement::{MeasurementPlan, StoppingRule};
use scibench::parallel::CrossProcessSummary;
use scibench::report::{ExperimentReport, ParallelMethodology};
use scibench::rules::{Rule, RuleAudit, Verdict};
use scibench::speedup::{BaseCase, Speedup};
use scibench::units::Unit;

fn noisy_sample(n: usize, mu: f64, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            mu + ((state >> 33) % 1000) as f64 / 5000.0
        })
        .collect()
}

fn full_env() -> EnvironmentDoc {
    let mut env = EnvironmentDoc::new();
    for c in DocumentationClass::ALL {
        env = env.document(c, "described in detail");
    }
    env
}

fn summary_of(xs: &[f64], name: &str) -> scibench::experiment::measurement::MeasurementSummary {
    scibench::experiment::measurement::MeasurementOutcome {
        name: name.into(),
        warmup_samples: vec![],
        samples: xs.to_vec(),
        converged: true,
    }
    .summarize(0.95)
    .unwrap()
}

fn compliant_report() -> ExperimentReport {
    let a = noisy_sample(400, 1.7, 3);
    let b = noisy_sample(400, 1.8, 4);
    ExperimentReport::new("compliant")
        .environment(full_env())
        .entry(summary_of(&a, "latency"), Unit::Seconds)
        .speedup(Speedup::from_times(1.8, 1.7, BaseCase::OtherSystem))
        .comparison(compare_two("a", &a, "b", &b, 0.95, &[0.5, 0.99], 1).unwrap())
        .bound(ScalingBound::IdealLinear)
        .parallel(ParallelMethodology {
            processes: 2,
            synchronization: "window scheme".into(),
            summarization: CrossProcessSummary::Median,
            anova_checked: true,
        })
        .plot("density", "density", None)
}

#[test]
fn compliant_report_passes_all_rules() {
    let audit = RuleAudit::check(&compliant_report());
    assert!(audit.passed(), "{}", audit.render());
    let passes = audit
        .findings
        .iter()
        .filter(|f| f.verdict == Verdict::Pass)
        .count();
    assert!(passes >= 10, "{}", audit.render());
}

#[test]
fn every_rule_violation_is_caught() {
    // Rule 2: unjustified subset.
    let mut r = compliant_report();
    r.subset_justification = Some(String::new());
    assert!(RuleAudit::check(&r)
        .failures()
        .contains(&Rule::R2NoCherryPicking));

    // Rule 4: unjustified geometric mean of ratios.
    let mut r = compliant_report();
    r.ratio_geomean_used = true;
    assert!(RuleAudit::check(&r)
        .failures()
        .contains(&Rule::R4NoRatioAverages));

    // Rule 5: nondeterministic entry without any CI.
    let mut r = compliant_report();
    r.entries[0].summary.median_ci = None;
    r.entries[0].summary.mean_ci = None;
    assert!(RuleAudit::check(&r)
        .failures()
        .contains(&Rule::R5ReportVariability));

    // Rule 6: parametric CI claimed valid without a normality diagnostic.
    let mut r = compliant_report();
    r.entries[0].summary.mean_ci_valid = true;
    r.entries[0].summary.normality = None;
    assert!(RuleAudit::check(&r)
        .failures()
        .contains(&Rule::R6CheckNormality));

    // Rule 9: undocumented environment.
    let mut r = compliant_report();
    r.environment = EnvironmentDoc::new();
    assert!(RuleAudit::check(&r)
        .failures()
        .contains(&Rule::R9DocumentSetup));

    // Rule 10: parallel experiment without a synchronization description.
    let mut r = compliant_report();
    r.parallel.as_mut().unwrap().synchronization = String::new();
    assert!(RuleAudit::check(&r)
        .failures()
        .contains(&Rule::R10ParallelTime));
}

#[test]
fn warnings_do_not_fail_but_are_visible() {
    let mut r = compliant_report();
    r.bounds.clear();
    r.plots.clear();
    r.comparisons[0].quantile_effects.clear();
    let audit = RuleAudit::check(&r);
    assert!(audit.passed());
    let warns: Vec<_> = audit
        .findings
        .iter()
        .filter(|f| f.verdict == Verdict::Warn)
        .map(|f| f.rule)
        .collect();
    assert!(warns.contains(&Rule::R11Bounds));
    assert!(warns.contains(&Rule::R12Plots));
    assert!(warns.contains(&Rule::R8RightStatistic));
}

#[test]
fn audit_of_surveyed_practice_matches_table1_severity() {
    // Grade the synthesized survey's papers with the auditor's Rule 9
    // logic: the mean documentation score must match the dataset's.
    use scibench_survey::paper_dataset;
    let survey = paper_dataset();
    let mut total = 0usize;
    let mut applicable = 0usize;
    for p in survey.applicable() {
        total += p.design_score();
        applicable += 1;
    }
    let mean = total as f64 / applicable as f64;
    // The surveyed state of the practice documents ~3.3/9 classes — far
    // from Rule 9 compliance; our auditor would fail nearly every paper.
    assert!((2.5..4.5).contains(&mean), "mean {mean}");

    // A paper documenting everything would pass Rule 9.
    let r = compliant_report();
    let audit = RuleAudit::check(&r);
    let r9 = audit
        .findings
        .iter()
        .find(|f| f.rule == Rule::R9DocumentSetup)
        .unwrap();
    assert_eq!(r9.verdict, Verdict::Pass);
}

#[test]
fn adaptive_measurement_feeds_rule5_compliance() {
    // Measure until the CI criterion holds, then verify the report's
    // Rule 5 section is automatically satisfied.
    let mut state = 99u64;
    let plan = MeasurementPlan::new("adaptive").stopping(StoppingRule::AdaptiveMedianCi {
        confidence: 0.95,
        rel_error: 0.02,
        batch: 50,
        max_samples: 20_000,
    });
    let outcome = plan
        .run(|| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            1.0 + ((state >> 33) % 100) as f64 / 400.0
        })
        .unwrap();
    assert!(outcome.converged);
    let summary = outcome.summarize(0.95).unwrap();
    let r = ExperimentReport::new("adaptive-demo")
        .environment(full_env())
        .entry(summary, Unit::Seconds);
    let audit = RuleAudit::check(&r);
    let r5 = audit
        .findings
        .iter()
        .find(|f| f.rule == Rule::R5ReportVariability)
        .unwrap();
    assert_eq!(r5.verdict, Verdict::Pass);
}
