//! Criterion benches of the measurement harness itself: how much the
//! bookkeeping (timer reads, adaptive CI checks, Welford accumulation)
//! costs relative to a bare loop — LibSciBench's "low-overhead data
//! collection" claim, quantified.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scibench::experiment::campaign::{run_campaign, run_campaign_traced, CampaignConfig};
use scibench::experiment::design::{Design, Factor, RunPoint};
use scibench::experiment::measurement::{MeasurementPlan, StoppingRule};
use scibench_sim::rng::SimRng;
use scibench_stats::summary::OnlineMoments;
use scibench_timer::clock::{Clock, WallClock};
use scibench_timer::watch::{MultiEventTimer, Stopwatch};
use scibench_trace::{category, Tracer};

fn work() -> f64 {
    let mut acc = 0u64;
    for i in 0..64u64 {
        acc = acc.wrapping_add(i.wrapping_mul(0x9E3779B97F4A7C15));
    }
    (acc & 0xFF) as f64
}

fn bench_bare_vs_harness(c: &mut Criterion) {
    let mut g = c.benchmark_group("harness_overhead");
    g.bench_function("bare_loop_100", |b| {
        b.iter(|| {
            let mut sink = 0.0;
            for _ in 0..100 {
                sink += work();
            }
            black_box(sink)
        })
    });
    g.bench_function("fixed_plan_100", |b| {
        let plan = MeasurementPlan::new("op").stopping(StoppingRule::FixedCount(100));
        b.iter(|| plan.run(|| black_box(work())).unwrap())
    });
    g.bench_function("adaptive_median_plan", |b| {
        let plan = MeasurementPlan::new("op").stopping(StoppingRule::AdaptiveMedianCi {
            confidence: 0.95,
            rel_error: 0.05,
            batch: 25,
            max_samples: 2_000,
        });
        b.iter(|| plan.run(|| black_box(work())).unwrap())
    });
    g.finish();
}

fn bench_timer_reads(c: &mut Criterion) {
    let clock = WallClock::new();
    let mut g = c.benchmark_group("timer");
    g.bench_function("clock_read", |b| b.iter(|| black_box(clock.now_ns())));
    g.bench_function("stopwatch_cycle", |b| {
        b.iter(|| {
            let mut sw = Stopwatch::new();
            sw.start(&clock);
            black_box(work());
            sw.stop(&clock)
        })
    });
    g.bench_function("multi_event_k16_blocks4", |b| {
        let timer = MultiEventTimer::new(16);
        b.iter(|| {
            timer.measure(&clock, 4, || {
                black_box(work());
            })
        })
    });
    g.finish();
}

fn bench_accumulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("accumulation");
    g.bench_function("welford_push_1000", |b| {
        b.iter(|| {
            let mut m = OnlineMoments::new();
            for i in 0..1000 {
                m.push(black_box(i as f64));
            }
            m
        })
    });
    g.finish();
}

// ---------------------------------------------------------------------
// Tracing overhead: the Heisenberg gate plus the raw record cost.
// ---------------------------------------------------------------------

fn trace_design() -> Design {
    Design::new(vec![
        Factor::new("system", &["a", "b"]),
        Factor::numeric("size", &[8.0, 64.0]),
    ])
}

fn trace_measure(point: &RunPoint, rng: &mut SimRng) -> f64 {
    let base = if point.level(0) == "a" { 1.0 } else { 1.3 };
    base + rng.uniform() * 0.2
}

fn trace_plan() -> MeasurementPlan {
    MeasurementPlan::new("op").stopping(StoppingRule::FixedCount(60))
}

fn median_of(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let n = v.len();
    if n.is_multiple_of(2) {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    } else {
        v[n / 2]
    }
}

/// Regression gate: per-point campaign medians under full tracing must
/// stay within 1% of the untraced medians. The determinism contract
/// (tracing never touches RNG streams or sample values) makes the
/// perturbation exactly zero, so the gate asserts bit-equality first —
/// any relaxation of the contract trips the 1% check before drifting.
fn assert_tracing_unperturbed() {
    let config = CampaignConfig {
        seed: 2015,
        threads: 4,
    };
    let plain = run_campaign(&trace_design(), &trace_plan(), &config, trace_measure)
        .expect("untraced campaign");
    let tracer = Tracer::new();
    let traced = run_campaign_traced(
        &trace_design(),
        &trace_plan(),
        &config,
        Some(&tracer),
        trace_measure,
    )
    .expect("traced campaign");
    assert_eq!(
        plain, traced,
        "tracing perturbed the campaign result (must be bit-identical)"
    );
    for (p, t) in plain.runs.iter().zip(&traced.runs) {
        let mp = median_of(&p.outcome.samples);
        let mt = median_of(&t.outcome.samples);
        let rel = ((mt - mp) / mp).abs();
        assert!(
            rel < 0.01,
            "traced median {mt} deviates {rel:.4} (>1%) from untraced {mp}"
        );
    }
    let trace = tracer.drain();
    assert!(
        trace.count(category::CAMPAIGN) > 0,
        "traced campaign recorded no campaign events"
    );
}

fn bench_tracing(c: &mut Criterion) {
    assert_tracing_unperturbed();
    let mut g = c.benchmark_group("tracing");
    g.bench_function("campaign_untraced", |b| {
        let config = CampaignConfig {
            seed: 2015,
            threads: 1,
        };
        b.iter(|| run_campaign(&trace_design(), &trace_plan(), &config, trace_measure).unwrap())
    });
    g.bench_function("campaign_traced", |b| {
        let config = CampaignConfig {
            seed: 2015,
            threads: 1,
        };
        b.iter(|| {
            let tracer = Tracer::new();
            let r = run_campaign_traced(
                &trace_design(),
                &trace_plan(),
                &config,
                Some(&tracer),
                trace_measure,
            )
            .unwrap();
            black_box((r, tracer.drain()))
        })
    });
    g.bench_function("record_instant", |b| {
        let tracer = Tracer::new();
        let mut lane = tracer.lane(0);
        b.iter(|| lane.instant(category::HARNESS, "probe", &[]))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_bare_vs_harness,
    bench_timer_reads,
    bench_accumulation,
    bench_tracing
);
criterion_main!(benches);
