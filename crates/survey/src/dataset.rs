//! The embedded survey dataset.
//!
//! Table 1 publishes only aggregates; the per-paper grades are synthesized
//! deterministically so that **every published aggregate is reproduced
//! exactly**:
//!
//! - 120 papers, 10 per conference-year, 25 not applicable;
//! - per-criterion satisfied counts (79/95, 26/95, … 7/95 for design;
//!   51/95, 13/95, 9/95, 17/95 for analysis);
//! - 39 papers report speedups, 15 of them without the absolute base
//!   case (§2.1.1);
//! - 2 of 95 papers use fully unambiguous units (§2.1.2).
//!
//! Correlation structure: each paper gets a latent "diligence" score and
//! satisfies criteria in diligence order, so well-documented papers tend
//! to be well-documented across the board — the pattern visible in the
//! real table.

use crate::model::{
    AnalysisCriterion, Conference, DesignCriterion, Grade, PaperRecord, Survey, YEARS,
};

/// Number of papers sampled per conference-year group.
pub const PAPERS_PER_GROUP: usize = 10;
/// Number of surveyed papers.
pub const TOTAL_PAPERS: usize = 120;
/// Papers without real-world performance results.
pub const NOT_APPLICABLE: usize = 25;
/// Applicable papers.
pub const APPLICABLE: usize = TOTAL_PAPERS - NOT_APPLICABLE;

/// SplitMix64 — the crate's only RNG (deterministic dataset synthesis).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn uniform(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

fn shuffle<T>(xs: &mut [T], state: &mut u64) {
    for i in (1..xs.len()).rev() {
        let j = (splitmix(state) % (i as u64 + 1)) as usize;
        xs.swap(i, j);
    }
}

/// Builds the synthesized 120-paper survey (deterministic; the seed is
/// fixed so every build of the crate embeds the identical dataset).
pub fn paper_dataset() -> Survey {
    let mut state = 0x05C1_5B3Eu64; // fixed dataset seed

    // 1. Enumerate the 120 papers.
    let mut papers: Vec<PaperRecord> = Vec::with_capacity(TOTAL_PAPERS);
    for conf in Conference::ALL {
        for &year in &YEARS {
            for index in 0..PAPERS_PER_GROUP {
                papers.push(PaperRecord {
                    conference: conf,
                    year,
                    index,
                    applicable: true,
                    design: [Grade::Unsatisfied; 9],
                    analysis: [Grade::Unsatisfied; 4],
                    reports_speedup: false,
                    speedup_base_given: true,
                    units_unambiguous: false,
                });
            }
        }
    }

    // 2. Mark 25 papers not applicable (spread over all groups).
    let mut order: Vec<usize> = (0..TOTAL_PAPERS).collect();
    shuffle(&mut order, &mut state);
    for &i in order.iter().take(NOT_APPLICABLE) {
        papers[i].applicable = false;
        papers[i].design = [Grade::NotApplicable; 9];
        papers[i].analysis = [Grade::NotApplicable; 4];
    }

    // 3. Latent diligence per applicable paper.
    let applicable_idx: Vec<usize> = (0..TOTAL_PAPERS)
        .filter(|&i| papers[i].applicable)
        .collect();
    debug_assert_eq!(applicable_idx.len(), APPLICABLE);
    let diligence: Vec<f64> = applicable_idx.iter().map(|_| uniform(&mut state)).collect();

    // 4. For each criterion, satisfy exactly `count` papers, preferring
    //    diligent ones with per-criterion noise.
    let satisfy = |count: usize, state: &mut u64| -> Vec<usize> {
        let mut scored: Vec<(f64, usize)> = applicable_idx
            .iter()
            .enumerate()
            .map(|(k, &i)| (diligence[k] + 0.8 * uniform(state), i))
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
        scored.into_iter().take(count).map(|(_, i)| i).collect()
    };

    for (row, criterion) in DesignCriterion::ALL.iter().enumerate() {
        for i in satisfy(criterion.published_count(), &mut state) {
            papers[i].design[row] = Grade::Satisfied;
        }
    }
    for (row, criterion) in AnalysisCriterion::ALL.iter().enumerate() {
        for i in satisfy(criterion.published_count(), &mut state) {
            papers[i].analysis[row] = Grade::Satisfied;
        }
    }

    // 5. §2.1.1: 39 papers report speedups; 15 of them omit the base case.
    let speedup_papers = satisfy(39, &mut state);
    for (k, &i) in speedup_papers.iter().enumerate() {
        papers[i].reports_speedup = true;
        papers[i].speedup_base_given = k >= 15; // first 15 omit it
    }

    // 6. §2.1.2: only two papers use fully unambiguous units.
    for i in satisfy(2, &mut state) {
        papers[i].units_unambiguous = true;
    }

    Survey { papers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Survey;

    fn survey() -> Survey {
        paper_dataset()
    }

    #[test]
    fn population_structure() {
        let s = survey();
        assert_eq!(s.len(), TOTAL_PAPERS);
        assert_eq!(s.applicable().count(), APPLICABLE);
        for conf in Conference::ALL {
            for &year in &YEARS {
                assert_eq!(
                    s.group(conf, year).len(),
                    PAPERS_PER_GROUP,
                    "{conf:?} {year}"
                );
            }
        }
    }

    #[test]
    fn design_counts_match_table1_exactly() {
        let s = survey();
        for c in DesignCriterion::ALL {
            assert_eq!(s.design_count(c), c.published_count(), "criterion {:?}", c);
        }
    }

    #[test]
    fn analysis_counts_match_table1_exactly() {
        let s = survey();
        for c in AnalysisCriterion::ALL {
            assert_eq!(
                s.analysis_count(c),
                c.published_count(),
                "criterion {:?}",
                c
            );
        }
    }

    #[test]
    fn speedup_stats_match_section_2_1_1() {
        let (with, missing_base) = survey().speedup_stats();
        assert_eq!(with, 39);
        assert_eq!(missing_base, 15);
    }

    #[test]
    fn unit_stats_match_section_2_1_2() {
        assert_eq!(survey().unambiguous_units_count(), 2);
    }

    #[test]
    fn non_applicable_papers_are_fully_dotted() {
        let s = survey();
        for p in &s.papers {
            if !p.applicable {
                assert!(p.design.iter().all(|g| *g == Grade::NotApplicable));
                assert!(p.analysis.iter().all(|g| *g == Grade::NotApplicable));
            }
        }
    }

    #[test]
    fn dataset_is_deterministic() {
        assert_eq!(paper_dataset(), paper_dataset());
    }

    #[test]
    fn diligence_induces_correlation() {
        // Papers documenting the processor should document the network
        // more often than papers that don't (the real table's pattern).
        let s = survey();
        let (mut proc_and_net, mut proc_total, mut noproc_and_net, mut noproc_total) =
            (0usize, 0usize, 0usize, 0usize);
        for p in s.applicable() {
            let has_proc = p.design_grade(DesignCriterion::Processor) == Grade::Satisfied;
            let has_net = p.design_grade(DesignCriterion::Network) == Grade::Satisfied;
            if has_proc {
                proc_total += 1;
                proc_and_net += has_net as usize;
            } else {
                noproc_total += 1;
                noproc_and_net += has_net as usize;
            }
        }
        let rate_with = proc_and_net as f64 / proc_total as f64;
        let rate_without = if noproc_total == 0 {
            0.0
        } else {
            noproc_and_net as f64 / noproc_total as f64
        };
        assert!(rate_with > rate_without, "{rate_with} vs {rate_without}");
    }

    #[test]
    fn scores_are_diverse() {
        // Table 1's box plots span from near 0 to near 9; the synthetic
        // dataset must not be degenerate.
        let s = survey();
        let scores: Vec<usize> = s.applicable().map(|p| p.design_score()).collect();
        let min = *scores.iter().min().unwrap();
        let max = *scores.iter().max().unwrap();
        assert!(min <= 1, "min score {min}");
        assert!(max >= 7, "max score {max}");
    }
}
