//! Regenerates Figure 7(c): box/violin/combined latency plots.

use scibench_bench::figures::fig7c_plots;
use scibench_bench::{output, samples_from_env, DEFAULT_SEED};

fn main() {
    let samples = samples_from_env(1_000_000);
    let fig = fig7c_plots::compute(samples, DEFAULT_SEED).expect("figure 7c pipeline");
    println!("{}", fig.render());
    let path = output::write_csv("fig7c_plots", &fig.dataset()).expect("write csv");
    println!("plot stats: {}", path.display());
}
