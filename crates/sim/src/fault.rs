//! Deterministic fault injection for resilience experiments.
//!
//! The paper's Rules 4–8 demand that honest reporting survive hostile
//! measurement environments. [`crate::noise`] models *benign* interference
//! (jitter, daemons, congestion) that perturbs costs but never loses them;
//! this module models *failure*: node crashes, straggler processes, flaky
//! links and clock jumps, any of which can render an operation's result
//! unusable. Operations on a faulted machine therefore return
//! `Result<cost, SimFault>` instead of silently succeeding.
//!
//! Everything is deterministic. A [`FaultPlan`] is pure configuration; it
//! is compiled into a [`FaultSchedule`] with [`FaultSchedule::compile`],
//! which draws every per-node decision (who crashes and when, who
//! straggles, whose clock jumps) from a stream forked off the caller's
//! [`SimRng`] under the label `"fault-schedule"`. Per-transfer link coins
//! come from a second fork (`"fault-coins"`) held inside [`FaultContext`],
//! so injecting faults never consumes draws from the base noise stream —
//! a run whose operations happen to experience zero fault events produces
//! **bit-identical** samples to the same run under [`FaultPlan::none`].

use serde::{Deserialize, Serialize};

use scibench_trace::{category, ArgValue, LocalTracer};

use crate::rng::SimRng;

/// A failure observed by a simulated operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimFault {
    /// A node participating in the operation crashed before it completed.
    NodeCrashed {
        /// The crashed node.
        node: usize,
        /// Global simulation time of the crash, nanoseconds.
        at_ns: f64,
    },
    /// A link dropped more consecutive packets than the retransmit budget
    /// allows.
    LinkFailed {
        /// Sending node.
        src: usize,
        /// Receiving node.
        dst: usize,
        /// Number of drops observed before giving up.
        drops: u32,
    },
    /// The local clock of a node jumped while a sample was being taken,
    /// making the timer reading unusable.
    ClockJumped {
        /// The node whose clock jumped.
        node: usize,
        /// Global simulation time of the jump, nanoseconds.
        at_ns: f64,
        /// Magnitude and direction of the jump, nanoseconds.
        jump_ns: f64,
    },
}

impl std::fmt::Display for SimFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimFault::NodeCrashed { node, at_ns } => {
                write!(f, "node {node} crashed at t = {at_ns:.0} ns")
            }
            SimFault::LinkFailed { src, dst, drops } => {
                write!(f, "link {src} -> {dst} failed after {drops} drops")
            }
            SimFault::ClockJumped {
                node,
                at_ns,
                jump_ns,
            } => {
                write!(
                    f,
                    "clock on node {node} jumped {jump_ns:+.0} ns at t = {at_ns:.0} ns"
                )
            }
        }
    }
}

impl std::error::Error for SimFault {}

/// Configuration of the faults injected into a machine. All probabilities
/// are in `[0, 1]`; the default plan injects nothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability that any given node crashes during the experiment.
    pub node_crash_prob: f64,
    /// Crash instants are drawn uniformly in `[0, crash_window_ns)`.
    pub crash_window_ns: f64,
    /// Probability that any given node is a straggler (persistently slow).
    pub straggler_prob: f64,
    /// Multiplicative slowdown of transfers touching a straggler node
    /// (e.g. `3.0` = three times slower).
    pub straggler_slowdown: f64,
    /// Per-transfer probability that a packet is dropped and must be
    /// retransmitted.
    pub link_drop_prob: f64,
    /// Extra cost of each retransmission on top of resending the message,
    /// nanoseconds.
    pub retransmit_penalty_ns: f64,
    /// Consecutive drops beyond this budget fail the transfer with
    /// [`SimFault::LinkFailed`].
    pub max_retransmits: u32,
    /// Probability that any given node's clock jumps once during the
    /// experiment.
    pub clock_jump_prob: f64,
    /// Magnitude of clock jumps, nanoseconds (direction is drawn at
    /// compile time).
    pub clock_jump_ns: f64,
    /// Clock-jump instants are drawn uniformly in `[0, clock_jump_window_ns)`.
    pub clock_jump_window_ns: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The empty plan: no faults of any kind.
    pub fn none() -> Self {
        FaultPlan {
            node_crash_prob: 0.0,
            crash_window_ns: 0.0,
            straggler_prob: 0.0,
            straggler_slowdown: 1.0,
            link_drop_prob: 0.0,
            retransmit_penalty_ns: 0.0,
            max_retransmits: 0,
            clock_jump_prob: 0.0,
            clock_jump_ns: 0.0,
            clock_jump_window_ns: 0.0,
        }
    }

    /// Whether this plan can produce any fault at all.
    pub fn is_none(&self) -> bool {
        self.node_crash_prob <= 0.0
            && self.straggler_prob <= 0.0
            && self.link_drop_prob <= 0.0
            && self.clock_jump_prob <= 0.0
    }

    /// A canonical mixed-fault plan scaled by a single `rate` knob in
    /// `[0, 1]`: at `rate = 0` nothing fails; at `rate = 1` every fault
    /// class fires aggressively. Used by the fault-ablation experiment to
    /// sweep failure intensity with one parameter.
    pub fn with_failure_rate(rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "failure rate must be in [0, 1], got {rate}"
        );
        FaultPlan {
            node_crash_prob: 0.05 * rate,
            crash_window_ns: 5.0e6,
            straggler_prob: 0.15 * rate,
            straggler_slowdown: 1.0 + 2.0 * rate,
            link_drop_prob: 0.02 * rate,
            retransmit_penalty_ns: 2_000.0,
            max_retransmits: 4,
            clock_jump_prob: 0.05 * rate,
            clock_jump_ns: 1.0e6,
            clock_jump_window_ns: 5.0e6,
        }
    }
}

/// A clock jump scheduled on one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockJump {
    /// Global simulation time of the jump, nanoseconds.
    pub at_ns: f64,
    /// Signed magnitude of the jump, nanoseconds.
    pub jump_ns: f64,
}

/// The compiled, per-node realization of a [`FaultPlan`] — *which* nodes
/// crash/straggle/jump and when. A pure function of `(plan, nodes, seed)`:
/// compiling the same inputs always yields the same schedule, regardless
/// of thread count or call order.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    plan: FaultPlan,
    crash_at_ns: Vec<Option<f64>>,
    slowdown: Vec<f64>,
    clock_jump: Vec<Option<ClockJump>>,
}

impl FaultSchedule {
    /// Compiles `plan` for a machine of `nodes` nodes. All decisions are
    /// drawn from `rng.fork("fault-schedule")`, so the caller's stream is
    /// left untouched and the result depends only on the fork's seed.
    pub fn compile(plan: &FaultPlan, nodes: usize, rng: &SimRng) -> Self {
        let mut r = rng.fork("fault-schedule");
        let mut crash_at_ns = Vec::with_capacity(nodes);
        let mut slowdown = Vec::with_capacity(nodes);
        let mut clock_jump = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            // Draw every class for every node, even when its probability is
            // zero, so schedules for different plans with the same seed stay
            // aligned node-by-node (a point with only stragglers enabled
            // picks the same straggler nodes as a point with all classes on).
            let crash = r.bernoulli(plan.node_crash_prob.clamp(0.0, 1.0));
            let crash_t = r.uniform() * plan.crash_window_ns.max(0.0);
            crash_at_ns.push(if crash { Some(crash_t) } else { None });

            let straggles = r.bernoulli(plan.straggler_prob.clamp(0.0, 1.0));
            slowdown.push(if straggles {
                plan.straggler_slowdown.max(1.0)
            } else {
                1.0
            });

            let jumps = r.bernoulli(plan.clock_jump_prob.clamp(0.0, 1.0));
            let jump_t = r.uniform() * plan.clock_jump_window_ns.max(0.0);
            let jump_sign = if r.bernoulli(0.5) { 1.0 } else { -1.0 };
            clock_jump.push(if jumps {
                Some(ClockJump {
                    at_ns: jump_t,
                    jump_ns: jump_sign * plan.clock_jump_ns,
                })
            } else {
                None
            });
        }
        FaultSchedule {
            plan: plan.clone(),
            crash_at_ns,
            slowdown,
            clock_jump,
        }
    }

    /// A schedule with no faults on `nodes` nodes.
    pub fn healthy(nodes: usize) -> Self {
        FaultSchedule {
            plan: FaultPlan::none(),
            crash_at_ns: vec![None; nodes],
            slowdown: vec![1.0; nodes],
            clock_jump: vec![None; nodes],
        }
    }

    /// The plan this schedule was compiled from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Number of nodes covered by the schedule.
    pub fn nodes(&self) -> usize {
        self.slowdown.len()
    }

    /// When (if ever) `node` crashes.
    pub fn crash_at_ns(&self, node: usize) -> Option<f64> {
        self.crash_at_ns.get(node).copied().flatten()
    }

    /// Persistent slowdown factor of `node` (`1.0` = healthy).
    pub fn slowdown_of(&self, node: usize) -> f64 {
        self.slowdown.get(node).copied().unwrap_or(1.0)
    }

    /// The clock jump scheduled on `node`, if any.
    pub fn clock_jump_of(&self, node: usize) -> Option<ClockJump> {
        self.clock_jump.get(node).copied().flatten()
    }

    /// Number of nodes that crash at some point.
    pub fn crashed_nodes(&self) -> usize {
        self.crash_at_ns.iter().filter(|c| c.is_some()).count()
    }

    /// Number of straggler nodes.
    pub fn straggler_nodes(&self) -> usize {
        self.slowdown.iter().filter(|&&s| s > 1.0).count()
    }

    /// Number of nodes with a scheduled clock jump.
    pub fn clock_jump_nodes(&self) -> usize {
        self.clock_jump.iter().filter(|j| j.is_some()).count()
    }

    /// Whether the schedule can affect any operation (no scheduled events
    /// and no per-transfer link faults).
    pub fn is_trivial(&self) -> bool {
        self.crashed_nodes() == 0
            && self.straggler_nodes() == 0
            && self.clock_jump_nodes() == 0
            && self.plan.link_drop_prob <= 0.0
    }

    /// Records the compiled schedule as [`category::FAULT`] instants on
    /// `lane`: one `"scheduled-crash"` / `"scheduled-straggler"` /
    /// `"scheduled-clock-jump"` event per affected node, with the node
    /// index and the scheduled parameters as args. The event stream is a
    /// pure function of `(plan, nodes, seed)` — the same determinism
    /// contract as [`FaultSchedule::compile`] — so traced runs stay
    /// bit-identical to untraced ones and event counts are reproducible.
    pub fn trace_schedule(&self, lane: &mut LocalTracer<'_>) {
        if !lane.is_on() {
            return;
        }
        for node in 0..self.nodes() {
            if let Some(at_ns) = self.crash_at_ns(node) {
                lane.instant(
                    category::FAULT,
                    "scheduled-crash",
                    &[
                        ("node", ArgValue::U64(node as u64)),
                        ("at_sim_ns", ArgValue::F64(at_ns)),
                    ],
                );
            }
            let slowdown = self.slowdown_of(node);
            if slowdown > 1.0 {
                lane.instant(
                    category::FAULT,
                    "scheduled-straggler",
                    &[
                        ("node", ArgValue::U64(node as u64)),
                        ("slowdown", ArgValue::F64(slowdown)),
                    ],
                );
            }
            if let Some(j) = self.clock_jump_of(node) {
                lane.instant(
                    category::FAULT,
                    "scheduled-clock-jump",
                    &[
                        ("node", ArgValue::U64(node as u64)),
                        ("at_sim_ns", ArgValue::F64(j.at_ns)),
                        ("jump_ns", ArgValue::F64(j.jump_ns)),
                    ],
                );
            }
        }
    }

    /// One-line Rule-9-style description for experiment reports.
    pub fn describe(&self) -> String {
        if self.is_trivial() {
            return "faults: none".into();
        }
        format!(
            "faults: {} crashed node(s), {} straggler(s) (x{:.1}), link drop p = {}, {} clock jump(s)",
            self.crashed_nodes(),
            self.straggler_nodes(),
            self.plan.straggler_slowdown,
            self.plan.link_drop_prob,
            self.clock_jump_nodes(),
        )
    }
}

/// Mutable per-run state for executing operations against a
/// [`FaultSchedule`]: the simulation clock (which decides when crashes
/// take effect) and the dedicated coin stream for per-transfer link
/// faults. Forked under `"fault-coins"`, so link coins never perturb the
/// caller's noise stream.
#[derive(Debug, Clone)]
pub struct FaultContext {
    schedule: FaultSchedule,
    coins: SimRng,
    now_ns: f64,
    coins_drawn: u64,
    link_drops: u64,
}

impl FaultContext {
    /// Compiles `plan` and builds a context, forking both the schedule
    /// stream and the coin stream off `rng` (whose state is not consumed).
    pub fn new(plan: &FaultPlan, nodes: usize, rng: &SimRng) -> Self {
        Self::from_schedule(FaultSchedule::compile(plan, nodes, rng), rng)
    }

    /// Builds a context around an already-compiled schedule.
    pub fn from_schedule(schedule: FaultSchedule, rng: &SimRng) -> Self {
        FaultContext {
            schedule,
            coins: rng.fork("fault-coins"),
            now_ns: 0.0,
            coins_drawn: 0,
            link_drops: 0,
        }
    }

    /// The compiled schedule driving this context.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// Current global simulation time, nanoseconds.
    pub fn now_ns(&self) -> f64 {
        self.now_ns
    }

    /// Advances the simulation clock by `ns`.
    pub fn advance(&mut self, ns: f64) {
        self.now_ns += ns.max(0.0);
    }

    /// Returns the crash fault for `node` if it has crashed by the current
    /// simulation time.
    pub fn crashed(&self, node: usize) -> Option<SimFault> {
        match self.schedule.crash_at_ns(node) {
            Some(at_ns) if at_ns <= self.now_ns => Some(SimFault::NodeCrashed { node, at_ns }),
            _ => None,
        }
    }

    /// Draws one link-drop coin from the dedicated coin stream.
    pub fn link_drop_coin(&mut self) -> bool {
        let p = self.schedule.plan.link_drop_prob;
        if p <= 0.0 {
            return false;
        }
        self.coins_drawn += 1;
        let dropped = self.coins.bernoulli(p.min(1.0));
        if dropped {
            self.link_drops += 1;
        }
        dropped
    }

    /// Number of link-drop coins drawn so far (one per potentially lossy
    /// transfer attempt).
    pub fn coins_drawn(&self) -> u64 {
        self.coins_drawn
    }

    /// Number of those coins that came up "dropped" — the count of
    /// injected link faults so far.
    pub fn link_drops(&self) -> u64 {
        self.link_drops
    }

    /// Records the context's injection tallies as [`category::FAULT`]
    /// counters on `lane` (`"link-drop-coins"` and `"link-drops"`), plus
    /// an `"injection-tally"` instant carrying the simulated clock. The
    /// tallies are consumed from the dedicated coin stream, so for a fixed
    /// seed and operation sequence they are deterministic.
    pub fn trace_tallies(&self, lane: &mut LocalTracer<'_>) {
        if !lane.is_on() {
            return;
        }
        lane.counter(category::FAULT, "link-drop-coins", self.coins_drawn as f64);
        lane.counter(category::FAULT, "link-drops", self.link_drops as f64);
        lane.instant(
            category::FAULT,
            "injection-tally",
            &[
                ("sim_now_ns", ArgValue::F64(self.now_ns)),
                ("link_drops", ArgValue::U64(self.link_drops)),
            ],
        );
    }

    /// Returns the clock jump on `node_a` or `node_b` that fired inside
    /// the window `(from_ns, to_ns]`, if any — i.e. the jump contaminating
    /// a sample taken across that window.
    pub fn jump_crossing(
        &self,
        nodes: [usize; 2],
        from_ns: f64,
        to_ns: f64,
    ) -> Option<(usize, ClockJump)> {
        for node in nodes {
            if let Some(j) = self.schedule.clock_jump_of(node) {
                if from_ns < j.at_ns && j.at_ns <= to_ns {
                    return Some((node, j));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_compiles_to_trivial_schedule() {
        let rng = SimRng::new(7);
        let s = FaultSchedule::compile(&FaultPlan::none(), 64, &rng);
        assert!(s.is_trivial());
        assert_eq!(s.crashed_nodes(), 0);
        assert_eq!(s.straggler_nodes(), 0);
        assert_eq!(s.clock_jump_nodes(), 0);
        assert_eq!(s, FaultSchedule::healthy(64));
    }

    #[test]
    fn compile_is_deterministic_and_seed_sensitive() {
        let plan = FaultPlan::with_failure_rate(0.5);
        let a = FaultSchedule::compile(&plan, 128, &SimRng::new(11));
        let b = FaultSchedule::compile(&plan, 128, &SimRng::new(11));
        let c = FaultSchedule::compile(&plan, 128, &SimRng::new(12));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn compile_does_not_consume_parent_stream() {
        let plan = FaultPlan::with_failure_rate(0.8);
        let mut r1 = SimRng::new(3);
        let mut r2 = SimRng::new(3);
        let _ = FaultSchedule::compile(&plan, 64, &r1);
        assert_eq!(r1.uniform(), r2.uniform());
    }

    #[test]
    fn failure_rate_one_injects_heavily() {
        let plan = FaultPlan::with_failure_rate(1.0);
        let s = FaultSchedule::compile(&plan, 1000, &SimRng::new(5));
        // Expectations: 5% crashes, 15% stragglers, 5% jumps over 1000 nodes.
        assert!(
            (20..=90).contains(&s.crashed_nodes()),
            "{}",
            s.crashed_nodes()
        );
        assert!(
            (100..=220).contains(&s.straggler_nodes()),
            "{}",
            s.straggler_nodes()
        );
        assert!(s.clock_jump_nodes() > 10);
        assert!(!s.is_trivial());
    }

    #[test]
    fn failure_rate_zero_is_none() {
        assert!(FaultPlan::with_failure_rate(0.0).is_none());
        assert!(FaultPlan::none().is_none());
        assert!(!FaultPlan::with_failure_rate(0.3).is_none());
    }

    #[test]
    fn schedules_align_across_plans_with_same_seed() {
        // Enabling an extra fault class must not reshuffle which nodes
        // straggle: per-node draws are positionally aligned.
        let only_stragglers = FaultPlan {
            straggler_prob: 0.2,
            straggler_slowdown: 3.0,
            ..FaultPlan::none()
        };
        let everything = FaultPlan {
            straggler_prob: 0.2,
            straggler_slowdown: 3.0,
            node_crash_prob: 0.1,
            crash_window_ns: 1e6,
            ..FaultPlan::none()
        };
        let rng = SimRng::new(21);
        let a = FaultSchedule::compile(&only_stragglers, 256, &rng);
        let b = FaultSchedule::compile(&everything, 256, &rng);
        for node in 0..256 {
            assert_eq!(a.slowdown_of(node), b.slowdown_of(node), "node {node}");
        }
    }

    #[test]
    fn crash_takes_effect_only_after_its_instant() {
        let plan = FaultPlan {
            node_crash_prob: 1.0,
            crash_window_ns: 1000.0,
            ..FaultPlan::none()
        };
        let rng = SimRng::new(2);
        let mut ctx = FaultContext::new(&plan, 4, &rng);
        let at = ctx.schedule().crash_at_ns(0).unwrap();
        assert!(ctx.crashed(0).is_none() || at == 0.0);
        ctx.advance(1000.0);
        assert!(matches!(
            ctx.crashed(0),
            Some(SimFault::NodeCrashed { node: 0, .. })
        ));
    }

    #[test]
    fn jump_crossing_detects_window() {
        let plan = FaultPlan {
            clock_jump_prob: 1.0,
            clock_jump_ns: 500.0,
            clock_jump_window_ns: 1000.0,
            ..FaultPlan::none()
        };
        let rng = SimRng::new(9);
        let ctx = FaultContext::new(&plan, 2, &rng);
        let j = ctx.schedule().clock_jump_of(0).unwrap();
        assert!(ctx
            .jump_crossing([0, 1], j.at_ns - 1.0, j.at_ns + 1.0)
            .is_some());
        assert!(ctx
            .jump_crossing([0, 1], j.at_ns + 1.0, j.at_ns + 2.0)
            .map(|(n, _)| n != 0)
            .unwrap_or(true));
        assert_eq!(j.jump_ns.abs(), 500.0);
    }

    #[test]
    fn trace_schedule_emits_one_instant_per_scheduled_fault() {
        use scibench_trace::{category, Tracer};
        let plan = FaultPlan::with_failure_rate(1.0);
        let s = FaultSchedule::compile(&plan, 200, &SimRng::new(5));
        let expected = s.crashed_nodes() + s.straggler_nodes() + s.clock_jump_nodes();
        let tracer = Tracer::new();
        {
            let mut lane = tracer.lane(0);
            s.trace_schedule(&mut lane);
        }
        let trace = tracer.drain();
        assert_eq!(trace.count(category::FAULT), expected);
        assert!(expected > 0);
    }

    #[test]
    fn link_drop_tallies_count_coins_and_drops() {
        use scibench_trace::{category, Tracer};
        let plan = FaultPlan {
            link_drop_prob: 0.5,
            ..FaultPlan::none()
        };
        let rng = SimRng::new(8);
        let mut ctx = FaultContext::new(&plan, 4, &rng);
        for _ in 0..100 {
            let _ = ctx.link_drop_coin();
        }
        assert_eq!(ctx.coins_drawn(), 100);
        assert!(ctx.link_drops() > 10 && ctx.link_drops() < 90);
        let tracer = Tracer::new();
        {
            let mut lane = tracer.lane(0);
            ctx.trace_tallies(&mut lane);
        }
        let trace = tracer.drain();
        assert_eq!(trace.count(category::FAULT), 3);
        // Tallies replay deterministically for the same seed.
        let mut ctx2 = FaultContext::new(&plan, 4, &rng);
        for _ in 0..100 {
            let _ = ctx2.link_drop_coin();
        }
        assert_eq!(ctx2.link_drops(), ctx.link_drops());
    }

    #[test]
    fn disabled_lane_records_no_fault_events() {
        use scibench_trace::Tracer;
        let plan = FaultPlan::with_failure_rate(1.0);
        let s = FaultSchedule::compile(&plan, 64, &SimRng::new(5));
        let tracer = Tracer::disabled();
        {
            let mut lane = tracer.lane(0);
            s.trace_schedule(&mut lane);
            let ctx = FaultContext::from_schedule(s, &SimRng::new(5));
            ctx.trace_tallies(&mut lane);
        }
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn fault_display_is_informative() {
        let s = format!(
            "{}",
            SimFault::NodeCrashed {
                node: 3,
                at_ns: 10.0
            }
        );
        assert!(s.contains("node 3"));
        let s = format!(
            "{}",
            SimFault::LinkFailed {
                src: 1,
                dst: 2,
                drops: 5
            }
        );
        assert!(s.contains("1 -> 2"));
        let s = format!(
            "{}",
            SimFault::ClockJumped {
                node: 7,
                at_ns: 5.0,
                jump_ns: -100.0
            }
        );
        assert!(s.contains("-100"));
    }
}
