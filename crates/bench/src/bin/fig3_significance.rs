//! Regenerates Figure 3: latency significance on two systems.

use std::process::ExitCode;

use scibench_bench::figures::fig3_significance;
use scibench_bench::{output, samples_from_env, DEFAULT_SEED};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig3_significance: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let samples = samples_from_env(1_000_000);
    let fig = fig3_significance::compute(samples, DEFAULT_SEED)?;
    println!("{}", fig.render());
    let path = output::write_csv("fig3_significance", &fig.dataset())?;
    println!("summary data: {}", path.display());
    Ok(())
}
