//! Keyed per-design-point partials with an order-independent union and a
//! canonical fold.
//!
//! Floating-point sketch merges are deterministic but **not**
//! bit-associative: `(a ⊕ b) ⊕ c` and `a ⊕ (b ⊕ c)` can differ in the last
//! ulp. A campaign that merged whatever its workers produced, in whatever
//! order the scheduler ran them, would therefore report different bits at
//! different thread counts. `KeyedPartials` removes the schedule from the
//! algebra:
//!
//! 1. every sample stream gets a stable key (the design-point index), and
//!    exactly one worker builds each keyed summary sequentially;
//! 2. cross-worker/cross-shard combination is a **disjoint map union** —
//!    trivially associative and commutative, so any merge tree over the
//!    same shards yields the identical map;
//! 3. [`KeyedPartials::finalize`] folds the map in ascending key order —
//!    a canonical reduction whose result cannot depend on thread or shard
//!    count.
//!
//! Overlapping keys (a shard resumed and re-summarized a point) merge via
//! the summary's own `merge_from`, which keeps the union lossless but is
//! only schedule-independent when each key is produced by one writer —
//! the contract the campaign runner upholds.

use std::collections::BTreeMap;

use crate::error::{StatsError, StatsResult};

use super::MergeableSummary;

/// A set of mergeable summaries keyed by `u64` (design-point index).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KeyedPartials<S> {
    parts: BTreeMap<u64, S>,
}

impl<S: MergeableSummary + Clone> KeyedPartials<S> {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self {
            parts: BTreeMap::new(),
        }
    }

    /// Number of keyed partials.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// The partial for `key`, if present.
    pub fn get(&self, key: u64) -> Option<&S> {
        self.parts.get(&key)
    }

    /// Ascending iterator over `(key, summary)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &S)> {
        self.parts.iter().map(|(k, s)| (*k, s))
    }

    /// Inserts a partial. A duplicate key merges into the existing
    /// summary via [`MergeableSummary::merge_from`].
    pub fn insert(&mut self, key: u64, summary: S) -> StatsResult<()> {
        match self.parts.get_mut(&key) {
            Some(existing) => existing.merge_from(&summary),
            None => {
                self.parts.insert(key, summary);
                Ok(())
            }
        }
    }

    /// Unions another set into this one. Disjoint keys move over
    /// unchanged (bit-preserving); overlapping keys merge.
    pub fn merge_from(&mut self, other: &Self) -> StatsResult<()> {
        for (key, summary) in &other.parts {
            self.insert(*key, summary.clone())?;
        }
        Ok(())
    }

    /// Canonically folds all partials in ascending key order into one
    /// summary — the thread/shard-count-independent campaign total.
    /// `None` when the set is empty.
    pub fn finalize(&self) -> StatsResult<Option<S>> {
        let mut iter = self.parts.values();
        let Some(first) = iter.next() else {
            return Ok(None);
        };
        let mut acc = first.clone();
        for s in iter {
            acc.merge_from(s)?;
        }
        Ok(Some(acc))
    }

    /// Total finite observations across all partials.
    pub fn count(&self) -> u64 {
        self.parts.values().map(|s| s.count()).sum()
    }

    /// Total quarantined non-finite observations across all partials.
    pub fn non_finite_count(&self) -> u64 {
        self.parts.values().map(|s| s.non_finite_count()).sum()
    }

    /// Canonical record: `kp1` followed by one `key=record` section per
    /// partial in ascending key order, separated by `#`.
    pub fn to_record(&self) -> String {
        let mut out = String::from("kp1");
        for (key, summary) in &self.parts {
            out.push('#');
            out.push_str(&key.to_string());
            out.push('=');
            out.push_str(&summary.to_record());
        }
        out
    }

    /// Decodes a record produced by [`KeyedPartials::to_record`].
    pub fn from_record(record: &str) -> StatsResult<Self> {
        let mut sections = record.split('#');
        if sections.next() != Some("kp1") {
            return Err(StatsError::MalformedSketch("expected kp1 tag"));
        }
        let mut parts = BTreeMap::new();
        for section in sections {
            let (key, body) = section
                .split_once('=')
                .ok_or(StatsError::MalformedSketch("missing '=' in kp1 section"))?;
            let key = super::parse_u64(key)?;
            if parts.insert(key, S::from_record(body)?).is_some() {
                return Err(StatsError::MalformedSketch("duplicate key in kp1"));
            }
        }
        Ok(Self { parts })
    }
}

#[cfg(test)]
mod tests {
    use super::super::{MergeableSummary, StreamConfig, StreamingSummary};
    use super::*;
    use crate::summary::OnlineMoments;

    fn summary_of(xs: &[f64]) -> StreamingSummary {
        let mut s = StreamingSummary::new(StreamConfig {
            threshold: 16,
            ..StreamConfig::default()
        })
        .unwrap();
        for &x in xs {
            s.push(x);
        }
        s
    }

    #[test]
    fn union_is_order_independent_bitwise() {
        let a = summary_of(&(0..40).map(|i| i as f64).collect::<Vec<_>>());
        let b = summary_of(&(0..10).map(|i| 100.0 + i as f64).collect::<Vec<_>>());
        let c = summary_of(&(0..25).map(|i| (i as f64).sqrt()).collect::<Vec<_>>());
        let mut left: KeyedPartials<StreamingSummary> = KeyedPartials::new();
        left.insert(0, a.clone()).unwrap();
        left.insert(1, b.clone()).unwrap();
        let mut right = KeyedPartials::new();
        right.insert(2, c.clone()).unwrap();
        // (left ∪ right) vs (right ∪ left): identical records.
        let mut lr = left.clone();
        lr.merge_from(&right).unwrap();
        let mut rl = right.clone();
        rl.merge_from(&left).unwrap();
        assert_eq!(lr, rl);
        assert_eq!(lr.to_record(), rl.to_record());
        // Finalize folds ascending regardless of union order.
        let f1 = lr.finalize().unwrap().unwrap();
        let f2 = rl.finalize().unwrap().unwrap();
        assert_eq!(f1.to_record(), f2.to_record());
        assert_eq!(lr.count(), 75);
    }

    #[test]
    fn duplicate_keys_merge_losslessly() {
        let mut p: KeyedPartials<OnlineMoments> = KeyedPartials::new();
        p.insert(7, [1.0, 2.0].iter().copied().collect()).unwrap();
        p.insert(7, [3.0].iter().copied().collect()).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.get(7).unwrap().count(), 3);
        assert_eq!(p.get(7).unwrap().mean(), Some(2.0));
    }

    #[test]
    fn record_round_trips() {
        let mut p: KeyedPartials<StreamingSummary> = KeyedPartials::new();
        p.insert(3, summary_of(&[1.0, f64::NAN, 5.0])).unwrap();
        p.insert(
            11,
            summary_of(&(0..50).map(|i| i as f64).collect::<Vec<_>>()),
        )
        .unwrap();
        let record = p.to_record();
        let back: KeyedPartials<StreamingSummary> = KeyedPartials::from_record(&record).unwrap();
        assert_eq!(back.to_record(), record);
        assert_eq!(back.len(), 2);
        assert_eq!(back.non_finite_count(), 1);
        let empty: KeyedPartials<StreamingSummary> = KeyedPartials::new();
        let back: KeyedPartials<StreamingSummary> =
            KeyedPartials::from_record(&empty.to_record()).unwrap();
        assert!(back.is_empty());
        assert!(back.finalize().unwrap().is_none());
        assert!(KeyedPartials::<StreamingSummary>::from_record("nope").is_err());
    }

    #[test]
    fn mismatched_configs_fail_union() {
        let mut p: KeyedPartials<StreamingSummary> = KeyedPartials::new();
        p.insert(0, summary_of(&[1.0])).unwrap();
        let other = StreamingSummary::new(StreamConfig {
            threshold: 99,
            ..StreamConfig::default()
        })
        .unwrap();
        assert!(p.insert(0, other).is_err());
    }
}
