//! Mergeable streaming summaries for bounded-memory campaigns.
//!
//! The paper's Rule 6/7 reporting (nonparametric CIs, quantiles, full
//! distributions) classically needs the entire sample resident and sorted.
//! That caps campaigns far below the 10⁶–10⁸-sample sweeps the roadmap
//! targets and blocks shard-level aggregation: a child process cannot ship
//! gigabytes of raw samples to the supervisor. This module provides the
//! sketch substrate that lifts the cap:
//!
//! * [`TDigest`] — a t-digest-style quantile sketch (Dunning's merging
//!   variant, k₁ scale function). O(δ) memory, rank error that shrinks
//!   toward the tails.
//! * [`GridSketch`] — a fixed-grid histogram/ECDF sketch with explicit
//!   underflow/overflow bins. Pure `u64` counter addition, so its merge is
//!   *bit-associative and commutative* — any merge tree over the same
//!   shards yields identical bits.
//! * [`crate::summary::OnlineMoments`] / [`crate::summary::HigherMoments`]
//!   — pairwise-mergeable Welford/Pébay moment accumulators (exact, not
//!   approximate).
//! * [`StreamingSummary`] — the adaptive front end: keeps an **exact**
//!   buffer below [`DEFAULT_STREAM_THRESHOLD`] samples (small campaigns
//!   lose nothing) and promotes to sketches above it.
//! * [`KeyedPartials`] — per-design-point partials keyed by design index.
//!   Floating-point sketch merges are *not* bit-associative, so
//!   thread/shard-count independence is achieved structurally: workers
//!   never co-mingle samples from different design points; the cross-shard
//!   merge is a disjoint key union (trivially order-independent) and
//!   [`KeyedPartials::finalize`] folds in ascending key order — a canonical
//!   reduction whose bits cannot depend on which worker ran which point.
//!
//! Everything implements [`MergeableSummary`], whose `to_record` /
//! `from_record` round-trip is **bit-exact** (IEEE-754 bit patterns in
//! hex, NaN-safe): records survive the crash-consistent journal and shard
//! result frames unchanged, which is what the determinism proptests
//! assert.
//!
//! # Disclosure (Rules 4, 6, 7)
//!
//! Sketch-mode quantiles carry rank error bounded by the t-digest
//! compression parameter (empirically ≲ 1/δ interior, tighter in the
//! tails); means/variances remain exact because the Welford accumulator is
//! not an approximation. Reports produced from sketches must say so — the
//! streaming campaign runner records the summary mode alongside the
//! estimates so the error source is disclosed, not silently absorbed.

mod grid;
mod moments;
mod partials;
mod tdigest;

pub use grid::{GridSketch, GridSpec};
pub use partials::KeyedPartials;
pub use tdigest::TDigest;

use serde::{Deserialize, Serialize};

use crate::ci::{quantile_ci_ranks, ConfidenceInterval};
use crate::error::{StatsError, StatsResult};
use crate::quantile::{quantile_sorted, FiveNumberSummary, QuantileMethod};
use crate::sorted::SortedSamples;
use crate::summary::OnlineMoments;
use crate::{f64_from_hex, f64_to_hex};

/// Number of samples below which [`StreamingSummary`] stays exact.
///
/// 4096 f64s is 32 KiB — trivially resident — while the switch keeps the
/// worst-case footprint O(δ) no matter how many samples follow. Campaigns
/// that never cross the threshold report *exactly* what the classical
/// `SortedSamples` path reports.
pub const DEFAULT_STREAM_THRESHOLD: usize = 4096;

/// Default t-digest compression parameter δ (number of k-units).
pub const DEFAULT_DIGEST_DELTA: u32 = 200;

/// Everything a streaming summary can be queried for, and how partials
/// combine. Implemented by the moment accumulators, both sketches, and
/// the adaptive [`StreamingSummary`] front end.
pub trait MergeableSummary: Sized {
    /// Feeds one observation. Non-finite values are quarantined in
    /// [`MergeableSummary::non_finite_count`], never folded into the
    /// statistics (the same contract `OnlineMoments::push` now has).
    fn push(&mut self, x: f64);

    /// Merges another partial into this one. Errors with
    /// [`StatsError::MismatchedSketch`] when the two partials were built
    /// with incompatible configurations (different grid, δ or threshold).
    fn merge_from(&mut self, other: &Self) -> StatsResult<()>;

    /// Number of finite observations absorbed so far.
    fn count(&self) -> u64;

    /// Number of quarantined non-finite observations.
    fn non_finite_count(&self) -> u64;

    /// Canonical, bit-exact, single-line text record of the summary.
    ///
    /// The encoding uses IEEE-754 bit patterns for every float, so NaN
    /// payloads and signed zeros survive, and the record of a summary is a
    /// pure function of the *multiset* of observations it absorbed (order
    /// of insertion never leaks into the record).
    fn to_record(&self) -> String;

    /// Decodes a record produced by [`MergeableSummary::to_record`].
    fn from_record(record: &str) -> StatsResult<Self>;
}

pub(crate) fn parse_u64(s: &str) -> StatsResult<u64> {
    s.parse()
        .map_err(|_| StatsError::MalformedSketch("integer field"))
}

pub(crate) fn parse_usize(s: &str) -> StatsResult<usize> {
    s.parse()
        .map_err(|_| StatsError::MalformedSketch("integer field"))
}

/// Configuration of a [`StreamingSummary`].
///
/// Two summaries merge only if their configurations are **bit-identical**
/// — campaign code constructs one `StreamConfig` and hands copies to every
/// worker, which is also what makes the merged result independent of the
/// thread/shard layout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Exact-to-sketch switchover point (number of finite samples).
    pub threshold: usize,
    /// t-digest compression parameter δ.
    pub digest_delta: u32,
    /// Optional shared ECDF grid. `None` keeps digest + moments only.
    pub grid: Option<GridSpec>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            threshold: DEFAULT_STREAM_THRESHOLD,
            digest_delta: DEFAULT_DIGEST_DELTA,
            grid: None,
        }
    }
}

/// Whether a [`StreamingSummary`] is still exact or has switched to
/// sketches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Repr {
    /// Below the threshold: every finite sample, in insertion order.
    Exact(Vec<f64>),
    /// Above the threshold: t-digest over all finite samples so far.
    Digest(TDigest),
}

/// Adaptive bounded-memory summary: exact below
/// [`StreamConfig::threshold`], sketch-backed above it.
///
/// The moment accumulator is always exact (Welford is streaming already);
/// only order statistics degrade to sketch precision after the switch.
/// [`StreamingSummary::is_exact`] discloses which regime produced the
/// numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingSummary {
    threshold: usize,
    digest_delta: u32,
    moments: OnlineMoments,
    repr: Repr,
    grid: Option<GridSketch>,
}

impl StreamingSummary {
    /// Creates an empty summary with the given configuration.
    pub fn new(config: StreamConfig) -> StatsResult<Self> {
        if config.threshold == 0 {
            return Err(StatsError::InvalidParameter {
                name: "threshold",
                value: 0.0,
            });
        }
        // Probe-construct a digest so an invalid δ fails here, at
        // configuration time, not at the promotion deep inside a worker.
        TDigest::new(config.digest_delta)?;
        let grid = config.grid.map(GridSketch::new).transpose()?;
        Ok(Self {
            threshold: config.threshold,
            digest_delta: config.digest_delta,
            moments: OnlineMoments::new(),
            repr: Repr::Exact(Vec::new()),
            grid,
        })
    }

    /// The exact-to-sketch switchover threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// `true` while every order statistic is computed from the full
    /// sample; `false` once quantiles come from the t-digest.
    pub fn is_exact(&self) -> bool {
        matches!(self.repr, Repr::Exact(_))
    }

    /// Short label of the active regime, for reports and disclosure.
    pub fn mode_label(&self) -> &'static str {
        if self.is_exact() {
            "exact"
        } else {
            "sketch"
        }
    }

    /// The exact Welford moment accumulator (never approximated).
    pub fn moments(&self) -> &OnlineMoments {
        &self.moments
    }

    /// The shared-grid ECDF sketch, when configured.
    pub fn grid(&self) -> Option<&GridSketch> {
        self.grid.as_ref()
    }

    /// Mean of the finite observations; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        self.moments.mean()
    }

    /// Sample standard deviation; `None` below two observations.
    pub fn std_dev(&self) -> Option<f64> {
        self.moments.std_dev()
    }

    /// Smallest finite observation; `None` when empty. Exact in both
    /// regimes (the digest tracks true extrema).
    pub fn min(&self) -> Option<f64> {
        self.moments.min()
    }

    /// Largest finite observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.moments.max()
    }

    /// The `p`-quantile: exact below the threshold, t-digest above it.
    pub fn quantile(&self, p: f64) -> StatsResult<f64> {
        match &self.repr {
            Repr::Exact(values) => {
                if values.is_empty() {
                    return Err(StatsError::EmptySample);
                }
                if !(0.0..=1.0).contains(&p) {
                    return Err(StatsError::InvalidProbability {
                        name: "p",
                        value: p,
                    });
                }
                Ok(quantile_sorted(
                    &crate::sorted_copy(values),
                    p,
                    QuantileMethod::Interpolated,
                ))
            }
            Repr::Digest(d) => d.quantile(p),
        }
    }

    /// Median; same regimes as [`StreamingSummary::quantile`].
    pub fn median(&self) -> StatsResult<f64> {
        self.quantile(0.5)
    }

    /// Min / quartiles / max. Extrema are exact in both regimes.
    pub fn five_number(&self) -> StatsResult<FiveNumberSummary> {
        Ok(FiveNumberSummary {
            min: self.min().ok_or(StatsError::EmptySample)?,
            q1: self.quantile(0.25)?,
            median: self.quantile(0.5)?,
            q3: self.quantile(0.75)?,
            max: self.max().ok_or(StatsError::EmptySample)?,
        })
    }

    /// Nonparametric `1−α` CI of the `p`-quantile.
    ///
    /// Below the threshold this is the classical Le Boudec order-statistic
    /// interval, bit-identical to [`SortedSamples::quantile_ci`]. Above it
    /// the rank bounds are still computed exactly, but the order statistics
    /// at those ranks are read from the t-digest — the interval inherits
    /// the sketch's rank error and must be disclosed as approximate
    /// (check [`StreamingSummary::is_exact`]).
    pub fn quantile_ci(&self, p: f64, confidence: f64) -> StatsResult<ConfidenceInterval> {
        match &self.repr {
            Repr::Exact(values) => {
                let sorted = SortedSamples::new(values)?;
                sorted.quantile_ci(p, confidence)
            }
            Repr::Digest(d) => {
                let n = self.moments.count() as usize;
                let ranks = quantile_ci_ranks(n, p, confidence)?;
                // Rank r (1-based) sits at empirical probability
                // (r − 0.5)/n; read the sketch's order statistics there.
                let nf = n as f64;
                Ok(ConfidenceInterval {
                    estimate: d.quantile(p)?,
                    lower: d.quantile((ranks.lower as f64 - 0.5) / nf)?,
                    upper: d.quantile((ranks.upper as f64 - 0.5) / nf)?,
                    confidence,
                })
            }
        }
    }

    /// Nonparametric `1−α` CI of the median; see
    /// [`StreamingSummary::quantile_ci`].
    pub fn median_ci(&self, confidence: f64) -> StatsResult<ConfidenceInterval> {
        self.quantile_ci(0.5, confidence)
    }

    /// Estimated resident size in bytes — the number the memory-vs-n table
    /// in EXPERIMENTS.md reports. O(n) while exact, O(δ + grid bins) after
    /// the switch.
    pub fn resident_bytes(&self) -> usize {
        let repr = match &self.repr {
            Repr::Exact(v) => v.capacity() * 8,
            Repr::Digest(d) => d.resident_bytes(),
        };
        let grid = self.grid.as_ref().map(|g| g.resident_bytes()).unwrap_or(0);
        repr + grid + std::mem::size_of::<Self>()
    }

    /// Converts the exact buffer into a t-digest. The buffer is sorted
    /// first so the resulting digest is a pure function of the multiset of
    /// samples — insertion order never changes the promoted sketch's bits.
    fn promote(&mut self) -> StatsResult<()> {
        if let Repr::Exact(values) = &self.repr {
            let mut digest = TDigest::new(self.digest_delta)?;
            for &x in &crate::sorted_copy(values) {
                digest.push(x);
            }
            self.repr = Repr::Digest(digest);
        }
        Ok(())
    }
}

impl MergeableSummary for StreamingSummary {
    fn push(&mut self, x: f64) {
        self.moments.push(x);
        if let Some(g) = &mut self.grid {
            g.push(x);
        }
        if !x.is_finite() {
            return;
        }
        let over = match &mut self.repr {
            Repr::Exact(values) => {
                values.push(x);
                values.len() > self.threshold
            }
            Repr::Digest(d) => {
                d.push(x);
                false
            }
        };
        if over {
            self.promote().expect("validated at construction");
        }
    }

    fn merge_from(&mut self, other: &Self) -> StatsResult<()> {
        if self.threshold != other.threshold {
            return Err(StatsError::MismatchedSketch("stream threshold differs"));
        }
        if self.digest_delta != other.digest_delta {
            return Err(StatsError::MismatchedSketch("digest delta differs"));
        }
        match (&mut self.grid, &other.grid) {
            (None, None) => {}
            (Some(g), Some(og)) => g.merge_from(og)?,
            _ => return Err(StatsError::MismatchedSketch("grid presence differs")),
        }
        self.moments.merge(&other.moments);
        match (&mut self.repr, &other.repr) {
            (Repr::Exact(a), Repr::Exact(b)) => {
                a.extend_from_slice(b);
                if a.len() > self.threshold {
                    self.promote()?;
                }
            }
            (Repr::Exact(_), Repr::Digest(od)) => {
                self.promote()?;
                if let Repr::Digest(d) = &mut self.repr {
                    d.merge_from(od)?;
                }
            }
            (Repr::Digest(d), Repr::Exact(b)) => {
                d.merge_sorted_values(&crate::sorted_copy(b));
            }
            (Repr::Digest(d), Repr::Digest(od)) => d.merge_from(od)?,
        }
        Ok(())
    }

    fn count(&self) -> u64 {
        self.moments.count()
    }

    fn non_finite_count(&self) -> u64 {
        self.moments.non_finite_count()
    }

    fn to_record(&self) -> String {
        let grid = match &self.grid {
            Some(g) => g.to_record(),
            None => "-".to_string(),
        };
        let repr = match &self.repr {
            Repr::Exact(values) => {
                let sorted = crate::sorted_copy(values);
                let vals: Vec<String> = sorted.iter().map(|&x| f64_to_hex(x)).collect();
                format!("exact:{}", vals.join(","))
            }
            Repr::Digest(d) => format!("digest:{}", d.to_record()),
        };
        format!(
            "ss1|thr={}|delta={}|mom={}|grid={}|repr={}",
            self.threshold,
            self.digest_delta,
            self.moments.to_record(),
            grid,
            repr
        )
    }

    fn from_record(record: &str) -> StatsResult<Self> {
        let mut parts = record.split('|');
        if parts.next() != Some("ss1") {
            return Err(StatsError::MalformedSketch("expected ss1 tag"));
        }
        let mut threshold = None;
        let mut delta = None;
        let mut moments = None;
        let mut grid = None;
        let mut repr = None;
        for part in parts {
            let (key, value) = part
                .split_once('=')
                .ok_or(StatsError::MalformedSketch("missing '=' in ss1 field"))?;
            match key {
                "thr" => threshold = Some(parse_usize(value)?),
                "delta" => delta = Some(parse_u64(value)? as u32),
                "mom" => moments = Some(OnlineMoments::from_record(value)?),
                "grid" => {
                    grid = Some(if value == "-" {
                        None
                    } else {
                        Some(GridSketch::from_record(value)?)
                    })
                }
                "repr" => {
                    let (kind, body) = value
                        .split_once(':')
                        .ok_or(StatsError::MalformedSketch("missing repr kind"))?;
                    repr = Some(match kind {
                        "exact" => {
                            let mut values = Vec::new();
                            if !body.is_empty() {
                                for v in body.split(',') {
                                    values.push(f64_from_hex(v)?);
                                }
                            }
                            Repr::Exact(values)
                        }
                        "digest" => Repr::Digest(TDigest::from_record(body)?),
                        _ => return Err(StatsError::MalformedSketch("unknown repr kind")),
                    });
                }
                _ => return Err(StatsError::MalformedSketch("unknown ss1 field")),
            }
        }
        let threshold = threshold.ok_or(StatsError::MalformedSketch("missing thr"))?;
        let digest_delta = delta.ok_or(StatsError::MalformedSketch("missing delta"))?;
        if threshold == 0 {
            return Err(StatsError::MalformedSketch("zero threshold"));
        }
        Ok(Self {
            threshold,
            digest_delta,
            moments: moments.ok_or(StatsError::MalformedSketch("missing mom"))?,
            repr: repr.ok_or(StatsError::MalformedSketch("missing repr"))?,
            grid: grid.ok_or(StatsError::MalformedSketch("missing grid"))?,
        })
    }
}

/// Bit-exact records on the exact Welford accumulator, so it can ride
/// through journals and shard frames like the sketches do.
impl MergeableSummary for OnlineMoments {
    fn push(&mut self, x: f64) {
        OnlineMoments::push(self, x);
    }

    fn merge_from(&mut self, other: &Self) -> StatsResult<()> {
        self.merge(other);
        Ok(())
    }

    fn count(&self) -> u64 {
        OnlineMoments::count(self)
    }

    fn non_finite_count(&self) -> u64 {
        OnlineMoments::non_finite_count(self)
    }

    fn to_record(&self) -> String {
        moments::online_moments_to_record(self)
    }

    fn from_record(record: &str) -> StatsResult<Self> {
        moments::online_moments_from_record(record)
    }
}

impl MergeableSummary for crate::summary::HigherMoments {
    fn push(&mut self, x: f64) {
        crate::summary::HigherMoments::push(self, x);
    }

    fn merge_from(&mut self, other: &Self) -> StatsResult<()> {
        self.merge(other);
        Ok(())
    }

    fn count(&self) -> u64 {
        crate::summary::HigherMoments::count(self)
    }

    fn non_finite_count(&self) -> u64 {
        crate::summary::HigherMoments::non_finite_count(self)
    }

    fn to_record(&self) -> String {
        moments::higher_moments_to_record(self)
    }

    fn from_record(record: &str) -> StatsResult<Self> {
        moments::higher_moments_from_record(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threshold: usize) -> StreamConfig {
        StreamConfig {
            threshold,
            ..StreamConfig::default()
        }
    }

    fn filled(config: StreamConfig, xs: &[f64]) -> StreamingSummary {
        let mut s = StreamingSummary::new(config).unwrap();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Low-discrepancy heavy-tailed values (deterministic, no RNG).
    fn pareto_like(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let u = ((i as f64 + 0.5) * 0.618_033_988_749_894_9).fract();
                (1.0 - u).powf(-0.7)
            })
            .collect()
    }

    #[test]
    fn exact_regime_matches_sorted_samples_bitwise() {
        let xs = pareto_like(500);
        let s = filled(cfg(4096), &xs);
        assert!(s.is_exact());
        assert_eq!(s.mode_label(), "exact");
        let sorted = SortedSamples::new(&xs).unwrap();
        for p in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                s.quantile(p).unwrap().to_bits(),
                sorted
                    .quantile(p, QuantileMethod::Interpolated)
                    .unwrap()
                    .to_bits(),
                "p={p}"
            );
        }
        let ci = s.median_ci(0.95).unwrap();
        let exact_ci = sorted.median_ci(0.95).unwrap();
        assert_eq!(ci.lower.to_bits(), exact_ci.lower.to_bits());
        assert_eq!(ci.upper.to_bits(), exact_ci.upper.to_bits());
    }

    #[test]
    fn promotion_keeps_quantiles_within_rank_error() {
        let n = 40_000;
        let xs = pareto_like(n);
        let s = filled(cfg(1024), &xs);
        assert!(!s.is_exact());
        assert_eq!(s.count(), n as u64);
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        for p in [0.05, 0.25, 0.5, 0.75, 0.95, 0.99] {
            let est = s.quantile(p).unwrap();
            // Rank error: where does the estimate fall in the exact ECDF?
            let rank = sorted.partition_point(|&v| v <= est) as f64 / n as f64;
            assert!(
                (rank - p).abs() <= 0.01,
                "p={p}: estimate {est} has rank {rank}"
            );
        }
        // Extrema and moments stay exact through promotion.
        assert_eq!(s.min().unwrap().to_bits(), sorted[0].to_bits());
        assert_eq!(s.max().unwrap().to_bits(), sorted[n - 1].to_bits());
        assert!(s.resident_bytes() < n * 8 / 4, "{}", s.resident_bytes());
    }

    #[test]
    fn merge_combinations_agree_on_the_multiset() {
        let xs = pareto_like(6_000);
        let single = filled(cfg(1000), &xs);
        // exact+exact (stays exact), exact+exact (promotes),
        // digest+exact, exact+digest, digest+digest.
        let splits = [(300, "ee"), (2_000, "de"), (5_500, "ed")];
        for (cut, label) in splits {
            let mut a = filled(cfg(1000), &xs[..cut]);
            let b = filled(cfg(1000), &xs[cut..]);
            a.merge_from(&b).unwrap();
            assert_eq!(a.count(), single.count(), "{label}");
            // A pairwise merge is deterministic but not bit-identical to
            // the sequential fold (that is the whole reason KeyedPartials
            // canonicalizes the merge order); it is however the same to
            // floating-point accuracy.
            let (am, sm) = (a.mean().unwrap(), single.mean().unwrap());
            assert!((am - sm).abs() / sm < 1e-12, "{label}: {am} vs {sm}");
            // Repeating the identical merge is bit-reproducible.
            let mut a2 = filled(cfg(1000), &xs[..cut]);
            a2.merge_from(&b).unwrap();
            assert_eq!(a2.to_record(), a.to_record(), "{label}");
            let med = a.median().unwrap();
            let exact = single.median().unwrap();
            assert!(
                (med - exact).abs() / exact < 0.05,
                "{label}: {med} vs {exact}"
            );
        }
    }

    #[test]
    fn grid_config_round_trips_and_gates_merges() {
        let spec = GridSpec {
            lo: 0.0,
            hi: 10.0,
            bins: 64,
        };
        let config = StreamConfig {
            grid: Some(spec),
            ..StreamConfig::default()
        };
        let s = filled(config, &[1.0, 2.5, 11.0, f64::NAN]);
        assert_eq!(s.grid().unwrap().overflow(), 1);
        let back = StreamingSummary::from_record(&s.to_record()).unwrap();
        assert_eq!(back.to_record(), s.to_record());
        let mut plain = filled(cfg(4096), &[1.0]);
        assert!(matches!(
            plain.merge_from(&s),
            Err(StatsError::MismatchedSketch(_))
        ));
    }

    #[test]
    fn record_is_a_pure_function_of_the_multiset() {
        let mut fwd = StreamingSummary::new(cfg(4096)).unwrap();
        let mut rev = StreamingSummary::new(cfg(4096)).unwrap();
        let xs = [3.0, 1.0, f64::NAN, 2.0, -0.0];
        for &x in &xs {
            fwd.push(x);
        }
        for &x in xs.iter().rev() {
            rev.push(x);
        }
        assert_eq!(fwd.to_record(), rev.to_record());
        assert_eq!(fwd.non_finite_count(), 1);
        let back = StreamingSummary::from_record(&fwd.to_record()).unwrap();
        assert_eq!(back.to_record(), fwd.to_record());
        assert!(StreamingSummary::from_record("ss1|thr=0").is_err());
        assert!(StreamingSummary::from_record("nope").is_err());
    }

    #[test]
    fn invalid_configs_rejected_at_construction() {
        assert!(StreamingSummary::new(cfg(0)).is_err());
        assert!(StreamingSummary::new(StreamConfig {
            digest_delta: 3,
            ..StreamConfig::default()
        })
        .is_err());
        assert!(StreamingSummary::new(StreamConfig {
            grid: Some(GridSpec {
                lo: 1.0,
                hi: 1.0,
                bins: 4
            }),
            ..StreamConfig::default()
        })
        .is_err());
    }
}
