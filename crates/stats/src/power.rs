//! Statistical power analysis for comparison experiments.
//!
//! §4.2.2 of the paper plans the number of measurements needed to *estimate*
//! a quantity to a target precision; this module answers the dual planning
//! question for *comparisons* (Rule 7): how many measurements per group are
//! needed so that a real difference of a given effect size is actually
//! detected — avoiding the under-powered "we observed no significant
//! difference" non-results the paper's survey is full of.
//!
//! Normal-approximation formulas (two-sided two-sample t/z test):
//!
//! ```text
//! n per group = 2 · ((z_{1−α/2} + z_{power}) / d)²
//! ```

use crate::dist::normal::{std_normal_cdf, std_normal_inv_cdf};
use crate::error::{StatsError, StatsResult};

/// Number of samples *per group* for a two-sided two-sample comparison to
/// detect a standardized effect `d` (Cohen's d) at significance `alpha`
/// with probability `power`.
pub fn required_samples_two_sample(d: f64, alpha: f64, power: f64) -> StatsResult<usize> {
    validate(alpha, power)?;
    if !(d.is_finite() && d != 0.0) {
        return Err(StatsError::InvalidParameter {
            name: "d",
            value: d,
        });
    }
    let z_alpha = std_normal_inv_cdf(1.0 - alpha / 2.0);
    let z_power = std_normal_inv_cdf(power);
    let n = 2.0 * ((z_alpha + z_power) / d.abs()).powi(2);
    Ok(n.ceil().max(2.0) as usize)
}

/// Achieved power of a two-sided two-sample comparison with `n` samples
/// per group and true standardized effect `d` at significance `alpha`.
pub fn power_two_sample(n: usize, d: f64, alpha: f64) -> StatsResult<f64> {
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(StatsError::InvalidProbability {
            name: "alpha",
            value: alpha,
        });
    }
    if n < 2 {
        return Err(StatsError::TooFewSamples {
            required: 2,
            actual: n,
        });
    }
    if !d.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "d",
            value: d,
        });
    }
    let z_alpha = std_normal_inv_cdf(1.0 - alpha / 2.0);
    let ncp = d.abs() * (n as f64 / 2.0).sqrt();
    // P[|Z + ncp| > z_alpha] ≈ Φ(ncp − z_alpha) + Φ(−ncp − z_alpha).
    let p = std_normal_cdf(ncp - z_alpha) + std_normal_cdf(-ncp - z_alpha);
    Ok(p.clamp(0.0, 1.0))
}

/// The smallest standardized effect detectable with `n` samples per group
/// at significance `alpha` and the given `power` (the experiment's
/// "minimum detectable effect", useful for reporting what a null result
/// actually rules out).
pub fn minimum_detectable_effect(n: usize, alpha: f64, power: f64) -> StatsResult<f64> {
    validate(alpha, power)?;
    if n < 2 {
        return Err(StatsError::TooFewSamples {
            required: 2,
            actual: n,
        });
    }
    let z_alpha = std_normal_inv_cdf(1.0 - alpha / 2.0);
    let z_power = std_normal_inv_cdf(power);
    Ok((z_alpha + z_power) * (2.0 / n as f64).sqrt())
}

fn validate(alpha: f64, power: f64) -> StatsResult<()> {
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(StatsError::InvalidProbability {
            name: "alpha",
            value: alpha,
        });
    }
    if !(power > 0.0 && power < 1.0) {
        return Err(StatsError::InvalidProbability {
            name: "power",
            value: power,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_sample_size() {
        // Classic: d = 0.5 (medium), alpha = 0.05, power = 0.8 → n ≈ 63-64
        // per group (z-approximation gives 63; t-correction 64).
        let n = required_samples_two_sample(0.5, 0.05, 0.8).unwrap();
        assert!((62..=65).contains(&n), "n = {n}");
        // Large effect needs few samples.
        let n = required_samples_two_sample(1.2, 0.05, 0.8).unwrap();
        assert!(n <= 12, "n = {n}");
    }

    #[test]
    fn smaller_effects_need_quadratically_more_samples() {
        let n_half = required_samples_two_sample(0.5, 0.05, 0.8).unwrap();
        let n_tenth = required_samples_two_sample(0.1, 0.05, 0.8).unwrap();
        let ratio = n_tenth as f64 / n_half as f64;
        assert!((20.0..30.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn power_round_trips_with_required_n() {
        for &d in &[0.2, 0.5, 0.8] {
            let n = required_samples_two_sample(d, 0.05, 0.8).unwrap();
            let p = power_two_sample(n, d, 0.05).unwrap();
            assert!(p >= 0.79, "d={d}: power {p} at n={n}");
            // One fifth the samples: clearly under-powered.
            let p_low = power_two_sample((n / 5).max(2), d, 0.05).unwrap();
            assert!(p_low < p);
        }
    }

    #[test]
    fn power_at_zero_effect_is_alpha() {
        let p = power_two_sample(100, 0.0, 0.05).unwrap();
        assert!((p - 0.05).abs() < 1e-6, "p = {p}");
    }

    #[test]
    fn mde_round_trips() {
        let n = 100;
        let mde = minimum_detectable_effect(n, 0.05, 0.8).unwrap();
        let p = power_two_sample(n, mde, 0.05).unwrap();
        assert!((p - 0.8).abs() < 0.02, "power {p} at mde {mde}");
        // More samples → smaller detectable effect.
        let mde_big = minimum_detectable_effect(1000, 0.05, 0.8).unwrap();
        assert!(mde_big < mde);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(required_samples_two_sample(0.0, 0.05, 0.8).is_err());
        assert!(required_samples_two_sample(0.5, 0.0, 0.8).is_err());
        assert!(required_samples_two_sample(0.5, 0.05, 1.0).is_err());
        assert!(power_two_sample(1, 0.5, 0.05).is_err());
        assert!(minimum_detectable_effect(1, 0.05, 0.8).is_err());
    }
}
