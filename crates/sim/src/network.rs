//! Point-to-point message cost model (LogGP-style).
//!
//! The deterministic cost of sending `bytes` from node `a` to node `b` is
//!
//! ```text
//! T = injection + hops(a, b) · per_hop + bytes / bandwidth [+ rendezvous]
//! ```
//!
//! with the rendezvous handshake added above the eager threshold — the
//! protocol switch responsible for the piecewise latency curves every MPI
//! implementation exhibits. Noise is applied on top by callers through the
//! machine's [`crate::noise::NoiseProfile`].

use crate::fault::{FaultContext, SimFault};
use crate::machine::MachineSpec;
use crate::noise::NoiseProfile;
use crate::rng::SimRng;

/// Message transfer model bound to one machine.
#[derive(Debug, Clone)]
pub struct NetworkModel<'m> {
    machine: &'m MachineSpec,
}

impl<'m> NetworkModel<'m> {
    /// Creates the model for a machine.
    pub fn new(machine: &'m MachineSpec) -> Self {
        Self { machine }
    }

    /// The machine this model describes.
    pub fn machine(&self) -> &MachineSpec {
        self.machine
    }

    /// Deterministic (noise-free) transfer time in nanoseconds for a
    /// message of `bytes` from node `src` to node `dst`.
    pub fn base_transfer_ns(&self, src: usize, dst: usize, bytes: usize) -> f64 {
        let net = &self.machine.network;
        if src == dst {
            // Intra-node (shared memory): a fraction of the injection cost
            // plus a fast memcpy.
            return net.injection_ns * 0.3 + bytes as f64 / (net.bandwidth_bytes_per_ns * 4.0);
        }
        let hops = net.topology.hops(src, dst) as f64;
        let mut t =
            net.injection_ns + hops * net.per_hop_ns + bytes as f64 / net.bandwidth_bytes_per_ns;
        if bytes > net.eager_threshold_bytes {
            t += net.rendezvous_ns;
        }
        t
    }

    /// Noisy transfer time: the base cost perturbed by the machine's noise
    /// profile.
    pub fn transfer_ns(&self, src: usize, dst: usize, bytes: usize, rng: &mut SimRng) -> f64 {
        let base = self.base_transfer_ns(src, dst, bytes);
        self.machine.noise.perturb(base, rng)
    }

    /// Noisy transfer time on a machine with injected faults.
    ///
    /// Checks the fault context before and during the transfer:
    /// a crashed endpoint fails the transfer outright; a straggler
    /// endpoint multiplies its cost; a flaky link pays a retransmit
    /// penalty per dropped packet and fails once the retransmit budget
    /// is exhausted. Noise draws still come from `rng` (the base stream),
    /// while link-drop coins come from the context's dedicated stream, so
    /// a transfer experiencing zero fault events costs exactly what
    /// [`NetworkModel::transfer_ns`] would report. On success the
    /// context's simulation clock advances by the total cost.
    pub fn transfer_faulty_ns(
        &self,
        src: usize,
        dst: usize,
        bytes: usize,
        ctx: &mut FaultContext,
        rng: &mut SimRng,
    ) -> Result<f64, SimFault> {
        let base = self.base_transfer_ns(src, dst, bytes);
        self.transfer_faulty_from_base_ns(src, dst, base, ctx, rng)
    }

    /// [`NetworkModel::transfer_faulty_ns`] with the deterministic base
    /// cost precomputed by the caller — the hot-path entry point used by
    /// the ping-pong loop and the compiled-schedule replayer, which hoist
    /// [`NetworkModel::base_transfer_ns`] out of their sample loops.
    /// `base_ns` must equal `base_transfer_ns(src, dst, bytes)` for the
    /// message this transfer models; noise and fault draws are then
    /// bit-identical to the recomputing variant.
    pub fn transfer_faulty_from_base_ns(
        &self,
        src: usize,
        dst: usize,
        base_ns: f64,
        ctx: &mut FaultContext,
        rng: &mut SimRng,
    ) -> Result<f64, SimFault> {
        for node in [src, dst] {
            if let Some(fault) = ctx.crashed(node) {
                return Err(fault);
            }
        }
        let mut t = self.machine.noise.perturb(base_ns, rng);
        let schedule = ctx.schedule();
        let slowdown = schedule.slowdown_of(src).max(schedule.slowdown_of(dst));
        t *= slowdown;
        let max_retransmits = schedule.plan().max_retransmits;
        let retransmit_penalty_ns = schedule.plan().retransmit_penalty_ns;
        let mut drops = 0u32;
        while ctx.link_drop_coin() {
            drops += 1;
            if drops > max_retransmits {
                return Err(SimFault::LinkFailed { src, dst, drops });
            }
            // Resend: pay the penalty plus another (deterministic) transfer.
            t += retransmit_penalty_ns + base_ns * slowdown;
        }
        ctx.advance(t);
        Ok(t)
    }

    /// Noisy transfer time under an overridden noise profile (used by the
    /// ablation benches to isolate noise sources).
    pub fn transfer_with_noise_ns(
        &self,
        src: usize,
        dst: usize,
        bytes: usize,
        noise: &NoiseProfile,
        rng: &mut SimRng,
    ) -> f64 {
        noise.perturb(self.base_transfer_ns(src, dst, bytes), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineSpec;

    #[test]
    fn base_cost_components() {
        let m = MachineSpec::test_machine(8);
        let net = NetworkModel::new(&m);
        // Crossbar: 1 hop. injection 500 + 200 + 64/10 = 706.4
        let t = net.base_transfer_ns(0, 1, 64);
        assert!((t - 706.4).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn bandwidth_term_scales_with_bytes() {
        let m = MachineSpec::test_machine(8);
        let net = NetworkModel::new(&m);
        let t1 = net.base_transfer_ns(0, 1, 0);
        let t2 = net.base_transfer_ns(0, 1, 1000);
        assert!((t2 - t1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn rendezvous_kicks_in_above_threshold() {
        let m = MachineSpec::test_machine(8);
        let net = NetworkModel::new(&m);
        let below = net.base_transfer_ns(0, 1, m.network.eager_threshold_bytes);
        let above = net.base_transfer_ns(0, 1, m.network.eager_threshold_bytes + 1);
        let gap = above - below;
        // One extra byte of bandwidth time plus the full rendezvous cost.
        assert!(gap > m.network.rendezvous_ns * 0.99, "gap = {gap}");
    }

    #[test]
    fn intra_node_is_cheaper() {
        let m = MachineSpec::test_machine(8);
        let net = NetworkModel::new(&m);
        assert!(net.base_transfer_ns(3, 3, 64) < net.base_transfer_ns(3, 4, 64));
    }

    #[test]
    fn more_hops_cost_more() {
        let m = MachineSpec::piz_daint();
        let net = NetworkModel::new(&m);
        // Same router (1 hop) vs different group (3 hops).
        let near = net.base_transfer_ns(0, 1, 64);
        let far = net.base_transfer_ns(0, 900, 64);
        assert!(far > near);
        assert!((far - near - 2.0 * m.network.per_hop_ns).abs() < 1e-9);
    }

    #[test]
    fn quiet_machine_transfer_is_deterministic() {
        let m = MachineSpec::test_machine(4);
        let net = NetworkModel::new(&m);
        let mut rng = SimRng::new(1);
        let a = net.transfer_ns(0, 1, 64, &mut rng);
        let b = net.transfer_ns(0, 1, 64, &mut rng);
        assert_eq!(a, b);
        assert_eq!(a, net.base_transfer_ns(0, 1, 64));
    }

    #[test]
    fn faultless_context_matches_infallible_path() {
        use crate::fault::{FaultContext, FaultPlan};
        let m = MachineSpec::piz_dora();
        let net = NetworkModel::new(&m);
        let root = SimRng::new(99);
        let mut rng_a = root.fork("transfers");
        let mut rng_b = root.fork("transfers");
        let mut ctx = FaultContext::new(&FaultPlan::none(), m.nodes, &root);
        for _ in 0..100 {
            let plain = net.transfer_ns(0, 18, 64, &mut rng_a);
            let faulty = net
                .transfer_faulty_ns(0, 18, 64, &mut ctx, &mut rng_b)
                .unwrap();
            assert_eq!(plain, faulty);
        }
        assert!(ctx.now_ns() > 0.0);
    }

    #[test]
    fn crashed_node_fails_transfers() {
        use crate::fault::{FaultContext, FaultPlan, SimFault};
        let m = MachineSpec::test_machine(4);
        let net = NetworkModel::new(&m);
        let root = SimRng::new(1);
        let plan = FaultPlan {
            node_crash_prob: 1.0,
            crash_window_ns: 0.0, // crash immediately
            ..FaultPlan::none()
        };
        let mut ctx = FaultContext::new(&plan, 4, &root);
        let mut rng = root.fork("transfers");
        let err = net.transfer_faulty_ns(0, 1, 64, &mut ctx, &mut rng);
        assert!(matches!(err, Err(SimFault::NodeCrashed { .. })));
    }

    #[test]
    fn straggler_scales_transfer_cost() {
        use crate::fault::{FaultContext, FaultPlan};
        let m = MachineSpec::test_machine(4);
        let net = NetworkModel::new(&m);
        let root = SimRng::new(1);
        let plan = FaultPlan {
            straggler_prob: 1.0,
            straggler_slowdown: 3.0,
            ..FaultPlan::none()
        };
        let mut ctx = FaultContext::new(&plan, 4, &root);
        let mut rng = root.fork("transfers");
        let t = net
            .transfer_faulty_ns(0, 1, 64, &mut ctx, &mut rng)
            .unwrap();
        assert!((t - 3.0 * net.base_transfer_ns(0, 1, 64)).abs() < 1e-9);
    }

    #[test]
    fn certain_link_drop_exhausts_retransmit_budget() {
        use crate::fault::{FaultContext, FaultPlan, SimFault};
        let m = MachineSpec::test_machine(4);
        let net = NetworkModel::new(&m);
        let root = SimRng::new(1);
        let plan = FaultPlan {
            link_drop_prob: 1.0,
            retransmit_penalty_ns: 100.0,
            max_retransmits: 3,
            ..FaultPlan::none()
        };
        let mut ctx = FaultContext::new(&plan, 4, &root);
        let mut rng = root.fork("transfers");
        let err = net.transfer_faulty_ns(0, 1, 64, &mut ctx, &mut rng);
        assert_eq!(
            err,
            Err(SimFault::LinkFailed {
                src: 0,
                dst: 1,
                drops: 4
            })
        );
    }

    #[test]
    fn occasional_drops_add_retransmit_cost() {
        use crate::fault::{FaultContext, FaultPlan};
        let m = MachineSpec::test_machine(4);
        let net = NetworkModel::new(&m);
        let root = SimRng::new(5);
        let plan = FaultPlan {
            link_drop_prob: 0.3,
            retransmit_penalty_ns: 5_000.0,
            max_retransmits: 10,
            ..FaultPlan::none()
        };
        let mut ctx = FaultContext::new(&plan, 4, &root);
        let mut rng = root.fork("transfers");
        let base = net.base_transfer_ns(0, 1, 64);
        let mut saw_retransmit = false;
        for _ in 0..200 {
            let t = net
                .transfer_faulty_ns(0, 1, 64, &mut ctx, &mut rng)
                .unwrap();
            assert!(t >= base - 1e-9);
            if t > base + 4_999.0 {
                saw_retransmit = true;
            }
        }
        assert!(saw_retransmit, "30% drop rate never fired in 200 transfers");
    }

    #[test]
    fn noisy_machine_produces_spread() {
        let m = MachineSpec::piz_dora();
        let net = NetworkModel::new(&m);
        let mut rng = SimRng::new(7);
        let xs: Vec<f64> = (0..1000)
            .map(|_| net.transfer_ns(0, 8, 64, &mut rng))
            .collect();
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(0.0, f64::max);
        assert!(max > min * 1.05, "min {min} max {max}");
        // All above half the base cost (noise only adds, modulo jitter).
        let base = net.base_transfer_ns(0, 8, 64);
        assert!(min > base * 0.5);
    }
}
