//! Regenerates Figure 7(c): box/violin/combined latency plots.

use std::process::ExitCode;

use scibench_bench::figures::fig7c_plots;
use scibench_bench::{output, samples_from_env, DEFAULT_SEED};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig7c_plots: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let samples = samples_from_env(1_000_000);
    let fig = fig7c_plots::compute(samples, DEFAULT_SEED)?;
    println!("{}", fig.render());
    let path = output::write_csv("fig7c_plots", &fig.dataset())?;
    println!("plot stats: {}", path.display());
    Ok(())
}
