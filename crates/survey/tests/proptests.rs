//! Property-based tests of the survey aggregation logic against
//! synthetic surveys, plus cross-checks of the embedded dataset.

use proptest::prelude::*;

use scibench_survey::dataset::paper_dataset;
use scibench_survey::model::{
    AnalysisCriterion, Conference, DesignCriterion, Grade, PaperRecord, Survey, YEARS,
};
use scibench_survey::score::{group_scores, render_mini_box};

fn any_grade() -> impl Strategy<Value = Grade> {
    prop_oneof![Just(Grade::Satisfied), Just(Grade::Unsatisfied)]
}

fn any_paper() -> impl Strategy<Value = PaperRecord> {
    (
        0usize..3,
        0usize..4,
        prop::collection::vec(any_grade(), 9),
        prop::collection::vec(any_grade(), 4),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(conf, year, design, analysis, speedup, applicable)| PaperRecord {
                conference: Conference::ALL[conf],
                year: YEARS[year],
                index: 0,
                applicable,
                design: design.try_into().unwrap(),
                analysis: analysis.try_into().unwrap(),
                reports_speedup: speedup,
                speedup_base_given: !speedup,
                units_unambiguous: false,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn design_counts_bounded_by_applicable(papers in prop::collection::vec(any_paper(), 1..60)) {
        let survey = Survey { papers };
        let applicable = survey.applicable().count();
        for c in DesignCriterion::ALL {
            prop_assert!(survey.design_count(c) <= applicable);
        }
        for c in AnalysisCriterion::ALL {
            prop_assert!(survey.analysis_count(c) <= applicable);
        }
    }

    #[test]
    fn group_partition_is_complete(papers in prop::collection::vec(any_paper(), 1..60)) {
        let survey = Survey { papers };
        let mut total = 0;
        for conf in Conference::ALL {
            for &year in &YEARS {
                total += survey.group(conf, year).len();
            }
        }
        prop_assert_eq!(total, survey.len());
    }

    #[test]
    fn design_scores_bounded(papers in prop::collection::vec(any_paper(), 1..60)) {
        for p in &papers {
            prop_assert!(p.design_score() <= 9);
        }
        let survey = Survey { papers };
        for g in group_scores(&survey) {
            let strip = render_mini_box(&g);
            prop_assert_eq!(strip.chars().count(), 10);
            if let Some(b) = g.box_stats {
                prop_assert!(b.min >= 0.0 && b.max <= 9.0);
            }
        }
    }

    #[test]
    fn speedup_stats_consistent(papers in prop::collection::vec(any_paper(), 1..60)) {
        let survey = Survey { papers };
        let (with, missing) = survey.speedup_stats();
        prop_assert!(missing <= with);
        prop_assert!(with <= survey.applicable().count());
    }
}

#[test]
fn embedded_dataset_row_sums_match_columns() {
    // Cross-check: summing per-group satisfied counts reproduces the
    // global counts (the aggregation is a partition).
    let survey = paper_dataset();
    for c in DesignCriterion::ALL {
        let mut by_groups = 0;
        for conf in Conference::ALL {
            for &year in &YEARS {
                by_groups += survey
                    .group(conf, year)
                    .iter()
                    .filter(|p| p.applicable && p.design_grade(c) == Grade::Satisfied)
                    .count();
            }
        }
        assert_eq!(by_groups, c.published_count(), "{c:?}");
    }
}
