//! Noise propagation in a bulk-synchronous application (§4.2.1):
//! "small perturbations in one process can propagate to other processes."
//!
//! Runs the same BSP kernel at increasing scale on the Piz Daint model,
//! showing the efficiency collapse caused purely by per-rank noise, then
//! uses the Rule 10 machinery (ANOVA + post-hoc tests) to find which
//! ranks of an imbalanced run actually differ.
//!
//! Run with: `cargo run --example bsp_noise`

use scibench::parallel::summarize_across_processes;
use scibench_sim::alloc::{Allocation, AllocationPolicy};
use scibench_sim::bsp::{bsp_run, BspConfig};
use scibench_sim::machine::MachineSpec;
use scibench_sim::rng::SimRng;
use scibench_stats::htest::pairwise_bonferroni;

fn main() {
    let machine = MachineSpec::piz_daint();

    // Part 1: noise amplification with scale.
    println!("BSP kernel, 50 iterations x 1 ms work/rank, Piz Daint model:");
    println!("p     total[ms]   efficiency   mean wait fraction");
    let config = BspConfig::balanced(50, 1.0e6);
    for p in [2usize, 4, 8, 16, 32, 64, 128] {
        let mut rng = SimRng::new(42).fork_indexed("scale", p as u64);
        let alloc = Allocation::one_rank_per_node(&machine, p, AllocationPolicy::Packed, &mut rng);
        let run = bsp_run(&machine, &alloc, &config, &mut rng);
        let mean_wait: f64 = (0..p).map(|r| run.wait_fraction(r)).sum::<f64>() / p as f64;
        println!(
            "{:<5} {:9.1}   {:9.3}    {:9.3}",
            p,
            run.total_ns * 1e-6,
            run.efficiency(),
            mean_wait
        );
    }
    println!(
        "\nThe same noise profile wastes a growing share of every iteration as p\n\
         grows: each superstep runs at the pace of the slowest rank.\n"
    );

    // Part 2: per-rank analysis of an imbalanced run (Rule 10 workflow).
    let p = 16;
    let reps = 40;
    let imbalanced = BspConfig {
        imbalance: 0.25,
        ..BspConfig::balanced(5, 1.0e6)
    };
    let mut per_rank_compute: Vec<Vec<f64>> = (0..p).map(|_| Vec::with_capacity(reps)).collect();
    let mut rng = SimRng::new(7);
    let alloc = Allocation::one_rank_per_node(&machine, p, AllocationPolicy::Packed, &mut rng);
    for _ in 0..reps {
        let run = bsp_run(&machine, &alloc, &imbalanced, &mut rng);
        for (slot, &c) in per_rank_compute.iter_mut().zip(&run.compute_ns) {
            slot.push(c * 1e-6);
        }
    }
    let analysis = summarize_across_processes(&per_rank_compute, 0.05).unwrap();
    println!(
        "imbalanced run (25% linear skew): ANOVA across ranks F = {:.1}, p = {:.2e}",
        analysis.anova.f, analysis.anova.p_value
    );
    println!(
        "ranks come from one population: {}",
        if analysis.processes_differ {
            "NO - investigate per rank"
        } else {
            "yes"
        }
    );

    // Post-hoc: which rank pairs differ (family-wise alpha 0.05)?
    let refs: Vec<&[f64]> = per_rank_compute.iter().map(Vec::as_slice).collect();
    let pairs = pairwise_bonferroni(&refs, 0.05).unwrap();
    let significant = pairs.iter().filter(|c| c.significant).count();
    println!(
        "post-hoc (Bonferroni): {significant} of {} rank pairs differ significantly",
        pairs.len()
    );
    // Extremes always differ under a 25% skew.
    let extreme = pairs.iter().find(|c| c.i == 0 && c.j == p - 1).unwrap();
    println!(
        "rank 0 vs rank {}: t = {:.1}, adjusted p = {:.2e} -> the skew is real",
        p - 1,
        extreme.test.statistic,
        extreme.adjusted_p
    );
}
