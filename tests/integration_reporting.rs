//! Integration tests of the reporting surface: text and Markdown
//! renderings, CSV datasets, the analyze pipeline and the ASCII plots —
//! everything a reader of a generated report actually sees.

use scibench::data::DataSet;
use scibench::plot::ascii::{render_box, render_density, render_series, render_violin};
use scibench::plot::boxplot::{BoxPlotStats, WhiskerRule};
use scibench::plot::series::Series;
use scibench::plot::violin::ViolinData;
use scibench_bench::analyze::{analyze_column, analyze_pair};
use scibench_bench::figures::{fig1_hpl, fig3_significance, fig7ab_bounds};
use scibench_sim::machine::MachineSpec;
use scibench_sim::pingpong::{pingpong_latencies_us, PingPongConfig};
use scibench_sim::rng::SimRng;
use scibench_stats::kde::{kde, Bandwidth};

fn latencies(n: usize) -> Vec<f64> {
    let mut cfg = PingPongConfig::paper_64b(n);
    cfg.warmup_iterations = 0;
    pingpong_latencies_us(&MachineSpec::piz_dora(), &cfg, &mut SimRng::new(77))
}

#[test]
fn figure_reports_render_in_both_formats() {
    let f3 = fig3_significance::compute(10_000, 1).unwrap();
    let report = f3.report();
    let text = report.render();
    let md = report.render_markdown();
    // Both formats carry the same decisive facts.
    for (t, m) in [
        ("Rule 9", "## Environment (Rule 9)"),
        ("Rule 10", "## Parallel methodology (Rule 10)"),
        ("Kruskal-Wallis", "Kruskal-Wallis"),
    ] {
        assert!(text.contains(t), "text missing {t}");
        assert!(md.contains(m), "markdown missing {m}");
    }
    // The markdown measurement table lists both systems.
    assert!(md.contains("64B ping-pong (Piz Dora)"));
    assert!(md.contains("64B ping-pong (Pilatus)"));
}

#[test]
fn figure_csvs_round_trip_and_are_plottable() {
    let f1 = fig1_hpl::compute(50, 1).unwrap();
    let csv = f1.dataset().to_csv();
    let back = DataSet::from_csv(&csv).unwrap();
    assert_eq!(back.len(), 50);
    let times = back.column("time_s").unwrap();
    assert!(times.iter().all(|&t| t > 100.0 && t < 1000.0));

    let f7 = fig7ab_bounds::compute(5, 1).unwrap();
    let back = DataSet::from_csv(&f7.dataset().to_csv()).unwrap();
    // The bounds columns are ordered: ideal <= amdahl <= parallel-overhead.
    let ideal = back.column("ideal_time_s").unwrap();
    let amdahl = back.column("amdahl_time_s").unwrap();
    let parovh = back.column("parallel_overhead_time_s").unwrap();
    for i in 0..ideal.len() {
        assert!(ideal[i] <= amdahl[i] + 1e-15);
        assert!(amdahl[i] <= parovh[i] + 1e-15);
    }
}

#[test]
fn ascii_plots_render_simulated_data_without_panic() {
    let xs = latencies(5_000);
    let density = kde(&xs, Bandwidth::Silverman, 256).unwrap();
    let d_text = render_density(&density, 70, 10);
    assert!(d_text.contains('#'));

    let b = BoxPlotStats::from_samples("lat", &xs, WhiskerRule::TukeyIqr).unwrap();
    let b_text = render_box(&b, b.five_number.min * 0.9, b.five_number.max * 1.1, 70);
    assert!(b_text.contains('='));

    let v = ViolinData::from_samples("lat", &xs, 128).unwrap();
    let v_text = render_violin(&v, 70, 11);
    assert!(v_text.contains('|'));

    let s = Series::from_xy("demo", &[(1.0, 1.0), (2.0, 4.0), (3.0, 9.0)], true);
    let s_text = render_series(&[&s], 40, 10);
    assert!(s_text.contains('*'));
}

#[test]
fn analyze_pipeline_on_figure_csv() {
    // The analyze tooling consumes the figure exports directly.
    let f1 = fig1_hpl::compute(50, 2).unwrap();
    let data = f1.dataset();
    let col = analyze_column(&data, "tflops", 0.95).unwrap();
    assert!(col.contains("CI(median)"));
    let pair = analyze_pair(&data, "time_s", "tflops", 0.95).unwrap();
    // Times (~290) vs rates (~71): trivially different — the point is the
    // pipeline runs end to end on real exports.
    assert!(pair.contains("SIGNIFICANTLY"));
}
