//! Scaling study with bounds models (Rule 11): the Figure 7 workflow —
//! measure the pi workload at 1..=32 processes, compare against ideal /
//! Amdahl / parallel-overhead bounds, and report speedups with their
//! base case (Rule 1).
//!
//! Run with: `cargo run --example scaling_study`

use scibench::bounds::{OverheadModel, ScalingBound};
use scibench::plot::ascii::render_series;
use scibench::plot::series::Series;
use scibench::speedup::{BaseCase, Speedup};
use scibench_sim::machine::MachineSpec;
use scibench_sim::pi::{pi_scaling_study, PiConfig};
use scibench_sim::rng::SimRng;
use scibench_stats::ci::mean_ci;

fn main() {
    let machine = MachineSpec::piz_daint();
    let config = PiConfig::paper_figure7();
    let counts: Vec<usize> = (1..=32).collect();
    let mut rng = SimRng::new(7);
    let data = pi_scaling_study(&machine, &config, &counts, 10, &mut rng);

    let base = mean_ci(&data[0], 0.95).unwrap().estimate;
    let bounds = [
        ScalingBound::IdealLinear,
        ScalingBound::Amdahl {
            serial_fraction: config.serial_fraction,
        },
        ScalingBound::ParallelOverhead {
            serial_fraction: config.serial_fraction,
            overhead: OverheadModel::paper_pi_reduction(),
        },
    ];

    println!(
        "p    time[ms]   speedup (vs single parallel process at {:.2} ms)",
        base * 1e3
    );
    let mut measured_pts = Vec::new();
    for (i, &p) in counts.iter().enumerate() {
        let ci = mean_ci(&data[i], 0.95).unwrap();
        let s = Speedup::from_times(base, ci.estimate, BaseCase::SingleParallelProcess);
        measured_pts.push((p as f64, s.factor()));
        if p.is_power_of_two() {
            println!("{:<4} {:9.3}  {}", p, ci.estimate * 1e3, s);
        }
    }

    let mut series = vec![Series::from_xy("Measurement Result", &measured_pts, true)];
    for b in &bounds {
        let pts: Vec<(f64, f64)> = counts
            .iter()
            .map(|&p| (p as f64, b.speedup_bound(config.base_time_s, p)))
            .collect();
        series.push(Series::from_xy(b.label(), &pts, true));
    }
    let refs: Vec<&Series> = series.iter().collect();
    println!("\nspeedup vs bounds:\n{}", render_series(&refs, 76, 18));
    println!(
        "Rule 11: the parallel-overheads bound explains nearly all observed scaling;\n\
         super-linear claims would be immediately visible above the ideal line."
    );
}
