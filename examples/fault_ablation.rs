//! Fault ablation: how much injected failure can a campaign absorb
//! before its summaries drift?
//!
//! Sweeps `FaultPlan::with_failure_rate` over a ping-pong transfer
//! campaign run through the *resilient* runner. Each rate reports the
//! campaign health (Rule 4: failed runs are disclosed, not hidden) and
//! the surviving median CIs, which are checked for overlap against the
//! fault-free baseline — the criterion the paper's Rule 8 would apply
//! before claiming two configurations differ.
//!
//! Run with: `cargo run --example fault_ablation`

use scibench::experiment::{
    run_campaign_resilient, CampaignConfig, Design, Factor, MeasureFailure, MeasurementPlan,
    RetryPolicy, StoppingRule,
};
use scibench_sim::fault::{FaultContext, FaultPlan};
use scibench_sim::machine::MachineSpec;
use scibench_sim::network::NetworkModel;
use scibench_sim::rng::SimRng;
use scibench_stats::ci::ConfidenceInterval;

fn main() {
    let machine = MachineSpec::piz_dora();
    let net = NetworkModel::new(&machine);
    let design = Design::new(vec![Factor::numeric("bytes", &[64.0, 4096.0])]);
    let plan = MeasurementPlan::new("pingpong").stopping(StoppingRule::FixedCount(500));
    let policy = RetryPolicy::default().attempts(4).contamination(0.05);
    let rates = [0.0, 0.1, 0.25, 0.5, 1.0];

    println!(
        "fault ablation on `{}`: 500-sample ping-pong campaign per rate, seed 42\n",
        machine.name
    );

    let mut baseline: Vec<(String, ConfidenceInterval)> = Vec::new();
    let mut stable_up_to: Option<f64> = None;
    for &rate in &rates {
        let fault_plan = FaultPlan::with_failure_rate(rate);
        let attempt = run_campaign_resilient(
            &design,
            &plan,
            &CampaignConfig {
                seed: 42,
                threads: 2,
            },
            &policy,
            |point, rng| {
                let bytes: usize = point
                    .level(0)
                    .parse::<f64>()
                    .map_err(|e| MeasureFailure::Failed(e.to_string()))?
                    as usize;
                // One fault context per round trip, seeded from the
                // attempt's own stream: deterministic at any thread count.
                let ctx_seed = (rng.uniform() * (1u64 << 53) as f64) as u64;
                let mut ctx = FaultContext::new(&fault_plan, machine.nodes, &SimRng::new(ctx_seed));
                // Start at a random instant of the crash window so that
                // scheduled node crashes can already be live — a context
                // at t = 0 would never reach its crash time within one
                // microsecond-scale round trip.
                ctx.advance(rng.uniform() * 2.0 * fault_plan.crash_window_ns);
                let ping = net.transfer_faulty_ns(0, 1, bytes, &mut ctx, rng)?;
                let pong = net.transfer_faulty_ns(1, 0, bytes, &mut ctx, rng)?;
                Ok(ping + pong)
            },
        );
        // The runner degrades gracefully: a fully failed campaign is a
        // typed error carrying its health disclosure, not a panic.
        let result = match attempt {
            Ok(result) => result,
            Err(err) => {
                println!("failure rate {rate:>4}: {err}\n");
                continue;
            }
        };

        println!("failure rate {rate:>4}: {}", result.health.render());
        for (point, summary) in result.summaries(0.95).expect("surviving summaries") {
            let ci = summary.median_ci.expect("median CI always present");
            let verdict = if rate == 0.0 {
                baseline.push((point.level(0).to_owned(), ci));
                "baseline".to_owned()
            } else {
                match baseline.iter().find(|(b, _)| *b == point.level(0)) {
                    Some((_, base)) => {
                        let overlaps = ci.lower <= base.upper && base.lower <= ci.upper;
                        if overlaps {
                            "stable: median CI overlaps fault-free baseline".to_owned()
                        } else {
                            "DRIFTED: median CI no longer overlaps baseline".to_owned()
                        }
                    }
                    None => "no baseline".to_owned(),
                }
            };
            println!(
                "  {:>5} B: n={} (dropped {}), median {:.1} ns, 95% CI [{:.1}, {:.1}] -> {}",
                point.level(0),
                summary.n,
                summary.samples_dropped,
                summary.five_number.median,
                ci.lower,
                ci.upper,
                verdict
            );
        }
        let all_stable = result.health.points_completed == result.health.points_total;
        if all_stable && result.health.points_timed_out == 0 {
            stable_up_to = Some(rate);
        }
        println!();
    }

    match stable_up_to {
        Some(rate) => println!(
            "conclusion: every design point survived up to failure rate {rate}; \
             beyond it, quarantined points and withheld mean CIs mark the limit \
             of graceful degradation."
        ),
        None => println!("conclusion: no rate completed all points — tighten the retry policy."),
    }
}
