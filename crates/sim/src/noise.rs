//! Noise models — the sources of nondeterminism the paper enumerates:
//! "network background traffic, task scheduling, interrupts, job placement
//! in the batch system" (§1).
//!
//! Four mechanisms are composed:
//!
//! 1. **Baseline jitter**: a folded log-normal factor `exp(σ|Z|) ≥ 1`,
//!    producing the right-skewed unimodal body (with a hard floor at the
//!    deterministic cost) seen in every latency density of the paper;
//! 2. **Slow secondary path**: a Bernoulli extra cost modelling adaptive
//!    routing / buffer contention, the source of multi-modal latency
//!    bodies (§3.1.3);
//! 3. **OS daemons**: periodic interruptions with a fixed duty cycle —
//!    an interval of length L is hit by `⌊L/period⌋`-ish events, each
//!    adding a fixed cost (Petrini et al.'s "missing supercomputer
//!    performance" mechanism, the paper's ref. 47);
//! 4. **Congestion spikes**: rare heavy-tailed (Pareto) additive delays
//!    modelling network background traffic, responsible for the extreme
//!    outliers (e.g. the 11.59 µs maximum in Figure 3).

use serde::{Deserialize, Serialize};

use crate::rng::SimRng;

/// Parameters of the composite noise model. All times in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseProfile {
    /// Scale of the baseline jitter: the duration is multiplied by
    /// `exp(σ·|Z|)` with `Z` standard normal — a *folded* log-normal
    /// factor that is always ≥ 1, modelling the hard latency floor of a
    /// real link while keeping the right-skewed body the paper shows.
    /// 0 disables it.
    pub jitter_sigma: f64,
    /// Mean period between OS daemon wakeups; 0 disables daemons.
    pub daemon_period_ns: f64,
    /// Cost added per daemon hit.
    pub daemon_cost_ns: f64,
    /// Probability that an operation is hit by a congestion spike.
    pub congestion_prob: f64,
    /// Scale (minimum) of a congestion spike.
    pub congestion_scale_ns: f64,
    /// Pareto shape of congestion spikes; smaller = heavier tail.
    pub congestion_shape: f64,
    /// Probability the operation takes a slower secondary path
    /// (adaptive routing / buffer contention), creating the multi-modal
    /// latency bodies of §3.1.3.
    pub slow_path_prob: f64,
    /// Extra cost of the slow path.
    pub slow_path_extra_ns: f64,
}

impl NoiseProfile {
    /// A completely noise-free profile (deterministic measurements).
    pub fn quiet() -> Self {
        Self {
            jitter_sigma: 0.0,
            daemon_period_ns: 0.0,
            daemon_cost_ns: 0.0,
            congestion_prob: 0.0,
            congestion_scale_ns: 0.0,
            congestion_shape: 1.5,
            slow_path_prob: 0.0,
            slow_path_extra_ns: 0.0,
        }
    }

    /// Whether the profile produces any nondeterminism at all.
    pub fn is_quiet(&self) -> bool {
        self.jitter_sigma == 0.0
            && self.daemon_period_ns == 0.0
            && self.congestion_prob == 0.0
            && self.slow_path_prob == 0.0
    }

    /// Perturbs a base duration of `base_ns`, returning the noisy duration.
    ///
    /// The mechanisms compose multiplicatively (jitter) and additively
    /// (slow path, daemons, congestion). The result is never below
    /// `base_ns` ("most system effects lead to increased execution
    /// times", §3.1.3).
    #[inline]
    pub fn perturb(&self, base_ns: f64, rng: &mut SimRng) -> f64 {
        debug_assert!(base_ns >= 0.0);
        let mut t = base_ns;

        // Baseline folded-lognormal jitter: factor exp(σ|z|) ≥ 1.
        if self.jitter_sigma > 0.0 {
            t *= (self.jitter_sigma * rng.std_normal().abs()).exp();
        }

        // Secondary (slow) path.
        if self.slow_path_prob > 0.0 && rng.bernoulli(self.slow_path_prob) {
            t += self.slow_path_extra_ns;
        }

        // OS daemons: expected hits = duration / period, each adding cost.
        if self.daemon_period_ns > 0.0 && self.daemon_cost_ns > 0.0 {
            let expected_hits = t / self.daemon_period_ns;
            let hits = sample_poissonish(expected_hits, rng);
            t += hits as f64 * self.daemon_cost_ns;
        }

        // Rare heavy-tailed congestion.
        if self.congestion_prob > 0.0 && rng.bernoulli(self.congestion_prob) {
            t += rng.pareto(self.congestion_scale_ns, self.congestion_shape);
        }

        t.max(base_ns)
    }
}

/// Samples an event count with the given mean.
///
/// Exact Poisson via inversion for small means (the common case: an OS
/// daemon rarely hits a microsecond-scale interval), normal approximation
/// for large means (long compute phases).
#[inline]
fn sample_poissonish(mean: f64, rng: &mut SimRng) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean < 30.0 {
        // Knuth inversion.
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.uniform();
            if p <= l || k > 1000 {
                return k;
            }
            k += 1;
        }
    } else {
        let draw = rng.normal(mean, mean.sqrt());
        draw.round().max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> NoiseProfile {
        NoiseProfile {
            jitter_sigma: 0.05,
            daemon_period_ns: 10_000.0,
            daemon_cost_ns: 500.0,
            congestion_prob: 0.01,
            congestion_scale_ns: 2_000.0,
            congestion_shape: 1.5,
            slow_path_prob: 0.0,
            slow_path_extra_ns: 0.0,
        }
    }

    #[test]
    fn quiet_profile_is_identity() {
        let p = NoiseProfile::quiet();
        assert!(p.is_quiet());
        let mut rng = SimRng::new(1);
        for &base in &[0.0, 100.0, 1e6] {
            assert_eq!(p.perturb(base, &mut rng), base);
        }
    }

    #[test]
    fn noise_is_right_skewed() {
        let p = profile();
        let mut rng = SimRng::new(2);
        let base = 1_000.0;
        let xs: Vec<f64> = (0..20_000).map(|_| p.perturb(base, &mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[xs.len() / 2];
        assert!(mean > median, "mean {mean} median {median}");
        assert!(mean > base, "noise must increase expected time");
    }

    #[test]
    fn congestion_produces_outliers() {
        let mut p = NoiseProfile::quiet();
        p.congestion_prob = 0.02;
        p.congestion_scale_ns = 5_000.0;
        p.congestion_shape = 1.2;
        let mut rng = SimRng::new(3);
        let xs: Vec<f64> = (0..10_000).map(|_| p.perturb(1_000.0, &mut rng)).collect();
        let max = xs.iter().cloned().fold(0.0, f64::max);
        let spikes = xs.iter().filter(|&&x| x > 5_000.0).count();
        assert!(max > 6_000.0, "max {max}");
        let frac = spikes as f64 / xs.len() as f64;
        assert!((frac - 0.02).abs() < 0.01, "spike fraction {frac}");
    }

    #[test]
    fn daemon_cost_scales_with_interval() {
        let mut p = NoiseProfile::quiet();
        p.daemon_period_ns = 1_000.0;
        p.daemon_cost_ns = 100.0;
        let mut rng = SimRng::new(4);
        // 1 ms interval → ~1000 hits → ~100 µs extra (10%).
        let long: Vec<f64> = (0..200).map(|_| p.perturb(1e6, &mut rng)).collect();
        let mean_long = long.iter().sum::<f64>() / long.len() as f64;
        assert!((mean_long - 1.1e6).abs() < 0.02e6, "mean {mean_long}");
        // 100 ns interval → ~0.1 hits → ~10 ns extra on average.
        let short: Vec<f64> = (0..5000).map(|_| p.perturb(100.0, &mut rng)).collect();
        let mean_short = short.iter().sum::<f64>() / short.len() as f64;
        assert!((mean_short - 110.0).abs() < 10.0, "mean {mean_short}");
    }

    #[test]
    fn perturb_is_deterministic_per_seed() {
        let p = profile();
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        for _ in 0..100 {
            assert_eq!(p.perturb(500.0, &mut a), p.perturb(500.0, &mut b));
        }
    }

    #[test]
    fn poissonish_mean_small_and_large() {
        let mut rng = SimRng::new(5);
        let small: f64 = (0..20_000)
            .map(|_| sample_poissonish(2.5, &mut rng) as f64)
            .sum::<f64>()
            / 20_000.0;
        assert!((small - 2.5).abs() < 0.1, "small {small}");
        let large: f64 = (0..5_000)
            .map(|_| sample_poissonish(100.0, &mut rng) as f64)
            .sum::<f64>()
            / 5_000.0;
        assert!((large - 100.0).abs() < 1.0, "large {large}");
        assert_eq!(sample_poissonish(0.0, &mut rng), 0);
    }

    #[test]
    fn result_never_collapses() {
        let p = profile();
        let mut rng = SimRng::new(6);
        for _ in 0..10_000 {
            assert!(p.perturb(1_000.0, &mut rng) >= 1_000.0);
        }
    }
}
