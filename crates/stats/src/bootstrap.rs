//! Percentile bootstrap confidence intervals.
//!
//! The paper (§7) places the bootstrap "beyond the scope of our work" but
//! the library uses it where no analytic CI exists — e.g. the difference of
//! quantiles in quantile regression, or the CI of a coefficient of
//! variation. Resampling is fully deterministic given the seed.
//!
//! # Execution model
//!
//! Replicates are organised in **chunks**: each chunk reuses one resample
//! buffer (no per-replicate allocation), computes its statistics, sorts
//! them locally, and the final distribution is produced by merging the
//! pre-sorted chunk runs instead of one giant sort. Chunks may execute on
//! several threads.
//!
//! # Determinism contract
//!
//! The RNG stream of replicate `r` is derived *only* from `(seed, r)` via
//! [`mix_seed`], never from thread or chunk identity, and chunk runs are
//! merged in fixed index order. The resulting interval is therefore
//! **bit-identical** for any thread count and any chunk size — verified by
//! proptests in `tests/proptests.rs`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ci::ConfidenceInterval;
use crate::dist::normal::std_normal_inv_cdf;
use crate::error::{StatsError, StatsResult};
use crate::quantile::{quantile_sorted, QuantileMethod};
use crate::sorted::{merge_sorted_runs, SortedSamples};
use crate::validate_samples;

/// Mixes a base seed with a replicate index into an independent RNG seed
/// (splitmix64-style finalizer). Used for all per-replicate streams so
/// that replicate `r` draws the same values no matter which thread or
/// chunk executes it.
pub fn mix_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Execution parameters of the chunked bootstrap engine.
///
/// Only `reps` and `seed` affect the *result*; `chunk_size` and `threads`
/// are pure execution knobs (see the module-level determinism contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootstrapConfig {
    /// Number of bootstrap replicates (must be ≥ 10).
    pub reps: usize,
    /// Base seed of the per-replicate RNG streams.
    pub seed: u64,
    /// Replicates per chunk (buffer-reuse granularity); 0 means default.
    pub chunk_size: usize,
    /// Worker threads; 0 means one per available CPU.
    pub threads: usize,
}

impl BootstrapConfig {
    /// Default chunk size: large enough to amortise thread hand-off,
    /// small enough to load-balance across workers.
    pub const DEFAULT_CHUNK_SIZE: usize = 256;

    /// A sequential configuration with the default chunk size.
    pub fn new(reps: usize, seed: u64) -> Self {
        Self {
            reps,
            seed,
            chunk_size: Self::DEFAULT_CHUNK_SIZE,
            threads: 1,
        }
    }

    /// Sets the chunk size (0 restores the default).
    pub fn chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size;
        self
    }

    /// Sets the thread count (0 = one per available CPU).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn effective_chunk_size(&self) -> usize {
        if self.chunk_size == 0 {
            Self::DEFAULT_CHUNK_SIZE
        } else {
            self.chunk_size
        }
    }

    fn effective_threads(&self, n_chunks: usize) -> usize {
        let requested = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        requested.clamp(1, n_chunks.max(1))
    }

    fn validate(&self) -> StatsResult<()> {
        if self.reps < 10 {
            return Err(StatsError::InvalidParameter {
                name: "reps",
                value: self.reps as f64,
            });
        }
        Ok(())
    }
}

fn validate_confidence(confidence: f64) -> StatsResult<()> {
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(StatsError::InvalidProbability {
            name: "confidence",
            value: confidence,
        });
    }
    Ok(())
}

/// Runs `job` once per chunk index, on up to `threads` workers pulling
/// indices from a shared atomic cursor, and returns the outputs in chunk
/// order. Output order — and therefore everything downstream — does not
/// depend on which worker ran which chunk.
fn run_chunked<T, F>(n_chunks: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n_chunks <= 1 {
        return (0..n_chunks).map(job).collect();
    }
    let slots: Vec<OnceLock<T>> = (0..n_chunks).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n_chunks {
                    break;
                }
                let out = job(i);
                let ok = slots[i].set(out).is_ok();
                debug_assert!(ok, "chunk index claimed twice");
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every chunk index was claimed"))
        .collect()
}

/// Produces the sorted bootstrap distribution for `reps` replicates of
/// `replicate(rng, scratch)` under the chunked execution model. `scratch`
/// is a per-chunk resample buffer, so the per-replicate hot loop performs
/// no allocation. Returns the first error in replicate order, if any.
fn bootstrap_distribution(
    config: &BootstrapConfig,
    replicate: impl Fn(&mut StdRng, &mut Vec<f64>) -> StatsResult<f64> + Sync,
) -> StatsResult<Vec<f64>> {
    let chunk_size = config.effective_chunk_size();
    let n_chunks = config.reps.div_ceil(chunk_size);
    let threads = config.effective_threads(n_chunks);
    let chunk_results = run_chunked(n_chunks, threads, |chunk| {
        let lo = chunk * chunk_size;
        let hi = (lo + chunk_size).min(config.reps);
        let mut scratch = Vec::new();
        let mut stats = Vec::with_capacity(hi - lo);
        for rep in lo..hi {
            let mut rng = StdRng::seed_from_u64(mix_seed(config.seed, rep as u64));
            stats.push(replicate(&mut rng, &mut scratch)?);
        }
        stats.sort_by(|a, b| a.partial_cmp(b).expect("replicates checked finite"));
        Ok(stats)
    });
    // Chunks are in index order, so the first Err is the error of the
    // lowest failing replicate range — same error the sequential loop
    // would have surfaced.
    let mut runs = Vec::with_capacity(n_chunks);
    for result in chunk_results {
        runs.push(result?);
    }
    merge_sorted_runs(runs)
}

fn percentile_interval(estimate: f64, sorted_stats: &[f64], confidence: f64) -> ConfidenceInterval {
    let alpha = 1.0 - confidence;
    ConfidenceInterval {
        estimate,
        lower: quantile_sorted(sorted_stats, alpha / 2.0, QuantileMethod::Interpolated),
        upper: quantile_sorted(
            sorted_stats,
            1.0 - alpha / 2.0,
            QuantileMethod::Interpolated,
        ),
        confidence,
    }
}

/// Percentile-bootstrap CI of an arbitrary statistic.
///
/// Draws `reps` resamples of `xs` (with replacement), applies `statistic`
/// to each and returns the empirical `(α/2, 1−α/2)` quantiles of the
/// resampled statistics around the point estimate on the original data.
///
/// `statistic` must return a finite value for every non-empty resample.
/// Runs sequentially; use [`bootstrap_ci_with`] to control threading and
/// chunking.
pub fn bootstrap_ci(
    xs: &[f64],
    confidence: f64,
    reps: usize,
    seed: u64,
    statistic: impl Fn(&[f64]) -> f64 + Sync,
) -> StatsResult<ConfidenceInterval> {
    bootstrap_ci_with(xs, confidence, &BootstrapConfig::new(reps, seed), statistic)
}

/// [`bootstrap_ci`] with explicit execution parameters.
///
/// The interval is bit-identical for any `chunk_size`/`threads` choice
/// (see the module-level determinism contract).
pub fn bootstrap_ci_with(
    xs: &[f64],
    confidence: f64,
    config: &BootstrapConfig,
    statistic: impl Fn(&[f64]) -> f64 + Sync,
) -> StatsResult<ConfidenceInterval> {
    validate_samples(xs)?;
    validate_confidence(confidence)?;
    config.validate()?;
    let estimate = statistic(xs);
    if !estimate.is_finite() {
        return Err(StatsError::NonFiniteSample);
    }
    let n = xs.len();
    let stats = bootstrap_distribution(config, |rng, buf| {
        buf.clear();
        buf.extend((0..n).map(|_| xs[rng.gen_range(0..n)]));
        let s = statistic(buf);
        if s.is_finite() {
            Ok(s)
        } else {
            Err(StatsError::NonFiniteSample)
        }
    })?;
    Ok(percentile_interval(estimate, &stats, confidence))
}

/// Bootstrap CI of the difference `statistic(a) − statistic(b)` under
/// independent resampling of both groups.
pub fn bootstrap_diff_ci(
    a: &[f64],
    b: &[f64],
    confidence: f64,
    reps: usize,
    seed: u64,
    statistic: impl Fn(&[f64]) -> f64 + Sync,
) -> StatsResult<ConfidenceInterval> {
    bootstrap_diff_ci_with(
        a,
        b,
        confidence,
        &BootstrapConfig::new(reps, seed),
        statistic,
    )
}

/// [`bootstrap_diff_ci`] with explicit execution parameters.
pub fn bootstrap_diff_ci_with(
    a: &[f64],
    b: &[f64],
    confidence: f64,
    config: &BootstrapConfig,
    statistic: impl Fn(&[f64]) -> f64 + Sync,
) -> StatsResult<ConfidenceInterval> {
    validate_samples(a)?;
    validate_samples(b)?;
    validate_confidence(confidence)?;
    config.validate()?;
    let estimate = statistic(a) - statistic(b);
    if !estimate.is_finite() {
        return Err(StatsError::NonFiniteSample);
    }
    let stats = bootstrap_distribution(config, |rng, buf| {
        buf.clear();
        buf.extend((0..a.len()).map(|_| a[rng.gen_range(0..a.len())]));
        let sa = statistic(buf);
        buf.clear();
        buf.extend((0..b.len()).map(|_| b[rng.gen_range(0..b.len())]));
        let sb = statistic(buf);
        let s = sa - sb;
        if s.is_finite() {
            Ok(s)
        } else {
            Err(StatsError::NonFiniteSample)
        }
    })?;
    Ok(percentile_interval(estimate, &stats, confidence))
}

/// Percentile-bootstrap CI of the `p`-quantile from pre-sorted data,
/// using the order-statistic rank device: resampling `n` observations
/// with replacement and taking the `p`-quantile of the resample is
/// (asymptotically) equivalent to reading the order statistic at rank
/// `round(n·p + z·√(n·p·(1−p)))` with `z` standard normal, which costs
/// **O(1) per replicate** instead of O(n log n) — no resample buffer, no
/// per-replicate sort. This is what makes 10k-replicate quantile CIs
/// cheap enough for routine use (Rule 6 pushes medians everywhere).
pub fn bootstrap_quantile_ci(
    sorted: &SortedSamples,
    p: f64,
    confidence: f64,
    reps: usize,
    seed: u64,
) -> StatsResult<ConfidenceInterval> {
    if !(p > 0.0 && p < 1.0) {
        return Err(StatsError::InvalidProbability {
            name: "p",
            value: p,
        });
    }
    validate_confidence(confidence)?;
    let config = BootstrapConfig::new(reps, seed);
    config.validate()?;
    let xs = sorted.as_slice();
    let nf = xs.len() as f64;
    let sd = (nf * p * (1.0 - p)).sqrt();
    let estimate = quantile_sorted(xs, p, QuantileMethod::Interpolated);
    let stats = bootstrap_distribution(&config, |rng, _scratch| {
        let u: f64 = rng.gen_range(1e-12..1.0 - 1e-12);
        let z = std_normal_inv_cdf(u);
        let rank = (nf * p + sd * z).round().clamp(1.0, nf) as usize;
        Ok(xs[rank - 1])
    })?;
    Ok(percentile_interval(estimate, &stats, confidence))
}

/// [`bootstrap_quantile_ci`] at `p = 0.5`.
pub fn bootstrap_median_ci(
    sorted: &SortedSamples,
    confidence: f64,
    reps: usize,
    seed: u64,
) -> StatsResult<ConfidenceInterval> {
    bootstrap_quantile_ci(sorted, 0.5, confidence, reps, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::median;
    use crate::summary::arithmetic_mean;

    fn sample(n: usize, mu: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                mu + crate::dist::normal::std_normal_inv_cdf(u)
            })
            .collect()
    }

    #[test]
    fn bootstrap_mean_ci_contains_truth() {
        let xs = sample(200, 10.0);
        let ci = bootstrap_ci(&xs, 0.95, 500, 42, |s| arithmetic_mean(s).unwrap()).unwrap();
        assert!(ci.contains(10.0), "{ci:?}");
        assert!(ci.lower < ci.estimate && ci.estimate < ci.upper);
    }

    #[test]
    fn bootstrap_is_deterministic_given_seed() {
        let xs = sample(50, 3.0);
        let f = |s: &[f64]| arithmetic_mean(s).unwrap();
        let a = bootstrap_ci(&xs, 0.95, 300, 7, f).unwrap();
        let b = bootstrap_ci(&xs, 0.95, 300, 7, f).unwrap();
        assert_eq!(a, b);
        let c = bootstrap_ci(&xs, 0.95, 300, 8, f).unwrap();
        assert_ne!(a.lower, c.lower);
    }

    #[test]
    fn bootstrap_ci_narrows_with_n() {
        let small = sample(20, 0.0);
        let large = sample(2000, 0.0);
        let f = |s: &[f64]| arithmetic_mean(s).unwrap();
        let ci_s = bootstrap_ci(&small, 0.95, 300, 1, f).unwrap();
        let ci_l = bootstrap_ci(&large, 0.95, 300, 1, f).unwrap();
        assert!(ci_l.width() < ci_s.width());
    }

    #[test]
    fn diff_ci_detects_shift() {
        let a = sample(300, 5.0);
        let b = sample(300, 4.0);
        let ci = bootstrap_diff_ci(&a, &b, 0.95, 400, 9, |s| arithmetic_mean(s).unwrap()).unwrap();
        assert!((ci.estimate - 1.0).abs() < 0.05);
        assert!(!ci.contains(0.0));
    }

    #[test]
    fn diff_ci_no_shift_contains_zero() {
        let a = sample(300, 5.0);
        let ci = bootstrap_diff_ci(&a, &a, 0.95, 400, 9, |s| arithmetic_mean(s).unwrap()).unwrap();
        assert!(ci.contains(0.0));
    }

    #[test]
    fn invalid_inputs_rejected() {
        let xs = [1.0, 2.0];
        let f = |s: &[f64]| s[0];
        assert!(bootstrap_ci(&[], 0.95, 100, 0, f).is_err());
        assert!(bootstrap_ci(&xs, 0.0, 100, 0, f).is_err());
        assert!(bootstrap_ci(&xs, 0.95, 5, 0, f).is_err());
        assert!(bootstrap_diff_ci(&xs, &xs, 2.0, 100, 0, f).is_err());
        let sorted = SortedSamples::new(&sample(100, 0.0)).unwrap();
        assert!(bootstrap_quantile_ci(&sorted, 0.0, 0.95, 100, 0).is_err());
        assert!(bootstrap_quantile_ci(&sorted, 0.5, 0.95, 5, 0).is_err());
    }

    #[test]
    fn reps_below_chunk_size_still_work() {
        // Regression test: 10 ≤ reps < chunk_size must produce a full
        // (single-chunk) distribution, not an empty or truncated one.
        let xs = sample(80, 2.0);
        let f = |s: &[f64]| arithmetic_mean(s).unwrap();
        for reps in [10, 11, 100, BootstrapConfig::DEFAULT_CHUNK_SIZE - 1] {
            let ci = bootstrap_ci(&xs, 0.95, reps, 5, f).unwrap();
            assert!(ci.lower <= ci.upper, "reps={reps}: {ci:?}");
            assert!(ci.contains(f(&xs)), "reps={reps}: {ci:?}");
            let wide_chunk = bootstrap_ci_with(
                &xs,
                0.95,
                &BootstrapConfig::new(reps, 5).chunk_size(10_000),
                f,
            )
            .unwrap();
            assert_eq!(ci, wide_chunk, "reps={reps}");
        }
    }

    #[test]
    fn chunk_size_and_threads_do_not_change_result() {
        let xs = sample(120, 7.0);
        let f = |s: &[f64]| median(s).unwrap();
        let reference = bootstrap_ci(&xs, 0.95, 333, 21, f).unwrap();
        for chunk_size in [1, 7, 64, 333, 1000] {
            for threads in [1, 2, 8] {
                let config = BootstrapConfig::new(333, 21)
                    .chunk_size(chunk_size)
                    .threads(threads);
                let ci = bootstrap_ci_with(&xs, 0.95, &config, f).unwrap();
                assert_eq!(ci, reference, "chunk_size={chunk_size} threads={threads}");
            }
        }
    }

    #[test]
    fn error_in_statistic_is_reported_not_panicked() {
        let xs = sample(40, 1.0);
        let config = BootstrapConfig::new(100, 3).chunk_size(16).threads(4);
        let r = bootstrap_ci_with(
            &xs,
            0.95,
            &config,
            |s| {
                if s[0] > 0.0 {
                    f64::NAN
                } else {
                    s[0]
                }
            },
        );
        assert!(matches!(r, Err(StatsError::NonFiniteSample)));
    }

    #[test]
    fn quantile_rank_device_matches_resampling_bootstrap() {
        // The rank device and the literal resample-then-quantile
        // bootstrap target the same sampling distribution; their CIs
        // must agree closely (they use different RNG streams, so only
        // statistically, not bitwise).
        let xs = sample(500, 50.0);
        let sorted = SortedSamples::new(&xs).unwrap();
        let fast = bootstrap_median_ci(&sorted, 0.95, 4000, 11).unwrap();
        let slow = bootstrap_ci(&xs, 0.95, 4000, 11, |s| median(s).unwrap()).unwrap();
        assert!((fast.estimate - slow.estimate).abs() < 1e-12);
        assert!(
            (fast.lower - slow.lower).abs() < 0.05 && (fast.upper - slow.upper).abs() < 0.05,
            "fast {fast:?} vs slow {slow:?}"
        );
        // And it is deterministic given the seed.
        let again = bootstrap_median_ci(&sorted, 0.95, 4000, 11).unwrap();
        assert_eq!(fast, again);
    }

    #[test]
    fn mix_seed_separates_streams() {
        let a = mix_seed(42, 0);
        let b = mix_seed(42, 1);
        let c = mix_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(mix_seed(42, 0), a);
    }
}
