//! Durability end-to-end: the crash-consistent campaign journal and the
//! supervised process-shard executor.
//!
//! The central guarantee under test is Rule-style reproducibility under
//! failure: a campaign that is interrupted at an *arbitrary byte* of its
//! journal and then resumed — possibly with a different thread count or
//! shard partition — produces a result **bit-identical** to the
//! uninterrupted run. The process-level scenarios (kill -9 mid-run,
//! supervisor kill, poisoned points crashing their worker) are driven
//! through the `chaos_campaign` binary.

use std::path::PathBuf;
use std::process::Command;

use proptest::prelude::*;

use scibench::experiment::journal::{result_digest, JournalSpec};
use scibench::experiment::{
    run_campaign_resilient, run_campaign_resilient_journaled,
    run_campaign_resilient_journaled_subset, CampaignConfig, Design, Factor, MeasureFailure,
    MeasurementPlan, ResilientCampaignResult, RetryPolicy, RunPoint, StoppingRule,
};
use scibench_sim::rng::SimRng;

const SEED: u64 = 0x51B3_0001;
const CODE_VERSION: &str = "integration-journal-v1";
const CONFIG_FINGERPRINT: &str = "integration-journal-machine";

fn demo_design() -> Design {
    Design::new(vec![
        Factor::new("kernel", &["a", "bb", "ccc"]),
        Factor::numeric("n", &[4.0, 32.0]),
    ])
}

fn demo_plan() -> MeasurementPlan {
    MeasurementPlan::new("itest").stopping(StoppingRule::FixedCount(12))
}

fn demo_config(threads: usize) -> CampaignConfig {
    CampaignConfig {
        seed: SEED,
        threads,
    }
}

/// Deterministic per (seed, point, attempt, sample), with a flake rate
/// high enough that retries and dropped samples actually occur.
fn demo_measure(point: &RunPoint, rng: &mut SimRng) -> Result<f64, MeasureFailure> {
    if rng.uniform() < 0.1 {
        return Err(MeasureFailure::Failed("injected flake".into()));
    }
    let scale: f64 = point.level(1).parse().expect("numeric level");
    Ok(point.level(0).len() as f64 + scale.sqrt() + rng.uniform())
}

fn reference() -> ResilientCampaignResult {
    run_campaign_resilient(
        &demo_design(),
        &demo_plan(),
        &demo_config(1),
        &RetryPolicy::default(),
        demo_measure,
    )
    .expect("reference campaign")
}

fn tmp_journal(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scibench-itest-journal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir.join(format!("{name}.journal"))
}

fn spec(path: &PathBuf) -> JournalSpec<'_> {
    JournalSpec {
        path,
        code_version: CODE_VERSION,
        config_fingerprint: CONFIG_FINGERPRINT,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Kill-at-any-byte: complete a journaled run, truncate the journal
    /// at an arbitrary byte (simulating a crash mid-append anywhere in
    /// the file), resume at an arbitrary thread count, and require the
    /// merged result to be bit-identical to the uninterrupted run.
    #[test]
    fn truncated_journal_resumes_bit_identically(
        cut_frac in 0.0f64..1.001,
        threads in prop_oneof![Just(1usize), Just(2), Just(8)],
    ) {
        let want = result_digest(&reference());
        let path = tmp_journal(&format!("truncate-{threads}"));
        let _ = std::fs::remove_file(&path);
        let full = run_campaign_resilient_journaled(
            &demo_design(),
            &demo_plan(),
            &demo_config(1),
            &RetryPolicy::default(),
            &spec(&path),
            demo_measure,
        ).expect("full journaled run");
        prop_assert_eq!(result_digest(&full.result), want);

        let bytes = std::fs::read(&path).expect("read journal");
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut.min(bytes.len())]).expect("truncate journal");

        let resumed = run_campaign_resilient_journaled(
            &demo_design(),
            &demo_plan(),
            &demo_config(threads),
            &RetryPolicy::default(),
            &spec(&path),
            demo_measure,
        ).expect("resumed journaled run");
        prop_assert_eq!(result_digest(&resumed.result), want);
        prop_assert_eq!(
            resumed.resume.points_resumed + resumed.resume.points_executed,
            demo_design().size()
        );
    }
}

/// Shard-partitioned execution: run strided subsets into one journal
/// (shard counts 1, 2 and 4), then resume the whole campaign — nothing
/// should be left to execute and the digest must match the
/// uninterrupted single-process run.
#[test]
fn sharded_subsets_merge_bit_identically() {
    let want = result_digest(&reference());
    let points = demo_design().size();
    for shards in [1usize, 2, 4] {
        let path = tmp_journal(&format!("shards-{shards}"));
        let _ = std::fs::remove_file(&path);
        for shard in 0..shards {
            let indices: Vec<usize> = (shard..points).step_by(shards).collect();
            let stats = run_campaign_resilient_journaled_subset(
                &demo_design(),
                &demo_plan(),
                &demo_config(2),
                &RetryPolicy::default(),
                &spec(&path),
                &indices,
                demo_measure,
            )
            .expect("subset run");
            assert_eq!(
                stats.points_executed,
                indices.len(),
                "shard {shard}/{shards}"
            );
        }
        let merged = run_campaign_resilient_journaled(
            &demo_design(),
            &demo_plan(),
            &demo_config(1),
            &RetryPolicy::default(),
            &spec(&path),
            demo_measure,
        )
        .expect("merge resume");
        assert_eq!(
            merged.resume.points_executed, 0,
            "{shards} shards left work"
        );
        assert_eq!(merged.resume.points_resumed, points);
        assert_eq!(
            result_digest(&merged.result),
            want,
            "{shards} shards diverged"
        );
    }
}

/// The full process-level chaos dance via the dedicated binary:
/// kill -9 + resume bit-identity, supervised shard counts 1/2/4,
/// supervisor kill + restart, and poisoned-point quarantine after K
/// worker crashes. Each violation is a FAIL line and a non-zero exit.
#[cfg(unix)]
#[test]
fn chaos_campaign_selftest_passes() {
    let out = Command::new(env!("CARGO_BIN_EXE_chaos_campaign"))
        .arg("selftest")
        .output()
        .expect("spawn chaos_campaign");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "chaos selftest failed ({}):\n{stdout}\n{stderr}",
        out.status
    );
    assert!(
        stdout.contains("selftest OK"),
        "unexpected output:\n{stdout}"
    );
}
