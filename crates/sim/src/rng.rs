//! Deterministic, fork-able random streams.
//!
//! Every stochastic component of the simulator draws from a [`SimRng`]
//! created from an explicit `u64` seed, and sub-components receive
//! *forked* streams derived by hashing a label into the parent seed.
//! Forking guarantees that adding a new consumer of randomness never
//! perturbs the values observed by existing consumers — the property that
//! keeps all figure binaries bit-for-bit reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random stream with labeled forking.
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    rng: StdRng,
}

/// SplitMix64 finalizer: decorrelates related seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a label, used to derive fork seeds.
fn fnv1a(label: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl SimRng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rng: StdRng::seed_from_u64(splitmix64(seed)),
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream for `label`.
    ///
    /// Forks are a pure function of `(parent seed, label)` — they do not
    /// consume state from the parent, so fork order is irrelevant.
    pub fn fork(&self, label: &str) -> SimRng {
        SimRng::new(splitmix64(self.seed ^ fnv1a(label)))
    }

    /// Derives an independent child stream for `(label, index)`, e.g. one
    /// per repetition or per rank.
    pub fn fork_indexed(&self, label: &str, index: u64) -> SimRng {
        SimRng::new(splitmix64(self.seed ^ fnv1a(label) ^ splitmix64(index)))
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform draw in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi > lo);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.rng.gen_range(0..n)
    }

    /// Standard normal draw via inverse-CDF (ties the simulator's noise
    /// quality to the same verified quantile family as the statistics).
    ///
    /// Uses the Acklam-only fast quantile (relative error < 1.15e-9): the
    /// Halley refinement used for inference costs ~20× more per draw and
    /// is far below the simulator's own noise floor. Both the interpreter
    /// and the compiled replay engine go through this method, so they
    /// consume identical RNG words and stay bit-identical.
    #[inline]
    pub fn std_normal(&mut self) -> f64 {
        let u = self.rng.gen_range(1e-12..1.0 - 1e-12);
        scibench_stats::dist::normal::std_normal_inv_cdf_fast(u)
    }

    /// Normal draw with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.std_normal()
    }

    /// Log-normal draw with the given location and scale of `ln X`.
    #[inline]
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.std_normal()).exp()
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Pareto(scale, shape) draw: heavy-tailed congestion spikes.
    #[inline]
    pub fn pareto(&mut self, scale: f64, shape: f64) -> f64 {
        debug_assert!(scale > 0.0 && shape > 0.0);
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        scale / u.powf(1.0 / shape)
    }

    /// Exponential draw with the given mean.
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(8);
        let va: Vec<f64> = (0..10).map(|_| a.uniform()).collect();
        let vb: Vec<f64> = (0..10).map(|_| b.uniform()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forks_are_independent_of_order() {
        let root = SimRng::new(42);
        let mut f1 = root.fork("noise");
        let _ = root.fork("other");
        let mut f2 = SimRng::new(42).fork("noise");
        for _ in 0..20 {
            assert_eq!(f1.uniform(), f2.uniform());
        }
    }

    #[test]
    fn forks_with_different_labels_differ() {
        let root = SimRng::new(42);
        let mut a = root.fork("a");
        let mut b = root.fork("b");
        assert_ne!(a.uniform(), b.uniform());
    }

    #[test]
    fn indexed_forks_differ() {
        let root = SimRng::new(1);
        let mut a = root.fork_indexed("rep", 0);
        let mut b = root.fork_indexed("rep", 1);
        assert_ne!(a.uniform(), b.uniform());
        let mut a2 = SimRng::new(1).fork_indexed("rep", 0);
        assert_eq!(a.seed(), a2.seed());
        a2.uniform();
        assert_eq!(a.uniform(), a2.uniform());
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SimRng::new(3);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_is_positive_and_right_skewed() {
        let mut rng = SimRng::new(3);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.lognormal(0.0, 1.0)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[xs.len() / 2];
        assert!(mean > median, "{mean} vs {median}");
    }

    #[test]
    fn pareto_exceeds_scale() {
        let mut rng = SimRng::new(9);
        for _ in 0..1000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::new(5);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.exponential(3.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = SimRng::new(11);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(2);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(xs, (0..50).collect::<Vec<u32>>());
    }
}
