//! Regenerates Table 1: the literature survey.

use std::process::ExitCode;

use scibench_bench::figures::table1;
use scibench_bench::output;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("table1_survey: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let t = table1::compute();
    println!("{}", t.render());
    let path = output::write_csv("table1_scores", &t.dataset())?;
    println!("score distributions: {}", path.display());
    let raw = output::write_csv("table1_raw", &t.raw_dataset())?;
    println!("raw per-paper grades: {}", raw.display());
    Ok(())
}
