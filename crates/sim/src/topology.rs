//! Network topologies: Dragonfly (Cray Aries, used by Piz Daint and Piz
//! Dora) and fat tree (InfiniBand FDR, used by Pilatus), plus a single
//! crossbar for small test systems.
//!
//! The topology contributes the *hop count* between two nodes; the
//! [`crate::network`] model converts hops into latency. §4.1.2 of the
//! paper insists that "details of the network (topology, latency, and
//! bandwidth) ... need to be specified" — the simulator models exactly
//! those three quantities.

use serde::{Deserialize, Serialize};

/// A network topology with a deterministic node-to-node hop count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Full crossbar: every pair of distinct nodes is one hop apart.
    Crossbar,
    /// Dragonfly: routers grouped into all-to-all connected groups with
    /// all-to-all global links (the Cray Aries arrangement).
    Dragonfly {
        /// Number of groups.
        groups: usize,
        /// Routers per group.
        routers_per_group: usize,
        /// Nodes attached to each router.
        nodes_per_router: usize,
    },
    /// k-ary fat tree with the given radix and number of levels.
    FatTree {
        /// Switch radix (ports per switch); nodes per leaf switch is
        /// `radix / 2`.
        radix: usize,
        /// Number of switching levels (2 = leaf + spine).
        levels: usize,
    },
}

impl Topology {
    /// Total number of node slots the topology provides.
    pub fn capacity(&self) -> usize {
        match *self {
            Topology::Crossbar => usize::MAX,
            Topology::Dragonfly {
                groups,
                routers_per_group,
                nodes_per_router,
            } => groups * routers_per_group * nodes_per_router,
            Topology::FatTree { radix, levels } => {
                // Half the ports of each leaf go down to nodes; each extra
                // level multiplies the leaf count by radix/2.
                let down = radix / 2;
                down.pow(levels as u32)
            }
        }
    }

    /// Number of router-to-router hops between two node slots.
    ///
    /// Same node → 0 hops (shared memory). The models follow the minimal
    /// routing path of each topology.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        if a == b {
            return 0;
        }
        match *self {
            Topology::Crossbar => 1,
            Topology::Dragonfly {
                routers_per_group,
                nodes_per_router,
                ..
            } => {
                let router_a = a / nodes_per_router;
                let router_b = b / nodes_per_router;
                if router_a == router_b {
                    // Same router: one router traversal.
                    1
                } else {
                    let group_a = router_a / routers_per_group;
                    let group_b = router_b / routers_per_group;
                    if group_a == group_b {
                        // Intra-group: source router → dest router.
                        2
                    } else {
                        // Minimal global route: src router → gateway →
                        // global link → gateway → dest router.
                        // Counted as 3 router-to-router traversals.
                        3
                    }
                }
            }
            Topology::FatTree { radix, levels } => {
                // Nodes under the same switch at level l share an ancestor;
                // path length is 2 · (level of lowest common ancestor).
                let down = (radix / 2).max(2);
                let mut la = a;
                let mut lb = b;
                for level in 1..=levels {
                    la /= down;
                    lb /= down;
                    if la == lb {
                        return 2 * level;
                    }
                }
                2 * levels
            }
        }
    }

    /// The maximum hop count the topology can produce (network diameter).
    pub fn diameter(&self) -> usize {
        match *self {
            Topology::Crossbar => 1,
            Topology::Dragonfly { .. } => 3,
            Topology::FatTree { levels, .. } => 2 * levels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_hops() {
        let t = Topology::Crossbar;
        assert_eq!(t.hops(0, 0), 0);
        assert_eq!(t.hops(0, 99), 1);
        assert_eq!(t.diameter(), 1);
    }

    #[test]
    fn dragonfly_distances() {
        // 4 groups × 4 routers × 2 nodes = 32 nodes.
        let t = Topology::Dragonfly {
            groups: 4,
            routers_per_group: 4,
            nodes_per_router: 2,
        };
        assert_eq!(t.capacity(), 32);
        assert_eq!(t.hops(0, 0), 0);
        assert_eq!(t.hops(0, 1), 1); // same router
        assert_eq!(t.hops(0, 2), 2); // same group, different router
        assert_eq!(t.hops(0, 7), 2);
        assert_eq!(t.hops(0, 8), 3); // different group
        assert_eq!(t.hops(0, 31), 3);
        assert_eq!(t.diameter(), 3);
    }

    #[test]
    fn dragonfly_symmetry() {
        let t = Topology::Dragonfly {
            groups: 3,
            routers_per_group: 2,
            nodes_per_router: 4,
        };
        for a in 0..t.capacity() {
            for b in 0..t.capacity() {
                assert_eq!(t.hops(a, b), t.hops(b, a));
            }
        }
    }

    #[test]
    fn fat_tree_distances() {
        // radix 4 → 2 nodes per leaf; 3 levels → capacity 8.
        let t = Topology::FatTree {
            radix: 4,
            levels: 3,
        };
        assert_eq!(t.capacity(), 8);
        assert_eq!(t.hops(0, 0), 0);
        assert_eq!(t.hops(0, 1), 2); // same leaf
        assert_eq!(t.hops(0, 2), 4); // adjacent leaf
        assert_eq!(t.hops(0, 4), 6); // across the spine
        assert_eq!(t.diameter(), 6);
    }

    #[test]
    fn fat_tree_hops_nondecreasing_with_distance() {
        let t = Topology::FatTree {
            radix: 8,
            levels: 2,
        };
        assert_eq!(t.capacity(), 16);
        assert!(t.hops(0, 1) <= t.hops(0, 5));
    }

    #[test]
    fn hops_bounded_by_diameter() {
        let topos = [
            Topology::Crossbar,
            Topology::Dragonfly {
                groups: 5,
                routers_per_group: 3,
                nodes_per_router: 2,
            },
            Topology::FatTree {
                radix: 4,
                levels: 2,
            },
        ];
        for t in topos {
            let cap = match t {
                Topology::Crossbar => 16,
                _ => t.capacity(),
            };
            for a in 0..cap {
                for b in 0..cap {
                    assert!(t.hops(a, b) <= t.diameter());
                }
            }
        }
    }
}
