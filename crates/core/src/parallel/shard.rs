//! Supervised process-shard execution: shared-nothing campaign workers
//! in child OS processes, with kill-and-respawn recovery.
//!
//! The in-process resilient runner ([`crate::experiment::resilience`])
//! contains panics, but a segfault-class failure — stack overflow, OOM
//! kill, a crash in native code — still takes the whole campaign down,
//! because every worker thread shares one address space. This module
//! adds the missing isolation layer:
//!
//! * the design is partitioned **strided** across `shards` child
//!   processes (point `idx` belongs to shard `idx % shards`), each
//!   spawned from a [`WorkerSpec`] command in self-exec worker mode and
//!   writing its results to its own crash-consistent journal
//!   (`shard-<s>.journal`);
//! * a **heartbeat watchdog** treats shard-journal growth as liveness:
//!   a worker whose journal has not grown within
//!   [`ShardPolicy::heartbeat_timeout_ms`] is killed and respawned on
//!   its remaining points;
//! * a worker that **crashes** leaves a dangling `begin` record naming
//!   the point it was executing; the supervisor charges that point a
//!   *strike* (persisted in `quarantine.journal`, so strikes survive
//!   supervisor restarts) and respawns the worker without losing any
//!   completed point;
//! * a point that accumulates [`ShardPolicy::max_point_strikes`] strikes
//!   is **quarantined as poisoned**: it is excluded from every future
//!   spawn and reported as [`PointFate::Abandoned`] instead of failing
//!   the campaign;
//! * a worker that crashes repeatedly **without** ever beginning a point
//!   (a barren crash — broken binary, bad environment) aborts its shard
//!   after [`ShardPolicy::max_barren_crashes`] instead of respawning
//!   forever.
//!
//! When all shards finish, the supervisor merges the shard journals into
//! one [`ResilientCampaignResult`] — bit-identical to a single-process
//! run for every point that completed, since each point's RNG stream is
//! a pure function of `(seed, design index)` — and discloses every
//! recovery in [`CampaignHealth`] (`workers_respawned`,
//! `points_poisoned`) per Rule 4.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crate::experiment::journal::{
    point_key, Journal, JournalError, JournalKey, JournalMeta, JournalSnapshot,
};
use crate::experiment::resilience::{
    health_of, CampaignError, PointFate, ResilientCampaignResult, ResilientRun,
};
use crate::experiment::{CampaignConfig, Design};
use scibench_stats::sketch::{KeyedPartials, MergeableSummary, StreamingSummary};

/// CLI flag the supervisor appends before the worker's journal path.
pub const SHARD_JOURNAL_FLAG: &str = "--shard-journal";
/// CLI flag the supervisor appends before the worker's point list.
pub const SHARD_POINTS_FLAG: &str = "--shard-points";

/// Supervision knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPolicy {
    /// Number of child worker processes (≥ 1).
    pub shards: usize,
    /// A worker whose journal has not grown for this long is presumed
    /// hung, killed and respawned. Must comfortably exceed the cost of
    /// one design point, since the journal only grows between points.
    pub heartbeat_timeout_ms: u64,
    /// Supervisor poll interval.
    pub poll_interval_ms: u64,
    /// Strikes (worker crashes attributed to a point) before the point
    /// is quarantined as poisoned (≥ 1).
    pub max_point_strikes: usize,
    /// Worker crashes *without* a dangling begin tolerated per shard
    /// before the shard is aborted instead of respawned.
    pub max_barren_crashes: usize,
}

impl Default for ShardPolicy {
    fn default() -> Self {
        Self {
            shards: 2,
            heartbeat_timeout_ms: 30_000,
            poll_interval_ms: 50,
            max_point_strikes: 3,
            max_barren_crashes: 2,
        }
    }
}

/// The command a worker process is spawned from. The supervisor appends
/// `--shard-journal <dir>/shard-<s>.journal --shard-points <csv>`; the
/// worker must execute exactly those design indices through
/// [`crate::experiment::resilience::run_campaign_resilient_journaled_subset`]
/// against that journal, then exit 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSpec {
    /// Program to execute (usually `std::env::current_exe()`).
    pub program: PathBuf,
    /// Arguments placed before the supervisor-appended flags.
    pub args: Vec<String>,
}

/// Durable state locations and identity of a sharded campaign.
#[derive(Debug, Clone)]
pub struct ShardDurability<'a> {
    /// Directory holding `shard-<s>.journal` files and
    /// `quarantine.journal` (created if missing).
    pub dir: &'a Path,
    /// Code version bound into every journal header and key.
    pub code_version: &'a str,
    /// Machine/fault configuration fingerprint bound in likewise.
    pub config_fingerprint: &'a str,
}

/// Rule-4 disclosure of everything the supervisor did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardReport {
    /// Shards supervised.
    pub shards: usize,
    /// Worker processes spawned in total (including respawns).
    pub workers_spawned: usize,
    /// Workers respawned after a crash or hang kill.
    pub workers_respawned: usize,
    /// Workers killed by the heartbeat watchdog.
    pub hangs_killed: usize,
    /// Worker exits with a failure status (or kill signal).
    pub crashes_observed: usize,
    /// Design indices quarantined as poisoned, ascending.
    pub points_poisoned: Vec<usize>,
    /// Shards aborted after repeated barren crashes.
    pub shards_aborted: usize,
}

/// The merged campaign plus the supervision report.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedCampaign {
    /// Merged result in design order; completed points are bit-identical
    /// to a single-process run, quarantined/aborted points are
    /// [`PointFate::Abandoned`].
    pub result: ResilientCampaignResult,
    /// What the supervisor had to do to get it.
    pub report: ShardReport,
}

/// Errors of the shard supervisor.
#[derive(Debug)]
pub enum ShardError {
    /// The policy is unusable (zero shards, zero strikes, ...).
    InvalidPolicy(&'static str),
    /// Spawning a worker process failed.
    Spawn {
        /// The shard whose worker could not be spawned.
        shard: usize,
        /// The underlying error, rendered.
        error: String,
    },
    /// A shard or quarantine journal failed.
    Journal(JournalError),
    /// The merged campaign failed (empty design, nothing survived).
    Campaign(CampaignError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::InvalidPolicy(msg) => write!(f, "invalid shard policy: {msg}"),
            ShardError::Spawn { shard, error } => {
                write!(f, "failed to spawn worker for shard {shard}: {error}")
            }
            ShardError::Journal(err) => write!(f, "shard journal error: {err}"),
            ShardError::Campaign(err) => write!(f, "sharded campaign failed: {err}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<JournalError> for ShardError {
    fn from(err: JournalError) -> Self {
        ShardError::Journal(err)
    }
}

impl From<CampaignError> for ShardError {
    fn from(err: CampaignError) -> Self {
        ShardError::Campaign(err)
    }
}

/// Strided partition: the design indices of shard `shard` out of
/// `shards` (those with `idx % shards == shard`).
pub fn shard_assignment(points: usize, shards: usize, shard: usize) -> Vec<usize> {
    (shard..points).step_by(shards.max(1)).collect()
}

/// Renders a point list for `--shard-points` (comma-separated indices).
pub fn format_point_list(indices: &[usize]) -> String {
    indices
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses a `--shard-points` list back into indices.
pub fn parse_point_list(csv: &str) -> Result<Vec<usize>, String> {
    if csv.trim().is_empty() {
        return Ok(Vec::new());
    }
    csv.split(',')
        .map(|tok| {
            tok.trim()
                .parse::<usize>()
                .map_err(|_| format!("bad design index {tok:?} in point list"))
        })
        .collect()
}

/// The shard journal path of shard `shard` under `dir`.
pub fn shard_journal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.journal"))
}

/// The persistent quarantine journal path under `dir`.
pub fn quarantine_path(dir: &Path) -> PathBuf {
    dir.join("quarantine.journal")
}

/// Per-point strike counts recorded in the quarantine journal.
///
/// The quarantine reuses the journal's `begin` frame as its strike
/// record: one dangling begin per strike (no point record ever follows),
/// so crash attribution survives supervisor restarts with the same
/// torn-tail and stale-header protection as result journals.
fn strike_counts(snapshot: &JournalSnapshot) -> HashMap<usize, usize> {
    let mut counts: HashMap<usize, usize> = HashMap::new();
    for (idx, _) in &snapshot.dangling_begins {
        *counts.entry(*idx).or_insert(0) += 1;
    }
    counts
}

struct ShardState {
    id: usize,
    assigned: Vec<usize>,
    journal_path: PathBuf,
    child: Option<Child>,
    journal_len: u64,
    last_progress: Instant,
    barren_crashes: usize,
    aborted: bool,
    done: bool,
}

/// Everything mutable the supervisor tracks across the poll loop.
struct Supervisor<'a> {
    keys: &'a [JournalKey],
    policy: &'a ShardPolicy,
    worker: &'a WorkerSpec,
    quarantine: Journal,
    strikes: HashMap<usize, usize>,
    report: ShardReport,
}

impl Supervisor<'_> {
    fn poisoned(&self, idx: usize) -> bool {
        self.strikes
            .get(&idx)
            .is_some_and(|&n| n >= self.policy.max_point_strikes)
    }

    /// Points of `shard` still needing execution: assigned minus
    /// journaled minus quarantined.
    fn remaining(&self, shard: &ShardState) -> Result<Vec<usize>, ShardError> {
        let snapshot = Journal::load_or_empty(&shard.journal_path)?;
        Ok(shard
            .assigned
            .iter()
            .copied()
            .filter(|&idx| snapshot.record_for(self.keys[idx]).is_none() && !self.poisoned(idx))
            .collect())
    }

    fn spawn(&mut self, shard: &mut ShardState, remaining: &[usize]) -> Result<(), ShardError> {
        let child = Command::new(&self.worker.program)
            .args(&self.worker.args)
            .arg(SHARD_JOURNAL_FLAG)
            .arg(&shard.journal_path)
            .arg(SHARD_POINTS_FLAG)
            .arg(format_point_list(remaining))
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| ShardError::Spawn {
                shard: shard.id,
                error: e.to_string(),
            })?;
        shard.child = Some(child);
        shard.journal_len = journal_len(&shard.journal_path);
        shard.last_progress = Instant::now();
        self.report.workers_spawned += 1;
        Ok(())
    }

    /// Attributes a worker death to the points it had begun (strikes,
    /// possibly quarantine) or to the shard itself (barren crash).
    fn attribute_crash(&mut self, shard: &mut ShardState) -> Result<(), ShardError> {
        let snapshot = Journal::load_or_empty(&shard.journal_path)?;
        let counts = strike_counts(&snapshot);
        let mut struck = false;
        for &idx in counts.keys() {
            if !shard.assigned.contains(&idx) || self.poisoned(idx) {
                continue;
            }
            struck = true;
            self.quarantine.append_begin(idx, self.keys[idx])?;
            let strikes = self.strikes.entry(idx).or_insert(0);
            *strikes += 1;
        }
        if struck {
            self.quarantine.sync()?;
        } else {
            shard.barren_crashes += 1;
            if shard.barren_crashes > self.policy.max_barren_crashes {
                shard.aborted = true;
                self.report.shards_aborted += 1;
            }
        }
        Ok(())
    }

    /// Respawns `shard` on its remaining points, or marks it done.
    fn respawn_or_finish(&mut self, shard: &mut ShardState) -> Result<(), ShardError> {
        if shard.aborted {
            shard.done = true;
            return Ok(());
        }
        let remaining = self.remaining(shard)?;
        if remaining.is_empty() {
            shard.done = true;
            return Ok(());
        }
        self.report.workers_respawned += 1;
        self.spawn(shard, &remaining)
    }
}

fn journal_len(path: &Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// Runs `design` to completion across supervised child worker processes
/// and merges the shard journals into one campaign result.
///
/// Idempotent and restartable: completed points are never re-executed
/// (they are read back from the shard journals), strikes persist in the
/// quarantine journal, and killing the *supervisor* mid-campaign merely
/// means the next invocation resumes where the journals stop.
pub fn supervise_shards(
    design: &Design,
    config: &CampaignConfig,
    policy: &ShardPolicy,
    durability: &ShardDurability<'_>,
    worker: &WorkerSpec,
) -> Result<ShardedCampaign, ShardError> {
    if policy.shards == 0 {
        return Err(ShardError::InvalidPolicy("shards must be >= 1"));
    }
    if policy.max_point_strikes == 0 {
        return Err(ShardError::InvalidPolicy("max_point_strikes must be >= 1"));
    }
    let points = design.full_factorial();
    if points.is_empty() {
        return Err(ShardError::Campaign(CampaignError::EmptyDesign));
    }
    std::fs::create_dir_all(durability.dir).map_err(|e| {
        ShardError::Journal(JournalError::Io {
            path: durability.dir.display().to_string(),
            op: "create-dir",
            error: e.to_string(),
        })
    })?;
    let meta = JournalMeta::new(
        design,
        config.seed,
        durability.code_version,
        durability.config_fingerprint,
    );
    let keys: Vec<JournalKey> = points.iter().map(|p| point_key(&meta, p)).collect();

    let (quarantine, quarantine_snapshot) =
        Journal::open_resume(&quarantine_path(durability.dir), &meta)?;
    let mut supervisor = Supervisor {
        keys: &keys,
        policy,
        worker,
        quarantine,
        strikes: strike_counts(&quarantine_snapshot),
        report: ShardReport {
            shards: policy.shards,
            ..ShardReport::default()
        },
    };

    let mut shards: Vec<ShardState> = (0..policy.shards)
        .map(|s| ShardState {
            id: s,
            assigned: shard_assignment(points.len(), policy.shards, s),
            journal_path: shard_journal_path(durability.dir, s),
            child: None,
            journal_len: 0,
            last_progress: Instant::now(),
            barren_crashes: 0,
            aborted: false,
            done: false,
        })
        .collect();

    // Make sure every shard journal exists with a valid header before
    // any worker runs, so resume/merge always sees consistent identity.
    for shard in &shards {
        let (journal, _) = Journal::open_resume(&shard.journal_path, &meta)?;
        drop(journal);
    }

    // Initial spawns (skipping shards with nothing left to do).
    for shard in &mut shards {
        let remaining = supervisor.remaining(shard)?;
        if remaining.is_empty() {
            shard.done = true;
        } else {
            supervisor.spawn(shard, &remaining)?;
        }
    }

    let heartbeat = Duration::from_millis(policy.heartbeat_timeout_ms.max(1));
    while shards.iter().any(|s| !s.done) {
        std::thread::sleep(Duration::from_millis(policy.poll_interval_ms.max(1)));
        for shard in shards.iter_mut().filter(|s| !s.done) {
            let Some(child) = shard.child.as_mut() else {
                shard.done = true;
                continue;
            };
            match child.try_wait() {
                Ok(Some(status)) => {
                    shard.child = None;
                    if !status.success() {
                        supervisor.report.crashes_observed += 1;
                        supervisor.attribute_crash(shard)?;
                    }
                    // A clean exit with work left behind (worker bug) is
                    // handled the same way: respawn on what remains.
                    supervisor.respawn_or_finish(shard)?;
                }
                Ok(None) => {
                    // Heartbeat: journal growth is the liveness signal.
                    let len = journal_len(&shard.journal_path);
                    if len > shard.journal_len {
                        shard.journal_len = len;
                        shard.last_progress = Instant::now();
                    } else if shard.last_progress.elapsed() > heartbeat {
                        let _ = child.kill();
                        let _ = child.wait();
                        shard.child = None;
                        supervisor.report.hangs_killed += 1;
                        supervisor.report.crashes_observed += 1;
                        supervisor.attribute_crash(shard)?;
                        supervisor.respawn_or_finish(shard)?;
                    }
                }
                Err(e) => {
                    return Err(ShardError::Spawn {
                        shard: shard.id,
                        error: format!("wait failed: {e}"),
                    });
                }
            }
        }
    }

    // Merge shard journals into design order.
    let mut runs: Vec<Option<ResilientRun>> = vec![None; points.len()];
    for shard in &shards {
        let snapshot = Journal::load_or_empty(&shard.journal_path)?;
        for &idx in &shard.assigned {
            if let Some(record) = snapshot.record_for(keys[idx]) {
                runs[idx] = Some(record.clone().into_run());
            }
        }
    }
    let mut poisoned: Vec<usize> = Vec::new();
    let runs: Vec<ResilientRun> = runs
        .into_iter()
        .enumerate()
        .map(|(idx, slot)| match slot {
            Some(run) => run,
            None => {
                let strikes = supervisor.strikes.get(&idx).copied().unwrap_or(0);
                let last_error = if supervisor.poisoned(idx) {
                    poisoned.push(idx);
                    format!("poisoned: crashed its worker {strikes} times")
                } else {
                    "shard aborted before executing this point".to_owned()
                };
                ResilientRun {
                    point: points[idx].clone(),
                    outcome: None,
                    fate: PointFate::Abandoned {
                        attempts: strikes,
                        last_error,
                    },
                    panics_contained: 0,
                }
            }
        })
        .collect();

    supervisor.report.points_poisoned = poisoned;
    let mut health = health_of(&runs);
    health.workers_respawned = supervisor.report.workers_respawned;
    health.points_poisoned = supervisor.report.points_poisoned.len();
    if health.points_completed == 0 {
        return Err(ShardError::Campaign(CampaignError::AllPointsFailed {
            health,
        }));
    }
    Ok(ShardedCampaign {
        result: ResilientCampaignResult { runs, health },
        report: supervisor.report,
    })
}

/// Collects streaming-sketch partials from the shard journals under
/// `dir` — the supervisor-side merge for campaigns whose workers ran
/// [`crate::experiment::stream::run_campaign_stream_journaled_subset`]
/// on their partitions.
///
/// Every journaled point record carrying a `sketch` field is decoded
/// and keyed by its design index. The cross-shard union is a disjoint
/// key union ([`KeyedPartials::merge_from`]), so the merged set — and
/// every statistic finalized from it — is bit-identical no matter how
/// many shards the campaign used or in which order they finished.
pub fn collect_stream_partials(
    dir: &Path,
    shards: usize,
) -> Result<KeyedPartials<StreamingSummary>, ShardError> {
    if shards == 0 {
        return Err(ShardError::InvalidPolicy("shards must be >= 1"));
    }
    let mut total = KeyedPartials::new();
    for s in 0..shards {
        let snapshot = Journal::load_or_empty(&shard_journal_path(dir, s))?;
        for record in snapshot.records.values() {
            if let Some(sketch) = &record.sketch {
                let summary = StreamingSummary::from_record(sketch).map_err(CampaignError::from)?;
                total
                    .insert(record.index as u64, summary)
                    .map_err(CampaignError::from)?;
            }
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::journal::JournalSpec;
    use crate::experiment::measurement::{MeasurementPlan, StoppingRule};
    use crate::experiment::resilience::{
        run_campaign_resilient, run_campaign_resilient_journaled_subset, MeasureFailure,
        RetryPolicy,
    };
    use crate::experiment::{Factor, RunPoint};
    use scibench_sim::rng::SimRng;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("scibench-shard-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn demo_design() -> Design {
        Design::new(vec![
            Factor::new("system", &["a", "b"]),
            Factor::numeric("size", &[8.0, 64.0]),
        ])
    }

    #[test]
    fn stream_partials_collect_across_shard_counts_bit_identically() {
        use crate::experiment::stream::{
            run_campaign_stream, run_campaign_stream_journaled_subset,
        };
        use scibench_stats::sketch::StreamConfig;

        fn measure(point: &RunPoint, rng: &mut SimRng) -> f64 {
            let base = if point.level(0) == "a" { 1.0 } else { 2.0 };
            base + rng.uniform() * 0.01
        }

        let design = demo_design();
        let plan = MeasurementPlan::new("op").stopping(StoppingRule::FixedCount(300));
        let stream_cfg = StreamConfig {
            threshold: 64,
            ..StreamConfig::default()
        };
        let config = CampaignConfig {
            seed: 17,
            threads: 2,
        };
        let whole = run_campaign_stream(&design, &plan, &stream_cfg, &config, measure).unwrap();
        for shards in [1usize, 2, 4] {
            let dir = tmp_dir(&format!("stream-collect-{shards}"));
            for s in 0..shards {
                let mine = shard_assignment(4, shards, s);
                let path = shard_journal_path(&dir, s);
                let spec = JournalSpec {
                    path: &path,
                    code_version: "t",
                    config_fingerprint: "s",
                };
                run_campaign_stream_journaled_subset(
                    &design,
                    &plan,
                    &stream_cfg,
                    &config,
                    &spec,
                    &mine,
                    measure,
                )
                .unwrap();
            }
            let merged = collect_stream_partials(&dir, shards).unwrap();
            assert_eq!(
                merged.to_record(),
                whole.partials.to_record(),
                "shards={shards}"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    fn plan() -> MeasurementPlan {
        MeasurementPlan::new("op").stopping(StoppingRule::FixedCount(15))
    }

    fn config() -> CampaignConfig {
        CampaignConfig {
            seed: 77,
            threads: 1,
        }
    }

    fn measure(point: &RunPoint, rng: &mut SimRng) -> Result<f64, MeasureFailure> {
        let base = if point.level(0) == "a" { 1.0 } else { 2.0 };
        Ok(base + rng.uniform() * 0.1)
    }

    /// Runs the worker side in-process for every shard (what a real
    /// worker process does after parsing its flags).
    fn fill_shards(dir: &Path, shards: usize) {
        for s in 0..shards {
            let path = shard_journal_path(dir, s);
            let indices = shard_assignment(demo_design().size(), shards, s);
            run_campaign_resilient_journaled_subset(
                &demo_design(),
                &plan(),
                &config(),
                &RetryPolicy::default(),
                &JournalSpec {
                    path: &path,
                    code_version: "test-v1",
                    config_fingerprint: "cfg",
                },
                &indices,
                measure,
            )
            .unwrap();
        }
    }

    fn durability(dir: &Path) -> ShardDurability<'_> {
        ShardDurability {
            dir,
            code_version: "test-v1",
            config_fingerprint: "cfg",
        }
    }

    #[test]
    fn assignment_partitions_without_overlap() {
        for shards in [1usize, 2, 3, 4, 7] {
            let mut all: Vec<usize> = (0..shards)
                .flat_map(|s| shard_assignment(10, shards, s))
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..10).collect::<Vec<_>>(), "shards={shards}");
        }
        assert!(shard_assignment(3, 8, 7).is_empty());
    }

    #[test]
    fn point_list_roundtrip() {
        let indices = vec![0usize, 3, 11];
        assert_eq!(format_point_list(&indices), "0,3,11");
        assert_eq!(parse_point_list("0,3,11").unwrap(), indices);
        assert_eq!(parse_point_list("").unwrap(), Vec::<usize>::new());
        assert!(parse_point_list("1,x").is_err());
    }

    #[test]
    fn invalid_policy_is_rejected() {
        let dir = tmp_dir("invalid-policy");
        let worker = WorkerSpec {
            program: PathBuf::from("/bin/true"),
            args: vec![],
        };
        for policy in [
            ShardPolicy {
                shards: 0,
                ..ShardPolicy::default()
            },
            ShardPolicy {
                max_point_strikes: 0,
                ..ShardPolicy::default()
            },
        ] {
            assert!(matches!(
                supervise_shards(
                    &demo_design(),
                    &config(),
                    &policy,
                    &durability(&dir),
                    &worker
                ),
                Err(ShardError::InvalidPolicy(_))
            ));
        }
    }

    #[test]
    fn merge_of_completed_shards_matches_single_process_run() {
        // Shard journals already complete: the supervisor spawns nothing
        // and the merge must reproduce the plain campaign bit-for-bit.
        let dir = tmp_dir("merge");
        fill_shards(&dir, 2);
        let worker = WorkerSpec {
            program: PathBuf::from("/bin/sh"),
            args: vec!["-c".into(), "exit 1".into()],
        };
        let sharded = supervise_shards(
            &demo_design(),
            &config(),
            &ShardPolicy::default(),
            &durability(&dir),
            &worker,
        )
        .unwrap();
        assert_eq!(sharded.report.workers_spawned, 0);
        assert_eq!(sharded.report.workers_respawned, 0);
        let plain = run_campaign_resilient(
            &demo_design(),
            &plan(),
            &config(),
            &RetryPolicy::default(),
            measure,
        )
        .unwrap();
        assert_eq!(sharded.result.health, plain.health);
        for (a, b) in sharded.result.runs.iter().zip(&plain.runs) {
            assert_eq!(a.point, b.point);
            assert_eq!(a.fate, b.fate);
            let (oa, ob) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
            let bits = |xs: &[f64]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&oa.samples), bits(&ob.samples));
        }
    }

    #[cfg(unix)]
    #[test]
    fn crashing_point_is_quarantined_after_k_strikes_without_failing_campaign() {
        // Shard journals complete except point 1, which carries a
        // dangling begin — exactly what a worker killed mid-point leaves
        // behind. The replacement "worker" always crashes, so point 1
        // accumulates strikes until quarantine; the campaign still
        // completes with the other three points intact.
        let dir = tmp_dir("poison");
        fill_shards(&dir, 2);
        let design = demo_design();
        let points = design.full_factorial();
        let meta = JournalMeta::new(&design, config().seed, "test-v1", "cfg");
        let poison_idx = 1usize; // shard 1 (idx % 2)
        let shard_path = shard_journal_path(&dir, 1);
        // Rewrite shard 1's journal without point 1's record, plus a
        // dangling begin for it.
        let snapshot = Journal::load(&shard_path).unwrap();
        std::fs::remove_file(&shard_path).unwrap();
        let (mut journal, _) = Journal::open_resume(&shard_path, &meta).unwrap();
        let poison_key = point_key(&meta, &points[poison_idx]);
        for record in snapshot.records.values().filter(|r| r.key != poison_key) {
            journal.append_point(record).unwrap();
        }
        journal.append_begin(poison_idx, poison_key).unwrap();
        drop(journal);

        let strikes = 3usize;
        let policy = ShardPolicy {
            shards: 2,
            max_point_strikes: strikes,
            poll_interval_ms: 5,
            ..ShardPolicy::default()
        };
        let worker = WorkerSpec {
            program: PathBuf::from("/bin/sh"),
            args: vec!["-c".into(), "exit 7".into()],
        };
        let sharded =
            supervise_shards(&design, &config(), &policy, &durability(&dir), &worker).unwrap();
        assert_eq!(sharded.report.points_poisoned, vec![poison_idx]);
        assert_eq!(sharded.result.health.points_poisoned, 1);
        assert_eq!(sharded.result.health.points_completed, 3);
        assert!(sharded.result.health.workers_respawned >= 1);
        assert!(sharded.report.crashes_observed >= strikes);
        match &sharded.result.runs[poison_idx].fate {
            PointFate::Abandoned {
                attempts,
                last_error,
            } => {
                assert_eq!(*attempts, strikes);
                assert!(last_error.contains("poisoned"), "{last_error}");
            }
            other => panic!("unexpected fate {other:?}"),
        }
        // Strikes persisted: a fresh supervisor run sees the quarantine
        // and finishes immediately without spawning anything.
        let again =
            supervise_shards(&design, &config(), &policy, &durability(&dir), &worker).unwrap();
        assert_eq!(again.report.workers_spawned, 0);
        assert_eq!(again.report.points_poisoned, vec![poison_idx]);
        assert_eq!(again.result.health.points_completed, 3);
    }

    #[cfg(unix)]
    #[test]
    fn hung_worker_is_killed_and_its_shard_aborted_after_barren_crashes() {
        // Shard 0 complete; shard 1's worker hangs forever without
        // journaling anything. The watchdog kills it, the crashes are
        // barren, and the shard aborts — the campaign survives with
        // shard 0's points completed and shard 1's abandoned.
        let dir = tmp_dir("hang");
        fill_shards(&dir, 2);
        let design = demo_design();
        // Erase shard 1 so its points are genuinely pending.
        std::fs::remove_file(shard_journal_path(&dir, 1)).unwrap();
        let policy = ShardPolicy {
            shards: 2,
            heartbeat_timeout_ms: 200,
            poll_interval_ms: 10,
            max_barren_crashes: 0,
            ..ShardPolicy::default()
        };
        let worker = WorkerSpec {
            program: PathBuf::from("/bin/sh"),
            args: vec!["-c".into(), "sleep 60".into()],
        };
        let started = Instant::now();
        let sharded =
            supervise_shards(&design, &config(), &policy, &durability(&dir), &worker).unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "watchdog failed to kill the hung worker"
        );
        assert_eq!(sharded.report.hangs_killed, 1);
        assert_eq!(sharded.report.shards_aborted, 1);
        assert_eq!(sharded.result.health.points_completed, 2);
        assert_eq!(sharded.result.health.points_abandoned, 2);
        for idx in [1usize, 3] {
            assert!(matches!(
                sharded.result.runs[idx].fate,
                PointFate::Abandoned { .. }
            ));
        }
    }

    #[test]
    fn unspawnable_worker_is_a_typed_error() {
        let dir = tmp_dir("unspawnable");
        let worker = WorkerSpec {
            program: dir.join("no-such-binary"),
            args: vec![],
        };
        let err = supervise_shards(
            &demo_design(),
            &config(),
            &ShardPolicy::default(),
            &durability(&dir),
            &worker,
        )
        .unwrap_err();
        assert!(matches!(err, ShardError::Spawn { .. }), "{err}");
        assert!(err.to_string().contains("failed to spawn"));
    }
}
