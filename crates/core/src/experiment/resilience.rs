//! A resilient campaign runner: retry, timeout and graceful degradation.
//!
//! [`super::campaign::run_campaign`] aborts the whole campaign on the
//! first error — the right behaviour for a clean simulator, but not for
//! measurements on faulty hardware (or a fault-injected simulation, see
//! [`scibench_sim::fault`]). This module runs the same factorial design
//! with a failure budget instead:
//!
//! * every design point is attempted up to [`RetryPolicy::max_attempts`]
//!   times, with exponential backoff charged in *simulated* time between
//!   attempts;
//! * a per-point budget of simulated time quarantines points that cannot
//!   finish ([`PointFate::TimedOut`]);
//! * individual failed samples inside an attempt are recorded as NaN and
//!   later dropped by the sanitizing summary — up to
//!   [`RetryPolicy::max_contamination`], beyond which the attempt is
//!   retried wholesale;
//! * panics in the measurement closure are contained with
//!   [`std::panic::catch_unwind`] and count as failed attempts;
//! * instead of propagating the first error, the runner returns every
//!   surviving outcome plus a [`CampaignHealth`] summary disclosing, per
//!   Rule 4, how many points completed, were retried, timed out or were
//!   abandoned, and how many samples were dropped.
//!
//! Determinism is preserved: every attempt draws from a stream forked
//! from `(campaign seed, design index, attempt index)`, so results are
//! identical at any thread count and fault schedules never depend on
//! scheduling.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use serde::{Deserialize, Serialize};

use scibench_sim::fault::SimFault;
use scibench_sim::rng::SimRng;
use scibench_stats::error::StatsResult;
use scibench_trace::{category, lane_of, ArgValue, Tracer};

use crate::obs;
use crate::parallel::pool;

use super::campaign::CampaignConfig;
use super::design::{Design, RunPoint};
use super::measurement::{MeasurementOutcome, MeasurementPlan, MeasurementSummary};

/// Why one invocation of the measurement closure failed.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasureFailure {
    /// An injected simulator fault (crash, link failure, clock jump).
    Fault(SimFault),
    /// Any other failure, described as text.
    Failed(String),
}

impl From<SimFault> for MeasureFailure {
    fn from(fault: SimFault) -> Self {
        MeasureFailure::Fault(fault)
    }
}

impl fmt::Display for MeasureFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasureFailure::Fault(fault) => write!(f, "{fault}"),
            MeasureFailure::Failed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for MeasureFailure {}

/// Retry, backoff and budget knobs of the resilient runner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts per design point before it is abandoned (min 1).
    pub max_attempts: usize,
    /// Simulated-time backoff charged after the first failed attempt.
    pub backoff_base_ns: f64,
    /// Multiplier applied to the backoff after each further failure.
    pub backoff_factor: f64,
    /// Per-point budget of simulated time (measurement cost + backoff);
    /// `None` = unlimited. A point that exceeds it is quarantined as
    /// [`PointFate::TimedOut`].
    pub point_budget_ns: Option<f64>,
    /// Highest tolerated fraction of failed samples within one attempt.
    /// At or below it the attempt succeeds with the failures recorded as
    /// dropped samples; above it the whole attempt is retried.
    pub max_contamination: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_base_ns: 1e6,
            backoff_factor: 2.0,
            point_budget_ns: None,
            max_contamination: 0.25,
        }
    }
}

impl RetryPolicy {
    /// Sets the number of attempts.
    pub fn attempts(mut self, n: usize) -> Self {
        self.max_attempts = n;
        self
    }

    /// Sets the per-point simulated-time budget.
    pub fn budget_ns(mut self, ns: f64) -> Self {
        self.point_budget_ns = Some(ns);
        self
    }

    /// Sets the tolerated per-attempt contamination fraction.
    pub fn contamination(mut self, fraction: f64) -> Self {
        self.max_contamination = fraction;
        self
    }
}

/// What finally happened to one design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PointFate {
    /// The point produced a usable outcome.
    Completed {
        /// Attempts consumed (1 = first try).
        attempts: usize,
        /// Failed samples recorded as NaN inside the successful attempt
        /// (dropped later by the sanitizing summary).
        samples_dropped: usize,
    },
    /// The simulated-time budget ran out; the point is quarantined.
    TimedOut {
        /// Attempts consumed when the budget was exceeded.
        attempts: usize,
        /// Simulated time spent on the point, nanoseconds.
        elapsed_ns: f64,
    },
    /// Every attempt failed; the point is quarantined.
    Abandoned {
        /// Attempts consumed.
        attempts: usize,
        /// Description of the last failure (fault, panic or statistics
        /// error).
        last_error: String,
    },
}

impl PointFate {
    /// Whether the point produced a usable outcome.
    pub fn completed(&self) -> bool {
        matches!(self, PointFate::Completed { .. })
    }
}

/// One design point executed by the resilient runner.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientRun {
    /// The factor levels of this run.
    pub point: RunPoint,
    /// The surviving outcome; `None` when the point was quarantined.
    pub outcome: Option<MeasurementOutcome>,
    /// What happened to the point.
    pub fate: PointFate,
    /// Panics contained while attempting this point.
    pub panics_contained: usize,
}

/// Rule-4 disclosure of how the campaign fared.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CampaignHealth {
    /// Design points in the campaign.
    pub points_total: usize,
    /// Points that produced a usable outcome.
    pub points_completed: usize,
    /// Completed points that needed more than one attempt.
    pub points_retried: usize,
    /// Points quarantined after exceeding their budget.
    pub points_timed_out: usize,
    /// Points quarantined after exhausting their attempts.
    pub points_abandoned: usize,
    /// Attempts consumed across all points.
    pub attempts_total: usize,
    /// Failed samples recorded (and later dropped) inside completed
    /// points.
    pub samples_dropped: usize,
    /// Panics contained by the runner.
    pub panics_contained: usize,
}

impl CampaignHealth {
    /// Whether every point completed on its first attempt with no
    /// dropped samples and no contained panics.
    pub fn pristine(&self) -> bool {
        self.points_completed == self.points_total
            && self.points_retried == 0
            && self.samples_dropped == 0
            && self.panics_contained == 0
    }

    /// Renders the health summary as one disclosure line (Rule 4).
    pub fn render(&self) -> String {
        format!(
            "campaign health: {}/{} points completed ({} retried), \
             {} timed out, {} abandoned; {} attempts; \
             {} samples dropped; {} panics contained",
            self.points_completed,
            self.points_total,
            self.points_retried,
            self.points_timed_out,
            self.points_abandoned,
            self.attempts_total,
            self.samples_dropped,
            self.panics_contained,
        )
    }
}

/// The executed resilient campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientCampaignResult {
    /// Executed runs, in design (full-factorial) order. Quarantined
    /// points are present with `outcome: None`.
    pub runs: Vec<ResilientRun>,
    /// The aggregated health disclosure.
    pub health: CampaignHealth,
}

impl ResilientCampaignResult {
    /// Summarizes every *surviving* run at the given confidence level;
    /// quarantined points are skipped.
    ///
    /// Returns borrowed points: no `RunPoint` is cloned, and the first
    /// summarization error short-circuits before any tuple is built.
    pub fn summaries(&self, confidence: f64) -> StatsResult<Vec<(&RunPoint, MeasurementSummary)>> {
        self.runs
            .iter()
            .filter_map(|r| r.outcome.as_ref().map(|o| (&r.point, o)))
            .map(|(point, o)| Ok((point, o.summarize(confidence)?)))
            .collect()
    }

    /// The quarantined points (timed out or abandoned).
    pub fn quarantined(&self) -> Vec<&RunPoint> {
        self.runs
            .iter()
            .filter(|r| r.outcome.is_none())
            .map(|r| &r.point)
            .collect()
    }
}

/// Errors of the resilient runner.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The design expands to zero points.
    EmptyDesign,
    /// Not a single design point produced a usable outcome; the health
    /// disclosure explains what happened.
    AllPointsFailed {
        /// The aggregated health of the failed campaign.
        health: CampaignHealth,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::EmptyDesign => write!(f, "design expands to zero points"),
            CampaignError::AllPointsFailed { health } => {
                write!(f, "no design point survived: {}", health.render())
            }
        }
    }
}

impl std::error::Error for CampaignError {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Executes `design` with `plan` at every point, tolerating failures per
/// `policy`.
///
/// `measure` maps `(point, rng)` to the cost of one execution or a
/// [`MeasureFailure`]. Failed samples inside an attempt are recorded as
/// NaN and surface as dropped samples in the sanitizing summary (which
/// then withholds the parametric mean CI); attempts whose contamination
/// exceeds [`RetryPolicy::max_contamination`] — and attempts that panic
/// or fail their adaptive stopping rule — are retried with exponential
/// backoff until the point's budget or attempt count runs out. The
/// function must be `Sync` because points may execute on worker threads.
///
/// Returns [`CampaignError::AllPointsFailed`] only when *no* point
/// survives; any partial campaign is returned with its
/// [`CampaignHealth`] disclosure.
pub fn run_campaign_resilient<F>(
    design: &Design,
    plan: &MeasurementPlan,
    config: &CampaignConfig,
    policy: &RetryPolicy,
    measure: F,
) -> Result<ResilientCampaignResult, CampaignError>
where
    F: Fn(&RunPoint, &mut SimRng) -> Result<f64, MeasureFailure> + Sync,
{
    run_campaign_resilient_traced(design, plan, config, policy, None, measure)
}

/// [`run_campaign_resilient`] with optional tracing.
///
/// When `tracer` is `Some`, each design point records on its own lane
/// ([`obs::campaign_lane`]): a [`category::RESILIENCE`] span per point
/// and per attempt, instants for retries (with the charged backoff),
/// timeouts, abandonments and contained panics, a dropped-sample
/// counter, and one [`category::FAULT`] instant per failed measurement
/// call. All of these derive from the seeded RNG streams, so their
/// counts are deterministic for a fixed seed; tracing itself never
/// touches the streams, keeping results bit-identical to the untraced
/// runner at any thread count.
pub fn run_campaign_resilient_traced<F>(
    design: &Design,
    plan: &MeasurementPlan,
    config: &CampaignConfig,
    policy: &RetryPolicy,
    tracer: Option<&Tracer>,
    measure: F,
) -> Result<ResilientCampaignResult, CampaignError>
where
    F: Fn(&RunPoint, &mut SimRng) -> Result<f64, MeasureFailure> + Sync,
{
    run_campaign_resilient_scoped_traced(
        design,
        plan,
        config,
        policy,
        tracer,
        || (),
        |(), point, rng| measure(point, rng),
    )
}

/// [`run_campaign_resilient`] with a per-worker scratch state (see
/// [`crate::experiment::campaign::run_campaign_scoped`] for the scratch
/// ownership contract).
pub fn run_campaign_resilient_scoped<S, I, F>(
    design: &Design,
    plan: &MeasurementPlan,
    config: &CampaignConfig,
    policy: &RetryPolicy,
    init: I,
    measure: F,
) -> Result<ResilientCampaignResult, CampaignError>
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &RunPoint, &mut SimRng) -> Result<f64, MeasureFailure> + Sync,
{
    run_campaign_resilient_scoped_traced(design, plan, config, policy, None, init, measure)
}

/// [`run_campaign_resilient_scoped`] with optional tracing (same event
/// contract as [`run_campaign_resilient_traced`]).
#[allow(clippy::too_many_arguments)] // mirrors the traced + scoped variants
pub fn run_campaign_resilient_scoped_traced<S, I, F>(
    design: &Design,
    plan: &MeasurementPlan,
    config: &CampaignConfig,
    policy: &RetryPolicy,
    tracer: Option<&Tracer>,
    init: I,
    measure: F,
) -> Result<ResilientCampaignResult, CampaignError>
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &RunPoint, &mut SimRng) -> Result<f64, MeasureFailure> + Sync,
{
    let points = design.full_factorial();
    if points.is_empty() {
        return Err(CampaignError::EmptyDesign);
    }
    let threads = config.threads.clamp(1, points.len());
    let max_attempts = policy.max_attempts.max(1);
    let budget = policy.point_budget_ns.unwrap_or(f64::INFINITY);

    // Same randomized execution order as the strict runner (§4.1.1).
    let mut order: Vec<usize> = (0..points.len()).collect();
    let mut order_rng = SimRng::new(config.seed).fork("campaign-order");
    order_rng.shuffle(&mut order);

    let root = SimRng::new(config.seed);
    let run_one = |scratch: &mut S, design_idx: usize| -> ResilientRun {
        let point = &points[design_idx];
        let point_root = root.fork_indexed("campaign-point", design_idx as u64);
        let elapsed = Cell::new(0.0f64);
        let mut attempts = 0usize;
        let mut panics_contained = 0usize;
        let mut timed_out = false;
        let mut last_error = String::from("no attempt made");
        // The lane is borrowed both inside the measurement closure (fault
        // instants) and between attempts, so it lives in a RefCell like
        // the rest of the per-attempt bookkeeping.
        let lane = RefCell::new(lane_of(tracer, obs::campaign_lane(design_idx)));
        let point_span = lane.borrow().begin();

        while attempts < max_attempts {
            let attempt_idx = attempts as u64;
            attempts += 1;
            let mut rng = point_root.fork_indexed("campaign-attempt", attempt_idx);
            let attempt_span = lane.borrow().begin();
            // Per-attempt bookkeeping lives in cells so it stays readable
            // after a contained panic.
            let calls = Cell::new(0usize);
            let recorded_failures = Cell::new(0usize);
            let overran = Cell::new(false);
            let first_error: RefCell<Option<String>> = RefCell::new(None);

            let attempt = catch_unwind(AssertUnwindSafe(|| {
                plan.run(|| {
                    let call_idx = calls.get();
                    calls.set(call_idx + 1);
                    if elapsed.get() > budget {
                        overran.set(true);
                        return f64::NAN;
                    }
                    match measure(&mut *scratch, point, &mut rng) {
                        Ok(cost) => {
                            elapsed.set(elapsed.get() + cost.max(0.0));
                            cost
                        }
                        Err(e) => {
                            {
                                let mut l = lane.borrow_mut();
                                if l.is_on() {
                                    l.instant(
                                        category::FAULT,
                                        "measure-failure",
                                        &[
                                            ("call", ArgValue::U64(call_idx as u64)),
                                            ("error", ArgValue::Str(e.to_string())),
                                        ],
                                    );
                                }
                            }
                            // Warmup failures cost nothing statistically;
                            // only recorded samples count as contaminated.
                            if call_idx >= plan.warmup_iterations {
                                recorded_failures.set(recorded_failures.get() + 1);
                            }
                            if first_error.borrow().is_none() {
                                *first_error.borrow_mut() = Some(e.to_string());
                            }
                            f64::NAN
                        }
                    }
                })
            }));

            {
                let mut l = lane.borrow_mut();
                l.end(
                    attempt_span,
                    category::RESILIENCE,
                    "attempt",
                    &[
                        ("attempt", ArgValue::U64(attempt_idx)),
                        ("ok", ArgValue::Bool(matches!(&attempt, Ok(Ok(_))))),
                    ],
                );
                if attempt.is_err() {
                    l.instant(
                        category::RESILIENCE,
                        "panic-contained",
                        &[("attempt", ArgValue::U64(attempt_idx))],
                    );
                }
            }

            match attempt {
                Err(payload) => {
                    panics_contained += 1;
                    last_error = format!("panicked: {}", panic_message(&*payload));
                }
                Ok(Err(stats_err)) => {
                    if overran.get() {
                        timed_out = true;
                        break;
                    }
                    last_error = first_error
                        .into_inner()
                        .unwrap_or_else(|| stats_err.to_string());
                }
                Ok(Ok(outcome)) => {
                    if overran.get() {
                        timed_out = true;
                        break;
                    }
                    let recorded = outcome.samples.len();
                    let failures = recorded_failures.get();
                    if recorded > 0 && failures as f64 <= policy.max_contamination * recorded as f64
                    {
                        {
                            let mut l = lane.borrow_mut();
                            if l.is_on() {
                                l.counter(category::RESILIENCE, "samples-dropped", failures as f64);
                                l.end(
                                    point_span,
                                    category::RESILIENCE,
                                    "point",
                                    &[
                                        ("index", ArgValue::U64(design_idx as u64)),
                                        ("fate", ArgValue::Str("completed".to_string())),
                                        ("attempts", ArgValue::U64(attempts as u64)),
                                    ],
                                );
                            }
                        }
                        return ResilientRun {
                            point: point.clone(),
                            outcome: Some(outcome),
                            fate: PointFate::Completed {
                                attempts,
                                samples_dropped: failures,
                            },
                            panics_contained,
                        };
                    }
                    last_error = first_error
                        .into_inner()
                        .unwrap_or_else(|| format!("{failures} of {recorded} samples failed"));
                }
            }

            // Exponential backoff charged against the simulated budget.
            if attempts < max_attempts {
                let backoff =
                    policy.backoff_base_ns * policy.backoff_factor.powi(attempts as i32 - 1);
                lane.borrow_mut().instant(
                    category::RESILIENCE,
                    "retry",
                    &[
                        ("attempt", ArgValue::U64(attempts as u64)),
                        ("backoff_ns", ArgValue::F64(backoff)),
                    ],
                );
                elapsed.set(elapsed.get() + backoff.max(0.0));
                if elapsed.get() > budget {
                    timed_out = true;
                    break;
                }
            }
        }

        {
            let mut l = lane.borrow_mut();
            if l.is_on() {
                let fate_name = if timed_out { "timeout" } else { "abandoned" };
                l.instant(
                    category::RESILIENCE,
                    fate_name,
                    &[("attempts", ArgValue::U64(attempts as u64))],
                );
                l.end(
                    point_span,
                    category::RESILIENCE,
                    "point",
                    &[
                        ("index", ArgValue::U64(design_idx as u64)),
                        ("fate", ArgValue::Str(fate_name.to_string())),
                        ("attempts", ArgValue::U64(attempts as u64)),
                    ],
                );
            }
        }
        let fate = if timed_out {
            PointFate::TimedOut {
                attempts,
                elapsed_ns: elapsed.get(),
            }
        } else {
            PointFate::Abandoned {
                attempts,
                last_error,
            }
        };
        ResilientRun {
            point: point.clone(),
            outcome: None,
            fate,
            panics_contained,
        }
    };

    // Execute the shuffled order on the work-stealing pool, then
    // un-shuffle back into design order. `run_one` is infallible — panics
    // in the measurement closure are already contained per attempt — so a
    // pool-level panic can only be runner infrastructure and is re-raised.
    let positioned =
        pool::run_indexed_scoped_traced(order.len(), threads, tracer, init, |scratch, pos| {
            run_one(scratch, order[pos])
        });
    let mut slots: Vec<Option<ResilientRun>> = (0..points.len()).map(|_| None).collect();
    for (pos, result) in positioned.into_iter().enumerate() {
        match result {
            Ok(run) => slots[order[pos]] = Some(run),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    let runs: Vec<ResilientRun> = slots
        .into_iter()
        .map(|s| s.expect("every design point executed"))
        .collect();

    let mut health = CampaignHealth {
        points_total: runs.len(),
        ..CampaignHealth::default()
    };
    for run in &runs {
        health.panics_contained += run.panics_contained;
        match &run.fate {
            PointFate::Completed {
                attempts,
                samples_dropped,
            } => {
                health.points_completed += 1;
                if *attempts > 1 {
                    health.points_retried += 1;
                }
                health.attempts_total += attempts;
                health.samples_dropped += samples_dropped;
            }
            PointFate::TimedOut { attempts, .. } => {
                health.points_timed_out += 1;
                health.attempts_total += attempts;
            }
            PointFate::Abandoned { attempts, .. } => {
                health.points_abandoned += 1;
                health.attempts_total += attempts;
            }
        }
    }

    if health.points_completed == 0 {
        return Err(CampaignError::AllPointsFailed { health });
    }
    Ok(ResilientCampaignResult { runs, health })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::design::Factor;
    use crate::experiment::measurement::StoppingRule;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn demo_design() -> Design {
        Design::new(vec![
            Factor::new("system", &["a", "b"]),
            Factor::numeric("size", &[8.0, 64.0]),
        ])
    }

    fn fixed_plan(n: usize) -> MeasurementPlan {
        MeasurementPlan::new("op").stopping(StoppingRule::FixedCount(n))
    }

    fn clean_measure(point: &RunPoint, rng: &mut SimRng) -> Result<f64, MeasureFailure> {
        let base = if point.level(0) == "a" { 1.0 } else { 2.0 };
        Ok(base + rng.uniform() * 0.01)
    }

    #[test]
    fn fault_free_campaign_is_pristine() {
        let result = run_campaign_resilient(
            &demo_design(),
            &fixed_plan(20),
            &CampaignConfig {
                seed: 1,
                threads: 1,
            },
            &RetryPolicy::default(),
            clean_measure,
        )
        .unwrap();
        assert_eq!(result.runs.len(), 4);
        assert!(result.health.pristine(), "{}", result.health.render());
        assert_eq!(result.health.attempts_total, 4);
        assert!(result.quarantined().is_empty());
        for r in &result.runs {
            assert!(matches!(
                r.fate,
                PointFate::Completed {
                    attempts: 1,
                    samples_dropped: 0
                }
            ));
        }
        assert_eq!(result.summaries(0.95).unwrap().len(), 4);
    }

    #[test]
    fn failing_first_attempt_is_retried() {
        let calls = AtomicUsize::new(0);
        let result = run_campaign_resilient(
            &Design::new(vec![Factor::new("only", &["x"])]),
            &fixed_plan(10),
            &CampaignConfig {
                seed: 2,
                threads: 1,
            },
            &RetryPolicy::default(),
            |_point, _rng| {
                // The whole first attempt (10 samples) fails; the second
                // succeeds.
                if calls.fetch_add(1, Ordering::SeqCst) < 10 {
                    Err(MeasureFailure::Failed("transient".into()))
                } else {
                    Ok(1.0)
                }
            },
        )
        .unwrap();
        assert_eq!(result.runs.len(), 1);
        assert!(matches!(
            result.runs[0].fate,
            PointFate::Completed {
                attempts: 2,
                samples_dropped: 0
            }
        ));
        assert_eq!(result.health.points_retried, 1);
        assert_eq!(result.health.attempts_total, 2);
    }

    #[test]
    fn tolerated_contamination_survives_and_degrades_summary() {
        let result = run_campaign_resilient(
            &Design::new(vec![Factor::new("only", &["x"])]),
            &fixed_plan(100),
            &CampaignConfig {
                seed: 3,
                threads: 1,
            },
            &RetryPolicy::default().contamination(0.2),
            |_point, rng| {
                if rng.uniform() < 0.05 {
                    Err(SimFault::NodeCrashed {
                        node: 0,
                        at_ns: 0.0,
                    }
                    .into())
                } else {
                    Ok(1.0 + rng.uniform() * 0.1)
                }
            },
        )
        .unwrap();
        let run = &result.runs[0];
        let dropped = match run.fate {
            PointFate::Completed {
                samples_dropped, ..
            } => samples_dropped,
            ref other => panic!("unexpected fate {other:?}"),
        };
        assert!(dropped > 0, "5% failure rate never fired in 100 samples");
        assert_eq!(result.health.samples_dropped, dropped);
        let (_, summary) = &result.summaries(0.95).unwrap()[0];
        assert_eq!(summary.samples_dropped, dropped);
        assert_eq!(summary.n, 100 - dropped);
        assert!(!summary.mean_ci_valid);
        assert!(summary.median_ci.is_some());
    }

    #[test]
    fn budget_exhaustion_quarantines_the_point() {
        let design = Design::new(vec![Factor::new("node", &["slow", "fast"])]);
        let result = run_campaign_resilient(
            &design,
            &fixed_plan(10),
            &CampaignConfig {
                seed: 4,
                threads: 1,
            },
            &RetryPolicy::default().budget_ns(5e8),
            |point, rng| {
                if point.level(0) == "slow" {
                    Ok(1e9) // one sample blows the budget
                } else {
                    Ok(100.0 + rng.uniform())
                }
            },
        )
        .unwrap();
        assert_eq!(result.health.points_timed_out, 1);
        assert_eq!(result.health.points_completed, 1);
        let slow = result
            .runs
            .iter()
            .find(|r| r.point.level(0) == "slow")
            .unwrap();
        assert!(slow.outcome.is_none());
        assert!(matches!(slow.fate, PointFate::TimedOut { .. }));
        assert_eq!(result.quarantined().len(), 1);
        // Summaries skip the quarantined point.
        assert_eq!(result.summaries(0.95).unwrap().len(), 1);
    }

    #[test]
    fn backoff_is_charged_against_the_budget() {
        let result = run_campaign_resilient(
            &Design::new(vec![Factor::new("only", &["x"])]),
            &fixed_plan(5),
            &CampaignConfig {
                seed: 5,
                threads: 1,
            },
            &RetryPolicy {
                max_attempts: 100,
                backoff_base_ns: 1e9,
                backoff_factor: 2.0,
                point_budget_ns: Some(3e9),
                max_contamination: 0.0,
            },
            |_point, _rng| Err::<f64, _>(MeasureFailure::Failed("always".into())),
        );
        // Backoff (1e9, then 2e9) exceeds the 3e9 budget after two
        // failed attempts: timeout, not 100 attempts of abandonment.
        let err = result.unwrap_err();
        match err {
            CampaignError::AllPointsFailed { health } => {
                assert_eq!(health.points_timed_out, 1);
                assert!(health.attempts_total < 10, "{}", health.render());
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn all_points_failed_is_a_typed_error() {
        let err = run_campaign_resilient(
            &demo_design(),
            &fixed_plan(5),
            &CampaignConfig {
                seed: 6,
                threads: 2,
            },
            &RetryPolicy::default().attempts(2),
            |_point, _rng| {
                Err::<f64, _>(
                    SimFault::NodeCrashed {
                        node: 3,
                        at_ns: 1.0,
                    }
                    .into(),
                )
            },
        )
        .unwrap_err();
        match err {
            CampaignError::AllPointsFailed { health } => {
                assert_eq!(health.points_abandoned, 4);
                assert_eq!(health.points_completed, 0);
                assert_eq!(health.attempts_total, 8);
                assert!(health.render().contains("0/4 points completed"));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn panics_are_contained_and_reported() {
        let design = Design::new(vec![Factor::new("mode", &["ok", "boom"])]);
        let result = run_campaign_resilient(
            &design,
            &fixed_plan(10),
            &CampaignConfig {
                seed: 7,
                threads: 1,
            },
            &RetryPolicy::default().attempts(2),
            |point, rng| {
                if point.level(0) == "boom" {
                    panic!("injected panic");
                }
                Ok(1.0 + rng.uniform())
            },
        )
        .unwrap();
        assert_eq!(result.health.points_completed, 1);
        assert_eq!(result.health.points_abandoned, 1);
        assert_eq!(result.health.panics_contained, 2);
        let boom = result
            .runs
            .iter()
            .find(|r| r.point.level(0) == "boom")
            .unwrap();
        match &boom.fate {
            PointFate::Abandoned { last_error, .. } => {
                assert!(last_error.contains("injected panic"), "{last_error}");
            }
            other => panic!("unexpected fate {other:?}"),
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let faulty = |_point: &RunPoint, rng: &mut SimRng| {
            if rng.uniform() < 0.1 {
                Err(MeasureFailure::Fault(SimFault::LinkFailed {
                    src: 0,
                    dst: 1,
                    drops: 4,
                }))
            } else {
                Ok(1.0 + rng.uniform() * 0.2)
            }
        };
        let run = |threads: usize| {
            run_campaign_resilient(
                &demo_design(),
                &fixed_plan(40),
                &CampaignConfig { seed: 8, threads },
                &RetryPolicy::default(),
                faulty,
            )
            .unwrap()
        };
        let seq = run(1);
        let par = run(8);
        // NaN placeholders defeat PartialEq, so compare bit-exactly.
        assert_eq!(seq.health, par.health);
        assert_eq!(seq.runs.len(), par.runs.len());
        for (a, b) in seq.runs.iter().zip(&par.runs) {
            assert_eq!(a.point, b.point);
            assert_eq!(a.fate, b.fate);
            assert_eq!(a.panics_contained, b.panics_contained);
            let (oa, ob) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
            assert_eq!(oa.samples.len(), ob.samples.len());
            for (x, y) in oa.samples.iter().zip(&ob.samples) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert!(seq.health.samples_dropped > 0 || seq.health.points_retried > 0);
    }

    #[test]
    fn traced_resilient_campaign_matches_untraced() {
        let faulty = |_point: &RunPoint, rng: &mut SimRng| {
            if rng.uniform() < 0.1 {
                Err(MeasureFailure::Fault(SimFault::LinkFailed {
                    src: 0,
                    dst: 1,
                    drops: 4,
                }))
            } else {
                Ok(1.0 + rng.uniform() * 0.2)
            }
        };
        let plain = run_campaign_resilient(
            &demo_design(),
            &fixed_plan(30),
            &CampaignConfig {
                seed: 12,
                threads: 1,
            },
            &RetryPolicy::default(),
            faulty,
        )
        .unwrap();
        for threads in [1, 2, 8] {
            let tracer = Tracer::new();
            let traced = run_campaign_resilient_traced(
                &demo_design(),
                &fixed_plan(30),
                &CampaignConfig { seed: 12, threads },
                &RetryPolicy::default(),
                Some(&tracer),
                faulty,
            )
            .unwrap();
            assert_eq!(plain.health, traced.health, "threads={threads}");
            for (a, b) in plain.runs.iter().zip(&traced.runs) {
                assert_eq!(a.fate, b.fate);
                let (oa, ob) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
                for (x, y) in oa.samples.iter().zip(&ob.samples) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            let trace = tracer.drain();
            // One point span + one attempt span (+ dropped counter) per
            // point; fault instants equal the failed measure calls.
            assert!(trace.count(category::RESILIENCE) >= 2 * plain.runs.len());
            let expected_faults: usize = plain.health.samples_dropped;
            assert_eq!(
                trace.count(category::FAULT),
                expected_faults,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn traced_event_counts_are_thread_invariant() {
        let faulty = |_point: &RunPoint, rng: &mut SimRng| {
            if rng.uniform() < 0.2 {
                Err(MeasureFailure::Failed("flaky".into()))
            } else {
                Ok(1.0 + rng.uniform() * 0.1)
            }
        };
        let counts_for = |threads: usize| {
            let tracer = Tracer::new();
            let _ = run_campaign_resilient_traced(
                &demo_design(),
                &fixed_plan(25),
                &CampaignConfig { seed: 13, threads },
                &RetryPolicy::default(),
                Some(&tracer),
                faulty,
            )
            .unwrap();
            tracer.drain().deterministic_counts()
        };
        assert_eq!(counts_for(1), counts_for(4));
    }

    #[test]
    fn campaign_error_display_is_informative() {
        let err = CampaignError::AllPointsFailed {
            health: CampaignHealth {
                points_total: 2,
                points_abandoned: 2,
                attempts_total: 6,
                ..CampaignHealth::default()
            },
        };
        assert!(err.to_string().contains("no design point survived"));
        assert!(err.to_string().contains("0/2 points completed"));
        assert!(CampaignError::EmptyDesign
            .to_string()
            .contains("zero points"));
    }

    #[test]
    fn scoped_resilient_campaign_is_bit_identical_to_plain() {
        // A per-worker scratch buffer must not change any result bit:
        // point-level RNG forks are independent of scheduling and scratch.
        let plain = run_campaign_resilient(
            &demo_design(),
            &fixed_plan(20),
            &CampaignConfig {
                seed: 7,
                threads: 1,
            },
            &RetryPolicy::default(),
            clean_measure,
        )
        .unwrap();
        for threads in [1usize, 2, 8] {
            let scoped = run_campaign_resilient_scoped(
                &demo_design(),
                &fixed_plan(20),
                &CampaignConfig { seed: 7, threads },
                &RetryPolicy::default(),
                || Vec::<f64>::with_capacity(32),
                |scratch, point, rng| {
                    scratch.clear();
                    scratch.push(0.0); // exercise the arena without touching rng
                    let base = if point.level(0) == "a" { 1.0 } else { 2.0 };
                    Ok(base + scratch[0] + rng.uniform() * 0.01)
                },
            )
            .unwrap();
            assert_eq!(plain.runs.len(), scoped.runs.len());
            for (a, b) in plain.runs.iter().zip(&scoped.runs) {
                let xs = &a.outcome.as_ref().unwrap().samples;
                let ys = &b.outcome.as_ref().unwrap().samples;
                assert_eq!(
                    xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    ys.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn health_render_is_one_line() {
        let health = CampaignHealth {
            points_total: 12,
            points_completed: 10,
            points_retried: 3,
            points_timed_out: 1,
            points_abandoned: 1,
            attempts_total: 17,
            samples_dropped: 42,
            panics_contained: 2,
        };
        let line = health.render();
        assert!(!line.contains('\n'));
        for needle in [
            "10/12",
            "3 retried",
            "1 timed out",
            "1 abandoned",
            "42 samples dropped",
            "2 panics contained",
        ] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
        assert!(!health.pristine());
    }
}
