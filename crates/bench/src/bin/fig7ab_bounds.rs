//! Regenerates Figure 7(a,b): time/speedup bounds for the pi workload.

use std::process::ExitCode;

use scibench_bench::figures::fig7ab_bounds;
use scibench_bench::{output, samples_from_env, DEFAULT_SEED};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig7ab_bounds: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let reps = samples_from_env(10);
    let fig = fig7ab_bounds::compute(reps, DEFAULT_SEED)?;
    println!("{}", fig.render());
    let path = output::write_csv("fig7ab_bounds", &fig.dataset())?;
    println!("scaling data: {}", path.display());
    Ok(())
}
