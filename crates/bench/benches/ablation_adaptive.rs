//! Ablation: fixed-count vs adaptive CI-driven stopping (§4.2.2).
//!
//! The adaptive rules spend exactly as many samples as the target
//! precision requires; fixed-count plans either waste measurements on
//! quiet operations or under-sample noisy ones. The bench measures the
//! harness cost; the printed sample counts show the adaptivity.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scibench::experiment::measurement::{MeasurementPlan, StoppingRule};
use scibench_sim::machine::MachineSpec;
use scibench_sim::pingpong::{pingpong_latencies_us, PingPongConfig};
use scibench_sim::rng::SimRng;

fn make_source(noisy: bool) -> impl FnMut() -> f64 {
    let machine = if noisy {
        MachineSpec::piz_dora()
    } else {
        MachineSpec::test_machine(4)
    };
    let mut cfg = PingPongConfig::paper_64b(1);
    cfg.warmup_iterations = 0;
    if !noisy {
        cfg.node_b = 1;
    }
    let mut rng = SimRng::new(9);
    move || pingpong_latencies_us(&machine, &cfg, &mut rng)[0]
}

fn bench_stopping_rules(c: &mut Criterion) {
    let mut g = c.benchmark_group("stopping_rules");
    g.sample_size(10);

    for (label, noisy) in [("quiet", false), ("noisy", true)] {
        // Show how many samples each policy takes.
        let fixed = MeasurementPlan::new("op").stopping(StoppingRule::FixedCount(1_000));
        let adaptive = MeasurementPlan::new("op").stopping(StoppingRule::AdaptiveMedianCi {
            confidence: 0.95,
            rel_error: 0.02,
            batch: 50,
            max_samples: 20_000,
        });
        let mut src = make_source(noisy);
        let n_fixed = fixed.run(&mut src).unwrap().samples.len();
        let mut src = make_source(noisy);
        let n_adaptive = adaptive.run(&mut src).unwrap().samples.len();
        println!("{label}: fixed takes {n_fixed} samples, adaptive takes {n_adaptive}");

        g.bench_with_input(
            BenchmarkId::new("fixed_1000", label),
            &noisy,
            |b, &noisy| {
                b.iter(|| {
                    let mut src = make_source(noisy);
                    black_box(fixed.run(&mut src).unwrap().samples.len())
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("adaptive_2pct", label),
            &noisy,
            |b, &noisy| {
                b.iter(|| {
                    let mut src = make_source(noisy);
                    black_box(adaptive.run(&mut src).unwrap().samples.len())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_stopping_rules);
criterion_main!(benches);
