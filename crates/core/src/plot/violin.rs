//! Violin plots (§5.2): "depict the density distribution for all
//! observations \[and\] typically show the median as well as the quartiles"
//! — more information than a box plot at the cost of horizontal space.

use serde::{Deserialize, Serialize};

use scibench_stats::error::StatsResult;
use scibench_stats::kde::{kde, Bandwidth, DensityEstimate};
use scibench_stats::quantile::FiveNumberSummary;
use scibench_stats::summary::{arithmetic_mean, geometric_mean};

/// The data behind one violin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViolinData {
    /// Label of the violin.
    pub label: String,
    /// The density silhouette.
    pub density: DensityEstimate,
    /// Quartiles (drawn inside the violin).
    pub five_number: FiveNumberSummary,
    /// Arithmetic mean marker.
    pub mean: f64,
    /// Geometric mean marker (Figure 7(c) plots both).
    pub geometric_mean: Option<f64>,
}

impl ViolinData {
    /// Computes a violin from raw samples on `grid_size` density points.
    pub fn from_samples(label: &str, xs: &[f64], grid_size: usize) -> StatsResult<Self> {
        let density = kde(xs, Bandwidth::Silverman, grid_size)?;
        let five_number = FiveNumberSummary::from_samples(xs)?;
        let mean = arithmetic_mean(xs)?;
        let geometric_mean = geometric_mean(xs).ok();
        Ok(Self {
            label: label.to_owned(),
            density,
            five_number,
            mean,
            geometric_mean,
        })
    }

    /// Half-width of the violin at a given value (normalized so the
    /// widest point is 1).
    pub fn width_at(&self, x: f64) -> f64 {
        let peak = self
            .density
            .density
            .iter()
            .cloned()
            .fold(f64::MIN_POSITIVE, f64::max);
        self.density.at(x) / peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latencies() -> Vec<f64> {
        (0..2000)
            .map(|i| {
                let u = (i as f64 + 0.5) / 2000.0;
                1.7 + 0.1 * scibench_stats::dist::normal::std_normal_inv_cdf(u).abs()
            })
            .collect()
    }

    #[test]
    fn violin_carries_all_markers() {
        let v = ViolinData::from_samples("pingpong", &latencies(), 128).unwrap();
        assert_eq!(v.label, "pingpong");
        assert!(v.mean > v.five_number.min);
        assert!(v.geometric_mean.is_some());
        // Right-skewed data (folded normal): mean above median.
        assert!(v.mean > v.five_number.median);
        // Geometric mean below arithmetic mean (AM-GM).
        assert!(v.geometric_mean.unwrap() <= v.mean);
    }

    #[test]
    fn width_is_normalized() {
        let v = ViolinData::from_samples("x", &latencies(), 128).unwrap();
        let mode = v.density.mode();
        assert!((v.width_at(mode) - 1.0).abs() < 1e-9);
        assert!(v.width_at(mode + 1.0) < 0.1);
        assert_eq!(v.width_at(1e9), 0.0);
    }

    #[test]
    fn geometric_mean_absent_for_nonpositive_data() {
        let xs = vec![-1.0, 0.5, 1.0, 2.0, -0.5, 3.0];
        let v = ViolinData::from_samples("x", &xs, 64).unwrap();
        assert!(v.geometric_mean.is_none());
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(ViolinData::from_samples("x", &[], 64).is_err());
        assert!(ViolinData::from_samples("x", &[1.0; 5], 64).is_err());
    }
}
