//! Streaming campaign execution: bounded-memory measurement with
//! mergeable sketches instead of O(n) sample vectors.
//!
//! The classic campaign runner ([`super::campaign`]) keeps every sample
//! of every point in memory, which is the right default for the paper's
//! n ≈ 30–10⁴ regime but breaks down for million-sample-per-point
//! campaigns. This module replays the same §4 execution discipline —
//! randomized run order, per-point deterministic RNG streams, warmup
//! exclusion, fixed or CI-driven stopping — while each point folds its
//! samples into a [`StreamingSummary`] (exact below an adaptive
//! threshold, t-digest + moments above it; see
//! `scibench_stats::sketch`).
//!
//! Determinism contract: a point's summary is built **sequentially by
//! exactly one worker** from its own RNG stream (keyed by design index),
//! so the summary's canonical record is a pure function of `(seed,
//! design, plan, stream config)`. Cross-worker and cross-shard
//! combination happens through [`KeyedPartials`] — a disjoint-key map
//! union folded in ascending design order — so campaign totals are
//! bit-identical at any thread count and any shard count.
//!
//! The journaled variant writes each point's sketch record (not its
//! samples) into the crash-consistent journal of [`super::journal`],
//! keeping resume state O(sketch) per point.

use std::sync::Mutex;

use scibench_sim::rng::SimRng;
use scibench_stats::ci::ConfidenceInterval;
use scibench_stats::error::{StatsError, StatsResult};
use scibench_stats::sketch::{KeyedPartials, MergeableSummary, StreamConfig, StreamingSummary};
use scibench_stats::{ci, summary::OnlineMoments};

use crate::parallel::pool;

use super::campaign::CampaignConfig;
use super::design::{Design, RunPoint};
use super::journal::{point_key, Journal, JournalError, JournalMeta, JournalSpec, PointRecord};
use super::measurement::{MeasurementPlan, StoppingRule};
use super::resilience::{CampaignError, PointFate};

/// The bounded-memory result of measuring one operation.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOutcome {
    /// Operation name (from the plan).
    pub name: String,
    /// Whether the adaptive stopping criterion was met (always true for
    /// fixed-count plans).
    pub converged: bool,
    /// Warmup iterations executed and discarded (values are not kept —
    /// that is the point of streaming).
    pub warmup_seen: u64,
    /// The streamed summary of every recorded sample.
    pub summary: StreamingSummary,
}

impl StreamOutcome {
    /// Recorded sample count (finite + quarantined non-finite).
    pub fn samples_seen(&self) -> u64 {
        self.summary.moments().count() + self.summary.moments().non_finite_count()
    }
}

/// Runs a measurement plan in streaming mode: same warmup and stopping
/// semantics as [`MeasurementPlan::run`], but samples fold into a
/// [`StreamingSummary`] instead of accumulating in a vector.
///
/// Semantics deliberately mirror the vector path so the two modes stop
/// after the *same number of calls* to `operation` for the same sample
/// stream: the mean rule replans from identical Welford moments, and the
/// median rule's CI check is bit-identical while the summary is exact
/// (below `stream.threshold`) and rank-error-bounded after promotion.
pub fn run_stream(
    plan: &MeasurementPlan,
    stream: &StreamConfig,
    mut operation: impl FnMut() -> f64,
) -> StatsResult<StreamOutcome> {
    plan.validate()?;
    let mut summary = StreamingSummary::new(*stream)?;
    for _ in 0..plan.warmup_iterations {
        // Warmup executes and discards (§4.1.2); nothing is recorded.
        let _ = operation();
    }

    let mut seen = 0u64;
    let mut push = |summary: &mut StreamingSummary, seen: &mut u64| {
        summary.push(operation());
        *seen += 1;
    };

    let converged = match plan.stopping {
        StoppingRule::FixedCount(n) => {
            for _ in 0..n {
                push(&mut summary, &mut seen);
            }
            true
        }
        StoppingRule::AdaptiveMeanCi {
            confidence,
            rel_error,
            batch,
            max_samples,
        } => {
            let mut converged = false;
            let pilot = batch.max(5);
            for _ in 0..pilot.min(max_samples) {
                push(&mut summary, &mut seen);
            }
            while (seen as usize) < max_samples {
                let required = required_samples(summary.moments(), confidence, rel_error)?;
                if required <= seen as usize {
                    converged = true;
                    break;
                }
                let next = required.min(max_samples).min(seen as usize + batch.max(1));
                while (seen as usize) < next {
                    push(&mut summary, &mut seen);
                }
            }
            if !converged {
                converged =
                    required_samples(summary.moments(), confidence, rel_error)? <= seen as usize;
            }
            converged
        }
        StoppingRule::AdaptiveMedianCi {
            confidence,
            rel_error,
            batch,
            max_samples,
        } => {
            let mut converged = false;
            let batch = batch.max(1);
            while (seen as usize) < max_samples {
                for _ in 0..batch.min(max_samples - seen as usize) {
                    push(&mut summary, &mut seen);
                }
                if let Some((_ci, tight)) = median_stop_check(&summary, confidence, rel_error)? {
                    if tight {
                        converged = true;
                        break;
                    }
                }
            }
            converged
        }
    };

    Ok(StreamOutcome {
        name: plan.name.clone(),
        converged,
        warmup_seen: plan.warmup_iterations as u64,
        summary,
    })
}

/// The §4.2.2 replanning formula on streamed moments — identical to the
/// vector path's check.
fn required_samples(
    moments: &OnlineMoments,
    confidence: f64,
    rel_error: f64,
) -> StatsResult<usize> {
    ci::required_samples_from_moments(moments, confidence, rel_error)
}

/// The median-CI tightness check of
/// `ci::nonparametric_stop_check_sorted`, evaluated on the streamed
/// summary: `None` while too few samples, otherwise the CI and whether
/// its relative half-width is within `rel_error`.
fn median_stop_check(
    summary: &StreamingSummary,
    confidence: f64,
    rel_error: f64,
) -> StatsResult<Option<(ConfidenceInterval, bool)>> {
    match summary.median_ci(confidence) {
        Ok(ci) => {
            let tight = ci
                .relative_half_width()
                .map(|r| r <= rel_error)
                .unwrap_or(false);
            Ok(Some((ci, tight)))
        }
        Err(StatsError::TooFewSamples { .. }) | Err(StatsError::EmptySample) => Ok(None),
        Err(e) => Err(e),
    }
}

/// One streamed design point.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRun {
    /// The factor levels of this run.
    pub point: RunPoint,
    /// The bounded-memory outcome.
    pub outcome: StreamOutcome,
}

/// The executed streaming campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamCampaign {
    /// Executed runs, in design (full-factorial) order.
    pub runs: Vec<StreamRun>,
    /// The same summaries keyed by design index — the mergeable form
    /// shards and supervisors exchange. `partials.finalize()` is the
    /// canonical whole-campaign pool.
    pub partials: KeyedPartials<StreamingSummary>,
}

impl StreamCampaign {
    /// The runs whose adaptive stopping did not converge.
    pub fn unconverged(&self) -> Vec<&RunPoint> {
        self.runs
            .iter()
            .filter(|r| !r.outcome.converged)
            .map(|r| &r.point)
            .collect()
    }
}

/// Executes `design` with `plan` at every point in streaming mode.
///
/// Execution order is randomized (§4.1.1) and points run on the
/// work-stealing pool, but every point's RNG stream is keyed by its
/// *design* index and its summary is built sequentially by one worker —
/// so `partials` (and therefore every statistic derived from them) is
/// bit-identical at any thread count.
pub fn run_campaign_stream<F>(
    design: &Design,
    plan: &MeasurementPlan,
    stream: &StreamConfig,
    config: &CampaignConfig,
    measure: F,
) -> StatsResult<StreamCampaign>
where
    F: Fn(&RunPoint, &mut SimRng) -> f64 + Sync,
{
    let points = design.full_factorial();
    if points.is_empty() {
        return Err(StatsError::EmptySample);
    }
    let all: Vec<usize> = (0..points.len()).collect();
    let runs = stream_points(&points, &all, plan, stream, config, true, &measure)?;
    let mut partials = KeyedPartials::new();
    for (idx, run) in all.iter().zip(&runs) {
        partials
            .insert(*idx as u64, run.outcome.summary.clone())
            .expect("design indices are unique keys");
    }
    Ok(StreamCampaign { runs, partials })
}

/// Executes only the design points in `indices` and returns their
/// summaries keyed by design index — the building block a shard worker
/// runs on its assigned partition. The union of all shards' partials is
/// bit-identical to [`run_campaign_stream`]'s `partials` on the full
/// design, regardless of how the points were partitioned.
pub fn run_campaign_stream_subset<F>(
    design: &Design,
    plan: &MeasurementPlan,
    stream: &StreamConfig,
    config: &CampaignConfig,
    indices: &[usize],
    measure: F,
) -> Result<KeyedPartials<StreamingSummary>, CampaignError>
where
    F: Fn(&RunPoint, &mut SimRng) -> f64 + Sync,
{
    let points = design.full_factorial();
    if points.is_empty() {
        return Err(CampaignError::EmptyDesign);
    }
    for &idx in indices {
        if idx >= points.len() {
            return Err(CampaignError::BadPointIndex {
                index: idx,
                points: points.len(),
            });
        }
    }
    let runs = stream_points(&points, indices, plan, stream, config, false, &measure)?;
    let mut partials = KeyedPartials::new();
    for (idx, run) in indices.iter().zip(&runs) {
        partials.insert(*idx as u64, run.outcome.summary.clone())?;
    }
    Ok(partials)
}

/// Unions shard partials into one keyed set. The union is
/// order-independent (disjoint design keys move bit-for-bit), so the
/// supervisor may merge shards in any order — including as they finish.
pub fn merge_stream_shards(
    shards: &[KeyedPartials<StreamingSummary>],
) -> StatsResult<KeyedPartials<StreamingSummary>> {
    let mut total = KeyedPartials::new();
    for shard in shards {
        total.merge_from(shard)?;
    }
    Ok(total)
}

/// Resume statistics of a journaled streaming run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamResume {
    /// Points the subset was asked to cover.
    pub points_total: usize,
    /// Points whose sketch was replayed from the journal (not re-run).
    pub points_resumed: usize,
    /// Points actually executed this run.
    pub points_executed: usize,
    /// The covered points' summaries, keyed by design index.
    pub partials: KeyedPartials<StreamingSummary>,
}

/// [`run_campaign_stream_subset`] with crash-consistent journaling:
/// each completed point appends a [`PointRecord`] whose `sketch` field
/// carries the summary's canonical record (no sample vector — resume
/// state stays O(sketch) per point). On restart, journaled sketches are
/// decoded and replayed bit-exactly instead of re-measuring.
pub fn run_campaign_stream_journaled_subset<F>(
    design: &Design,
    plan: &MeasurementPlan,
    stream: &StreamConfig,
    config: &CampaignConfig,
    spec: &JournalSpec<'_>,
    indices: &[usize],
    measure: F,
) -> Result<StreamResume, CampaignError>
where
    F: Fn(&RunPoint, &mut SimRng) -> f64 + Sync,
{
    let points = design.full_factorial();
    if points.is_empty() {
        return Err(CampaignError::EmptyDesign);
    }
    for &idx in indices {
        if idx >= points.len() {
            return Err(CampaignError::BadPointIndex {
                index: idx,
                points: points.len(),
            });
        }
    }
    let meta = JournalMeta::new(
        design,
        config.seed,
        spec.code_version,
        spec.config_fingerprint,
    );
    let (journal, snapshot) = Journal::open_resume(spec.path, &meta)?;
    let keys: Vec<_> = points.iter().map(|p| point_key(&meta, p)).collect();

    let mut partials = KeyedPartials::new();
    let mut missing = Vec::new();
    for &idx in indices {
        // Only a record carrying a sketch counts as streaming-complete;
        // a sample-mode record for the same key is re-measured.
        match snapshot
            .record_for(keys[idx])
            .and_then(|r| r.sketch.as_deref())
        {
            Some(record) => partials.insert(idx as u64, StreamingSummary::from_record(record)?)?,
            None => missing.push(idx),
        }
    }
    let resume_count = indices.len() - missing.len();

    let journal = Mutex::new(journal);
    let hook_error: Mutex<Option<JournalError>> = Mutex::new(None);
    let runs = stream_points(
        &points,
        &missing,
        plan,
        stream,
        config,
        false,
        &|point, rng| measure(point, rng),
    )?;
    for (&idx, run) in missing.iter().zip(&runs) {
        let record = PointRecord {
            index: idx,
            key: keys[idx],
            levels: run.point.levels.clone(),
            fate: PointFate::Completed {
                attempts: 1,
                samples_dropped: 0,
            },
            panics_contained: 0,
            outcome: None,
            notes: Vec::new(),
            sketch: Some(run.outcome.summary.to_record()),
        };
        let mut j = journal.lock().expect("journal mutex");
        if let Err(e) = j.append_begin(idx, keys[idx]) {
            hook_error.lock().expect("hook mutex").get_or_insert(e);
            break;
        }
        if let Err(e) = j.append_point(&record) {
            hook_error.lock().expect("hook mutex").get_or_insert(e);
            break;
        }
    }
    if let Some(err) = hook_error.lock().expect("hook mutex").take() {
        return Err(CampaignError::Journal(err));
    }
    let mut journal = journal.into_inner().expect("journal mutex");
    journal.sync()?;
    for (&idx, run) in missing.iter().zip(&runs) {
        partials.insert(idx as u64, run.outcome.summary.clone())?;
    }
    Ok(StreamResume {
        points_total: indices.len(),
        points_resumed: resume_count,
        points_executed: missing.len(),
        partials,
    })
}

/// Shared engine: measures `indices` (design indices) in streaming mode
/// on the pool and returns their runs in `indices` order.
///
/// When `shuffle` is set the *execution* order is randomized (§4.1.1);
/// results are un-shuffled before returning, and per-point RNG streams
/// are keyed by design index either way, so the output never depends on
/// the schedule. Worker lanes accumulate their finished summaries into
/// per-lane [`KeyedPartials`] via the pool's fold primitive
/// ([`pool::run_indexed_collect_scoped`]); the lane union is asserted
/// against the returned runs in debug builds — the two must agree bit
/// for bit because every key is written by exactly one lane.
fn stream_points<F>(
    points: &[RunPoint],
    indices: &[usize],
    plan: &MeasurementPlan,
    stream: &StreamConfig,
    config: &CampaignConfig,
    shuffle: bool,
    measure: &F,
) -> StatsResult<Vec<StreamRun>>
where
    F: Fn(&RunPoint, &mut SimRng) -> f64 + Sync,
{
    if indices.is_empty() {
        return Ok(Vec::new());
    }
    let threads = config.threads.clamp(1, indices.len());
    let mut order: Vec<usize> = indices.to_vec();
    if shuffle {
        let mut order_rng = SimRng::new(config.seed).fork("campaign-order");
        order_rng.shuffle(&mut order);
    }

    let root = SimRng::new(config.seed);
    let (positioned, lanes) = pool::run_indexed_collect_scoped(
        order.len(),
        threads,
        None,
        KeyedPartials::<StreamingSummary>::new,
        |lane_partials, pos| -> StatsResult<StreamRun> {
            let design_idx = order[pos];
            let point = &points[design_idx];
            let mut rng = root.fork_indexed("campaign-point", design_idx as u64);
            let outcome = run_stream(plan, stream, || measure(point, &mut rng))?;
            lane_partials
                .insert(design_idx as u64, outcome.summary.clone())
                .expect("each design index is measured once");
            Ok(StreamRun {
                point: point.clone(),
                outcome,
            })
        },
    );

    // Un-shuffle back into `indices` order; resolve errors by lowest
    // design index and re-raise panics after every point finished.
    let mut by_design: Vec<Option<std::thread::Result<StatsResult<StreamRun>>>> =
        (0..points.len()).map(|_| None).collect();
    for (pos, result) in positioned.into_iter().enumerate() {
        by_design[order[pos]] = Some(result);
    }
    let mut runs = Vec::with_capacity(indices.len());
    for &idx in indices {
        match by_design[idx]
            .take()
            .expect("every requested point executed")
        {
            Ok(Ok(run)) => runs.push(run),
            Ok(Err(e)) => return Err(e),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    // The lane fold must reproduce the per-point results exactly: keys
    // are disjoint across lanes, so the union is schedule-independent.
    if cfg!(debug_assertions) {
        let mut union = KeyedPartials::new();
        for lane in &lanes {
            union.merge_from(lane).expect("disjoint lane keys");
        }
        for (&idx, run) in indices.iter().zip(&runs) {
            debug_assert_eq!(
                union.get(idx as u64).map(|s| s.to_record()),
                Some(run.outcome.summary.to_record()),
                "lane fold diverged from per-point result at design index {idx}"
            );
        }
    }
    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::design::Factor;
    use scibench_stats::sketch::DEFAULT_STREAM_THRESHOLD;

    fn demo_design() -> Design {
        Design::new(vec![
            Factor::new("system", &["a", "b"]),
            Factor::numeric("size", &[8.0, 64.0]),
        ])
    }

    fn demo_measure(point: &RunPoint, rng: &mut SimRng) -> f64 {
        let base = if point.level(0) == "a" { 1.0 } else { 2.0 };
        base + rng.uniform() * 0.01
    }

    fn fixed_plan(n: usize) -> MeasurementPlan {
        MeasurementPlan::new("op").stopping(StoppingRule::FixedCount(n))
    }

    #[test]
    fn stream_matches_vector_path_in_exact_regime() {
        // Below the threshold the streamed statistics must be
        // bit-identical to the vector path on the same sample stream.
        let plan = fixed_plan(200).warmup(3);
        let mut rng = SimRng::new(42).fork("x");
        let vector = plan.run(|| rng.uniform()).unwrap();
        let mut rng = SimRng::new(42).fork("x");
        let stream = run_stream(&plan, &StreamConfig::default(), || rng.uniform()).unwrap();
        assert!(stream.summary.is_exact());
        assert_eq!(stream.samples_seen(), 200);
        assert_eq!(stream.warmup_seen, 3);
        assert!(stream.converged);
        let sorted = scibench_stats::sorted::SortedSamples::new(&vector.samples).unwrap();
        assert_eq!(
            stream.summary.median().unwrap().to_bits(),
            sorted
                .quantile(0.5, scibench_stats::quantile::QuantileMethod::Interpolated)
                .unwrap()
                .to_bits()
        );
        assert_eq!(
            stream.summary.mean().unwrap().to_bits(),
            vector
                .samples
                .iter()
                .copied()
                .collect::<OnlineMoments>()
                .mean()
                .unwrap()
                .to_bits()
        );
    }

    #[test]
    fn adaptive_rules_converge_and_stop_like_the_vector_path() {
        for stopping in [
            StoppingRule::AdaptiveMeanCi {
                confidence: 0.95,
                rel_error: 0.05,
                batch: 16,
                max_samples: 4096,
            },
            StoppingRule::AdaptiveMedianCi {
                confidence: 0.95,
                rel_error: 0.05,
                batch: 16,
                max_samples: 4096,
            },
        ] {
            let plan = MeasurementPlan::new("op").stopping(stopping);
            let mut rng = SimRng::new(7).fork("adapt");
            let vector = plan.run(|| 1.0 + rng.uniform() * 0.2).unwrap();
            let mut rng = SimRng::new(7).fork("adapt");
            let stream = run_stream(&plan, &StreamConfig::default(), || {
                1.0 + rng.uniform() * 0.2
            })
            .unwrap();
            assert!(vector.converged && stream.converged, "{stopping:?}");
            // Exact regime: the stopping decision is bit-identical, so
            // both modes consumed the same number of samples.
            assert!(stream.summary.is_exact());
            assert_eq!(
                stream.samples_seen() as usize,
                vector.samples.len(),
                "{stopping:?}"
            );
        }
    }

    #[test]
    fn million_scale_point_stays_bounded() {
        // One design point, 50k samples with a threshold of 1024: the
        // summary must promote and stay O(sketch), not O(n).
        let plan = fixed_plan(50_000);
        let stream_cfg = StreamConfig {
            threshold: 1024,
            ..StreamConfig::default()
        };
        let mut rng = SimRng::new(3).fork("big");
        let out = run_stream(&plan, &stream_cfg, || rng.uniform()).unwrap();
        assert!(!out.summary.is_exact());
        assert_eq!(out.samples_seen(), 50_000);
        assert!(
            out.summary.resident_bytes() < 50_000 * 8 / 10,
            "resident {} bytes",
            out.summary.resident_bytes()
        );
        let median = out.summary.median().unwrap();
        assert!((median - 0.5).abs() < 0.02, "median {median}");
    }

    #[test]
    fn campaign_partials_are_bit_identical_across_thread_counts() {
        let plan = fixed_plan(500);
        let stream_cfg = StreamConfig {
            threshold: 128,
            ..StreamConfig::default()
        };
        let baseline = run_campaign_stream(
            &demo_design(),
            &plan,
            &stream_cfg,
            &CampaignConfig {
                seed: 11,
                threads: 1,
            },
            demo_measure,
        )
        .unwrap();
        assert_eq!(baseline.runs.len(), 4);
        assert!(baseline.unconverged().is_empty());
        let record = baseline.partials.to_record();
        for threads in [2, 8] {
            let par = run_campaign_stream(
                &demo_design(),
                &plan,
                &stream_cfg,
                &CampaignConfig { seed: 11, threads },
                demo_measure,
            )
            .unwrap();
            assert_eq!(par.partials.to_record(), record, "threads={threads}");
            assert_eq!(par.runs, baseline.runs, "threads={threads}");
        }
    }

    #[test]
    fn sharded_union_matches_unsharded_campaign() {
        let plan = fixed_plan(300);
        let stream_cfg = StreamConfig {
            threshold: 64,
            ..StreamConfig::default()
        };
        let config = CampaignConfig {
            seed: 23,
            threads: 2,
        };
        let whole =
            run_campaign_stream(&demo_design(), &plan, &stream_cfg, &config, demo_measure).unwrap();
        for shards in [1usize, 2, 4] {
            let parts: Vec<_> = (0..shards)
                .map(|s| {
                    let mine: Vec<usize> = (0..4).filter(|i| i % shards == s).collect();
                    run_campaign_stream_subset(
                        &demo_design(),
                        &plan,
                        &stream_cfg,
                        &config,
                        &mine,
                        demo_measure,
                    )
                    .unwrap()
                })
                .collect();
            let merged = merge_stream_shards(&parts).unwrap();
            assert_eq!(
                merged.to_record(),
                whole.partials.to_record(),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn journaled_subset_resumes_sketches_bit_exactly() {
        let dir =
            std::env::temp_dir().join(format!("scibench-stream-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.journal");
        let _ = std::fs::remove_file(&path);
        let plan = fixed_plan(400);
        let stream_cfg = StreamConfig {
            threshold: 64,
            ..StreamConfig::default()
        };
        let config = CampaignConfig {
            seed: 5,
            threads: 2,
        };
        let spec = JournalSpec {
            path: &path,
            code_version: "test",
            config_fingerprint: "stream",
        };
        let all = [0usize, 1, 2, 3];
        let first = run_campaign_stream_journaled_subset(
            &demo_design(),
            &plan,
            &stream_cfg,
            &config,
            &spec,
            &all,
            demo_measure,
        )
        .unwrap();
        assert_eq!(first.points_executed, 4);
        assert_eq!(first.points_resumed, 0);
        // Second run must replay all four sketches from the journal —
        // and a panicking measure proves nothing re-executed.
        let second = run_campaign_stream_journaled_subset(
            &demo_design(),
            &plan,
            &stream_cfg,
            &config,
            &spec,
            &all,
            |_, _| panic!("resume must not re-measure"),
        )
        .unwrap();
        assert_eq!(second.points_resumed, 4);
        assert_eq!(second.points_executed, 0);
        assert_eq!(
            second.partials.to_record(),
            first.partials.to_record(),
            "journal replay must be bit-exact"
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn default_threshold_is_documented_adaptive_boundary() {
        // The adaptive exact/sketch boundary the docs promise.
        assert_eq!(StreamConfig::default().threshold, DEFAULT_STREAM_THRESHOLD);
    }
}
