//! Property-based tests of the simulator's structural invariants:
//! topologies are metrics-ish, noise only slows things down, collectives
//! respect their trees, and everything is deterministic in the seed.

use proptest::prelude::*;

use scibench_sim::alloc::{Allocation, AllocationPolicy};
use scibench_sim::collectives::{barrier, broadcast, reduce};
use scibench_sim::drift::DriftingClock;
use scibench_sim::fault::{FaultContext, FaultPlan, FaultSchedule};
use scibench_sim::machine::MachineSpec;
use scibench_sim::network::NetworkModel;
use scibench_sim::noise::NoiseProfile;
use scibench_sim::rng::SimRng;
use scibench_sim::topology::Topology;

fn any_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        Just(Topology::Crossbar),
        (2usize..6, 2usize..6, 1usize..5).prop_map(|(g, r, n)| Topology::Dragonfly {
            groups: g,
            routers_per_group: r,
            nodes_per_router: n,
        }),
        (4usize..16, 2usize..4).prop_map(|(radix, levels)| Topology::FatTree {
            radix: radix / 2 * 2, // even radix
            levels,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hops_are_symmetric_and_zero_on_diagonal(topo in any_topology(), a in 0usize..64, b in 0usize..64) {
        let cap = match topo {
            Topology::Crossbar => 64,
            _ => topo.capacity().min(64),
        };
        prop_assume!(cap > 0);
        let (a, b) = (a % cap, b % cap);
        prop_assert_eq!(topo.hops(a, b), topo.hops(b, a));
        prop_assert_eq!(topo.hops(a, a), 0);
        if a != b {
            prop_assert!(topo.hops(a, b) >= 1);
        }
        prop_assert!(topo.hops(a, b) <= topo.diameter());
    }

    #[test]
    fn noise_never_speeds_things_up(
        base in 0.0f64..1e7,
        sigma in 0.0f64..0.5,
        slow_prob in 0.0f64..0.5,
        seed in 0u64..1000,
    ) {
        let profile = NoiseProfile {
            jitter_sigma: sigma,
            daemon_period_ns: 1e5,
            daemon_cost_ns: 500.0,
            congestion_prob: 0.05,
            congestion_scale_ns: 1000.0,
            congestion_shape: 2.0,
            slow_path_prob: slow_prob,
            slow_path_extra_ns: 700.0,
        };
        let mut rng = SimRng::new(seed);
        for _ in 0..20 {
            prop_assert!(profile.perturb(base, &mut rng) >= base);
        }
    }

    #[test]
    fn transfer_cost_monotone_in_bytes(bytes1 in 0usize..100_000, bytes2 in 0usize..100_000) {
        let m = MachineSpec::piz_dora();
        let net = NetworkModel::new(&m);
        let (lo, hi) = if bytes1 <= bytes2 { (bytes1, bytes2) } else { (bytes2, bytes1) };
        prop_assert!(net.base_transfer_ns(0, 18, lo) <= net.base_transfer_ns(0, 18, hi));
    }

    #[test]
    fn reduce_outcome_shape(p in 1usize..100, seed in 0u64..500) {
        let m = MachineSpec::test_machine(p.max(2));
        let mut rng = SimRng::new(seed);
        let alloc = Allocation::one_rank_per_node(&m, p, AllocationPolicy::Packed, &mut rng);
        let out = reduce(&m, &alloc, 8, &mut rng);
        prop_assert_eq!(out.ranks(), p);
        prop_assert!(out.per_rank_done_ns.iter().all(|t| t.is_finite() && *t >= 0.0));
        // Root finishes last on a quiet machine.
        prop_assert!((out.per_rank_done_ns[0] - out.max_ns().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn broadcast_reaches_all_ranks(p in 1usize..100, seed in 0u64..500) {
        let m = MachineSpec::test_machine(p.max(2));
        let mut rng = SimRng::new(seed);
        let alloc = Allocation::one_rank_per_node(&m, p, AllocationPolicy::Packed, &mut rng);
        let out = broadcast(&m, &alloc, 64, &mut rng);
        prop_assert!(out.per_rank_done_ns.iter().all(|t| t.is_finite()));
        prop_assert_eq!(out.per_rank_done_ns[0], 0.0);
        // Depth bound: ceil(log2 p) messages of equal quiet cost.
        if p > 1 {
            let net = NetworkModel::new(&m);
            let one = net.base_transfer_ns(0, 1, 64);
            let depth = (p as f64).log2().ceil();
            prop_assert!(out.max_ns().unwrap() <= depth * one + 1e-6);
        }
    }

    #[test]
    fn barrier_synchronizes_quiet_ranks(p in 2usize..100, seed in 0u64..500) {
        let m = MachineSpec::test_machine(p);
        let mut rng = SimRng::new(seed);
        let alloc = Allocation::one_rank_per_node(&m, p, AllocationPolicy::Packed, &mut rng);
        let out = barrier(&m, &alloc, &mut rng);
        // All ranks leave together on a uniform quiet crossbar.
        prop_assert!(out.max_ns().unwrap() - out.min_ns().unwrap() < 1e-9);
    }

    #[test]
    fn power_of_two_reduce_never_slower_than_successor(k in 2u32..6, seed in 0u64..200) {
        let p = 2usize.pow(k);
        let run = |ranks: usize| {
            let m = MachineSpec::test_machine(ranks);
            let mut rng = SimRng::new(seed);
            let alloc =
                Allocation::one_rank_per_node(&m, ranks, AllocationPolicy::Packed, &mut rng);
            reduce(&m, &alloc, 8, &mut rng).max_ns().unwrap()
        };
        prop_assert!(run(p) <= run(p + 1));
    }

    #[test]
    fn random_allocation_nodes_distinct(p in 1usize..128, seed in 0u64..500) {
        let m = MachineSpec::piz_daint();
        let mut rng = SimRng::new(seed);
        let alloc = Allocation::one_rank_per_node(&m, p, AllocationPolicy::Random, &mut rng);
        let mut nodes = alloc.node_of.clone();
        nodes.sort_unstable();
        nodes.dedup();
        prop_assert_eq!(nodes.len(), p);
        prop_assert!(alloc.node_of.iter().all(|&n| n < m.nodes));
    }

    #[test]
    fn drifting_clock_round_trips(offset in -1e9f64..1e9, drift in -1e-4f64..1e-4, t in 0.0f64..1e12) {
        let c = DriftingClock { offset_ns: offset, drift };
        let back = c.global_from_local(c.local_from_global(t));
        prop_assert!((back - t).abs() < 1e-2 * (1.0 + t.abs() * 1e-9));
    }

    #[test]
    fn rng_forks_are_reproducible(seed in 0u64..10_000, label in "[a-z]{1,8}") {
        let a: Vec<f64> = {
            let mut r = SimRng::new(seed).fork(&label);
            (0..5).map(|_| r.uniform()).collect()
        };
        let b: Vec<f64> = {
            let mut r = SimRng::new(seed).fork(&label);
            (0..5).map(|_| r.uniform()).collect()
        };
        prop_assert_eq!(a, b);
    }

    #[test]
    fn hpl_runs_are_physical(seed in 0u64..300) {
        use scibench_sim::hpl::{hpl_run, HplConfig};
        let m = MachineSpec::piz_daint();
        let c = HplConfig::paper_figure1();
        let mut rng = SimRng::new(seed);
        let r = hpl_run(&m, &c, &mut rng);
        // Efficiency in (0, best]; time consistent with rate.
        prop_assert!(r.efficiency > 0.0 && r.efficiency <= c.best_efficiency);
        prop_assert!((r.flops_per_s * r.time_s - c.flops()).abs() / c.flops() < 1e-9);
    }

    #[test]
    fn pi_model_time_monotone_in_segments(p in 1usize..8) {
        use scibench_sim::pi::{model_time_s, PiConfig};
        // Within the flat-overhead segment (p <= 8), time strictly
        // decreases with p.
        let c = PiConfig::paper_figure7();
        prop_assert!(model_time_s(&c, p + 1) < model_time_s(&c, p));
    }

    #[test]
    fn fault_schedules_are_deterministic(
        rate in 0.0f64..=1.0,
        nodes in 1usize..256,
        seed in 0u64..10_000,
    ) {
        let plan = FaultPlan::with_failure_rate(rate);
        let a = FaultSchedule::compile(&plan, nodes, &SimRng::new(seed));
        let b = FaultSchedule::compile(&plan, nodes, &SimRng::new(seed));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn fault_schedule_counts_are_bounded(
        rate in 0.0f64..=1.0,
        nodes in 1usize..256,
        seed in 0u64..10_000,
    ) {
        let plan = FaultPlan::with_failure_rate(rate);
        let s = FaultSchedule::compile(&plan, nodes, &SimRng::new(seed));
        prop_assert_eq!(s.nodes(), nodes);
        prop_assert!(s.crashed_nodes() <= nodes);
        prop_assert!(s.straggler_nodes() <= nodes);
        prop_assert!(s.clock_jump_nodes() <= nodes);
        for node in 0..nodes {
            if let Some(t) = s.crash_at_ns(node) {
                prop_assert!(t >= 0.0 && t < plan.crash_window_ns);
            }
            prop_assert!(s.slowdown_of(node) >= 1.0);
        }
    }

    #[test]
    fn zero_rate_plans_are_trivial_for_any_seed(nodes in 1usize..256, seed in 0u64..10_000) {
        let plan = FaultPlan::with_failure_rate(0.0);
        prop_assert!(plan.is_none());
        let s = FaultSchedule::compile(&plan, nodes, &SimRng::new(seed));
        prop_assert!(s.is_trivial());
        prop_assert_eq!(s.crashed_nodes(), 0);
        prop_assert_eq!(s.straggler_nodes(), 0);
        prop_assert_eq!(s.clock_jump_nodes(), 0);
    }

    #[test]
    fn fault_context_coins_are_deterministic(
        rate in 0.0f64..=1.0,
        nodes in 1usize..64,
        seed in 0u64..10_000,
    ) {
        let plan = FaultPlan::with_failure_rate(rate);
        let flips = |s: u64| -> Vec<bool> {
            let mut ctx = FaultContext::new(&plan, nodes, &SimRng::new(s));
            (0..32).map(|_| ctx.link_drop_coin()).collect()
        };
        prop_assert_eq!(flips(seed), flips(seed));
    }
}
