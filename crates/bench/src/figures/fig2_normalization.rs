//! Figure 2: normalization of ping-pong samples on Piz Dora.
//!
//! Four panels: (a) the original right-skewed latency distribution,
//! (b) log-normalization, (c) batch means with K = 100, (d) batch means
//! with K = 1000 — each with a density and a Q-Q plot against the normal
//! distribution. The paper's point (Rule 6): the raw data is *not*
//! normal, and 30–40 samples are nowhere near enough for the CLT to fix
//! that; K must reach ~1000 before the Q-Q plot straightens.

use scibench::data::DataSet;
use scibench_sim::machine::MachineSpec;
use scibench_sim::pingpong::{pingpong_latencies_us, PingPongConfig};
use scibench_sim::rng::SimRng;
use scibench_stats::error::StatsResult;
use scibench_stats::normality::{batch_means, log_normalize, shapiro_wilk_thinned, ShapiroWilk};
use scibench_stats::qq::{qq_points, QqPlot};

/// One normalization panel.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Panel label, e.g. "Original" or "Norm K=100".
    pub label: String,
    /// The (transformed) observations.
    pub values: Vec<f64>,
    /// Q-Q plot data vs the standard normal.
    pub qq: QqPlot,
    /// Shapiro–Wilk result on a thinned subsample.
    pub shapiro: ShapiroWilk,
}

impl Panel {
    fn build(label: &str, values: Vec<f64>) -> StatsResult<Self> {
        let qq = qq_points(&values, 2000)?;
        let shapiro = shapiro_wilk_thinned(&values, 2000)?;
        Ok(Self {
            label: label.to_owned(),
            values,
            qq,
            shapiro,
        })
    }
}

/// Regenerated Figure 2 data: the four panels.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Original / log / K=100 / K=1000 panels.
    pub panels: Vec<Panel>,
}

/// Runs the Figure 2 pipeline with `samples` ping-pong measurements.
pub fn compute(samples: usize, seed: u64) -> StatsResult<Fig2> {
    let machine = MachineSpec::piz_dora();
    let mut cfg = PingPongConfig::paper_64b(samples);
    cfg.warmup_iterations = 0;
    let mut rng = SimRng::new(seed).fork("fig2");
    let latencies = pingpong_latencies_us(&machine, &cfg, &mut rng);

    let panels = vec![
        Panel::build("Original", latencies.clone())?,
        Panel::build("Log Norm", log_normalize(&latencies)?)?,
        Panel::build("Norm K=100", batch_means(&latencies, 100)?)?,
        Panel::build("Norm K=1000", batch_means(&latencies, 1000)?)?,
    ];
    Ok(Fig2 { panels })
}

impl Fig2 {
    /// Renders the four panels' normality diagnostics.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 2: Normalization of ping-pong samples on Piz Dora (model)\n\
             panel            n        W      p-value   QQ-straightness\n",
        );
        for p in &self.panels {
            out.push_str(&format!(
                "{:<14} {:>8} {:8.4} {:10.4} {:12.5}{}\n",
                p.label,
                p.values.len(),
                p.shapiro.w,
                p.shapiro.p_value,
                p.qq.straightness(),
                if p.shapiro.rejects_normality(0.05) {
                    "  (normality REJECTED)"
                } else {
                    "  (looks normal)"
                },
            ));
        }
        out.push_str(
            "\nRule 6: the original data is far from normal; only aggressive batching\n\
             (K=1000) produces approximately normal block means.\n",
        );
        out
    }

    /// Q-Q points of every panel as one long-format CSV.
    pub fn dataset(&self) -> DataSet {
        let mut d = DataSet::new(&["panel", "theoretical", "sample"])
            .with_metadata("figure", "2")
            .with_metadata("panels", "0=Original 1=LogNorm 2=K100 3=K1000");
        for (i, p) in self.panels.iter().enumerate() {
            for q in &p.qq.points {
                d.push_row(&[i as f64, q.theoretical, q.sample]);
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_improves_straightness_monotonically_enough() {
        let f = compute(100_000, 42).unwrap();
        assert_eq!(f.panels.len(), 4);
        let orig = &f.panels[0];
        let log = &f.panels[1];
        let k1000 = &f.panels[3];
        // The original sample is non-normal.
        assert!(orig.shapiro.rejects_normality(0.01));
        // Both transformations straighten the Q-Q relation.
        assert!(log.qq.straightness() > orig.qq.straightness());
        assert!(k1000.qq.straightness() > orig.qq.straightness());
        // K=1000 block means look normal.
        assert!(
            !k1000.shapiro.rejects_normality(0.01),
            "K=1000 p = {}",
            k1000.shapiro.p_value
        );
    }

    #[test]
    fn batching_reduces_sample_count() {
        let f = compute(50_000, 1).unwrap();
        assert_eq!(f.panels[2].values.len(), 500);
        assert_eq!(f.panels[3].values.len(), 50);
    }

    #[test]
    fn render_and_dataset() {
        let f = compute(20_000, 2).unwrap();
        let text = f.render();
        assert!(text.contains("Norm K=1000"));
        assert!(text.contains("REJECTED"));
        let d = f.dataset();
        assert!(d.len() > 100);
    }
}
