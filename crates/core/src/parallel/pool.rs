//! Deterministic work-stealing execution of indexed task sets.
//!
//! [`run_indexed`] runs `n` independent tasks, identified by index, on a
//! fixed number of workers. Each worker owns a contiguous index range and
//! claims indices from it with an atomic cursor; a worker whose range is
//! exhausted *steals* from the other ranges, so a straggler task cannot
//! idle the rest of the pool. Results are written into per-index slots —
//! no mutex is touched on the hot path (a mutex guards only the cold
//! panic-collection path).
//!
//! # Determinism contract
//!
//! The pool guarantees that the returned vector is a pure function of the
//! task outputs: slot `i` always holds the result of task `i`, no matter
//! which worker executed it or in what order stealing happened. Combined
//! with per-index RNG derivation in the callers (campaign points seed
//! from `(seed, point_index)`, bootstrap replicates from `(seed, rep)`),
//! every result in this crate is bit-identical at any thread count.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;

/// Runs tasks `0..n` on up to `threads` workers and returns their results
/// in index order.
///
/// A task that panics yields `Err(payload)` in its slot (the panic is
/// contained per-task; it neither poisons shared state nor kills other
/// workers' tasks). All `n` tasks always run — there is no early abort —
/// so callers can resolve errors in *their* preferred order rather than
/// in scheduling order.
pub fn run_indexed<T, F>(n: usize, threads: usize, task: F) -> Vec<std::thread::Result<T>>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return (0..n)
            .map(|i| catch_unwind(AssertUnwindSafe(|| task(i))))
            .collect();
    }

    // Worker `w` owns the contiguous range `bounds[w]..bounds[w + 1]`.
    let bounds: Vec<usize> = (0..=threads).map(|w| w * n / threads).collect();
    let cursors: Vec<AtomicUsize> = (0..threads).map(|w| AtomicUsize::new(bounds[w])).collect();
    let slots: Vec<OnceLock<T>> = (0..n).map(|_| OnceLock::new()).collect();
    let panics: Mutex<Vec<(usize, Box<dyn Any + Send>)>> = Mutex::new(Vec::new());

    {
        let bounds = &bounds;
        let cursors = &cursors;
        let slots = &slots;
        let panics = &panics;
        let task = &task;
        crossbeam::thread::scope(|scope| {
            for w in 0..threads {
                scope.spawn(move || {
                    // Drain the own range first (probe 0), then steal
                    // from the neighbours in a fixed rotation.
                    for probe in 0..threads {
                        let victim = (w + probe) % threads;
                        let end = bounds[victim + 1];
                        loop {
                            let i = cursors[victim].fetch_add(1, Ordering::Relaxed);
                            if i >= end {
                                break;
                            }
                            match catch_unwind(AssertUnwindSafe(|| task(i))) {
                                Ok(value) => {
                                    let fresh = slots[i].set(value).is_ok();
                                    debug_assert!(fresh, "index {i} claimed twice");
                                }
                                Err(payload) => panics.lock().push((i, payload)),
                            }
                        }
                    }
                });
            }
        });
    }

    let mut panic_by_index: Vec<Option<Box<dyn Any + Send>>> = (0..n).map(|_| None).collect();
    for (i, payload) in panics.into_inner() {
        panic_by_index[i] = Some(payload);
    }
    slots
        .into_iter()
        .zip(panic_by_index)
        .map(|(slot, panic)| match panic {
            Some(payload) => Err(payload),
            None => Ok(slot
                .into_inner()
                .expect("every index is claimed by exactly one worker")),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_index_order_at_any_thread_count() {
        for threads in [1, 2, 3, 8, 64] {
            let out = run_indexed(37, threads, |i| i * i);
            assert_eq!(out.len(), 37);
            for (i, r) in out.into_iter().enumerate() {
                assert_eq!(r.unwrap(), i * i, "threads={threads}");
            }
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let out = run_indexed(100, 8, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(out.len(), 100);
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "task {i}");
        }
    }

    #[test]
    fn stealing_finishes_despite_stragglers() {
        // Give worker 0's range all the slow tasks: with stealing the
        // other workers drain them; without it the call would still
        // finish, so the real assertion is completeness + order.
        let out = run_indexed(64, 8, |i| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i + 1
        });
        for (i, r) in out.into_iter().enumerate() {
            assert_eq!(r.unwrap(), i + 1);
        }
    }

    #[test]
    fn panics_are_contained_per_task() {
        let out = run_indexed(10, 4, |i| {
            if i == 3 || i == 7 {
                panic!("boom {i}");
            }
            i
        });
        for (i, r) in out.into_iter().enumerate() {
            if i == 3 || i == 7 {
                let payload = r.expect_err("task panicked");
                let msg = payload.downcast_ref::<String>().unwrap();
                assert_eq!(msg, &format!("boom {i}"));
            } else {
                assert_eq!(r.unwrap(), i);
            }
        }
    }

    #[test]
    fn degenerate_shapes() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
        let one = run_indexed(1, 16, |i| i + 5);
        assert_eq!(one[0].as_ref().unwrap(), &5);
        // More threads than tasks clamps cleanly.
        let out = run_indexed(3, 100, |i| i);
        assert_eq!(out.len(), 3);
    }
}
