//! Literature-survey model and dataset reproducing **Table 1** of
//! Hoefler & Belli (SC '15).
//!
//! The paper surveys a stratified random sample of 120 papers from three
//! anonymized conferences (ConfA/ConfB/ConfC ∈ {HPDC, SC, PPoPP}) over
//! 2011–2014 — 10 papers per conference-year — and grades each paper on
//! nine experimental-design documentation classes and four data-analysis
//! practices. 25 papers were not applicable (no real-world performance
//! numbers).
//!
//! The published table reports aggregates (e.g. 79/95 papers document the
//! processor, 7/95 publish code) plus per-conference-year box plots of
//! the per-paper scores. The raw per-paper grades are not recoverable
//! from the paper, so [`dataset::paper_dataset`] *synthesizes* a
//! per-paper dataset that reproduces every published aggregate exactly
//! (deterministically, from a fixed seed); the table-rendering and
//! scoring pipeline then runs end-to-end exactly as it would on real
//! survey data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dataset;
pub mod model;
pub mod score;
pub mod table;

pub use dataset::paper_dataset;
pub use model::{AnalysisCriterion, Conference, DesignCriterion, Grade, PaperRecord, Survey};
