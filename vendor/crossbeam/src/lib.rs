//! Offline stub of `crossbeam` (see `vendor/README.md`). The workspace declares
//! the dependency but does not use it; scoped threads come from `std::thread::scope`.

#![forbid(unsafe_code)]

/// Scoped-thread helpers, re-exported from the standard library.
pub mod thread {
    pub use std::thread::{scope, Scope};
}
