//! `analyze_csv` — paper-compliant analysis of any measurement CSV.
//!
//! Usage:
//!
//! ```text
//! analyze_csv <file.csv> [column]          # Rule 5/6 summary of one column
//! analyze_csv <file.csv> <colA> <colB>     # Rule 7/8 comparison of two
//! ```
//!
//! The CSV format is the one `scibench::data::DataSet` writes: optional
//! `# key: value` comment headers, one header row, numeric cells.

use std::process::ExitCode;

use scibench::data::DataSet;
use scibench_bench::analyze::{analyze_column, analyze_pair};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        eprintln!("usage: analyze_csv <file.csv> [column] | <file.csv> <colA> <colB>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(data) = DataSet::from_csv(&text) else {
        eprintln!("{path} is not a valid numeric CSV");
        return ExitCode::FAILURE;
    };

    let result = match args.len() {
        1 => {
            let first = data.columns()[0].clone();
            analyze_column(&data, &first, 0.95)
        }
        2 => analyze_column(&data, &args[1], 0.95),
        _ => analyze_pair(&data, &args[1], &args[2], 0.95),
    };
    match result {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("analysis failed: {e}");
            ExitCode::FAILURE
        }
    }
}
