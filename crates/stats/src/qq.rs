//! Q-Q plot data (§3.1.2 of the paper, Figure 2 bottom row).
//!
//! A Q-Q plot relates the quantiles of a standard normal distribution to
//! the observed sample quantiles; points on a straight line indicate
//! normality. This module produces the point set plus the straight
//! reference line through the first and third quartiles (what R's
//! `qqline` draws), and a straightness score used by tests.

use serde::{Deserialize, Serialize};

use crate::dist::normal::std_normal_inv_cdf;
use crate::error::StatsResult;
use crate::quantile::{quantile_sorted, QuantileMethod};
use crate::{sorted_copy, validate_samples};

/// One point of a Q-Q plot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QqPoint {
    /// Theoretical standard-normal quantile.
    pub theoretical: f64,
    /// Observed sample quantile.
    pub sample: f64,
}

/// The reference line through the (25 %, 75 %) quantile pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QqLine {
    /// Slope of the reference line.
    pub slope: f64,
    /// Intercept of the reference line.
    pub intercept: f64,
}

/// Full Q-Q plot data for a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QqPlot {
    /// Plot points ordered by theoretical quantile.
    pub points: Vec<QqPoint>,
    /// Robust reference line (through the quartiles).
    pub line: QqLine,
}

impl QqPlot {
    /// Squared correlation between theoretical and sample quantiles.
    ///
    /// r² near 1 means the points lie on a straight line (normal data);
    /// this is the probability-plot correlation coefficient test statistic.
    pub fn straightness(&self) -> f64 {
        let n = self.points.len() as f64;
        if n < 2.0 {
            return 1.0;
        }
        let mx = self.points.iter().map(|p| p.theoretical).sum::<f64>() / n;
        let my = self.points.iter().map(|p| p.sample).sum::<f64>() / n;
        let mut sxy = 0.0;
        let mut sxx = 0.0;
        let mut syy = 0.0;
        for p in &self.points {
            let dx = p.theoretical - mx;
            let dy = p.sample - my;
            sxy += dx * dy;
            sxx += dx * dx;
            syy += dy * dy;
        }
        if sxx == 0.0 || syy == 0.0 {
            return 1.0;
        }
        (sxy * sxy) / (sxx * syy)
    }
}

/// Builds Q-Q plot data against the standard normal using Blom plotting
/// positions `(i − 3/8)/(n + 1/4)`.
///
/// For samples larger than `max_points` the plot is uniformly thinned to
/// keep rendering tractable (the paper plots 1 M-sample Q-Q panels; thinning
/// to a few thousand points is visually indistinguishable).
pub fn qq_points(xs: &[f64], max_points: usize) -> StatsResult<QqPlot> {
    validate_samples(xs)?;
    let sorted = sorted_copy(xs);
    let n = sorted.len();
    let m = max_points.max(2).min(n);

    let mut points = Vec::with_capacity(m);
    if n <= m {
        for (i, &x) in sorted.iter().enumerate() {
            let p = ((i + 1) as f64 - 0.375) / (n as f64 + 0.25);
            points.push(QqPoint {
                theoretical: std_normal_inv_cdf(p),
                sample: x,
            });
        }
    } else {
        for j in 0..m {
            // Evenly spaced plotting positions over the full sample. The
            // float product can land exactly on `n` after rounding at
            // adversarial sizes, so the cast is clamped to the last index.
            let idx = (((j as f64 + 0.5) / m as f64 * n as f64) as usize).min(n - 1);
            let p = ((idx + 1) as f64 - 0.375) / (n as f64 + 0.25);
            points.push(QqPoint {
                theoretical: std_normal_inv_cdf(p.clamp(1e-12, 1.0 - 1e-12)),
                sample: sorted[idx],
            });
        }
    }

    // qqline: through the quartiles of both distributions.
    let q1s = quantile_sorted(&sorted, 0.25, QuantileMethod::Interpolated);
    let q3s = quantile_sorted(&sorted, 0.75, QuantileMethod::Interpolated);
    let q1t = std_normal_inv_cdf(0.25);
    let q3t = std_normal_inv_cdf(0.75);
    let slope = if q3t > q1t {
        (q3s - q1s) / (q3t - q1t)
    } else {
        0.0
    };
    let intercept = q1s - slope * q1t;

    Ok(QqPlot {
        points,
        line: QqLine { slope, intercept },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normal_sample(n: usize, mu: f64, sigma: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                mu + sigma * std_normal_inv_cdf(u)
            })
            .collect()
    }

    #[test]
    fn normal_data_is_straight() {
        let xs = normal_sample(500, 10.0, 3.0);
        let qq = qq_points(&xs, 10_000).unwrap();
        assert!(qq.straightness() > 0.999, "r² = {}", qq.straightness());
        // Line recovers mu and sigma approximately.
        assert!(
            (qq.line.slope - 3.0).abs() < 0.2,
            "slope = {}",
            qq.line.slope
        );
        assert!((qq.line.intercept - 10.0).abs() < 0.2);
    }

    #[test]
    fn lognormal_data_is_curved() {
        let xs: Vec<f64> = normal_sample(500, 0.0, 1.0)
            .iter()
            .map(|x| x.exp())
            .collect();
        let qq = qq_points(&xs, 10_000).unwrap();
        assert!(qq.straightness() < 0.98, "r² = {}", qq.straightness());
    }

    #[test]
    fn points_sorted_by_theoretical() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0, 9.0, 0.0, 8.0];
        let qq = qq_points(&xs, 100).unwrap();
        for w in qq.points.windows(2) {
            assert!(w[0].theoretical <= w[1].theoretical);
            assert!(w[0].sample <= w[1].sample);
        }
    }

    #[test]
    fn thinning_caps_point_count() {
        let xs = normal_sample(50_000, 0.0, 1.0);
        let qq = qq_points(&xs, 1000).unwrap();
        assert_eq!(qq.points.len(), 1000);
        assert!(qq.straightness() > 0.999);
    }

    #[test]
    fn small_samples_keep_all_points() {
        let xs = [1.0, 2.0, 3.0];
        let qq = qq_points(&xs, 1000).unwrap();
        assert_eq!(qq.points.len(), 3);
    }

    #[test]
    fn rejects_empty() {
        assert!(qq_points(&[], 100).is_err());
    }
}
