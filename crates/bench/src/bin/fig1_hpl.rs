//! Regenerates Figure 1: distribution of 50 HPL completion times.

use std::process::ExitCode;

use scibench_bench::figures::fig1_hpl;
use scibench_bench::{output, samples_from_env, DEFAULT_SEED};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig1_hpl: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let runs = samples_from_env(50);
    let fig = fig1_hpl::compute(runs, DEFAULT_SEED)?;
    println!("{}", fig.render());
    let path = output::write_csv("fig1_hpl", &fig.dataset())?;
    println!("raw data: {}", path.display());
    Ok(())
}
