//! Regenerates Figure 2: normalization of 1M ping-pong samples.

use std::process::ExitCode;

use scibench_bench::figures::fig2_normalization;
use scibench_bench::{output, samples_from_env, DEFAULT_SEED};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig2_normalization: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let samples = samples_from_env(1_000_000);
    let fig = fig2_normalization::compute(samples, DEFAULT_SEED)?;
    println!("{}", fig.render());
    let path = output::write_csv("fig2_qq", &fig.dataset())?;
    println!("Q-Q data: {}", path.display());
    Ok(())
}
