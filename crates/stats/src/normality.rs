//! Normality testing and normalization (§3.1.2 of the paper, Rule 6:
//! *do not assume normality of collected data without diagnostic checking*).
//!
//! The Shapiro–Wilk W test is implemented after Royston's AS R94 algorithm
//! (the same algorithm behind R's `shapiro.test`), valid for 3 ≤ n ≤ 5000.
//! For larger samples — where the paper warns the test "may be misleading" —
//! [`shapiro_wilk_thinned`] tests a deterministic uniformly-thinned
//! subsample and callers should confirm with a Q-Q plot
//! ([`crate::qq::qq_points`]).
//!
//! Two normalization strategies from Figure 2 of the paper are provided:
//! logarithmic transformation (for log-normal data) and batch means of
//! length `k` (CLT normalization).

use serde::{Deserialize, Serialize};

use crate::dist::normal::{std_normal_cdf, std_normal_inv_cdf};
use crate::error::{StatsError, StatsResult};
use crate::summary::arithmetic_mean;
use crate::{sorted_copy, validate_samples};

/// Result of a Shapiro–Wilk normality test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShapiroWilk {
    /// The W statistic in (0, 1]; values near 1 indicate normality.
    pub w: f64,
    /// Approximate p-value for the null hypothesis "the data is normal".
    pub p_value: f64,
    /// Number of observations used.
    pub n: usize,
}

impl ShapiroWilk {
    /// Whether normality is rejected at significance level `alpha`.
    pub fn rejects_normality(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Shapiro–Wilk W test for normality (Royston 1995, AS R94).
///
/// Supports `3 ≤ n ≤ 5000`. Returns an error for constant samples (zero
/// variance) because W is undefined there.
///
/// ```
/// use scibench_stats::normality::shapiro_wilk;
/// // Strongly skewed data: normality is rejected (Rule 6 in action).
/// let skewed: Vec<f64> = (0..200).map(|i| ((i % 17) as f64 * 0.4).exp()).collect();
/// let result = shapiro_wilk(&skewed).unwrap();
/// assert!(result.rejects_normality(0.05));
/// ```
pub fn shapiro_wilk(xs: &[f64]) -> StatsResult<ShapiroWilk> {
    validate_samples(xs)?;
    let n = xs.len();
    if !(3..=5000).contains(&n) {
        return Err(StatsError::UnsupportedSampleSize {
            constraint: "Shapiro-Wilk requires 3 <= n <= 5000",
            actual: n,
        });
    }
    let x = sorted_copy(xs);
    let range = x[n - 1] - x[0];
    if range <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }

    // Expected values of standard normal order statistics (Blom scores).
    let nf = n as f64;
    let mut m = vec![0.0f64; n];
    for (i, mi) in m.iter_mut().enumerate() {
        *mi = std_normal_inv_cdf(((i + 1) as f64 - 0.375) / (nf + 0.25));
    }
    let ssumm2: f64 = m.iter().map(|v| v * v).sum();
    let rsn = 1.0 / nf.sqrt();

    // Royston's polynomial-corrected weights for the extreme order stats.
    let mut a = vec![0.0f64; n];
    let a_n = -2.706_056 * rsn.powi(5) + 4.434_685 * rsn.powi(4)
        - 2.071_190 * rsn.powi(3)
        - 0.147_981 * rsn.powi(2)
        + 0.221_157 * rsn
        + m[n - 1] / ssumm2.sqrt();
    if n > 5 {
        let a_n1 = -3.582_633 * rsn.powi(5) + 5.682_633 * rsn.powi(4)
            - 1.752_461 * rsn.powi(3)
            - 0.293_762 * rsn.powi(2)
            + 0.042_981 * rsn
            + m[n - 2] / ssumm2.sqrt();
        let phi = (ssumm2 - 2.0 * m[n - 1] * m[n - 1] - 2.0 * m[n - 2] * m[n - 2])
            / (1.0 - 2.0 * a_n * a_n - 2.0 * a_n1 * a_n1);
        let sqrt_phi = phi.sqrt();
        for i in 2..n - 2 {
            a[i] = m[i] / sqrt_phi;
        }
        a[n - 1] = a_n;
        a[0] = -a_n;
        a[n - 2] = a_n1;
        a[1] = -a_n1;
    } else {
        let phi = (ssumm2 - 2.0 * m[n - 1] * m[n - 1]) / (1.0 - 2.0 * a_n * a_n);
        let sqrt_phi = phi.sqrt();
        for i in 1..n - 1 {
            a[i] = m[i] / sqrt_phi;
        }
        a[n - 1] = a_n;
        a[0] = -a_n;
    }

    // W = (Σ aᵢ x₍ᵢ₎)² / Σ (xᵢ − x̄)².
    let mean = arithmetic_mean(&x)?;
    let numerator: f64 = a
        .iter()
        .zip(&x)
        .map(|(ai, xi)| ai * xi)
        .sum::<f64>()
        .powi(2);
    let denominator: f64 = x.iter().map(|xi| (xi - mean) * (xi - mean)).sum();
    if denominator <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let w = (numerator / denominator).min(1.0);

    // p-value via Royston's normalizing transformations.
    let p_value = if n == 3 {
        // Exact for n = 3.
        let pi6 = 6.0 / std::f64::consts::PI;
        let stqr = (0.75f64).sqrt().asin();
        (pi6 * (w.sqrt().asin() - stqr)).clamp(0.0, 1.0)
    } else if n <= 11 {
        let g = -2.273 + 0.459 * nf;
        let mu = 0.5440 - 0.39978 * nf + 0.025054 * nf * nf - 0.000_671_4 * nf * nf * nf;
        let sigma = (1.3822 - 0.77857 * nf + 0.062767 * nf * nf - 0.002_032_2 * nf * nf * nf).exp();
        let arg = g - (1.0 - w).ln();
        if arg <= 0.0 {
            // W so close to 1 that the transform degenerates: p ≈ 1.
            1.0
        } else {
            let z = (-arg.ln() - mu) / sigma;
            1.0 - std_normal_cdf(z)
        }
    } else {
        let ln_n = nf.ln();
        let mu = -1.5861 - 0.31082 * ln_n - 0.083751 * ln_n * ln_n + 0.0038915 * ln_n * ln_n * ln_n;
        let sigma = (-0.4803 - 0.082676 * ln_n + 0.0030302 * ln_n * ln_n).exp();
        let z = ((1.0 - w).ln() - mu) / sigma;
        1.0 - std_normal_cdf(z)
    };

    Ok(ShapiroWilk { w, p_value, n })
}

/// Shapiro–Wilk on a deterministic uniformly-thinned subsample of at most
/// `max_n` observations (default use: large benchmark datasets where the
/// full test is unsupported and, per the paper, misleading anyway).
pub fn shapiro_wilk_thinned(xs: &[f64], max_n: usize) -> StatsResult<ShapiroWilk> {
    validate_samples(xs)?;
    let max_n = max_n.clamp(3, 5000);
    if xs.len() <= max_n {
        return shapiro_wilk(xs);
    }
    let stride = xs.len() as f64 / max_n as f64;
    let last = xs.len() - 1;
    let thinned: Vec<f64> = (0..max_n)
        .map(|i| xs[(((i as f64 + 0.5) * stride) as usize).min(last)])
        .collect();
    shapiro_wilk(&thinned)
}

/// Log-transforms strictly positive samples (Figure 2(b) of the paper):
/// right-skewed log-normal data becomes normal under `ln`.
pub fn log_normalize(xs: &[f64]) -> StatsResult<Vec<f64>> {
    validate_samples(xs)?;
    if xs.iter().any(|&x| x <= 0.0) {
        return Err(StatsError::NonPositiveSample);
    }
    Ok(xs.iter().map(|x| x.ln()).collect())
}

/// Batch-means normalization (Figure 2(c,d)): averages consecutive
/// non-overlapping blocks of length `k`; by the CLT the block means tend
/// towards normality as `k` grows.
///
/// Incomplete trailing blocks are dropped, which is why the paper notes
/// that "this technique loses precision": one can no longer make statements
/// about individual measurements, and rank statistics apply only to blocks.
pub fn batch_means(xs: &[f64], k: usize) -> StatsResult<Vec<f64>> {
    validate_samples(xs)?;
    if k == 0 {
        return Err(StatsError::InvalidParameter {
            name: "k",
            value: 0.0,
        });
    }
    if xs.len() < k {
        return Err(StatsError::TooFewSamples {
            required: k,
            actual: xs.len(),
        });
    }
    Ok(xs
        .chunks_exact(k)
        .map(|chunk| chunk.iter().sum::<f64>() / k as f64)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic ~normal sample via inverse-CDF stratification.
    fn normal_sample(n: usize, mu: f64, sigma: f64) -> Vec<f64> {
        // Shuffle deterministically so the data is not sorted.
        let mut v: Vec<f64> = (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                mu + sigma * std_normal_inv_cdf(u)
            })
            .collect();
        // Simple LCG-driven Fisher-Yates.
        let mut state = 0x2545F4914F6CDD1Du64;
        for i in (1..v.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    }

    fn lognormal_sample(n: usize) -> Vec<f64> {
        normal_sample(n, 0.0, 1.0)
            .into_iter()
            .map(f64::exp)
            .collect()
    }

    #[test]
    fn w_close_to_one_for_normal_data() {
        let xs = normal_sample(100, 10.0, 2.0);
        let r = shapiro_wilk(&xs).unwrap();
        assert!(r.w > 0.98, "W = {}", r.w);
        assert!(!r.rejects_normality(0.05), "p = {}", r.p_value);
    }

    #[test]
    fn rejects_lognormal_data() {
        let xs = lognormal_sample(200);
        let r = shapiro_wilk(&xs).unwrap();
        assert!(r.rejects_normality(0.01), "W = {}, p = {}", r.w, r.p_value);
    }

    #[test]
    fn rejects_uniform_data_moderately() {
        // Uniform data has short tails; SW detects it for large n.
        let xs: Vec<f64> = (0..500).map(|i| (i as f64 * 0.618_034) % 1.0).collect();
        let r = shapiro_wilk(&xs).unwrap();
        assert!(r.rejects_normality(0.05), "W = {}, p = {}", r.w, r.p_value);
    }

    #[test]
    fn log_normalization_restores_normality() {
        // The core claim of Figure 2(b).
        let xs = lognormal_sample(300);
        let raw = shapiro_wilk(&xs).unwrap();
        let logged = shapiro_wilk(&log_normalize(&xs).unwrap()).unwrap();
        assert!(raw.w < logged.w);
        assert!(!logged.rejects_normality(0.01), "p = {}", logged.p_value);
    }

    #[test]
    fn small_sample_sizes_supported() {
        for n in 3..=12 {
            let xs = normal_sample(n, 0.0, 1.0);
            let r = shapiro_wilk(&xs).unwrap();
            assert!(r.w > 0.0 && r.w <= 1.0);
            assert!((0.0..=1.0).contains(&r.p_value), "n={n} p={}", r.p_value);
        }
    }

    #[test]
    fn unsupported_sizes_rejected() {
        assert!(matches!(
            shapiro_wilk(&[1.0, 2.0]),
            Err(StatsError::UnsupportedSampleSize { .. })
        ));
        let big = vec![0.0; 5001];
        assert!(matches!(
            shapiro_wilk(&big),
            Err(StatsError::UnsupportedSampleSize { .. })
        ));
    }

    #[test]
    fn constant_sample_is_zero_variance() {
        assert!(matches!(
            shapiro_wilk(&[3.0; 10]),
            Err(StatsError::ZeroVariance)
        ));
    }

    #[test]
    fn thinned_handles_large_samples() {
        let xs = normal_sample(20_000, 5.0, 1.0);
        let r = shapiro_wilk_thinned(&xs, 1000).unwrap();
        assert_eq!(r.n, 1000);
        assert!(!r.rejects_normality(0.01), "p = {}", r.p_value);
        // Small inputs pass through untouched.
        let small = normal_sample(50, 0.0, 1.0);
        assert_eq!(shapiro_wilk_thinned(&small, 1000).unwrap().n, 50);
    }

    #[test]
    fn batch_means_reduces_and_averages() {
        let xs: Vec<f64> = (1..=10).map(f64::from).collect();
        let b = batch_means(&xs, 5).unwrap();
        assert_eq!(b, vec![3.0, 8.0]);
        // Trailing partial chunk dropped.
        let b = batch_means(&xs, 4).unwrap();
        assert_eq!(b, vec![2.5, 6.5]);
    }

    #[test]
    fn batch_means_normalizes_skewed_data() {
        // Figure 2(c,d): batch means of log-normal data approach normality
        // as k grows (CLT). W must improve monotonically with k and the
        // largest batching must pass the test outright.
        let xs = lognormal_sample(5000);
        let raw_w = shapiro_wilk_thinned(&xs, 1000).unwrap().w;
        let b50 = shapiro_wilk(&batch_means(&xs, 50).unwrap()).unwrap();
        let b250 = shapiro_wilk(&batch_means(&xs, 250).unwrap()).unwrap();
        assert!(b50.w > raw_w, "k=50 W {} should beat raw {}", b50.w, raw_w);
        assert!(b250.w > raw_w);
        assert!(!b250.rejects_normality(0.001), "p = {}", b250.p_value);
    }

    #[test]
    fn batch_means_rejects_bad_k() {
        assert!(batch_means(&[1.0, 2.0], 0).is_err());
        assert!(batch_means(&[1.0, 2.0], 3).is_err());
    }

    #[test]
    fn log_normalize_rejects_nonpositive() {
        assert!(log_normalize(&[1.0, 0.0]).is_err());
    }
}
