//! Performance suite for the experiment engine: campaign execution on the
//! work-stealing pool (fixed and adaptive plans), the legacy quadratic
//! replanning loop as a reference, and a collective-simulation campaign.
//!
//! `legacy_adaptive_mean` reimplements the pre-optimization stopping loop
//! — recomputing the §4.2.2 sample-size formula over the *whole* sample
//! vector after every batch, `O(n²/batch)` total — so the old-versus-new
//! pair can be timed from one binary.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use scibench::experiment::campaign::{run_campaign, CampaignConfig};
use scibench::experiment::design::{Design, Factor, RunPoint};
use scibench::experiment::measurement::{MeasurementPlan, StoppingRule};
use scibench_sim::alloc::{Allocation, AllocationPolicy};
use scibench_sim::collectives::reduce;
use scibench_sim::machine::MachineSpec;
use scibench_sim::rng::SimRng;
use scibench_stats::ci;

fn demo_design() -> Design {
    Design::new(vec![
        Factor::new("system", &["a", "b"]),
        Factor::numeric("size", &[8.0, 64.0, 512.0, 4096.0]),
    ])
}

fn noisy_measure(point: &RunPoint, rng: &mut SimRng) -> f64 {
    let base = if point.level(0) == "a" { 1.0 } else { 2.0 };
    let size: f64 = point.level(1).parse().unwrap();
    base + size * 1e-4 + rng.uniform() * 0.5
}

/// The pre-optimization adaptive-mean loop: full-vector replanning.
fn legacy_adaptive_mean(
    confidence: f64,
    rel_error: f64,
    batch: usize,
    max_samples: usize,
    mut operation: impl FnMut() -> f64,
) -> Vec<f64> {
    let mut samples = Vec::new();
    for _ in 0..batch.max(5).min(max_samples) {
        samples.push(operation());
    }
    while samples.len() < max_samples {
        let required = ci::required_samples_normal(&samples, confidence, rel_error).unwrap();
        if required <= samples.len() {
            break;
        }
        let next = required.min(max_samples).min(samples.len() + batch.max(1));
        while samples.len() < next {
            samples.push(operation());
        }
    }
    samples
}

fn bench_campaign(c: &mut Criterion) {
    let fixed = MeasurementPlan::new("op").stopping(StoppingRule::FixedCount(2_000));
    let adaptive = MeasurementPlan::new("op").stopping(StoppingRule::AdaptiveMeanCi {
        confidence: 0.95,
        rel_error: 0.01,
        batch: 10,
        max_samples: 50_000,
    });
    let mut group = c.benchmark_group("campaign");
    group.bench_function("fixed_2000_threads4", |b| {
        b.iter(|| {
            run_campaign(
                &demo_design(),
                black_box(&fixed),
                &CampaignConfig {
                    seed: 1,
                    threads: 4,
                },
                noisy_measure,
            )
            .unwrap()
        })
    });
    group.bench_function("adaptive_mean_threads4", |b| {
        b.iter(|| {
            run_campaign(
                &demo_design(),
                black_box(&adaptive),
                &CampaignConfig {
                    seed: 1,
                    threads: 4,
                },
                noisy_measure,
            )
            .unwrap()
        })
    });
    group.bench_function("adaptive_mean_threads1", |b| {
        b.iter(|| {
            run_campaign(
                &demo_design(),
                black_box(&adaptive),
                &CampaignConfig {
                    seed: 1,
                    threads: 1,
                },
                noisy_measure,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_legacy_replanning(c: &mut Criterion) {
    c.bench_function("campaign/legacy_quadratic_replanning_1point", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(1).fork_indexed("campaign-point", 0);
            legacy_adaptive_mean(0.95, 0.01, 10, 50_000, || 1.0 + rng.uniform() * 0.5)
        })
    });
}

fn bench_collective_campaign(c: &mut Criterion) {
    let machine = MachineSpec::piz_daint();
    let plan = MeasurementPlan::new("reduce").stopping(StoppingRule::FixedCount(50));
    let design = Design::new(vec![Factor::numeric("procs", &[8.0, 32.0])]);
    c.bench_function("campaign/collective_reduce_threads2", |b| {
        b.iter(|| {
            run_campaign(
                &design,
                black_box(&plan),
                &CampaignConfig {
                    seed: 9,
                    threads: 2,
                },
                |point, rng| {
                    let p: usize = point.level(0).parse::<f64>().unwrap() as usize;
                    let alloc =
                        Allocation::one_rank_per_node(&machine, p, AllocationPolicy::Random, rng);
                    reduce(&machine, &alloc, 8, rng).max_ns().unwrap()
                },
            )
            .unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_campaign,
    bench_legacy_replanning,
    bench_collective_campaign
);
criterion_main!(benches);
