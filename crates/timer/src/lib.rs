//! Clocks, timers and event counters for scientific benchmarking.
//!
//! LibSciBench (the C library accompanying Hoefler & Belli, SC '15) ships
//! high-resolution timers that report their own resolution and overhead and
//! warn when measurement perturbance exceeds safe levels (§4.2.1 of the
//! paper: timer overhead should stay below ~5 % of the measured interval
//! and the timer's precision should be ~10× finer than the interval).
//!
//! This crate is the Rust analogue:
//!
//! - [`clock::Clock`] abstracts a nanosecond time source; [`clock::WallClock`]
//!   wraps `std::time::Instant` and [`clock::VirtualClock`] is a manually
//!   advanced clock that lets the simulator and the measurement harness
//!   share one code path,
//! - [`resolution`] measures timer resolution and per-call overhead and
//!   audits them against the paper's thresholds,
//! - [`watch`] provides interval stopwatches and the k-batched
//!   multi-event measurement of §4.2.1 ("Measuring multiple events"),
//! - [`counters`] is a deterministic software stand-in for PAPI hardware
//!   counters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod counters;
pub mod resolution;
pub mod watch;

pub use clock::{Clock, SharedVirtualClock, VirtualClock, WallClock};
pub use counters::CounterSet;
pub use resolution::{audit_timer, TimerAudit, TimerProfile};
pub use watch::{MultiEventTimer, Stopwatch};
