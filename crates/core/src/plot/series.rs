//! Line/point series with confidence bars (§5.2, Rule 12).
//!
//! "Points should only be connected if they indicate a trend and values
//! between two points are expected to follow the line" — so a [`Series`]
//! must be told explicitly whether connecting is valid, and that flag
//! travels with the data into every renderer.

use serde::{Deserialize, Serialize};

use scibench_stats::ci::ConfidenceInterval;

/// One point of a series: an x position, a y estimate, and an optional CI.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// The x coordinate (e.g. process count).
    pub x: f64,
    /// The y estimate (e.g. median completion time).
    pub y: f64,
    /// Optional confidence interval around `y`.
    pub ci: Option<ConfidenceInterval>,
}

/// A named series of points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points, sorted ascending by x.
    pub points: Vec<SeriesPoint>,
    /// Rule 12: whether interpolation between points is valid (trend) —
    /// renderers connect points only when this is true.
    pub connect_points: bool,
}

impl Series {
    /// Creates a series from `(x, y)` pairs, sorted by x.
    pub fn from_xy(label: &str, xy: &[(f64, f64)], connect_points: bool) -> Self {
        let mut points: Vec<SeriesPoint> = xy
            .iter()
            .map(|&(x, y)| SeriesPoint { x, y, ci: None })
            .collect();
        points.sort_by(|a, b| a.x.partial_cmp(&b.x).expect("finite x"));
        Self {
            label: label.to_owned(),
            points,
            connect_points,
        }
    }

    /// Creates a series whose points carry confidence intervals.
    pub fn with_cis(
        label: &str,
        xy_ci: &[(f64, ConfidenceInterval)],
        connect_points: bool,
    ) -> Self {
        let mut points: Vec<SeriesPoint> = xy_ci
            .iter()
            .map(|&(x, ci)| SeriesPoint {
                x,
                y: ci.estimate,
                ci: Some(ci),
            })
            .collect();
        points.sort_by(|a, b| a.x.partial_cmp(&b.x).expect("finite x"));
        Self {
            label: label.to_owned(),
            points,
            connect_points,
        }
    }

    /// Whether any point's CI would be visible at a given relative
    /// threshold — §5.2: "In cases where the CI is extremely narrow and
    /// would only clutter the graphs, it should be omitted and reported in
    /// the text."
    pub fn cis_visible(&self, rel_threshold: f64) -> bool {
        self.points.iter().any(|p| {
            p.ci.and_then(|ci| ci.relative_half_width())
                .map(|w| w > rel_threshold)
                .unwrap_or(false)
        })
    }

    /// y range including CI bars.
    pub fn y_range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for p in &self.points {
            let (l, h) = match p.ci {
                Some(ci) => (ci.lower.min(p.y), ci.upper.max(p.y)),
                None => (p.y, p.y),
            };
            lo = lo.min(l);
            hi = hi.max(h);
        }
        (lo, hi)
    }

    /// Exports the series as CSV rows `x,y,lower,upper` (empty CI fields
    /// when absent).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("x,y,ci_lower,ci_upper\n");
        for p in &self.points {
            match p.ci {
                Some(ci) => out.push_str(&format!("{},{},{},{}\n", p.x, p.y, ci.lower, ci.upper)),
                None => out.push_str(&format!("{},{},,\n", p.x, p.y)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ci(est: f64, half: f64) -> ConfidenceInterval {
        ConfidenceInterval {
            estimate: est,
            lower: est - half,
            upper: est + half,
            confidence: 0.95,
        }
    }

    #[test]
    fn points_are_sorted_by_x() {
        let s = Series::from_xy("t", &[(4.0, 2.0), (1.0, 5.0), (2.0, 3.0)], true);
        let xs: Vec<f64> = s.points.iter().map(|p| p.x).collect();
        assert_eq!(xs, vec![1.0, 2.0, 4.0]);
        assert!(s.connect_points);
    }

    #[test]
    fn ci_visibility_threshold() {
        let narrow = Series::with_cis("n", &[(1.0, ci(100.0, 0.1))], true);
        let wide = Series::with_cis("w", &[(1.0, ci(100.0, 10.0))], true);
        assert!(!narrow.cis_visible(0.05));
        assert!(wide.cis_visible(0.05));
    }

    #[test]
    fn y_range_includes_ci_bars() {
        let s = Series::with_cis("s", &[(1.0, ci(10.0, 2.0)), (2.0, ci(20.0, 1.0))], false);
        assert_eq!(s.y_range(), (8.0, 21.0));
        let plain = Series::from_xy("p", &[(0.0, 5.0), (1.0, -3.0)], false);
        assert_eq!(plain.y_range(), (-3.0, 5.0));
    }

    #[test]
    fn csv_export() {
        let s = Series::with_cis("s", &[(1.0, ci(10.0, 2.0))], true);
        let csv = s.to_csv();
        assert!(csv.starts_with("x,y,ci_lower,ci_upper\n"));
        assert!(csv.contains("1,10,8,12"));
        let plain = Series::from_xy("p", &[(3.0, 4.0)], false);
        assert!(plain.to_csv().contains("3,4,,"));
    }

    #[test]
    fn categorical_series_should_not_connect() {
        // Documenting the Rule 12 usage pattern: bar-like data.
        let s = Series::from_xy("per-system", &[(0.0, 1.7), (1.0, 1.8)], false);
        assert!(!s.connect_points);
    }
}
