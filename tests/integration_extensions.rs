//! Integration tests of the extension features working together: the
//! campaign orchestrator, adaptive level refinement, scaling-study
//! declarations, power analysis, the BSP application model and the
//! microbenchmark-fitted cost model.

use scibench::bounds::LinearCostModel;
use scibench::experiment::adaptive::{refine_levels, RefinementConfig};
use scibench::experiment::campaign::{run_campaign, CampaignConfig};
use scibench::experiment::design::{Design, Factor};
use scibench::experiment::measurement::{MeasurementPlan, StoppingRule};
use scibench::experiment::scaling::{ScalingStudy, WeakScalingFn};
use scibench_sim::alloc::{Allocation, AllocationPolicy};
use scibench_sim::bsp::{bsp_run, BspConfig};
use scibench_sim::machine::MachineSpec;
use scibench_sim::pingpong::{pingpong_latencies_ns, PingPongConfig};
use scibench_sim::rng::SimRng;
use scibench_stats::htest::cohens_d;
use scibench_stats::power::{power_two_sample, required_samples_two_sample};
use scibench_stats::quantile::median;

#[test]
fn campaign_over_simulated_systems_finds_the_factor_effects() {
    // Factorial campaign: system x message size, measured adaptively,
    // executed on 4 threads, deterministic.
    let design = Design::new(vec![
        Factor::new("system", &["dora", "pilatus"]),
        Factor::numeric("bytes", &[64.0, 4096.0]),
    ]);
    let plan =
        MeasurementPlan::new("pingpong")
            .warmup(4)
            .stopping(StoppingRule::AdaptiveMedianCi {
                confidence: 0.95,
                rel_error: 0.02,
                batch: 100,
                max_samples: 20_000,
            });
    let dora = MachineSpec::piz_dora();
    let pilatus = MachineSpec::pilatus();
    let result = run_campaign(
        &design,
        &plan,
        &CampaignConfig {
            seed: 11,
            threads: 4,
        },
        |point, rng| {
            let machine = if point.level(0) == "dora" {
                &dora
            } else {
                &pilatus
            };
            let mut cfg = PingPongConfig::paper_64b(1);
            cfg.bytes = point.level(1).parse::<f64>().unwrap() as usize;
            cfg.warmup_iterations = 0;
            pingpong_latencies_ns(machine, &cfg, rng)[0]
        },
    )
    .unwrap();
    assert!(result.unconverged().is_empty());
    let summaries = result.summaries(0.95).unwrap();
    assert_eq!(summaries.len(), 4);
    // Bigger messages slower on both systems.
    let med = |sys: &str, bytes: &str| {
        summaries
            .iter()
            .find(|(p, _)| p.level(0) == sys && p.level(1) == bytes)
            .map(|(_, s)| s.five_number.median)
            .unwrap()
    };
    assert!(med("dora", "4096") > med("dora", "64"));
    assert!(med("pilatus", "4096") > med("pilatus", "64"));
}

#[test]
fn adaptive_refinement_finds_the_rendezvous_step() {
    // Sweep message sizes on Piz Dora; the eager->rendezvous switch at
    // 8 KiB must attract refinement levels.
    let machine = MachineSpec::piz_dora();
    let mut rng = SimRng::new(5);
    let mut measure = |bytes: f64| {
        let mut cfg = PingPongConfig::paper_64b(100);
        cfg.bytes = bytes.round() as usize;
        cfg.warmup_iterations = 0;
        let lat = pingpong_latencies_ns(&machine, &cfg, &mut rng);
        median(&lat).unwrap()
    };
    let config = RefinementConfig {
        min_level: 64.0,
        max_level: 32_768.0,
        rel_tolerance: 0.02,
        budget: 20,
        min_gap: 64.0,
    };
    let r = refine_levels(&config, &mut measure).unwrap();
    let threshold = machine.network.eager_threshold_bytes as f64;
    let near = r
        .measured
        .iter()
        .filter(|m| (m.level - threshold).abs() < 4096.0)
        .count();
    assert!(near >= 3, "only {near} levels near the protocol switch");
    // The fitted response jumps across the threshold.
    let below = r.interpolate(threshold * 0.9).unwrap();
    let above = r.interpolate(threshold * 1.1).unwrap();
    assert!(above > below + 1000.0, "{below} vs {above}");
}

#[test]
fn scaling_declarations_back_the_pi_study() {
    // The Figure 7 pi study is a strong-scaling study; the weak variant
    // keeps work per process constant.
    let strong = ScalingStudy::strong(20e-3, (1..=32).collect());
    assert_eq!(strong.problem_size_at(32), Some(20e-3));
    let weak = ScalingStudy::weak(20e-3, vec![1, 2, 4, 8], WeakScalingFn::Linear);
    for p in [1usize, 2, 4, 8] {
        assert_eq!(weak.work_per_process_at(p), Some(20e-3));
    }
    assert!(strong.describe().contains("strong"));
    assert!(weak.describe().contains("weak"));
}

#[test]
fn power_analysis_plans_a_detectable_comparison() {
    // Plan: how many ping-pong samples to tell Dora and Pilatus apart?
    let dora = MachineSpec::piz_dora();
    let pilatus = MachineSpec::pilatus();
    let draw = |machine: &MachineSpec, n: usize, seed: u64| {
        let mut cfg = PingPongConfig::paper_64b(n);
        cfg.warmup_iterations = 0;
        pingpong_latencies_ns(machine, &cfg, &mut SimRng::new(seed))
    };
    // Pilot to estimate the effect size.
    let pilot_a = draw(&dora, 500, 1);
    let pilot_b = draw(&pilatus, 500, 2);
    let d = cohens_d(&pilot_b, &pilot_a).unwrap();
    assert!(d.abs() > 0.05, "systems too similar for this test: d = {d}");
    let n = required_samples_two_sample(d, 0.05, 0.9).unwrap();
    // The plan must be achievable and the planned n actually powered.
    assert!(n < 100_000, "n = {n}");
    let achieved = power_two_sample(n, d, 0.05).unwrap();
    assert!(achieved >= 0.89, "power {achieved}");
}

#[test]
fn bsp_efficiency_decreases_with_scale_and_noise() {
    let machine = MachineSpec::piz_daint();
    let config = BspConfig::balanced(20, 1e6);
    let eff = |p: usize| {
        let mut rng = SimRng::new(3).fork_indexed("bsp", p as u64);
        let alloc = Allocation::one_rank_per_node(&machine, p, AllocationPolicy::Packed, &mut rng);
        bsp_run(&machine, &alloc, &config, &mut rng).efficiency()
    };
    let e4 = eff(4);
    let e64 = eff(64);
    assert!(e4 > e64, "{e4} vs {e64}");
    assert!(e64 > 0.5, "unreasonably low efficiency {e64}");

    // Quiet machine: efficiency stays high at any scale.
    let quiet = MachineSpec::test_machine(64);
    let mut rng = SimRng::new(4);
    let alloc = Allocation::one_rank_per_node(&quiet, 64, AllocationPolicy::Packed, &mut rng);
    let run = bsp_run(&quiet, &alloc, &config, &mut rng);
    assert!(
        run.efficiency() > 0.95,
        "quiet efficiency {}",
        run.efficiency()
    );
}

#[test]
fn microbenchmarks_parametrize_the_capability_vector() {
    // The §5.1 workflow end to end: measure, fit T(n) = L + n/B, build
    // the capability vector, locate the bottleneck of a workload.
    let machine = MachineSpec::piz_dora();
    let mut rng = SimRng::new(9);
    let mut sizes = Vec::new();
    let mut times = Vec::new();
    for bytes in [128usize, 512, 1024, 2048, 4096, 8192] {
        let mut cfg = PingPongConfig::paper_64b(200);
        cfg.bytes = bytes;
        cfg.warmup_iterations = 0;
        let lat = pingpong_latencies_ns(&machine, &cfg, &mut rng);
        sizes.push(bytes as f64);
        times.push(median(&lat).unwrap());
    }
    let model = LinearCostModel::fit(&sizes, &times).unwrap();
    assert!(model.r_squared > 0.98, "R2 = {}", model.r_squared);
    let cap = model.capability_vector().unwrap();
    // A bandwidth-saturating workload should show bandwidth as the
    // bottleneck.
    let bw = model.bandwidth().unwrap();
    let achieved = [0.1 / model.latency, 0.9 * bw];
    let (_, name) = cap.bottleneck(&achieved);
    assert_eq!(name, "bandwidth");
}
