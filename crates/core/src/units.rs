//! Unambiguous units (Rule 2 of the paper).
//!
//! "We recommend following the suggestions made by the PARKBENCH
//! committee and denote the number of floating point operations as flop
//! (singular and plural), the floating point rate as flop/s, Bytes with B,
//! and Bits with b. [...] we suggest to either follow the IEC 60027-2
//! standard and denote binary qualifiers using the 'i' prefixes such as
//! MiB for Mebibytes or clarify the base."
//!
//! [`Unit`] carries the dimension, [`format_quantity`] renders values with
//! correct SI (base-10) prefixes, and [`format_binary`] renders byte/bit
//! counts with IEC binary prefixes. A `flop` count formatted through this
//! module can never be confused with a `flop/s` rate.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Measurement units used in performance reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Unit {
    /// Seconds (time cost).
    Seconds,
    /// Floating-point operations — "flop (singular and plural)".
    Flop,
    /// Floating-point rate, "flop/s".
    FlopPerSecond,
    /// Bytes, "B".
    Bytes,
    /// Bits, "b".
    Bits,
    /// Bytes per second, "B/s".
    BytesPerSecond,
    /// Joules (energy cost).
    Joules,
    /// Watts (power rate).
    Watts,
    /// Dimensionless (ratios, efficiencies, speedups).
    Dimensionless,
}

impl Unit {
    /// Canonical PARKBENCH-style symbol.
    pub fn symbol(&self) -> &'static str {
        match self {
            Unit::Seconds => "s",
            Unit::Flop => "flop",
            Unit::FlopPerSecond => "flop/s",
            Unit::Bytes => "B",
            Unit::Bits => "b",
            Unit::BytesPerSecond => "B/s",
            Unit::Joules => "J",
            Unit::Watts => "W",
            Unit::Dimensionless => "",
        }
    }

    /// Whether the unit denotes a *cost* (linear, additively meaningful —
    /// Rule 3 says summarize with the arithmetic mean).
    pub fn is_cost(&self) -> bool {
        matches!(
            self,
            Unit::Seconds | Unit::Flop | Unit::Bytes | Unit::Bits | Unit::Joules
        )
    }

    /// Whether the unit denotes a *rate* (cost per cost — Rule 3 says
    /// summarize with the harmonic mean).
    pub fn is_rate(&self) -> bool {
        matches!(
            self,
            Unit::FlopPerSecond | Unit::BytesPerSecond | Unit::Watts
        )
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

const SI_PREFIXES: [(&str, f64); 7] = [
    ("P", 1e15),
    ("T", 1e12),
    ("G", 1e9),
    ("M", 1e6),
    ("k", 1e3),
    ("", 1.0),
    ("m", 1e-3),
];

/// IEC 60027-2 binary prefixes.
const IEC_PREFIXES: [(&str, f64); 6] = [
    ("Pi", 1125899906842624.0),
    ("Ti", 1099511627776.0),
    ("Gi", 1073741824.0),
    ("Mi", 1048576.0),
    ("Ki", 1024.0),
    ("", 1.0),
];

/// Formats a value with SI (base-10) prefixes: `format_quantity(77.38e12,
/// Unit::FlopPerSecond)` → `"77.38 Tflop/s"`.
pub fn format_quantity(value: f64, unit: Unit) -> String {
    if value == 0.0 {
        return format!("0 {}", unit.symbol()).trim_end().to_string();
    }
    let magnitude = value.abs();
    for (prefix, factor) in SI_PREFIXES {
        if magnitude >= factor {
            let scaled = value / factor;
            return format!("{} {}{}", trim_float(scaled), prefix, unit.symbol())
                .trim_end()
                .to_string();
        }
    }
    // Below milli: microseconds and nanoseconds matter for benchmarking.
    let (prefix, factor) = if magnitude >= 1e-6 {
        ("u", 1e-6)
    } else {
        ("n", 1e-9)
    };
    format!("{} {}{}", trim_float(value / factor), prefix, unit.symbol())
        .trim_end()
        .to_string()
}

/// Formats a byte or bit count with IEC binary prefixes:
/// `format_binary(32.0 * 1024.0 * 1024.0 * 1024.0, Unit::Bytes)` →
/// `"32 GiB"`. Panics on units other than bytes/bits, where binary
/// prefixes are meaningless.
pub fn format_binary(value: f64, unit: Unit) -> String {
    assert!(
        matches!(unit, Unit::Bytes | Unit::Bits),
        "binary prefixes only apply to bytes and bits (IEC 60027-2)"
    );
    let magnitude = value.abs();
    for (prefix, factor) in IEC_PREFIXES {
        if magnitude >= factor {
            return format!("{} {}{}", trim_float(value / factor), prefix, unit.symbol());
        }
    }
    format!("{} {}", trim_float(value), unit.symbol())
}

/// Renders with up to two decimals, trimming trailing zeros.
fn trim_float(v: f64) -> String {
    let s = format!("{v:.2}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    s.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_number() {
        // The paper's running example: 77.38 Tflop/s.
        assert_eq!(
            format_quantity(77.38e12, Unit::FlopPerSecond),
            "77.38 Tflop/s"
        );
    }

    #[test]
    fn flop_count_vs_rate_are_distinct() {
        let count = format_quantity(100e9, Unit::Flop);
        let rate = format_quantity(100e9, Unit::FlopPerSecond);
        assert_eq!(count, "100 Gflop");
        assert_eq!(rate, "100 Gflop/s");
        assert_ne!(count, rate);
    }

    #[test]
    fn bytes_vs_bits() {
        assert_eq!(format_quantity(64.0, Unit::Bytes), "64 B");
        assert_eq!(format_quantity(64.0, Unit::Bits), "64 b");
    }

    #[test]
    fn iec_binary_prefixes() {
        assert_eq!(format_binary(32.0 * 1073741824.0, Unit::Bytes), "32 GiB");
        assert_eq!(format_binary(1024.0, Unit::Bytes), "1 KiB");
        assert_eq!(format_binary(512.0, Unit::Bytes), "512 B");
        assert_eq!(format_binary(1048576.0, Unit::Bits), "1 Mib");
    }

    #[test]
    #[should_panic(expected = "binary prefixes only apply")]
    fn binary_prefix_rejects_seconds() {
        format_binary(1024.0, Unit::Seconds);
    }

    #[test]
    fn sub_unit_values() {
        assert_eq!(format_quantity(1.75e-6, Unit::Seconds), "1.75 us");
        assert_eq!(format_quantity(300e-9, Unit::Seconds), "300 ns");
        assert_eq!(format_quantity(0.25, Unit::Seconds), "250 ms");
    }

    #[test]
    fn zero_and_negative() {
        assert_eq!(format_quantity(0.0, Unit::Seconds), "0 s");
        assert_eq!(format_quantity(-2.5e9, Unit::Flop), "-2.5 Gflop");
    }

    #[test]
    fn dimensionless_has_no_symbol() {
        assert_eq!(format_quantity(1.2, Unit::Dimensionless), "1.2");
        assert_eq!(Unit::Dimensionless.symbol(), "");
    }

    #[test]
    fn cost_rate_classification() {
        assert!(Unit::Seconds.is_cost());
        assert!(Unit::Flop.is_cost());
        assert!(Unit::Joules.is_cost());
        assert!(!Unit::Seconds.is_rate());
        assert!(Unit::FlopPerSecond.is_rate());
        assert!(Unit::Watts.is_rate());
        assert!(!Unit::FlopPerSecond.is_cost());
        assert!(!Unit::Dimensionless.is_cost());
        assert!(!Unit::Dimensionless.is_rate());
    }

    #[test]
    fn trim_float_behaviour() {
        assert_eq!(trim_float(2.00), "2");
        assert_eq!(trim_float(2.50), "2.5");
        assert_eq!(trim_float(2.57), "2.57");
    }
}
