//! Bit-exact record codecs for the pairwise-mergeable moment
//! accumulators ([`OnlineMoments`], [`HigherMoments`]).
//!
//! The accumulators themselves live in [`crate::summary`]; this module
//! only supplies the canonical wire form their [`super::MergeableSummary`]
//! impls use, built on the crate-wide IEEE-754 hex encoding so NaN-free
//! invariants are preserved and signed zeros survive.

use crate::error::{StatsError, StatsResult};
use crate::summary::{HigherMoments, HigherMomentsRaw, OnlineMoments, OnlineMomentsRaw};
use crate::{f64_from_hex, f64_to_hex};

use super::parse_u64;

pub(super) fn online_moments_to_record(m: &OnlineMoments) -> String {
    let raw = m.to_raw();
    format!(
        "om1;{};{};{};{};{};{}",
        raw.n,
        raw.non_finite,
        f64_to_hex(raw.mean),
        f64_to_hex(raw.m2),
        f64_to_hex(raw.min),
        f64_to_hex(raw.max),
    )
}

pub(super) fn online_moments_from_record(record: &str) -> StatsResult<OnlineMoments> {
    let parts: Vec<&str> = record.split(';').collect();
    if parts.len() != 7 || parts[0] != "om1" {
        return Err(StatsError::MalformedSketch("expected 7-part om1 record"));
    }
    Ok(OnlineMoments::from_raw(OnlineMomentsRaw {
        n: parse_u64(parts[1])?,
        non_finite: parse_u64(parts[2])?,
        mean: f64_from_hex(parts[3])?,
        m2: f64_from_hex(parts[4])?,
        min: f64_from_hex(parts[5])?,
        max: f64_from_hex(parts[6])?,
    }))
}

pub(super) fn higher_moments_to_record(m: &HigherMoments) -> String {
    let raw = m.to_raw();
    format!(
        "hm1;{};{};{};{};{};{};{};{};{};{};{}",
        raw.n,
        raw.non_finite,
        f64_to_hex(raw.mean),
        f64_to_hex(raw.m2),
        f64_to_hex(raw.m3),
        f64_to_hex(raw.m4),
        f64_to_hex(raw.min),
        f64_to_hex(raw.max),
        f64_to_hex(raw.ln_sum),
        f64_to_hex(raw.recip_sum),
        u8::from(raw.all_positive),
    )
}

pub(super) fn higher_moments_from_record(record: &str) -> StatsResult<HigherMoments> {
    let parts: Vec<&str> = record.split(';').collect();
    if parts.len() != 12 || parts[0] != "hm1" {
        return Err(StatsError::MalformedSketch("expected 12-part hm1 record"));
    }
    let all_positive = match parts[11] {
        "0" => false,
        "1" => true,
        _ => return Err(StatsError::MalformedSketch("all_positive flag")),
    };
    Ok(HigherMoments::from_raw(HigherMomentsRaw {
        n: parse_u64(parts[1])?,
        non_finite: parse_u64(parts[2])?,
        mean: f64_from_hex(parts[3])?,
        m2: f64_from_hex(parts[4])?,
        m3: f64_from_hex(parts[5])?,
        m4: f64_from_hex(parts[6])?,
        min: f64_from_hex(parts[7])?,
        max: f64_from_hex(parts[8])?,
        ln_sum: f64_from_hex(parts[9])?,
        recip_sum: f64_from_hex(parts[10])?,
        all_positive,
    }))
}

#[cfg(test)]
mod tests {
    use super::super::MergeableSummary;
    use super::*;

    #[test]
    fn online_moments_record_round_trips_bit_exactly() {
        let mut m = OnlineMoments::new();
        for &x in &[1.5, -0.0, f64::NAN, 1e-308, 2.5e17] {
            MergeableSummary::push(&mut m, x);
        }
        let record = m.to_record();
        let back = OnlineMoments::from_record(&record).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.to_record(), record);
        assert_eq!(back.non_finite_count(), 1);
        // Empty accumulator (±∞ extrema identities) round-trips too.
        let empty = OnlineMoments::new();
        assert_eq!(
            OnlineMoments::from_record(&empty.to_record()).unwrap(),
            empty
        );
        assert!(OnlineMoments::from_record("om1;1;2").is_err());
        assert!(OnlineMoments::from_record("hm1;x").is_err());
    }

    #[test]
    fn higher_moments_record_round_trips_bit_exactly() {
        let mut m = HigherMoments::new();
        for &x in &[3.0, -2.0, f64::INFINITY, 0.125] {
            MergeableSummary::push(&mut m, x);
        }
        let record = m.to_record();
        let back = HigherMoments::from_record(&record).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.to_record(), record);
        assert_eq!(back.geometric_mean(), None, "all_positive must survive");
        assert!(HigherMoments::from_record("hm1;1;2;3").is_err());
    }

    #[test]
    fn trait_merge_matches_inherent_merge() {
        let xs: Vec<f64> = (0..300).map(|i| (i as f64 * 0.41).cos() + 2.0).collect();
        let mut a: OnlineMoments = xs[..100].iter().copied().collect();
        let b: OnlineMoments = xs[100..].iter().copied().collect();
        let mut a2 = a;
        a.merge(&b);
        MergeableSummary::merge_from(&mut a2, &b).unwrap();
        assert_eq!(a, a2);
    }
}
